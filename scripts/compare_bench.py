#!/usr/bin/env python3
"""Validate recorded BENCH_*.json perf artifacts before CI archives them.

Usage: compare_bench.py BENCH_FILE [BENCH_FILE...]

This is a *trend gate, not a noise gate*: shared CI runners make absolute
numbers meaningless run-to-run, so nothing here fails on a slow result.
What it does fail on is a broken recording — the situations where the
archived trajectory silently stops being usable:

  - a file that is missing, empty, or not valid JSON;
  - schema drift: missing `bench`/`schema_version`/`env`/`rows`, or rows
    without a `section` tag;
  - a bench that stopped emitting its headline metric, or emits it
    malformed (wrong type, non-finite, or a throughput/rate of <= 0 —
    a sure sign the measurement under it never ran).

Per-bench headline requirements live in HEADLINE_REQUIREMENTS; benches
without an entry get schema validation only, so new benches can start
emitting JSON before they commit to a headline contract.
"""

import json
import math
import sys

# bench name -> list of (row section, key, requirement) triples that must
# appear in at least one row of that section. Requirements:
#   "number"       — int/float, finite
#   "positive"     — number, finite, > 0
#   "string"       — non-empty string
#   "bool"         — boolean
#   "bounded:<max>" — number, finite, 0 <= value <= max. Unlike the others
#                    this IS a perf gate: it holds a recorded ratio to a
#                    budget (e.g. disarmed-failpoint overhead <= 2%). Use
#                    it only for self-relative metrics that divide out
#                    machine speed, never for absolute throughputs.
HEADLINE_REQUIREMENTS = {
    "e12_crack_kernels": [
        ("headline", "branchy_mrows_per_s", "positive"),
        ("headline", "predicated_mrows_per_s", "positive"),
        ("headline", "speedup", "positive"),
        # PR 8 headlines. Positivity only: on hosts without AVX2/NEON the
        # kSimd rows run the scalar blocked classifier, so ratios near 1.0
        # are legitimate there (the `note` field says which case applies).
        ("headline", "unrolled_mrows_per_s", "positive"),
        ("headline", "simd_mrows_per_s", "positive"),
        ("headline", "simd_vs_unrolled", "positive"),
        ("headline", "three_way_single_mrows_per_s", "positive"),
        ("headline", "three_way_twopass_mrows_per_s", "positive"),
        ("headline", "three_way_speedup", "positive"),
        ("headline", "simd_available", "bool"),
        ("headline", "note", "string"),
        # The single-pass vs two-pass matrix and the autotuner's decision
        # must be on record with every archived run.
        ("three_way", "mrows_per_s", "positive"),
        ("calibration", "kernel_w4", "string"),
        ("calibration", "kernel_w8", "string"),
        ("calibration", "isa", "string"),
        ("calibration", "min_piece_w4", "positive"),
        # Robustness acceptance (docs/ROBUSTNESS.md): disarmed failpoint
        # gates may cost at most 2% of cracked-query time. The metric is a
        # ratio of two measurements from the same run, so it is stable on
        # shared runners where absolute numbers are not.
        ("failpoint_overhead", "gate_ns", "number"),
        ("failpoint_overhead", "gates_evaluated", "number"),
        ("headline", "failpoint_overhead_pct", "bounded:2"),
    ],
    "e11_parallel_scaling": [
        ("headline", "striped_qps", "positive"),
        ("headline", "mutex_qps", "positive"),
        ("headline", "striped_vs_mutex", "positive"),
        ("headline", "metric", "string"),
        # The latch axis itself must be present: at least one recorded row
        # per latch mode (see docs/BENCHMARKS.md, e11).
        ("latch_sweep", "qps", "positive"),
        # The write-mix axis (striped write path vs partition mutex) and
        # its own headline: the worst striped-write/mutex ratio at 20%
        # writes across the thread sweep.
        ("write_mix_sweep", "ops_per_s", "positive"),
        ("headline", "striped_write_min_ratio", "positive"),
        # The multi-column write-mix axis (every write fans out to all
        # three columns) and its headline: the worst multi-column
        # striped-write/mutex ratio across the thread sweep.
        ("multicol_write_mix", "ops_per_s", "positive"),
        ("headline", "multicol_min_ratio", "positive"),
    ],
    "e13_sharded": [
        # The shard-count axis must be on record for both routing kinds,
        # plus the rebalance cost row (rows moved per second and the
        # carried-cut count proving index investment survived the move)
        # and the range-routed scaling headline (docs/DISTRIBUTION.md).
        # Positivity only: scatter scaling needs physical cores, and the
        # checksum cross-check inside the bench already guards exactness.
        ("shard_sweep", "qps", "positive"),
        ("rebalance", "rows_per_s", "positive"),
        ("rebalance", "cuts_carried", "number"),
        ("headline", "shard_scaling", "positive"),
        ("headline", "routing", "string"),
    ],
    "e4_updates": [
        # Merge-policy totals must be present for both the single-column
        # series and the row-atomic multi-column write mix, plus the
        # multi-column throughput headline (docs/UPDATES.md §5).
        ("series", "total_s", "positive"),
        ("pressure_sweep", "total_s", "positive"),
        ("multicol_write_mix", "ops_per_s", "positive"),
        ("headline", "multicol_ops_per_s", "positive"),
        ("headline", "best_policy", "string"),
    ],
}


def fail(path, message):
    print(f"compare_bench: FAIL {path}: {message}", file=sys.stderr)
    return 1


def check_value(value, requirement):
    if requirement == "string":
        return isinstance(value, str) and value != ""
    if requirement == "bool":
        return isinstance(value, bool)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    if not math.isfinite(value):
        return False
    if requirement == "positive":
        return value > 0
    if requirement.startswith("bounded:"):
        return 0 <= value <= float(requirement.split(":", 1)[1])
    return True  # "number"


def validate_schema(path, doc):
    errors = 0
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        errors += fail(path, "missing or non-string `bench`")
    if doc.get("schema_version") != 1:
        errors += fail(path, f"unsupported schema_version {doc.get('schema_version')!r}")
    env = doc.get("env")
    if not isinstance(env, dict) or not all(
        isinstance(env.get(k), int) and env.get(k) > 0 for k in ("n", "q")
    ):
        errors += fail(path, "missing or malformed `env` (needs positive ints n, q)")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors += fail(path, "missing or empty `rows`")
        return errors
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not isinstance(row.get("section"), str):
            errors += fail(path, f"row {i} has no `section` tag")
    return errors


def validate_headlines(path, doc):
    bench = doc.get("bench")
    requirements = HEADLINE_REQUIREMENTS.get(bench)
    if requirements is None:
        print(f"compare_bench: OK   {path}: schema valid "
              f"(no headline contract registered for {bench!r})")
        return 0
    rows = [r for r in doc.get("rows", []) if isinstance(r, dict)]
    errors = 0
    missing_sections = set()
    for section, key, requirement in requirements:
        in_section = [r for r in rows if r.get("section") == section]
        if not in_section:
            if section not in missing_sections:
                missing_sections.add(section)
                errors += fail(path, f"no `{section}` row recorded")
            continue
        if not any(key in r and check_value(r[key], requirement) for r in in_section):
            errors += fail(
                path,
                f"`{section}` rows carry no well-formed `{key}` ({requirement})",
            )
    if errors == 0:
        headline = next((r for r in rows if r.get("section") == "headline"), {})
        summary = ", ".join(
            f"{key}={headline[key]}" for _, key, _ in requirements
            if key in headline and not isinstance(headline[key], str)
        )
        print(f"compare_bench: OK   {path}: {summary}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except OSError as e:
            errors += fail(path, f"cannot read: {e}")
            continue
        except json.JSONDecodeError as e:
            errors += fail(path, f"invalid JSON: {e}")
            continue
        schema_errors = validate_schema(path, doc)
        errors += schema_errors
        if schema_errors == 0:
            errors += validate_headlines(path, doc)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
