#!/usr/bin/env bash
# Configure, build, and run the full test suite in one command — the
# tier-1 verification line from ROADMAP.md. Usage: scripts/check.sh
# Extra cmake configure arguments are passed through, e.g.:
#   scripts/check.sh -DCMAKE_BUILD_TYPE=Debug
#
# scripts/check.sh --tsan builds the concurrency suites under
# ThreadSanitizer (separate build-tsan/ tree; benches and examples off for
# speed) and runs the parallel tests — the same job CI runs.
#
# scripts/check.sh --asan builds the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (separate build-asan/
# tree) — ripple merges, delta buffers, and segment appends are exactly
# where memory bugs hide. Also a CI job.
#
# scripts/check.sh --bench-smoke builds bench_e12_crack_kernels and runs
# it at reduced scale with --json, validating the emitted
# BENCH_e12_crack_kernels.json (build/bench-artifacts/). CI runs this on
# every push and uploads the JSON as an artifact — the repo's recorded
# perf trajectory. Scale overrides: AIDX_N / AIDX_Q as usual.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-tsan -j "$(nproc)"
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'PartitionedCracker|ThreadPool'
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  shift
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j "$(nproc)" --target bench_e12_crack_kernels
  mkdir -p build/bench-artifacts
  AIDX_N="${AIDX_N:-200000}" AIDX_Q="${AIDX_Q:-128}" AIDX_CSV_DIR="" \
    AIDX_JSON_DIR=build/bench-artifacts \
    ./build/bench_e12_crack_kernels --json
  test -s build/bench-artifacts/BENCH_e12_crack_kernels.json
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool build/bench-artifacts/BENCH_e12_crack_kernels.json \
      > /dev/null
    echo "bench-smoke: BENCH_e12_crack_kernels.json is valid JSON"
  fi
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
