#!/usr/bin/env bash
# Configure, build, and run the full test suite in one command — the
# tier-1 verification line from ROADMAP.md. Usage: scripts/check.sh
# Extra cmake configure arguments are passed through, e.g.:
#   scripts/check.sh -DCMAKE_BUILD_TYPE=Debug
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
