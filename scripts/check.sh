#!/usr/bin/env bash
# Configure, build, and run the full test suite in one command — the
# tier-1 verification line from ROADMAP.md. Usage: scripts/check.sh
# Extra cmake configure arguments are passed through, e.g.:
#   scripts/check.sh -DCMAKE_BUILD_TYPE=Debug
#
# scripts/check.sh --tsan builds the concurrency suites under
# ThreadSanitizer (separate build-tsan/ tree; benches and examples off for
# speed) and runs the parallel tests — the same job CI runs.
#
# scripts/check.sh --asan builds the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (separate build-asan/
# tree) — ripple merges, delta buffers, and segment appends are exactly
# where memory bugs hide. Also a CI job.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-tsan -j "$(nproc)"
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'PartitionedCracker|ThreadPool'
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  shift
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
