#!/usr/bin/env bash
# Configure, build, and run the full test suite in one command — the
# tier-1 verification line from ROADMAP.md. Usage: scripts/check.sh
# Extra cmake configure arguments are passed through, e.g.:
#   scripts/check.sh -DCMAKE_BUILD_TYPE=Debug
#
# scripts/check.sh --tsan builds the concurrency suites under
# ThreadSanitizer (separate build-tsan/ tree; benches and examples off for
# speed) and runs every test carrying the `concurrency` ctest label — the
# same job CI runs. New parallel suites opt in by joining
# AIDX_CONCURRENCY_TEST_SUITES in CMakeLists.txt (a name filter here would
# silently skip them).
#
# scripts/check.sh --asan builds the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (separate build-asan/
# tree) — ripple merges, delta buffers, segment appends, and the
# row-atomic table-DML suites (table_dml_test, sideways_update_test) are
# exactly where memory bugs hide. Also a CI job.
#
# scripts/check.sh --bench-smoke builds bench_e12_crack_kernels,
# bench_e11_parallel_scaling, bench_e4_updates, and bench_e13_sharded
# and runs them at reduced scale with --json,
# then gates the emitted BENCH_*.json (build/bench-artifacts/) through
# scripts/compare_bench.py — schema plus per-bench headline metrics (a
# trend gate, not a noise gate). CI runs this on every push and uploads
# the JSONs as artifacts — the repo's recorded perf trajectory. Scale
# overrides: AIDX_N / AIDX_Q as usual.
#
# scripts/check.sh --faults [schedule] runs the fault-injection chaos
# harness under ThreadSanitizer: same build-tsan/ tree as --tsan, but the
# concurrency-labeled suites run with AIDX_FAULT_SCHEDULE set to the named
# schedule (quiet | delays | errors | mixed | dist; default mixed — see
# docs/ROBUSTNESS.md, and docs/DISTRIBUTION.md for dist) and a fresh random
# AIDX_FAULT_SEED unless one is
# already exported. The seed is echoed up front and by the harness itself,
# so any failure reproduces with the printed one-liner.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-tsan -j "$(nproc)"
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -L concurrency
  exit 0
fi

if [[ "${1:-}" == "--faults" ]]; then
  shift
  schedule="mixed"
  if [[ $# -gt 0 && "${1}" != -* ]]; then
    schedule="$1"
    shift
  fi
  case "$schedule" in
    quiet|delays|errors|mixed|dist) ;;
    *)
      echo "check.sh --faults: unknown schedule '$schedule'" \
        "(expected quiet|delays|errors|mixed|dist)" >&2
      exit 2
      ;;
  esac
  seed="${AIDX_FAULT_SEED:-$((RANDOM * 32768 + RANDOM))}"
  echo "faults: schedule=$schedule seed=$seed" \
    "(reproduce: AIDX_FAULT_SEED=$seed scripts/check.sh --faults $schedule)"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-tsan -j "$(nproc)"
  AIDX_FAULT_SCHEDULE="$schedule" AIDX_FAULT_SEED="$seed" \
    ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -L concurrency
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  shift
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DAIDX_BUILD_BENCHMARKS=OFF \
    -DAIDX_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j "$(nproc)" \
    --target bench_e12_crack_kernels bench_e11_parallel_scaling bench_e4_updates \
             bench_e13_sharded
  mkdir -p build/bench-artifacts
  AIDX_N="${AIDX_N:-200000}" AIDX_Q="${AIDX_Q:-128}" AIDX_CSV_DIR="" \
    AIDX_JSON_DIR=build/bench-artifacts \
    ./build/bench_e12_crack_kernels --json
  AIDX_N="${AIDX_N:-200000}" AIDX_Q="${AIDX_Q:-256}" AIDX_CSV_DIR="" \
    AIDX_JSON_DIR=build/bench-artifacts \
    ./build/bench_e11_parallel_scaling --json
  AIDX_N="${AIDX_N:-200000}" AIDX_Q="${AIDX_Q:-256}" AIDX_CSV_DIR="" \
    AIDX_JSON_DIR=build/bench-artifacts \
    ./build/bench_e4_updates --json
  AIDX_N="${AIDX_N:-200000}" AIDX_Q="${AIDX_Q:-256}" AIDX_CSV_DIR="" \
    AIDX_JSON_DIR=build/bench-artifacts \
    ./build/bench_e13_sharded --json
  test -s build/bench-artifacts/BENCH_e12_crack_kernels.json
  test -s build/bench-artifacts/BENCH_e11_parallel_scaling.json
  test -s build/bench-artifacts/BENCH_e4_updates.json
  test -s build/bench-artifacts/BENCH_e13_sharded.json
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/compare_bench.py \
      build/bench-artifacts/BENCH_e12_crack_kernels.json \
      build/bench-artifacts/BENCH_e11_parallel_scaling.json \
      build/bench-artifacts/BENCH_e4_updates.json \
      build/bench-artifacts/BENCH_e13_sharded.json
  else
    echo "bench-smoke: python3 unavailable; skipped compare_bench.py gate" >&2
  fi
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
