// Quickstart: adaptive indexing in five minutes.
//
// Loads a column of 4M random integers, runs the same analytical query
// through three strategies, and shows the adaptive-indexing effect: the
// cracked column gets faster with every query — no CREATE INDEX anywhere.
//
// Build & run:   ./build/examples/quickstart
#include <cstdint>
#include <iostream>
#include <vector>

#include "exec/engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/report.h"

using namespace aidx;

int main() {
  // 1. Load a table. The engine is an in-memory column store.
  Database db;
  AIDX_CHECK_OK(db.CreateTable("sales"));
  constexpr std::size_t kRows = 1 << 22;
  Rng rng(2024);
  std::vector<std::int64_t> amounts(kRows);
  for (auto& a : amounts) a = static_cast<std::int64_t>(rng.NextBounded(1'000'000));
  AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(amounts)));
  std::cout << "loaded sales.amount with " << kRows << " rows\n\n";

  // 2. Ask range queries. Every query is also "advice on how data should
  //    be stored": the crack strategy reorganizes a little each time.
  const auto pred = RangePredicate<std::int64_t>::Between(250'000, 260'000);
  std::cout << "query: SELECT COUNT(*) FROM sales WHERE amount BETWEEN 250000 "
               "AND 260000\n\n";

  TablePrinter table({"attempt", "scan", "crack (adaptive)"});
  for (int attempt = 1; attempt <= 5; ++attempt) {
    WallTimer scan_timer;
    const auto scan_count =
        db.Count("sales", "amount", pred, StrategyConfig::FullScan());
    const double scan_s = scan_timer.ElapsedSeconds();
    AIDX_CHECK(scan_count.ok());

    WallTimer crack_timer;
    const auto crack_count = db.Count("sales", "amount", pred, StrategyConfig::Crack());
    const double crack_s = crack_timer.ElapsedSeconds();
    AIDX_CHECK(crack_count.ok());
    AIDX_CHECK(*scan_count == *crack_count);

    table.AddRow({std::to_string(attempt), FormatSeconds(scan_s),
                  FormatSeconds(crack_s)});
  }
  table.Print(std::cout);

  std::cout << "\nThe scan costs the same every time; the cracked column paid a\n"
               "small premium on attempt 1 (copy + first cracks) and answers\n"
               "from a contiguous piece afterwards. Different ranges benefit\n"
               "too — each query refines the index for its neighbourhood:\n\n";

  TablePrinter drift({"range", "crack time", "rows"});
  for (std::int64_t lo = 0; lo < 1'000'000; lo += 200'000) {
    const auto p = RangePredicate<std::int64_t>::Between(lo, lo + 10'000);
    WallTimer t;
    const auto count = db.Count("sales", "amount", p, StrategyConfig::Crack());
    AIDX_CHECK(count.ok());
    drift.AddRow({"[" + std::to_string(lo) + ", " + std::to_string(lo + 10'000) + "]",
                  FormatSeconds(t.ElapsedSeconds()), std::to_string(*count)});
  }
  drift.Print(std::cout);
  return 0;
}
