// Strategy explorer: a small CLI over the whole strategy × workload space.
//
//   ./build/examples/strategy_explorer [strategy] [pattern] [n] [q]
//
//   strategy: scan | sort | btree | crack | stochastic | merge | parallel |
//             HCC | HCS | HCR | HSS | HSR | HRR          (default: crack)
//   pattern : random | skewed | sequential | periodic | zoom-in |
//             zoom-out | shifting-hotspot                 (default: random)
//   n       : column size    (default 2097152)
//   q       : query count    (default 2000)
//
// Prints the per-query series (log-spaced), the TPCTC benchmark metrics,
// and a comparison against the scan/sort brackets.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

std::optional<StrategyConfig> ParseStrategy(const std::string& name,
                                            std::size_t part_size) {
  if (name == "scan") return StrategyConfig::FullScan();
  if (name == "sort") return StrategyConfig::FullSort();
  if (name == "btree") return StrategyConfig::BTree();
  if (name == "crack") return StrategyConfig::Crack();
  if (name == "stochastic") return StrategyConfig::StochasticCrack();
  if (name == "parallel") return StrategyConfig::ParallelCrack();
  if (name == "merge") return StrategyConfig::AdaptiveMerge(part_size);
  if (name.size() == 3 && name[0] == 'H') {
    const auto mode = [](char c) -> std::optional<OrganizeMode> {
      switch (c) {
        case 'C': return OrganizeMode::kCrack;
        case 'S': return OrganizeMode::kSort;
        case 'R': return OrganizeMode::kRadix;
        default: return std::nullopt;
      }
    };
    const auto initial = mode(name[1]);
    const auto final_mode = mode(name[2]);
    if (initial && final_mode) {
      return StrategyConfig::Hybrid(*initial, *final_mode, part_size);
    }
  }
  return std::nullopt;
}

std::optional<QueryPattern> ParsePattern(const std::string& name) {
  for (const QueryPattern p : kAllQueryPatterns) {
    if (name == QueryPatternName(p)) return p;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string strategy_name = argc > 1 ? argv[1] : "crack";
  const std::string pattern_name = argc > 2 ? argv[2] : "random";
  const std::size_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1 << 21;
  const std::size_t q = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2000;

  const auto config = ParseStrategy(strategy_name, n / 16);
  const auto pattern = ParsePattern(pattern_name);
  if (!config || !pattern || n == 0 || q == 0) {
    std::cerr << "usage: strategy_explorer [strategy] [pattern] [n] [q]\n"
              << "  strategies: scan sort btree crack stochastic merge parallel "
                 "HCC HCS HCR HSS HSR HRR ...\n"
              << "  patterns:   ";
    for (const QueryPattern p : kAllQueryPatterns) {
      std::cerr << QueryPatternName(p) << " ";
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << "strategy=" << config->DisplayName() << " pattern=" << pattern_name
            << " n=" << n << " q=" << q << "\n\n";
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .seed = 7});
  const auto queries = GenerateQueries({.pattern = *pattern,
                                        .num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});

  const RunResult run = RunWorkload(data, *config, queries, pattern_name);
  const RunResult scan =
      RunWorkload(data, StrategyConfig::FullScan(), queries, pattern_name);
  const RunResult sort =
      RunWorkload(data, StrategyConfig::FullSort(), queries, pattern_name);
  if (run.count_checksum != scan.count_checksum) {
    std::cerr << "internal error: checksum mismatch vs scan oracle\n";
    return 1;
  }

  PrintSeriesComparison(std::cout, {run, scan, sort}, "");

  const BenchmarkMetrics m =
      ComputeMetrics(run, scan.tail_mean(100), sort.tail_mean(100));
  std::cout << "\nTPCTC benchmark metrics for " << run.strategy << ":\n"
            << "  first query          " << FormatSeconds(m.first_query_seconds)
            << "  (" << m.first_query_overhead << " x scan)\n"
            << "  queries to converge  "
            << (m.queries_to_convergence < 0
                    ? std::string("not within this run")
                    : std::to_string(m.queries_to_convergence + 1))
            << "\n"
            << "  steady state         " << FormatSeconds(m.steady_state_seconds)
            << "\n"
            << "  total                " << FormatSeconds(m.total_seconds) << "\n";
  return 0;
}
