// Live updates: analytics over a table that never stops changing.
//
// An order stream inserts new rows (and occasionally cancels old ones)
// while a dashboard keeps asking range questions. The cracked column
// absorbs updates adaptively — pending tuples merge only when (and where)
// a query actually needs them — using the ripple policy from SIGMOD 2007.
//
// Build & run:   ./build/examples/live_updates
#include <cstdint>
#include <iostream>
#include <vector>

#include "update/updatable_column.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/report.h"

using namespace aidx;

int main() {
  using Pred = RangePredicate<std::int64_t>;
  constexpr std::size_t kRows = 1 << 21;
  constexpr std::int64_t kDomain = 1'000'000;

  Rng rng(99);
  std::vector<std::int64_t> base(kRows);
  for (auto& v : base) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));

  UpdatableCrackerColumn<std::int64_t> orders(
      base, {.policy = MergePolicy::kRipple});
  std::cout << "orders column: " << kRows << " rows; policy MRI (merge ripple)\n\n";

  // Interleave: every tick = 50 new orders + 5 cancellations + 4 dashboard
  // queries over different price bands.
  std::vector<std::pair<std::int64_t, row_id_t>> live;  // for cancellations
  live.reserve(4096);
  TablePrinter table({"tick", "pending", "dashboard q1", "q2", "q3", "q4"});
  for (int tick = 1; tick <= 10; ++tick) {
    for (int i = 0; i < 50; ++i) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      live.emplace_back(v, orders.Insert(v));
    }
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      const std::size_t pick = rng.NextBounded(live.size());
      orders.Delete(live[pick].first, live[pick].second);
      live[pick] = live.back();
      live.pop_back();
    }
    std::vector<std::string> row = {std::to_string(tick),
                                    std::to_string(orders.num_pending_inserts())};
    for (int band = 0; band < 4; ++band) {
      const std::int64_t lo = band * (kDomain / 4);
      const Pred p = Pred::HalfOpen(lo, lo + kDomain / 40);
      WallTimer t;
      const std::size_t count = orders.Count(p);
      row.push_back(FormatSeconds(t.ElapsedSeconds()));
      (void)count;
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const auto& stats = orders.update_stats();
  std::cout << "\nupdate statistics:\n"
            << "  inserts queued:   " << stats.inserts_queued << "\n"
            << "  inserts merged:   " << stats.inserts_merged << "\n"
            << "  deletes queued:   " << stats.deletes_queued << "\n"
            << "  deletes merged:   " << stats.deletes_merged << "\n"
            << "  cancelled pairs:  " << stats.deletes_cancelled << "\n"
            << "  ripple moves:     " << stats.ripple_element_moves
            << "  (vs naive shifting ~" << stats.inserts_merged * kRows / 2 << ")\n";
  std::cout << "\nEach merged insert moved ~one element per piece boundary — the\n"
               "ripple trick — instead of shifting half the array.\n";
  AIDX_CHECK(orders.Validate());
  return 0;
}
