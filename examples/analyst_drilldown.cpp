// Analyst drill-down: the workload the tutorial's introduction motivates.
//
// An analyst explores a sales table she has never indexed: she starts with
// a broad month-level question, drills into a region of interest, and
// finally projects several attributes of the interesting rows. Sideways
// cracking turns her own queries into the index — by the time she reaches
// the detailed questions, the hot key range is fully optimized while cold
// ranges were never touched.
//
// Build & run:   ./build/examples/analyst_drilldown
#include <cstdint>
#include <iostream>
#include <vector>

#include "exec/engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/report.h"

using namespace aidx;

namespace {

constexpr std::size_t kRows = 1 << 21;
constexpr std::int64_t kDays = 365;

}  // namespace

int main() {
  Database db;
  AIDX_CHECK_OK(db.CreateTable("sales"));
  Rng rng(7);
  std::vector<std::int64_t> day(kRows);
  std::vector<std::int64_t> amount(kRows);
  std::vector<std::int64_t> store(kRows);
  std::vector<std::int64_t> product(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    day[i] = static_cast<std::int64_t>(rng.NextBounded(kDays));
    amount[i] = 10 + static_cast<std::int64_t>(rng.NextBounded(990));
    store[i] = static_cast<std::int64_t>(rng.NextBounded(50));
    product[i] = static_cast<std::int64_t>(rng.NextBounded(10000));
  }
  AIDX_CHECK_OK(db.AddColumn("sales", "day", std::move(day)));
  AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(amount)));
  AIDX_CHECK_OK(db.AddColumn("sales", "store", std::move(store)));
  AIDX_CHECK_OK(db.AddColumn("sales", "product", std::move(product)));
  std::cout << "sales table: " << kRows << " rows x 4 columns, no indexes\n\n";

  using Pred = RangePredicate<std::int64_t>;
  struct Step {
    const char* question;
    Pred pred;
    std::vector<std::string> projection;
  };
  // The drill-down narrows the day range step by step; later steps widen
  // the projection — exactly where sideways cracking's aligned maps help.
  const std::vector<Step> session = {
      {"Q1  revenue dip anywhere in Q3?", Pred::HalfOpen(180, 270), {"amount"}},
      {"Q2  zoom: late August", Pred::HalfOpen(230, 245), {"amount"}},
      {"Q3  zoom: the bad week", Pred::HalfOpen(236, 243), {"amount", "store"}},
      {"Q4  same week, which products?", Pred::HalfOpen(236, 243),
       {"amount", "store", "product"}},
      {"Q5  the day itself", Pred::HalfOpen(239, 240),
       {"amount", "store", "product"}},
  };

  TablePrinter table({"step", "rows", "time", "note"});
  for (std::size_t s = 0; s < session.size(); ++s) {
    WallTimer t;
    auto res = db.SelectProject("sales", "day", session[s].pred,
                                session[s].projection);
    AIDX_CHECK(res.ok()) << res.status().ToString();
    long double revenue = 0;
    for (const auto v : res->columns[0]) revenue += v;
    const double elapsed = t.ElapsedSeconds();
    std::string note;
    if (s == 0) {
      note = "first touch: maps materialize";
    } else if (session[s].projection.size() > session[s - 1].projection.size()) {
      note = "new map catches up via crack tape";
    } else {
      note = "hot range already cracked";
    }
    table.AddRow({session[s].question, std::to_string(res->num_rows),
                  FormatSeconds(elapsed), note});
    (void)revenue;
  }
  table.Print(std::cout);

  std::cout << "\nRe-running the whole session (everything now adapted):\n";
  TablePrinter again({"step", "time"});
  for (const auto& step : session) {
    WallTimer t;
    auto res = db.SelectProject("sales", "day", step.pred, step.projection);
    AIDX_CHECK(res.ok());
    again.AddRow({step.question, FormatSeconds(t.ElapsedSeconds())});
  }
  again.Print(std::cout);
  std::cout << "\nNo DBA, no CREATE INDEX — the analyst's curiosity built "
               "exactly the index her session needed.\n";
  return 0;
}
