// A1 — Ablation: the stop-cracking piece-size threshold.
//
// Cracking pieces forever yields millions of tiny pieces and an ever-bigger
// cracker index; stopping at a threshold trades a small scan of edge pieces
// for far fewer cuts. Sweeps min_piece_size and reports totals, steady
// state, and index size.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/cracker_column.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"

using namespace aidx;

int main() {
  bench::PrintHeader("A1 ablation: minimum piece size",
                     "design-choice knob from DESIGN.md §4 (cracking maintenance)");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::cout << "N=" << n << ", Q=" << q << " random, selectivity 0.1%\n\n";
  TablePrinter table({"min piece", "first query", "steady state", "total", "pieces",
                      "index height"});
  std::uint64_t checksum = 0;
  for (const std::size_t threshold : {std::size_t{0}, std::size_t{64},
                                      std::size_t{1024}, std::size_t{65536}}) {
    std::unique_ptr<CrackerColumn<std::int64_t>> col;
    std::vector<double> seconds;
    std::uint64_t sum = 0;
    for (const auto& pred : queries) {
      WallTimer t;
      if (col == nullptr) {
        col = std::make_unique<CrackerColumn<std::int64_t>>(
            data, CrackerColumnOptions{.with_row_ids = false,
                                       .min_piece_size = threshold});
      }
      sum += col->Count(pred);
      seconds.push_back(t.ElapsedSeconds());
    }
    if (checksum == 0) {
      checksum = sum;
    } else if (sum != checksum) {
      std::cerr << "CHECKSUM MISMATCH at threshold " << threshold << "\n";
      return 1;
    }
    double total = 0;
    for (const double s : seconds) total += s;
    double tail = 0;
    const std::size_t w = std::min<std::size_t>(100, seconds.size());
    for (std::size_t i = seconds.size() - w; i < seconds.size(); ++i) tail += seconds[i];
    table.AddRow({threshold == 0 ? "always crack" : std::to_string(threshold),
                  FormatSeconds(seconds.front()), FormatSeconds(tail / w),
                  FormatSeconds(total), std::to_string(col->index().num_pieces()),
                  std::to_string(col->index().tree_height())});
  }
  table.Print(std::cout);
  return 0;
}
