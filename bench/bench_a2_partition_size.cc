// A2 — Ablation: hybrid partition (workspace) size sensitivity (PVLDB'11
// §6): sweeping the initial-partition size of HCS between N/4 and N/256.
//
// Expected shape: smaller partitions raise per-query fan-out costs early
// but each migration is cheaper; the optimum is flat in the middle —
// the knob models the external-sort workspace of adaptive merging.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("A2 ablation: hybrid partition size",
                     "PVLDB'11 workspace-size discussion (tutorial 'Hybrid' section)");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  const RunResult scan = RunWorkload(data, StrategyConfig::FullScan(), queries, "random");
  const RunResult sort = RunWorkload(data, StrategyConfig::FullSort(), queries, "random");
  const double scan_cost = scan.tail_mean(100);
  const double reference = sort.tail_mean(100);

  std::cout << "strategy HCS, N=" << n << ", Q=" << q << "\n\n";
  TablePrinter table({"partitions", "partition size", "first query", "xscan",
                      "converged@", "total"});
  for (const std::size_t parts : {std::size_t{4}, std::size_t{16}, std::size_t{64},
                                  std::size_t{256}}) {
    const std::size_t psize = n / parts;
    const RunResult run = RunWorkload(
        data, StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, psize),
        queries, "random");
    if (run.count_checksum != scan.count_checksum) {
      std::cerr << "CHECKSUM MISMATCH at " << parts << " partitions\n";
      return 1;
    }
    const BenchmarkMetrics m = ComputeMetrics(run, scan_cost, reference,
                                            {.convergence_factor = 8.0});
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f", m.first_query_overhead);
    table.AddRow({std::to_string(parts), std::to_string(psize),
                  FormatSeconds(m.first_query_seconds), overhead,
                  m.queries_to_convergence < 0
                      ? "never"
                      : std::to_string(m.queries_to_convergence + 1),
                  FormatSeconds(m.total_seconds)});
  }
  table.Print(std::cout);
  return 0;
}
