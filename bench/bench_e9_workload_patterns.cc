// E9 — Workload-pattern robustness (TPCTC'10 patterns): plain cracking vs
// stochastic cracking across all seven patterns.
//
// Expected shape: equal (within noise) on random/skewed; on sequential-ish
// patterns plain cracking degenerates (every query re-cracks the huge
// untouched suffix ⇒ per-query cost stays scan-like) while stochastic
// cracking's random pre-cracks keep convergence on track.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("E9 workload patterns: cracking vs stochastic cracking",
                     "tutorial §2 'improving convergence speed' topic / TPCTC'10 patterns");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries() / 2;
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});

  std::cout << "N=" << n << ", Q=" << q << " per pattern\n\n";
  TablePrinter table({"workload", "strategy", "first query", "tail mean", "total"});
  for (const QueryPattern pattern : kAllQueryPatterns) {
    const auto queries = GenerateQueries({.pattern = pattern,
                                          .num_queries = q,
                                          .domain = domain,
                                          .selectivity = 0.001,
                                          .seed = 13});
    std::uint64_t checksum = 0;
    for (const auto& config :
         {StrategyConfig::Crack(), StrategyConfig::StochasticCrack(1 << 14)}) {
      const RunResult run =
          RunWorkload(data, config, queries, QueryPatternName(pattern));
      if (checksum == 0) {
        checksum = run.count_checksum;
      } else if (run.count_checksum != checksum) {
        std::cerr << "CHECKSUM MISMATCH on " << QueryPatternName(pattern) << "\n";
        return 1;
      }
      table.AddRow({QueryPatternName(pattern), run.strategy,
                    FormatSeconds(run.first_query_seconds()),
                    FormatSeconds(run.tail_mean(50)),
                    FormatSeconds(run.total_seconds())});
    }
  }
  table.Print(std::cout);
  std::cout << "\nNote the 'sequential' rows: plain cracking's tail mean stays "
               "high (degenerate),\nstochastic cracking's approaches the random-"
               "pattern level.\n";
  return 0;
}
