// E9 — Workload-pattern robustness (TPCTC'10 patterns): plain cracking vs
// stochastic cracking across all seven patterns, read-only and under a
// write mix (inserts/deletes interleaved through the uniform AccessPath
// update interface).
//
// Expected shape: equal (within noise) on random/skewed; on sequential-ish
// patterns plain cracking degenerates (every query re-cracks the huge
// untouched suffix ⇒ per-query cost stays scan-like) while stochastic
// cracking's random pre-cracks keep convergence on track. Write pressure
// raises both curves smoothly (ripple merges touch only queried ranges).
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("E9 workload patterns: cracking vs stochastic cracking",
                     "tutorial §2 'improving convergence speed' topic / TPCTC'10 patterns");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries() / 2;
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});

  std::cout << "N=" << n << ", Q=" << q << " per pattern\n\n";
  TablePrinter table({"workload", "strategy", "first query", "tail mean", "total"});
  for (const QueryPattern pattern : kAllQueryPatterns) {
    const auto queries = GenerateQueries({.pattern = pattern,
                                          .num_queries = q,
                                          .domain = domain,
                                          .selectivity = 0.001,
                                          .seed = 13});
    std::uint64_t checksum = 0;
    for (const auto& config :
         {StrategyConfig::Crack(), StrategyConfig::StochasticCrack(1 << 14)}) {
      const RunResult run =
          RunWorkload(data, config, queries, QueryPatternName(pattern));
      if (checksum == 0) {
        checksum = run.count_checksum;
      } else if (run.count_checksum != checksum) {
        std::cerr << "CHECKSUM MISMATCH on " << QueryPatternName(pattern) << "\n";
        return 1;
      }
      table.AddRow({QueryPatternName(pattern), run.strategy,
                    FormatSeconds(run.first_query_seconds()),
                    FormatSeconds(run.tail_mean(50)),
                    FormatSeconds(run.total_seconds())});
    }
  }
  table.Print(std::cout);
  std::cout << "\nNote the 'sequential' rows: plain cracking's tail mean stays "
               "high (degenerate),\nstochastic cracking's approaches the random-"
               "pattern level.\n";

  // --- Update-mix axis: the same patterns with writes interleaved. ---
  std::cout << "\nupdate-mix axis (ops=" << q
            << " per cell; writes split 2:1 insert:delete):\n";
  TablePrinter mixed_table(
      {"workload", "write mix", "strategy", "tail mean", "total", "deletes hit"});
  for (const QueryPattern pattern : kAllQueryPatterns) {
    struct Mix {
      double insert;
      double remove;
      const char* label;
    };
    for (const Mix mix :
         {Mix{0.0, 0.0, "0%"}, Mix{0.02, 0.01, "3%"}, Mix{0.10, 0.05, "15%"}}) {
      const auto ops = GenerateMixedWorkload({.read = {.pattern = pattern,
                                                       .num_queries = q,
                                                       .domain = domain,
                                                       .selectivity = 0.001,
                                                       .seed = 13},
                                              .insert_fraction = mix.insert,
                                              .delete_fraction = mix.remove,
                                              .seed = 17});
      std::uint64_t checksum = 0;
      std::uint64_t deletes_applied = 0;
      bool first = true;
      for (const auto& config :
           {StrategyConfig::Crack(), StrategyConfig::StochasticCrack(1 << 14)}) {
        const RunResult run =
            RunMixedWorkload(data, config, ops, QueryPatternName(pattern));
        if (first) {
          checksum = run.count_checksum;
          deletes_applied = run.deletes_applied;
          first = false;
        } else if (run.count_checksum != checksum ||
                   run.deletes_applied != deletes_applied) {
          std::cerr << "MIXED CHECKSUM MISMATCH on " << QueryPatternName(pattern)
                    << " mix " << mix.label << "\n";
          return 1;
        }
        mixed_table.AddRow({QueryPatternName(pattern), mix.label, run.strategy,
                            FormatSeconds(run.tail_mean(50)),
                            FormatSeconds(run.total_seconds()),
                            std::to_string(run.deletes_applied)});
      }
    }
  }
  mixed_table.Print(std::cout);
  std::cout << "\nChecksums (query results and deletes that found a victim) are "
               "verified equal\nacross strategies for every cell.\n";
  return 0;
}
