// E5 — Sideways cracking for tuple reconstruction (SIGMOD'09 Figs. 8/10
// shape): select on A, project k other columns, under four strategies:
//   sideways    cracker maps, tails travel with the head (this paper);
//   late-mat    crack one column with row ids, gather each tail (random
//               access per row — the non-clustered baseline);
//   presorted   offline: argsort A once, permute every column (clustered
//               baseline; first query pays the full reorganization);
//   scan        no index, filter + collect per query.
//
// Expected shape: sideways converges to presorted-like per-query cost
// without the presorted first-query spike, and beats late-mat increasingly
// as the projection widens.
#include <iostream>
#include <memory>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "core/cracker_column.h"
#include "exec/operators.h"
#include "index/sorted_index.h"
#include "sideways/sideways.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"

using namespace aidx;

namespace {

using Pred = RangePredicate<std::int64_t>;

struct Timings {
  double first = 0;
  double total = 0;
  double tail = 0;  // mean of last 100 queries
  std::uint64_t checksum = 0;
};

Timings Summarize(const std::vector<double>& seconds, std::uint64_t checksum) {
  Timings t;
  t.checksum = checksum;
  t.first = seconds.empty() ? 0 : seconds.front();
  for (const double s : seconds) t.total += s;
  const std::size_t w = std::min<std::size_t>(100, seconds.size());
  for (std::size_t i = seconds.size() - w; i < seconds.size(); ++i) {
    t.tail += seconds[i];
  }
  t.tail /= static_cast<double>(w);
  return t;
}

}  // namespace

int main() {
  bench::PrintHeader("E5 sideways cracking: multi-column select-project",
                     "tutorial §2 'Sideways Cracking' / SIGMOD'09 reconstruction figures");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries() / 2;
  const auto domain = static_cast<std::int64_t>(n);
  constexpr std::size_t kMaxTails = 8;

  const auto head = GenerateData({.n = n, .domain = domain, .seed = 7});
  std::vector<std::vector<std::int64_t>> tails(kMaxTails);
  for (std::size_t t = 0; t < kMaxTails; ++t) {
    tails[t] = GenerateData({.n = n, .domain = domain, .seed = 100 + t});
  }
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::cout << "N=" << n << ", Q=" << q << ", selectivity 0.1%, SUM over each "
            << "projected column\n";
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<std::string> proj;
    for (std::size_t t = 0; t < k; ++t) proj.push_back("t" + std::to_string(t));

    // --- sideways ---
    Timings sideways;
    {
      std::vector<double> seconds;
      std::uint64_t checksum = 0;
      std::unique_ptr<SidewaysCracker<std::int64_t>> cracker;
      for (const auto& pred : queries) {
        WallTimer timer;
        if (cracker == nullptr) {
          cracker = std::make_unique<SidewaysCracker<std::int64_t>>(head);
          for (std::size_t t = 0; t < kMaxTails; ++t) {
            AIDX_CHECK_OK(cracker->AddTailColumn("t" + std::to_string(t), tails[t]));
          }
        }
        long double sum = 0;
        auto res = cracker->SelectProject(pred, proj);
        AIDX_CHECK(res.ok()) << res.status().ToString();
        for (const auto& col : res->columns) {
          for (const auto v : col) sum += v;
        }
        seconds.push_back(timer.ElapsedSeconds());
        checksum += static_cast<std::uint64_t>(sum);
      }
      sideways = Summarize(seconds, checksum);
    }

    // --- late materialization (crack + gather) ---
    Timings late;
    {
      std::vector<double> seconds;
      std::uint64_t checksum = 0;
      std::unique_ptr<CrackerColumn<std::int64_t>> col;
      for (const auto& pred : queries) {
        WallTimer timer;
        if (col == nullptr) {
          col = std::make_unique<CrackerColumn<std::int64_t>>(
              head, CrackerColumnOptions{.with_row_ids = true});
        }
        const CrackSelect sel = col->Select(pred);
        std::vector<row_id_t> rids;
        col->MaterializeRowIds(sel, pred, &rids);
        long double sum = 0;
        for (std::size_t t = 0; t < k; ++t) {
          sum += GatherSum<std::int64_t>(tails[t], rids);
        }
        seconds.push_back(timer.ElapsedSeconds());
        checksum += static_cast<std::uint64_t>(sum);
      }
      late = Summarize(seconds, checksum);
    }

    // --- presorted clustered (offline) ---
    Timings presorted;
    {
      std::vector<double> seconds;
      std::uint64_t checksum = 0;
      std::unique_ptr<FullSortIndex<std::int64_t>> index;
      std::vector<std::vector<std::int64_t>> clustered;
      for (const auto& pred : queries) {
        WallTimer timer;
        if (index == nullptr) {
          index = std::make_unique<FullSortIndex<std::int64_t>>(
              head, typename FullSortIndex<std::int64_t>::Options{.with_row_ids = true});
          clustered.reserve(kMaxTails);
          for (std::size_t t = 0; t < kMaxTails; ++t) {
            clustered.push_back(
                ApplyPermutation<std::int64_t>(tails[t], index->row_ids()));
          }
        }
        const PositionRange r = index->SelectRange(pred);
        long double sum = 0;
        for (std::size_t t = 0; t < k; ++t) {
          sum += std::accumulate(clustered[t].begin() + static_cast<std::ptrdiff_t>(r.begin),
                                 clustered[t].begin() + static_cast<std::ptrdiff_t>(r.end),
                                 0.0L);
        }
        seconds.push_back(timer.ElapsedSeconds());
        checksum += static_cast<std::uint64_t>(sum);
      }
      presorted = Summarize(seconds, checksum);
    }

    // --- scan ---
    Timings scan;
    {
      std::vector<double> seconds;
      std::uint64_t checksum = 0;
      for (const auto& pred : queries) {
        WallTimer timer;
        long double sum = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
          if (pred.Matches(head[i])) {
            for (std::size_t t = 0; t < k; ++t) sum += tails[t][i];
          }
        }
        seconds.push_back(timer.ElapsedSeconds());
        checksum += static_cast<std::uint64_t>(sum);
      }
      scan = Summarize(seconds, checksum);
    }

    AIDX_CHECK(sideways.checksum == late.checksum &&
               late.checksum == presorted.checksum && presorted.checksum == scan.checksum)
        << "projection checksums diverged at k=" << k;

    std::cout << "\nproject " << k << " column(s):\n";
    TablePrinter table({"strategy", "first query", "steady state", "total"});
    table.AddRow({"sideways", FormatSeconds(sideways.first),
                  FormatSeconds(sideways.tail), FormatSeconds(sideways.total)});
    table.AddRow({"late-mat", FormatSeconds(late.first), FormatSeconds(late.tail),
                  FormatSeconds(late.total)});
    table.AddRow({"presorted", FormatSeconds(presorted.first),
                  FormatSeconds(presorted.tail), FormatSeconds(presorted.total)});
    table.AddRow({"scan", FormatSeconds(scan.first), FormatSeconds(scan.tail),
                  FormatSeconds(scan.total)});
    table.Print(std::cout);
  }
  return 0;
}
