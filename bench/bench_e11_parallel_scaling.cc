// E11 — Parallel adaptive indexing: throughput scaling of the partitioned
// cracker column (Alvarez et al., "Main Memory Adaptive Indexing for
// Multi-core Systems" shape) over concurrent query streams.
//
// Four sweeps. The first two run against the single-threaded crack
// baseline and the coarse-latched crack (SerializedAccessPath — the "one
// big lock" lower bound any real concurrency scheme must beat):
//   1. queries/sec vs client thread count (1, 2, 4, 8) at 8 partitions;
//   2. queries/sec vs partition count (1, 2, 4, 8, 16) at 4 client threads.
// The latch-mode axis (docs/CONCURRENCY.md §4) then measures striped piece
// latching against the partition-mutex fallback on the workload partition
// latching cannot help with — every query inside ONE partition:
//   3. queries/sec vs client threads for both latch modes on a
//      same-partition-skewed stream (plus a `headline` JSON row with the
//      striped/mutex ratio at 8 threads);
//   4. queries/sec vs stripe-table size (1, 4, 16, 64) at 8 threads.
//
// Each configuration gets a fresh path, so adaptation (including the
// first-query copy/scatter) is inside the measured window. Checksums are
// compared across configurations, so a silent wrong answer fails loudly.
// Note: scaling requires physical cores; on a 1-core host the partitioned
// column should roughly tie the coarse latch, not beat it — though the
// striped mode's shared-latch read path keeps an edge even there, because
// converged same-partition readers stop serializing at all.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/access_path.h"
#include "exec/serialized_path.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

constexpr std::size_t kMaxThreads = 8;

using Queries = std::vector<RangePredicate<std::int64_t>>;

// One shared path, `threads` clients, disjoint query streams; returns
// throughput and accumulates the result-count checksum.
bench::ThroughputResult RunConcurrent(AccessPath<std::int64_t>& path,
                                      const std::vector<Queries>& streams,
                                      std::size_t threads,
                                      std::size_t queries_per_thread,
                                      std::uint64_t* checksum) {
  std::atomic<std::uint64_t> counted{0};
  const auto result = bench::MeasureThroughput(
      threads, queries_per_thread, [&](std::size_t t, std::size_t q) {
        counted.fetch_add(path.Count(streams[t][q]), std::memory_order_relaxed);
      });
  *checksum = counted.load();
  return result;
}

// Mixed read/write streams for sweep 5: thread t runs `ops_per_thread`
// operations of which `write_pct`% (evenly spread) are writes landing
// *inside* the queried domain — alternating insert-new / delete-oldest
// (FIFO per thread), so pending accumulates between merges and reads
// genuinely contend with the update pipeline: the striped path answers
// them from the write buckets (overlay) and absorbs batches in
// background merges, while the partition mutex merges in the query
// path. Insert values are spread over the domain by a multiplicative
// scramble; threads may collide on a value, but each thread deletes
// only values it inserted earlier, so every delete still claims a live
// tuple. Read counts race the writers and are interleaving-dependent,
// so exactness is asserted on the final live tuple count instead,
// which only depends on the issued op mix.
bench::ThroughputResult RunWriteMix(AccessPath<std::int64_t>& path,
                                    const std::vector<Queries>& streams,
                                    std::size_t threads,
                                    std::size_t ops_per_thread,
                                    std::size_t write_pct,
                                    std::size_t base_rows,
                                    std::int64_t domain) {
  struct WriterState {
    std::vector<std::int64_t> inserted;
    std::size_t oldest = 0;  // next FIFO delete victim
    std::size_t write_ops = 0;
  };
  std::vector<WriterState> writers(threads);
  std::atomic<std::uint64_t> counted{0};
  const auto result = bench::MeasureThroughput(
      threads, ops_per_thread, [&](std::size_t t, std::size_t q) {
        const bool is_write =
            write_pct > 0 && (q * write_pct) % 100 < write_pct;
        if (is_write) {
          WriterState& w = writers[t];
          const bool do_delete =
              (w.write_ops++ % 2) == 1 && w.oldest < w.inserted.size();
          if (do_delete) {
            path.Delete(w.inserted[w.oldest++]);
          } else {
            const auto raw = static_cast<std::uint64_t>(
                w.inserted.size() * kMaxThreads + t);
            const auto value = static_cast<std::int64_t>(
                (raw * 0x9E3779B97F4A7C15ull) %
                static_cast<std::uint64_t>(domain));
            path.Insert(value);
            w.inserted.push_back(value);
          }
        } else {
          counted.fetch_add(path.Count(streams[t][q]),
                            std::memory_order_relaxed);
        }
      });
  std::size_t expected = base_rows;
  for (const WriterState& w : writers) {
    expected += w.inserted.size() - w.oldest;
  }
  const std::size_t live = path.Count(RangePredicate<std::int64_t>::All());
  if (live != expected) {
    std::cerr << "WRITE-MIX EXACTNESS FAILURE: live " << live << " expected "
              << expected << "\n";
    std::exit(1);
  }
  return result;
}

// Multi-column write-mix for sweep 6: the three columns of one logical
// table modeled as three paths of the same config; a write applies one
// row to all three (value v, v+M, v+2M — the row-atomic Database pattern
// at access-path granularity), a read counts on one column. Writes
// triple-touch the latches, so column-level contention grows with the
// write share. Exactness is asserted on each column's final live count,
// which must equal base + the issued insert/delete balance.
bench::ThroughputResult RunMulticolWriteMix(
    std::array<AccessPath<std::int64_t>*, 3> paths,
    const std::vector<Queries>& streams, std::size_t threads,
    std::size_t ops_per_thread, std::size_t write_pct, std::size_t base_rows,
    std::int64_t domain) {
  struct WriterState {
    std::vector<std::int64_t> inserted;
    std::size_t oldest = 0;
    std::size_t write_ops = 0;
  };
  const std::int64_t column_offset = domain;  // M: shifts rows per column
  std::vector<WriterState> writers(threads);
  std::atomic<std::uint64_t> counted{0};
  const auto result = bench::MeasureThroughput(
      threads, ops_per_thread, [&](std::size_t t, std::size_t q) {
        const bool is_write =
            write_pct > 0 && (q * write_pct) % 100 < write_pct;
        if (is_write) {
          WriterState& w = writers[t];
          const bool do_delete =
              (w.write_ops++ % 2) == 1 && w.oldest < w.inserted.size();
          if (do_delete) {
            const std::int64_t v = w.inserted[w.oldest++];
            for (std::size_t c = 0; c < 3; ++c) {
              paths[c]->Delete(v + static_cast<std::int64_t>(c) * column_offset);
            }
          } else {
            const auto raw = static_cast<std::uint64_t>(
                w.inserted.size() * kMaxThreads + t);
            const auto v = static_cast<std::int64_t>(
                (raw * 0x9E3779B97F4A7C15ull) %
                static_cast<std::uint64_t>(domain));
            for (std::size_t c = 0; c < 3; ++c) {
              paths[c]->Insert(v + static_cast<std::int64_t>(c) * column_offset);
            }
            w.inserted.push_back(v);
          }
        } else {
          counted.fetch_add(paths[q % 3]->Count(streams[t][q]),
                            std::memory_order_relaxed);
        }
      });
  std::size_t expected = base_rows;
  for (const WriterState& w : writers) {
    expected += w.inserted.size() - w.oldest;
  }
  for (std::size_t c = 0; c < 3; ++c) {
    const std::size_t live =
        paths[c]->Count(RangePredicate<std::int64_t>::All());
    if (live != expected) {
      std::cerr << "MULTICOL WRITE-MIX EXACTNESS FAILURE: column " << c
                << " live " << live << " expected " << expected << "\n";
      std::exit(1);
    }
  }
  return result;
}

std::string Format2(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", x);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("e11_parallel_scaling", argc, argv);
  bench::PrintHeader("E11 parallel scaling",
                     "multi-core adaptive indexing (Alvarez et al. / Graefe "
                     "et al. follow-ups to the tutorial)");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const std::size_t queries_per_thread = std::max<std::size_t>(q / kMaxThreads, 1);
  std::cout << "column: " << n << " uniform int64, " << queries_per_thread
            << " random queries per client thread, selectivity 0.1%\n"
            << "hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .distribution = DataDistribution::kUniform,
                                  .seed = 7});
  std::vector<Queries> streams;
  streams.reserve(kMaxThreads);
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    streams.push_back(GenerateQueries({.pattern = QueryPattern::kRandom,
                                       .num_queries = queries_per_thread,
                                       .domain = static_cast<std::int64_t>(n),
                                       .selectivity = 0.001,
                                       .seed = 100 + t}));
  }

  // Single-threaded crack reference: one client, no latches at all.
  std::uint64_t base_checksum = 0;
  const auto single_path =
      MakeAccessPath<std::int64_t>(data, StrategyConfig::Crack());
  const auto single = RunConcurrent(*single_path, streams, 1, queries_per_thread,
                                    &base_checksum);
  std::cout << "single-threaded crack: "
            << static_cast<std::size_t>(single.QueriesPerSecond())
            << " queries/sec (1 thread, " << queries_per_thread << " queries)\n\n";

  std::vector<std::vector<std::string>> csv_rows;

  // Sweep 1: client threads at a fixed 8 partitions.
  std::cout << "throughput vs client threads (8 partitions):\n";
  TablePrinter by_threads(
      {"threads", "pcrack q/s", "crack+latch q/s", "pcrack/latch"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::uint64_t parallel_sum = 0;
    const auto parallel_path = MakeAccessPath<std::int64_t>(
        data, StrategyConfig::ParallelCrack(8, /*threads=*/1));
    const auto parallel = RunConcurrent(*parallel_path, streams, threads,
                                        queries_per_thread, &parallel_sum);

    std::uint64_t latched_sum = 0;
    const auto latched_path =
        MakeSerializedAccessPath<std::int64_t>(data, StrategyConfig::Crack());
    const auto latched = RunConcurrent(*latched_path, streams, threads,
                                       queries_per_thread, &latched_sum);

    if (parallel_sum != latched_sum) {
      std::cerr << "CHECKSUM MISMATCH at " << threads << " threads: pcrack "
                << parallel_sum << " vs latched " << latched_sum << "\n";
      return 1;
    }
    // At one thread the query set equals the baseline's, so the sweep is
    // also anchored to the latch-free single-threaded truth.
    if (threads == 1 && parallel_sum != base_checksum) {
      std::cerr << "CHECKSUM MISMATCH vs single-threaded crack baseline\n";
      return 1;
    }
    by_threads.AddRow(
        {std::to_string(threads),
         std::to_string(static_cast<std::size_t>(parallel.QueriesPerSecond())),
         std::to_string(static_cast<std::size_t>(latched.QueriesPerSecond())),
         Format2(parallel.QueriesPerSecond() / latched.QueriesPerSecond()) +
             "x"});
    csv_rows.push_back({"threads", std::to_string(threads),
                        std::to_string(parallel.QueriesPerSecond()),
                        std::to_string(latched.QueriesPerSecond())});
    json.AddRow("threads_sweep")
        .Set("threads", std::size_t{threads})
        .Set("partitions", std::size_t{8})
        .Set("pcrack_qps", parallel.QueriesPerSecond())
        .Set("latched_qps", latched.QueriesPerSecond());
  }
  by_threads.Print(std::cout);

  // Sweep 2: partition count at a fixed 4 client threads.
  std::cout << "\nthroughput vs partitions (4 client threads):\n";
  TablePrinter by_partitions({"partitions", "pcrack q/s"});
  std::uint64_t expected_sum = 0;
  bool have_expected = false;
  for (const std::size_t partitions : {1u, 2u, 4u, 8u, 16u}) {
    std::uint64_t sum = 0;
    const auto path = MakeAccessPath<std::int64_t>(
        data, StrategyConfig::ParallelCrack(partitions, /*threads=*/1));
    const auto result =
        RunConcurrent(*path, streams, 4, queries_per_thread, &sum);
    if (!have_expected) {
      expected_sum = sum;
      have_expected = true;
    } else if (sum != expected_sum) {
      std::cerr << "CHECKSUM MISMATCH at " << partitions << " partitions\n";
      return 1;
    }
    by_partitions.AddRow(
        {std::to_string(partitions),
         std::to_string(static_cast<std::size_t>(result.QueriesPerSecond()))});
    csv_rows.push_back({"partitions", std::to_string(partitions),
                        std::to_string(result.QueriesPerSecond()), ""});
    json.AddRow("partitions_sweep")
        .Set("partitions", std::size_t{partitions})
        .Set("threads", std::size_t{4})
        .Set("pcrack_qps", result.QueriesPerSecond());
  }
  by_partitions.Print(std::cout);

  // Sweep 3: the latch-mode axis. Every query lands in partition 0 (query
  // lows confined to the bottom tenth of the domain, well inside the first
  // equi-depth splitter at ~n/8), so partition-granularity latching
  // serializes the whole stream and any scaling must come from piece
  // granularity. Checksums are pinned across modes per thread count.
  std::cout << "\nthroughput vs latch mode (8 partitions, same-partition-"
               "skewed stream):\n";
  std::vector<Queries> skewed;
  skewed.reserve(kMaxThreads);
  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    skewed.push_back(GenerateQueries({.pattern = QueryPattern::kRandom,
                                      .num_queries = queries_per_thread,
                                      .domain = static_cast<std::int64_t>(n / 10),
                                      .selectivity = 0.005,
                                      .seed = 300 + t}));
  }
  TablePrinter by_mode(
      {"threads", "striped q/s", "mutex q/s", "striped/mutex"});
  double striped_qps_8t = 0;
  double mutex_qps_8t = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::uint64_t striped_sum = 0;
    const auto striped_path = MakeAccessPath<std::int64_t>(
        data, StrategyConfig::ParallelCrack(8, /*threads=*/1,
                                            LatchMode::kStripedPiece));
    const auto striped = RunConcurrent(*striped_path, skewed, threads,
                                       queries_per_thread, &striped_sum);

    std::uint64_t mutex_sum = 0;
    const auto mutex_path = MakeAccessPath<std::int64_t>(
        data, StrategyConfig::ParallelCrack(8, /*threads=*/1,
                                            LatchMode::kPartitionMutex));
    const auto mutexed = RunConcurrent(*mutex_path, skewed, threads,
                                       queries_per_thread, &mutex_sum);

    if (striped_sum != mutex_sum) {
      std::cerr << "CHECKSUM MISMATCH at " << threads
                << " threads (latch sweep): striped " << striped_sum
                << " vs mutex " << mutex_sum << "\n";
      return 1;
    }
    if (threads == 8) {
      striped_qps_8t = striped.QueriesPerSecond();
      mutex_qps_8t = mutexed.QueriesPerSecond();
    }
    by_mode.AddRow(
        {std::to_string(threads),
         std::to_string(static_cast<std::size_t>(striped.QueriesPerSecond())),
         std::to_string(static_cast<std::size_t>(mutexed.QueriesPerSecond())),
         Format2(striped.QueriesPerSecond() / mutexed.QueriesPerSecond()) +
             "x"});
    csv_rows.push_back({"latch", std::to_string(threads),
                        std::to_string(striped.QueriesPerSecond()),
                        std::to_string(mutexed.QueriesPerSecond())});
    // `stripes` records the effective latch-table size of the measured
    // configuration: the striped default (16), or 1 for the partition
    // mutex (whole-partition exclusion — no stripe table exists).
    struct LatchRow {
      const char* mode;
      std::size_t stripes;
      double qps;
    };
    for (const LatchRow& row :
         {LatchRow{"striped", 16, striped.QueriesPerSecond()},
          LatchRow{"partition-mutex", 1, mutexed.QueriesPerSecond()}}) {
      json.AddRow("latch_sweep")
          .Set("latch_mode", row.mode)
          .Set("threads", std::size_t{threads})
          .Set("partitions", std::size_t{8})
          .Set("stripes", row.stripes)
          .Set("qps", row.qps);
    }
  }
  by_mode.Print(std::cout);

  // Sweep 4: stripe-table size under the same skewed stream at 8 threads.
  // One stripe = total collision (every piece shares a latch); 64 = the
  // table's ceiling.
  std::cout << "\nthroughput vs stripe count (striped, 8 threads, skewed):\n";
  TablePrinter by_stripes({"stripes", "q/s"});
  std::uint64_t stripes_expected = 0;
  bool have_stripes_expected = false;
  for (const std::size_t stripes : {1u, 4u, 16u, 64u}) {
    std::uint64_t sum = 0;
    const auto path = MakeAccessPath<std::int64_t>(
        data, StrategyConfig::ParallelCrack(8, /*threads=*/1,
                                            LatchMode::kStripedPiece, stripes));
    const auto result = RunConcurrent(*path, skewed, 8, queries_per_thread, &sum);
    if (!have_stripes_expected) {
      stripes_expected = sum;
      have_stripes_expected = true;
    } else if (sum != stripes_expected) {
      std::cerr << "CHECKSUM MISMATCH at " << stripes << " stripes\n";
      return 1;
    }
    by_stripes.AddRow(
        {std::to_string(stripes),
         std::to_string(static_cast<std::size_t>(result.QueriesPerSecond()))});
    json.AddRow("stripes_sweep")
        .Set("stripes", std::size_t{stripes})
        .Set("threads", std::size_t{8})
        .Set("partitions", std::size_t{8})
        .Set("qps", result.QueriesPerSecond());
  }
  by_stripes.Print(std::cout);

  // Sweep 5: the write-mix axis (docs/CONCURRENCY.md §4, write half).
  // Same skewed read stream, but a fraction of each thread's operations
  // become inserts/deletes spread across the queried value range itself,
  // so reads genuinely contend with the update pipeline. Under
  // kPartitionMutex every overlapping read merges pending updates in the
  // query path (and every read rescans the pending stores); the striped
  // write path parks writes in the per-shard buckets, answers overlapping
  // reads from the overlay, and absorbs batches in background merges on
  // the shared pool once the buffered count crosses the threshold.
  // Exactness is asserted per run on the final live tuple count, which is
  // interleaving-free (see RunWriteMix).
  std::cout << "\nthroughput vs write mix (striped-write vs partition-mutex, "
               "8 partitions, skewed):\n";
  TablePrinter by_mix(
      {"write%", "threads", "striped-w ops/s", "mutex ops/s", "ratio"});
  double write_mix_min_ratio_20 = 0;
  auto striped_mix_config = StrategyConfig::ParallelCrack(8, /*threads=*/2);
  striped_mix_config.background_merge_threshold = 64;
  const auto mutex_mix_config = StrategyConfig::ParallelCrack(
      8, /*threads=*/2, LatchMode::kPartitionMutex);
  for (const std::size_t write_pct : {0u, 5u, 20u}) {
    for (const std::size_t threads : {2u, 4u, 8u}) {
      double cell_qps[2] = {0, 0};
      double ratio = 0;
      // Five repetitions per cell, each running the two modes back-to-back
      // so the pair shares one scheduler/noise environment: the per-pair
      // quotient cancels runner drift that a cross-pair ratio would keep.
      // The cell reports each mode's best throughput and the best paired
      // ratio.
      for (int rep = 0; rep < 5; ++rep) {
        double rep_qps[2] = {0, 0};
        for (int mode = 0; mode < 2; ++mode) {
          const auto& config = mode == 0 ? striped_mix_config : mutex_mix_config;
          const auto path = MakeAccessPath<std::int64_t>(data, config);
          const auto result = RunWriteMix(
              *path, skewed, threads, queries_per_thread, write_pct, n,
              static_cast<std::int64_t>(n / 10));
          rep_qps[mode] = result.QueriesPerSecond();
          cell_qps[mode] = std::max(cell_qps[mode], rep_qps[mode]);
        }
        if (rep_qps[1] > 0) {
          ratio = std::max(ratio, rep_qps[0] / rep_qps[1]);
        }
      }
      if (write_pct == 20 &&
          (write_mix_min_ratio_20 == 0 || ratio < write_mix_min_ratio_20)) {
        write_mix_min_ratio_20 = ratio;
      }
      by_mix.AddRow({std::to_string(write_pct), std::to_string(threads),
                     std::to_string(static_cast<std::size_t>(cell_qps[0])),
                     std::to_string(static_cast<std::size_t>(cell_qps[1])),
                     Format2(ratio) + "x"});
      csv_rows.push_back({"write_mix_" + std::to_string(write_pct),
                          std::to_string(threads),
                          std::to_string(cell_qps[0]),
                          std::to_string(cell_qps[1])});
      for (int mode = 0; mode < 2; ++mode) {
        json.AddRow("write_mix_sweep")
            .Set("write_pct", write_pct)
            .Set("threads", threads)
            .Set("partitions", std::size_t{8})
            .Set("write_mode", mode == 0 ? "striped-write" : "partition-mutex")
            .Set("ops_per_s", cell_qps[mode]);
      }
    }
  }
  by_mix.Print(std::cout);

  // Sweep 6: the multi-column write-mix axis. Three same-config paths
  // stand in for a 3-column table's columns; every write triple-touches
  // them (the row-atomic Database pattern), so write contention is 3x
  // sweep 5's per operation. 20% writes, striped-write vs partition-mutex,
  // and the headline records the worst striped/mutex ratio over the
  // thread sweep.
  std::cout << "\nthroughput vs threads, multi-column write mix "
               "(3 columns, 20% writes, 8 partitions, skewed):\n";
  TablePrinter by_multicol(
      {"threads", "striped-w ops/s", "mutex ops/s", "ratio"});
  double multicol_min_ratio = 0;
  for (const std::size_t threads : {2u, 8u}) {
    double cell_qps[2] = {0, 0};
    double ratio = 0;
    for (int rep = 0; rep < 5; ++rep) {
      double rep_qps[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        const auto& config = mode == 0 ? striped_mix_config : mutex_mix_config;
        std::array<std::unique_ptr<AccessPath<std::int64_t>>, 3> columns = {
            MakeAccessPath<std::int64_t>(data, config),
            MakeAccessPath<std::int64_t>(data, config),
            MakeAccessPath<std::int64_t>(data, config)};
        const auto result = RunMulticolWriteMix(
            {columns[0].get(), columns[1].get(), columns[2].get()}, skewed,
            threads, queries_per_thread, /*write_pct=*/20, n,
            static_cast<std::int64_t>(n));
        rep_qps[mode] = result.QueriesPerSecond();
        cell_qps[mode] = std::max(cell_qps[mode], rep_qps[mode]);
      }
      if (rep_qps[1] > 0) ratio = std::max(ratio, rep_qps[0] / rep_qps[1]);
    }
    if (multicol_min_ratio == 0 || ratio < multicol_min_ratio) {
      multicol_min_ratio = ratio;
    }
    by_multicol.AddRow({std::to_string(threads),
                        std::to_string(static_cast<std::size_t>(cell_qps[0])),
                        std::to_string(static_cast<std::size_t>(cell_qps[1])),
                        Format2(ratio) + "x"});
    csv_rows.push_back({"multicol_write_mix", std::to_string(threads),
                        std::to_string(cell_qps[0]),
                        std::to_string(cell_qps[1])});
    for (int mode = 0; mode < 2; ++mode) {
      json.AddRow("multicol_write_mix")
          .Set("write_pct", std::size_t{20})
          .Set("columns", std::size_t{3})
          .Set("threads", threads)
          .Set("partitions", std::size_t{8})
          .Set("write_mode", mode == 0 ? "striped-write" : "partition-mutex")
          .Set("ops_per_s", cell_qps[mode]);
    }
  }
  by_multicol.Print(std::cout);

  // The recorded headline the CI gate (scripts/compare_bench.py) checks
  // for presence and shape: striped vs partition-mutex concurrent-select
  // throughput at 8 client threads on the same-partition-skewed stream.
  const double latch_ratio =
      mutex_qps_8t > 0 ? striped_qps_8t / mutex_qps_8t : 0;
  json.AddRow("headline")
      .Set("metric", "same_partition_skew_8_threads")
      .Set("threads", std::size_t{8})
      .Set("partitions", std::size_t{8})
      .Set("striped_qps", striped_qps_8t)
      .Set("mutex_qps", mutex_qps_8t)
      .Set("striped_vs_mutex", latch_ratio)
      .Set("striped_at_least_mutex", latch_ratio >= 1.0);
  std::cout << "\nheadline: striped/mutex throughput at 8 threads (skewed) = "
            << Format2(latch_ratio) << "x\n";

  // Second headline: the write-mix axis at 20% writes — the worst measured
  // striped-write/mutex ratio across the thread sweep must stay >= 1.
  json.AddRow("headline")
      .Set("metric", "write_mix_20pct")
      .Set("write_pct", std::size_t{20})
      .Set("striped_write_min_ratio", write_mix_min_ratio_20)
      .Set("striped_write_at_least_mutex", write_mix_min_ratio_20 >= 1.0);
  std::cout << "headline: worst striped-write/mutex ratio at 20% writes = "
            << Format2(write_mix_min_ratio_20) << "x\n";

  // Third headline: the multi-column axis — worst striped-write/mutex
  // ratio when every write fans out to all three columns.
  json.AddRow("headline")
      .Set("metric", "multicol_write_mix")
      .Set("write_pct", std::size_t{20})
      .Set("columns", std::size_t{3})
      .Set("multicol_min_ratio", multicol_min_ratio)
      .Set("multicol_at_least_mutex", multicol_min_ratio >= 1.0);
  std::cout << "headline: worst multi-column striped-write/mutex ratio = "
            << Format2(multicol_min_ratio) << "x\n";

  const std::string csv = bench::CsvPath("e11_parallel_scaling.csv");
  if (!csv.empty()) {
    const Status st =
        WriteCsv(csv, {"sweep", "x", "pcrack_qps", "latched_qps"}, csv_rows);
    if (st.ok()) std::cout << "\nseries written to " << csv << "\n";
  }
  json.Write();
  return 0;
}
