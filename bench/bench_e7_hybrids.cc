// E7 — The hybrid family (PVLDB'11 Figs. 9-11 shape): HCC, HCS, HCR, HSS,
// HSR, HRR against pure cracking and adaptive merging.
//
// Expected shape: HCC tracks cracking with better convergence (data moves
// into range-clustered final segments); HCS/HCR buy near-merge convergence
// at a fraction of merge's first-query cost; HSS tracks adaptive merging.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("E7 hybrid adaptive indexing",
                     "tutorial §2 'Hybrid Adaptive Indexing Algorithms' / PVLDB'11 figures");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const std::size_t part = n / 16;
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::vector<StrategyConfig> configs = {
      StrategyConfig::Crack(),
      StrategyConfig::AdaptiveMerge(part),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kCrack, part),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, part),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kRadix, part),
      StrategyConfig::Hybrid(OrganizeMode::kSort, OrganizeMode::kSort, part),
      StrategyConfig::Hybrid(OrganizeMode::kSort, OrganizeMode::kRadix, part),
      StrategyConfig::Hybrid(OrganizeMode::kRadix, OrganizeMode::kRadix, part),
  };
  std::vector<RunResult> runs;
  for (const auto& config : configs) {
    runs.push_back(RunWorkload(data, config, queries, "random"));
  }
  for (const auto& run : runs) {
    if (run.count_checksum != runs.front().count_checksum) {
      std::cerr << "CHECKSUM MISMATCH: " << run.strategy << "\n";
      return 1;
    }
  }

  std::cout << "partition/run size = N/16 = " << part << "\n\n";
  PrintSeriesComparison(std::cout, runs, bench::CsvPath("e7_series.csv"));

  // Scan/sort references for the metrics (computed on the same workload).
  const RunResult scan = RunWorkload(data, StrategyConfig::FullScan(), queries, "random");
  const RunResult sort = RunWorkload(data, StrategyConfig::FullSort(), queries, "random");
  const double scan_cost = scan.tail_mean(100);
  const double reference = sort.tail_mean(100);

  std::cout << "\nfirst-query cost vs convergence (the hybrid trade-off):\n";
  TablePrinter table({"strategy", "first query", "xscan", "converged@",
                      "cumavg@100", "total"});
  for (const auto& run : runs) {
    const BenchmarkMetrics m = ComputeMetrics(run, scan_cost, reference,
                                            {.convergence_factor = 8.0});
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f", m.first_query_overhead);
    table.AddRow({run.strategy, FormatSeconds(m.first_query_seconds), overhead,
                  m.queries_to_convergence < 0
                      ? "never"
                      : std::to_string(m.queries_to_convergence + 1),
                  FormatSeconds(run.cumulative_average(std::min<std::size_t>(99, q - 1))),
                  FormatSeconds(m.total_seconds)});
  }
  table.Print(std::cout);
  return 0;
}
