// E6 — Adaptive merging vs database cracking (EDBT'10 Fig. 6 shape):
// per-query response and convergence for the lazy (crack) and active
// (merge) ends of the adaptive-indexing spectrum, with scan and full sort
// as the brackets.
//
// Expected shape: merge pays a first query several × scan (run generation)
// but reaches index-speed in tens of queries; cracking starts cheaper and
// needs orders of magnitude more queries to converge.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("E6 adaptive merging vs cracking",
                     "tutorial §2 'Adaptive Merging' / EDBT'10 convergence figure");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::vector<RunResult> runs;
  for (const auto& config :
       {StrategyConfig::FullScan(), StrategyConfig::FullSort(), StrategyConfig::Crack(),
        StrategyConfig::AdaptiveMerge(n / 16)}) {
    runs.push_back(RunWorkload(data, config, queries, "random"));
  }
  for (const auto& run : runs) {
    if (run.count_checksum != runs.front().count_checksum) {
      std::cerr << "CHECKSUM MISMATCH: " << run.strategy << "\n";
      return 1;
    }
  }

  std::cout << "run size = N/16 = " << n / 16 << " values\n\n";
  PrintSeriesComparison(std::cout, runs, bench::CsvPath("e6_series.csv"));

  // Convergence metrics against the full-sort steady state.
  const double scan_cost = runs[0].tail_mean(100);
  const double reference = runs[1].tail_mean(100);
  std::cout << "\nTPCTC metrics (reference = sort steady state "
            << FormatSeconds(reference) << "):\n";
  TablePrinter table({"strategy", "first query", "xscan", "converged@", "total"});
  for (const auto& run : runs) {
    const BenchmarkMetrics m = ComputeMetrics(run, scan_cost, reference,
                                            {.convergence_factor = 8.0});
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "%.1f", m.first_query_overhead);
    table.AddRow({run.strategy, FormatSeconds(m.first_query_seconds), overhead,
                  m.queries_to_convergence < 0
                      ? "never"
                      : std::to_string(m.queries_to_convergence + 1),
                  FormatSeconds(m.total_seconds)});
  }
  table.Print(std::cout);
  return 0;
}
