// E4 — Cracking under updates (SIGMOD'07 Figs. 7/9 shape): per-query cost
// with interleaved inserts under the three merge policies, plus an update
// frequency / batch-size sweep. Runs through the uniform AccessPath
// interface — the exact code path Database DML users hit — with the merge
// policy selected via StrategyConfig::merge_policy.
//
// Expected shape: MRI (ripple) stays low and smooth; MCI (complete) spikes
// on the first query after each batch; MGI sits between. Totals degrade
// gracefully with update volume for MRI.
//
// The multi-column axis runs the same policy comparison through the
// Database facade's row-atomic DML on a 3-column table — every insert and
// delete hits all three columns' cached paths plus the sideways cracker
// maps (maintained incrementally, docs/UPDATES.md §5) — and emits the
// `multicol_write_mix` JSON rows and headline that
// scripts/compare_bench.py gates.
#include <array>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/access_path.h"
#include "exec/engine.h"
#include "update/updatable_column.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

struct UpdateRun {
  std::string policy;
  std::vector<double> per_query_seconds;
  std::uint64_t checksum = 0;
};

/// Runs Q queries; before every `every`-th query, `batch` fresh inserts
/// arrive through AccessPath::InsertBatch. Construction of the path's
/// structure is charged to the first query, as everywhere.
UpdateRun RunWithUpdates(const std::vector<std::int64_t>& base,
                         std::span<const RangePredicate<std::int64_t>> queries,
                         MergePolicy policy, std::size_t every, std::size_t batch,
                         std::int64_t domain) {
  UpdateRun out;
  out.policy = MergePolicyName(policy);
  Rng rng(99);
  StrategyConfig config = StrategyConfig::Crack();
  config.merge_policy = policy;
  std::unique_ptr<AccessPath<std::int64_t>> path;
  std::vector<std::int64_t> fresh(batch);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (path != nullptr && every != 0 && i % every == 0 && i > 0) {
      for (auto& v : fresh) {
        v = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(domain)));
      }
      path->InsertBatch(fresh);
    }
    WallTimer t;
    if (path == nullptr) path = MakeAccessPath<std::int64_t>(base, config);
    out.checksum += path->Count(queries[i]);
    out.per_query_seconds.push_back(t.ElapsedSeconds());
  }
  return out;
}

double Total(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return s;
}

struct MulticolRun {
  double total_seconds = 0;
  std::uint64_t checksum = 0;
  std::size_t final_rows = 0;
};

/// The multi-column write-mix: `ops` operations on a 3-column table,
/// `write_pct`% row-atomic writes (2/3 inserts, 1/3 first-match deletes),
/// the rest range counts rotating over the columns through this policy's
/// cached crack paths, with a periodic SelectProject keeping the sideways
/// maps hot so their incremental maintenance is inside the measured
/// window. Deterministic per seed: checksums must agree across policies.
MulticolRun RunMulticolWriteMix(const std::vector<std::int64_t>& base,
                                MergePolicy policy, std::size_t ops,
                                std::size_t write_pct, std::int64_t domain) {
  const char* const columns[] = {"a", "b", "c"};
  Database db;
  AIDX_CHECK_OK(db.CreateTable("t"));
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<std::int64_t> values(base);
    for (auto& v : values) v += static_cast<std::int64_t>(c);  // decorrelate
    AIDX_CHECK_OK(db.AddColumn("t", columns[c], std::move(values)));
  }
  StrategyConfig config = StrategyConfig::Crack();
  config.merge_policy = policy;
  Rng rng(2024);
  MulticolRun out;
  WallTimer timer;
  for (std::size_t op = 0; op < ops; ++op) {
    const bool is_write = write_pct > 0 && (op * write_pct) % 100 < write_pct;
    if (is_write) {
      if (rng.NextBounded(3) != 0) {
        const auto v = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(domain)));
        AIDX_CHECK_OK(db.Insert("t", {v, v + 1, v + 2}));
      } else {
        const auto v = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(domain)));
        AIDX_CHECK_OK(db.Delete("t", columns[rng.NextBounded(3)], v).status());
      }
    } else if (op % 16 == 15) {
      const auto lo = static_cast<std::int64_t>(
          rng.NextBounded(static_cast<std::uint64_t>(domain)));
      const auto r = db.SelectProject(
          "t", "a", RangePredicate<std::int64_t>::Between(lo, lo + domain / 100),
          {"b", "c"});
      AIDX_CHECK_OK(r.status());
      out.checksum += r->num_rows;
    } else {
      const auto lo = static_cast<std::int64_t>(
          rng.NextBounded(static_cast<std::uint64_t>(domain)));
      const auto count = db.Count(
          "t", columns[op % 3],
          RangePredicate<std::int64_t>::Between(lo, lo + domain / 100), config);
      AIDX_CHECK_OK(count.status());
      out.checksum += *count;
    }
  }
  out.total_seconds = timer.ElapsedSeconds();
  const auto final_count =
      db.Count("t", "a", RangePredicate<std::int64_t>::All(), config);
  AIDX_CHECK_OK(final_count.status());
  out.final_rows = *final_count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("e4_updates", argc, argv);
  bench::PrintHeader("E4 updates: MCI vs MGI vs MRI",
                     "tutorial §2 'Cracking Updates' / SIGMOD'07 update figures");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries();
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  // --- Figure: per-query series, updates every 10 queries, batch 10. ---
  std::cout << "\nseries: batch of 10 inserts every 10 queries (N=" << n
            << ", Q=" << q << ")\n";
  std::vector<RunResult> series;
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kGradual, MergePolicy::kComplete}) {
    const UpdateRun run = RunWithUpdates(data, queries, policy, 10, 10, domain);
    RunResult rr;
    rr.strategy = run.policy;
    rr.workload = "random+updates";
    rr.per_query_seconds = run.per_query_seconds;
    rr.count_checksum = run.checksum;
    series.push_back(std::move(rr));
  }
  for (const auto& run : series) {
    if (run.count_checksum != series.front().count_checksum) {
      std::cerr << "CHECKSUM MISMATCH: " << run.strategy << "\n";
      return 1;
    }
    json.AddRow("series")
        .Set("policy", run.strategy)
        .Set("total_s", Total(run.per_query_seconds));
  }
  PrintSeriesComparison(std::cout, series, bench::CsvPath("e4_series.csv"));

  // --- Table: total cost across update frequency / batch size. ---
  std::cout << "\ntotal workload cost by update pressure:\n";
  TablePrinter table({"updates", "MRI", "MGI", "MCI"});
  struct Config {
    std::size_t every;
    std::size_t batch;
    const char* label;
  };
  for (const Config cfg : {Config{0, 0, "none"}, Config{100, 10, "10 per 100 q"},
                           Config{10, 10, "10 per 10 q"},
                           Config{10, 100, "100 per 10 q"},
                           Config{1, 10, "10 per query"}}) {
    std::vector<std::string> row = {cfg.label};
    for (const MergePolicy policy :
         {MergePolicy::kRipple, MergePolicy::kGradual, MergePolicy::kComplete}) {
      const UpdateRun run =
          RunWithUpdates(data, queries, policy, cfg.every, cfg.batch, domain);
      row.push_back(FormatSeconds(Total(run.per_query_seconds)));
      json.AddRow("pressure_sweep")
          .Set("updates", cfg.label)
          .Set("policy", run.policy)
          .Set("total_s", Total(run.per_query_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // --- Multi-column axis: row-atomic DML through the Database facade. ---
  // 20% writes, each hitting all three columns' cached paths plus the
  // sideways maps; reads rotate across columns so every column's path
  // merges pending updates under the policy in play.
  const std::size_t multicol_n = n / 4;
  const std::size_t multicol_ops = q * 2;
  const auto multicol_domain = static_cast<std::int64_t>(multicol_n);
  const auto multicol_base =
      GenerateData({.n = multicol_n, .domain = multicol_domain, .seed = 23});
  std::cout << "\nmulti-column write mix: 3-column table, 20% row-atomic "
               "writes (N="
            << multicol_n << ", ops=" << multicol_ops << ")\n";
  TablePrinter multicol_table({"policy", "total", "ops/s", "final rows"});
  double best_qps = 0;
  std::string best_policy;
  std::uint64_t multicol_checksum = 0;
  bool first_policy = true;
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kGradual, MergePolicy::kComplete}) {
    const MulticolRun run = RunMulticolWriteMix(multicol_base, policy,
                                                multicol_ops, 20,
                                                multicol_domain);
    if (first_policy) {
      multicol_checksum = run.checksum;
      first_policy = false;
    } else if (run.checksum != multicol_checksum) {
      // The op stream is deterministic, so policies must agree bit-exactly.
      std::cerr << "MULTICOL CHECKSUM MISMATCH: " << MergePolicyName(policy)
                << "\n";
      return 1;
    }
    const double qps =
        run.total_seconds > 0 ? multicol_ops / run.total_seconds : 0;
    multicol_table.AddRow({MergePolicyName(policy),
                           FormatSeconds(run.total_seconds),
                           std::to_string(static_cast<std::size_t>(qps)),
                           std::to_string(run.final_rows)});
    json.AddRow("multicol_write_mix")
        .Set("policy", MergePolicyName(policy))
        .Set("write_pct", std::size_t{20})
        .Set("columns", std::size_t{3})
        .Set("total_s", run.total_seconds)
        .Set("ops_per_s", qps);
    if (qps > best_qps) {
      best_qps = qps;
      best_policy = MergePolicyName(policy);
    }
  }
  multicol_table.Print(std::cout);

  // The recorded headline the CI gate (scripts/compare_bench.py) checks:
  // best sustained multi-column mixed-workload throughput and the policy
  // that achieved it.
  json.AddRow("headline")
      .Set("metric", "multicol_write_mix")
      .Set("write_pct", std::size_t{20})
      .Set("columns", std::size_t{3})
      .Set("multicol_ops_per_s", best_qps)
      .Set("best_policy", best_policy);
  std::cout << "\nheadline: best multi-column mixed-workload throughput = "
            << static_cast<std::size_t>(best_qps) << " ops/s (" << best_policy
            << ")\n";

  json.Write();
  return 0;
}
