// E4 — Cracking under updates (SIGMOD'07 Figs. 7/9 shape): per-query cost
// with interleaved inserts under the three merge policies, plus an update
// frequency / batch-size sweep. Runs through the uniform AccessPath
// interface — the exact code path Database DML users hit — with the merge
// policy selected via StrategyConfig::merge_policy.
//
// Expected shape: MRI (ripple) stays low and smooth; MCI (complete) spikes
// on the first query after each batch; MGI sits between. Totals degrade
// gracefully with update volume for MRI.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/access_path.h"
#include "update/updatable_column.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

struct UpdateRun {
  std::string policy;
  std::vector<double> per_query_seconds;
  std::uint64_t checksum = 0;
};

/// Runs Q queries; before every `every`-th query, `batch` fresh inserts
/// arrive through AccessPath::InsertBatch. Construction of the path's
/// structure is charged to the first query, as everywhere.
UpdateRun RunWithUpdates(const std::vector<std::int64_t>& base,
                         std::span<const RangePredicate<std::int64_t>> queries,
                         MergePolicy policy, std::size_t every, std::size_t batch,
                         std::int64_t domain) {
  UpdateRun out;
  out.policy = MergePolicyName(policy);
  Rng rng(99);
  StrategyConfig config = StrategyConfig::Crack();
  config.merge_policy = policy;
  std::unique_ptr<AccessPath<std::int64_t>> path;
  std::vector<std::int64_t> fresh(batch);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (path != nullptr && every != 0 && i % every == 0 && i > 0) {
      for (auto& v : fresh) {
        v = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(domain)));
      }
      path->InsertBatch(fresh);
    }
    WallTimer t;
    if (path == nullptr) path = MakeAccessPath<std::int64_t>(base, config);
    out.checksum += path->Count(queries[i]);
    out.per_query_seconds.push_back(t.ElapsedSeconds());
  }
  return out;
}

double Total(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

int main() {
  bench::PrintHeader("E4 updates: MCI vs MGI vs MRI",
                     "tutorial §2 'Cracking Updates' / SIGMOD'07 update figures");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries();
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  // --- Figure: per-query series, updates every 10 queries, batch 10. ---
  std::cout << "\nseries: batch of 10 inserts every 10 queries (N=" << n
            << ", Q=" << q << ")\n";
  std::vector<RunResult> series;
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kGradual, MergePolicy::kComplete}) {
    const UpdateRun run = RunWithUpdates(data, queries, policy, 10, 10, domain);
    RunResult rr;
    rr.strategy = run.policy;
    rr.workload = "random+updates";
    rr.per_query_seconds = run.per_query_seconds;
    rr.count_checksum = run.checksum;
    series.push_back(std::move(rr));
  }
  for (const auto& run : series) {
    if (run.count_checksum != series.front().count_checksum) {
      std::cerr << "CHECKSUM MISMATCH: " << run.strategy << "\n";
      return 1;
    }
  }
  PrintSeriesComparison(std::cout, series, bench::CsvPath("e4_series.csv"));

  // --- Table: total cost across update frequency / batch size. ---
  std::cout << "\ntotal workload cost by update pressure:\n";
  TablePrinter table({"updates", "MRI", "MGI", "MCI"});
  struct Config {
    std::size_t every;
    std::size_t batch;
    const char* label;
  };
  for (const Config cfg : {Config{0, 0, "none"}, Config{100, 10, "10 per 100 q"},
                           Config{10, 10, "10 per 10 q"},
                           Config{10, 100, "100 per 10 q"},
                           Config{1, 10, "10 per query"}}) {
    std::vector<std::string> row = {cfg.label};
    for (const MergePolicy policy :
         {MergePolicy::kRipple, MergePolicy::kGradual, MergePolicy::kComplete}) {
      const UpdateRun run =
          RunWithUpdates(data, queries, policy, cfg.every, cfg.batch, domain);
      row.push_back(FormatSeconds(Total(run.per_query_seconds)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
