// E12 — Crack-kernel shootout: branchy vs predicated vs unrolled
// (core/crack_ops.h) as raw partitioning throughput and as full-workload
// convergence, across value types, tandem payloads, and piece sizes.
//
// The kernels rewrite the innermost loops every strategy bottoms out in;
// this bench is the falsifiable record of what that buys. Sections:
//
//   calibration     what the startup kernel autotuner picked on this host
//                   (ISA, per-width kernel and min-piece threshold)
//   crack_in_two    raw single-crack throughput per kernel × type × tandem
//   crack_in_three  raw three-way crack throughput per kernel
//   three_way       single-pass crack-in-three vs the two-pass decomposition
//                   it replaced, per kernel
//   piece_sweep     throughput vs piece size (shows the dispatch crossover:
//                   below the min-piece threshold all kernels run branchy)
//   convergence     full random-range workloads through CrackerColumn
//                   (crack and stochastic), per kernel
//   headline        the acceptance metrics on uniform-random int32:
//                   predicated vs branchy (PR 4), simd vs unrolled and
//                   single-pass vs two-pass three-way (PR 8); `note`
//                   documents the outcome either way so a regression (or
//                   vector-hostile hardware) is visible in the recorded
//                   JSON, not silent
//
// `--json` writes BENCH_e12_crack_kernels.json (see bench_common.h);
// scripts/check.sh --bench-smoke runs this at reduced scale on every push.
// Unless AIDX_N overrides it, the raw-kernel sections run at 2^24 rows
// (16.7M — above the 10M the headline claim is stated at); the
// convergence section uses the usual AIDX_N/AIDX_Q defaults.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/crack_ops.h"
#include "core/cracker_column.h"
#include "core/kernel_autotune.h"
#include "exec/access_path.h"
#include "storage/types.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

constexpr CrackKernel kKernels[] = {
    CrackKernel::kBranchy,
    CrackKernel::kPredicated,
    CrackKernel::kPredicatedUnrolled,
    CrackKernel::kSimd,
};

bool EnvIsSet(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && raw[0] != '\0';
}

/// Rows for the raw-kernel sections: honour an explicit AIDX_N, otherwise
/// use 2^24 so the headline comparison runs above 10M rows.
std::size_t RawKernelRows() {
  if (EnvIsSet("AIDX_N")) return bench::ColumnSize();
  return std::max(bench::ColumnSize(), std::size_t{1} << 24);
}

template <ColumnValue T>
std::vector<T> UniformValues(std::size_t n, std::uint64_t domain, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> out(n);
  for (auto& v : out) v = static_cast<T>(rng.NextBounded(domain));
  return out;
}

/// Best-of-3 wall time of one `op(dst)` over a fresh copy of `base`. The
/// copy and the per-rep `prep` hook (payload resets and the like) run
/// outside the timed region, so only `op` is measured.
template <ColumnValue T, typename Op, typename Prep>
double BestOfThree(const std::vector<T>& base, Prep&& prep, Op&& op) {
  double best = -1;
  std::vector<T> work(base.size());
  for (int rep = 0; rep < 3; ++rep) {
    std::copy(base.begin(), base.end(), work.begin());
    prep();
    WallTimer timer;
    op(std::span<T>(work));
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

template <ColumnValue T, typename Op>
double BestOfThree(const std::vector<T>& base, Op&& op) {
  return BestOfThree<T>(base, [] {}, std::forward<Op>(op));
}

double MRowsPerSec(std::size_t rows, double seconds) {
  return seconds > 0 ? static_cast<double>(rows) / seconds / 1e6 : 0;
}

/// Runs the crack-in-two matrix for one type; `mrows_out`, when non-null,
/// receives the non-tandem throughput per kernel (indexed by enumerator).
template <ColumnValue T>
void RawCrackInTwoSection(const char* type_name, std::size_t n,
                          bench::JsonReport* json, TablePrinter* table,
                          double* mrows_out) {
  const std::uint64_t domain = 1u << 20;
  const auto base = UniformValues<T>(n, domain, 7);
  const Cut<T> cut{static_cast<T>(domain / 2), CutKind::kLess};
  std::vector<row_id_t> rids(n);
  for (const bool tandem : {false, true}) {
    for (const CrackKernel kernel : kKernels) {
      const double secs = BestOfThree<T>(
          base,
          [&] {
            if (!tandem) return;
            for (std::size_t i = 0; i < rids.size(); ++i) {
              rids[i] = static_cast<row_id_t>(i);
            }
          },
          [&](std::span<T> work) {
            if (tandem) {
              CrackInTwo<T>(work, std::span<row_id_t>(rids), cut, kernel);
            } else {
              CrackInTwo<T>(work, {}, cut, kernel);
            }
          });
      const double mrows = MRowsPerSec(n, secs);
      json->AddRow("crack_in_two")
          .Set("type", type_name)
          .Set("tandem", tandem)
          .Set("kernel", CrackKernelName(kernel))
          .Set("rows", n)
          .Set("seconds", secs)
          .Set("mrows_per_s", mrows);
      table->AddRow({std::string(type_name) + (tandem ? "+rid" : ""),
                     CrackKernelName(kernel), FormatSeconds(secs),
                     std::to_string(static_cast<long long>(mrows)) + " Mrows/s"});
      if (!tandem && mrows_out != nullptr) {
        mrows_out[static_cast<std::size_t>(kernel)] = mrows;
      }
    }
  }
}

void RawCrackInThreeSection(std::size_t n, bench::JsonReport* json,
                            TablePrinter* table) {
  const std::uint64_t domain = 1u << 20;
  const auto base = UniformValues<std::int64_t>(n, domain, 11);
  const Cut<std::int64_t> lo{static_cast<std::int64_t>(domain / 3), CutKind::kLess};
  const Cut<std::int64_t> hi{static_cast<std::int64_t>(2 * domain / 3),
                             CutKind::kLessEq};
  for (const CrackKernel kernel : kKernels) {
    const double secs = BestOfThree<std::int64_t>(
        base, [&](std::span<std::int64_t> work) {
          CrackInThree<std::int64_t>(work, {}, lo, hi, kernel);
        });
    const double mrows = MRowsPerSec(n, secs);
    json->AddRow("crack_in_three")
        .Set("type", "int64")
        .Set("kernel", CrackKernelName(kernel))
        .Set("rows", n)
        .Set("seconds", secs)
        .Set("mrows_per_s", mrows);
    table->AddRow({"int64 3-way", CrackKernelName(kernel), FormatSeconds(secs),
                   std::to_string(static_cast<long long>(mrows)) + " Mrows/s"});
  }
}

/// Single-pass crack-in-three against the two-pass decomposition it
/// replaced, on uniform-random int32 with thirds cuts. Returns (via outs)
/// the two legs of the three_way headline: single-pass at the host default
/// (kAuto resolved) and two-pass at kPredicatedUnrolled — the exact
/// configuration CrackInThree used before the single-pass landed.
void ThreeWaySection(std::size_t n, bench::JsonReport* json,
                     TablePrinter* table, double* single_default_out,
                     double* twopass_unrolled_out) {
  const std::uint64_t domain = 1u << 20;
  const auto base = UniformValues<std::int32_t>(n, domain, 17);
  const Cut<std::int32_t> lo{static_cast<std::int32_t>(domain / 3),
                             CutKind::kLess};
  const Cut<std::int32_t> hi{static_cast<std::int32_t>(2 * domain / 3),
                             CutKind::kLessEq};
  const CrackKernel resolved =
      ResolveCrackKernel(CrackKernel::kAuto, sizeof(std::int32_t));
  for (const bool single : {true, false}) {
    for (const CrackKernel kernel : kKernels) {
      const double secs = BestOfThree<std::int32_t>(
          base, [&](std::span<std::int32_t> work) {
            if (single) {
              CrackInThree<std::int32_t>(work, {}, lo, hi, kernel);
            } else {
              CrackInThreeTwoPass<std::int32_t>(work, {}, lo, hi, kernel);
            }
          });
      const double mrows = MRowsPerSec(n, secs);
      json->AddRow("three_way")
          .Set("type", "int32")
          .Set("mode", single ? "single_pass" : "two_pass")
          .Set("kernel", CrackKernelName(kernel))
          .Set("rows", n)
          .Set("seconds", secs)
          .Set("mrows_per_s", mrows);
      table->AddRow({single ? "single-pass" : "two-pass",
                     CrackKernelName(kernel), FormatSeconds(secs),
                     std::to_string(static_cast<long long>(mrows)) +
                         " Mrows/s"});
      if (single && kernel == resolved && single_default_out != nullptr) {
        *single_default_out = mrows;
      }
      if (!single && kernel == CrackKernel::kPredicatedUnrolled &&
          twopass_unrolled_out != nullptr) {
        *twopass_unrolled_out = mrows;
      }
    }
  }
}

/// Records what the startup autotuner decided on this host, so archived
/// bench JSON ties every number to the kernel defaults in force.
void CalibrationSection(bench::JsonReport* json) {
  const KernelCalibration& cal = Calibrate();
  auto& row = json->AddRow("calibration");
  row.Set("calibrated", cal.calibrated)
      .Set("simd_available", cal.simd_available)
      .Set("isa", cal.isa)
      .Set("kernel_w4", CrackKernelName(cal.kernel_w4))
      .Set("kernel_w8", CrackKernelName(cal.kernel_w8))
      .Set("min_piece_w4", cal.min_piece_w4)
      .Set("min_piece_w8", cal.min_piece_w8);
  for (std::size_t k = 0; k < kNumCrackKernels; ++k) {
    const auto kernel = static_cast<CrackKernel>(k);
    row.Set(std::string("sweep_w4_") + CrackKernelName(kernel), cal.mrows_w4[k])
        .Set(std::string("sweep_w8_") + CrackKernelName(kernel),
             cal.mrows_w8[k]);
  }
  std::cout << "calibration: isa=" << cal.isa << " w4="
            << CrackKernelName(cal.kernel_w4) << "(mp" << cal.min_piece_w4
            << ") w8=" << CrackKernelName(cal.kernel_w8) << "(mp"
            << cal.min_piece_w8 << ")"
            << (cal.calibrated ? "" : " [calibration disabled: fallbacks]")
            << "\n\n";
}

void PieceSweepSection(std::size_t total, bench::JsonReport* json,
                       TablePrinter* table) {
  const std::uint64_t domain = 1u << 20;
  const auto base = UniformValues<std::int64_t>(total, domain, 13);
  const Cut<std::int64_t> cut{static_cast<std::int64_t>(domain / 2), CutKind::kLess};
  for (const std::size_t piece :
       {std::size_t{64}, std::size_t{256}, std::size_t{1} << 12,
        std::size_t{1} << 16, std::size_t{1} << 20}) {
    if (piece > total) continue;
    const std::size_t pieces = total / piece;
    std::vector<std::string> row_cells{("piece " + std::to_string(piece))};
    for (const CrackKernel kernel : kKernels) {
      const double secs =
          BestOfThree<std::int64_t>(base, [&](std::span<std::int64_t> work) {
            for (std::size_t p = 0; p < pieces; ++p) {
              CrackInTwo<std::int64_t>(work.subspan(p * piece, piece), {}, cut,
                                       kernel);
            }
          });
      const double mrows = MRowsPerSec(pieces * piece, secs);
      json->AddRow("piece_sweep")
          .Set("piece_size", piece)
          .Set("kernel", CrackKernelName(kernel))
          .Set("rows", pieces * piece)
          .Set("seconds", secs)
          .Set("mrows_per_s", mrows);
      row_cells.push_back(std::to_string(static_cast<long long>(mrows)));
    }
    table->AddRow(row_cells);
  }
}

void ConvergenceSection(bench::JsonReport* json, TablePrinter* table) {
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .distribution = DataDistribution::kUniform,
                                  .seed = 7});
  const auto queries = GenerateQueries({.pattern = QueryPattern::kRandom,
                                        .num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});
  for (const bool stochastic : {false, true}) {
    for (const CrackKernel kernel : kKernels) {
      StrategyConfig config = stochastic ? StrategyConfig::StochasticCrack()
                                         : StrategyConfig::Crack();
      config.crack_kernel = kernel;
      const RunResult run = RunWorkload(data, config, queries, "random");
      json->AddRow("convergence")
          .Set("strategy", stochastic ? "stochastic" : "crack")
          .Set("kernel", CrackKernelName(kernel))
          .Set("rows", n)
          .Set("queries", q)
          .Set("total_seconds", run.total_seconds())
          .Set("first_query_seconds", run.first_query_seconds())
          .Set("tail_mean_seconds", run.tail_mean(100));
      table->AddRow({run.strategy, CrackKernelName(kernel),
                     FormatSeconds(run.total_seconds()),
                     FormatSeconds(run.tail_mean(100))});
    }
  }
}

/// Cost contract of the fault-injection framework (docs/ROBUSTNESS.md):
/// the piece gate on the crack path is one relaxed atomic load when
/// disarmed, and CI holds the implied end-to-end overhead at <= 2% of
/// query time. Three measurements: (1) the disarmed gate itself, timed
/// over 2^24 calls; (2) how many gates one full cracked workload actually
/// evaluates, counted by arming crack.piece as a zero-delay no-op in an
/// untimed pass; (3) the identical workload timed with the gate disarmed.
/// overhead_pct = gates * gate_cost / workload_time. In an
/// -DAIDX_NO_FAILPOINTS=ON build the gate compiles to nothing and the
/// evaluation count is zero, so the headline degenerates to 0 there.
void FailpointOverheadSection(bench::JsonReport* json, double* gate_ns_out,
                              double* overhead_pct_out) {
  constexpr std::size_t kCalls = std::size_t{1} << 24;
  failpoints::crack_piece.Disarm();
  std::uint64_t live = 0;
  WallTimer gate_timer;
  for (std::size_t i = 0; i < kCalls; ++i) {
    live += failpoints::crack_piece.Inject().ok() ? 1 : 0;
  }
  const double gate_secs =
      gate_timer.ElapsedSeconds() / static_cast<double>(kCalls);

  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .distribution = DataDistribution::kUniform,
                                  .seed = 7});
  const auto queries = GenerateQueries({.pattern = QueryPattern::kRandom,
                                        .num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});
  // Untimed counting pass: a zero-delay armed gate is observationally a
  // no-op but bumps the evaluation counter on every piece-loop visit.
  FailpointPolicy counting;
  counting.mode = FailpointMode::kDelay;
  counting.delay_micros = 0;
  failpoints::crack_piece.Arm(counting);
  failpoints::crack_piece.ResetCounters();
  {
    CrackerColumn<std::int64_t> col(data, {.with_row_ids = false});
    for (const auto& pred : queries) live += col.Count(pred);
  }
  const auto gates = static_cast<double>(failpoints::crack_piece.evaluations());
  failpoints::crack_piece.Disarm();

  // Timed pass, disarmed gates: best of three fresh-column runs.
  double best = -1;
  for (int rep = 0; rep < 3; ++rep) {
    CrackerColumn<std::int64_t> col(data, {.with_row_ids = false});
    WallTimer timer;
    for (const auto& pred : queries) live += col.Count(pred);
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  // `live` feeds the JSON so none of the loops can be optimized away.
  const double gate_ns = gate_secs * 1e9;
  const double overhead_pct = best > 0 ? 100.0 * gates * gate_secs / best : 0.0;
  json->AddRow("failpoint_overhead")
      .Set("gate_ns", gate_ns)
      .Set("gates_evaluated", gates)
      .Set("queries", q)
      .Set("workload_seconds", best)
      .Set("overhead_pct", overhead_pct)
      .Set("live_checksum", static_cast<double>(live));
  std::cout << "\nfailpoint gate: " << gate_ns << " ns disarmed; " << gates
            << " gates over " << q << " cracked queries => " << overhead_pct
            << "% of query time\n";
  *gate_ns_out = gate_ns;
  *overhead_pct_out = overhead_pct;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("e12_crack_kernels", argc, argv);
  bench::PrintHeader(
      "E12 crack kernels: branchy vs predicated vs unrolled vs simd",
      "DaMoN'14 predication argument over the EDBT'12 kernels");
  const std::size_t raw_n = RawKernelRows();
  std::cout << "raw kernels: " << raw_n << " uniform values; convergence: "
            << bench::ColumnSize() << " values x " << bench::NumQueries()
            << " queries\n\n";

  CalibrationSection(&json);

  double i32_mrows[kNumCrackKernels] = {};

  std::cout << "raw crack-in-two throughput:\n";
  TablePrinter raw({"input", "kernel", "time", "throughput"});
  RawCrackInTwoSection<std::int32_t>("int32", raw_n, &json, &raw, i32_mrows);
  RawCrackInTwoSection<std::int64_t>("int64", raw_n, &json, &raw, nullptr);
  RawCrackInTwoSection<double>("float64", raw_n, &json, &raw, nullptr);
  RawCrackInThreeSection(raw_n, &json, &raw);
  raw.Print(std::cout);

  std::cout << "\nsingle-pass crack-in-three vs two-pass decomposition:\n";
  TablePrinter three({"mode", "kernel", "time", "throughput"});
  double single_default = 0;
  double twopass_unrolled = 0;
  ThreeWaySection(raw_n, &json, &three, &single_default, &twopass_unrolled);
  three.Print(std::cout);

  std::cout << "\npiece-size sweep "
               "(Mrows/s: branchy | predicated | unrolled | simd):\n";
  TablePrinter sweep({"piece", "branchy", "predicated", "unrolled", "simd"});
  PieceSweepSection(std::min(raw_n, std::size_t{1} << 22), &json, &sweep);
  sweep.Print(std::cout);

  std::cout << "\nfull-workload convergence:\n";
  TablePrinter conv({"strategy", "kernel", "total", "tail mean"});
  ConvergenceSection(&json, &conv);
  conv.Print(std::cout);

  double gate_ns = 0;
  double failpoint_overhead_pct = 0;
  FailpointOverheadSection(&json, &gate_ns, &failpoint_overhead_pct);

  // Headline acceptance metrics on uniform int32: predicated vs branchy
  // (PR 4), simd vs unrolled and single-pass vs two-pass three-way (PR 8).
  const double branchy_i32 =
      i32_mrows[static_cast<std::size_t>(CrackKernel::kBranchy)];
  const double predicated_i32 =
      i32_mrows[static_cast<std::size_t>(CrackKernel::kPredicated)];
  const double unrolled_i32 =
      i32_mrows[static_cast<std::size_t>(CrackKernel::kPredicatedUnrolled)];
  const double simd_i32 = i32_mrows[static_cast<std::size_t>(CrackKernel::kSimd)];
  const double speedup = branchy_i32 > 0 ? predicated_i32 / branchy_i32 : 0;
  const bool wins = speedup > 1.0;
  const double simd_vs_unrolled = unrolled_i32 > 0 ? simd_i32 / unrolled_i32 : 0;
  const double three_way_speedup =
      twopass_unrolled > 0 ? single_default / twopass_unrolled : 0;
  const bool simd_active = Calibrate().simd_available;
  std::string note;
  if (wins) {
    note = "predicated beats branchy on uniform-random int32 at this scale";
  } else {
    note = "predicated did NOT beat branchy on this hardware at this scale: "
           "likely causes are a branch predictor absorbing the 50/50 pattern "
           "(unlikely on random data), a memory-bandwidth-bound machine where "
           "predication's extra load per element erases its mispredict win, "
           "or a reduced-scale run (AIDX_N set low) where fixed costs "
           "dominate; rerun at >= 10M rows before reading this as a kernel "
           "regression";
  }
  if (!simd_active) {
    note += "; kSimd ran the scalar blocked classifier (no AVX2/NEON), so "
            "simd_vs_unrolled ~1.0 is expected, not a regression";
  }
  json.AddRow("headline")
      .Set("type", "int32")
      .Set("rows", raw_n)
      .Set("branchy_mrows_per_s", branchy_i32)
      .Set("predicated_mrows_per_s", predicated_i32)
      .Set("unrolled_mrows_per_s", unrolled_i32)
      .Set("simd_mrows_per_s", simd_i32)
      .Set("speedup", speedup)
      .Set("predicated_beats_branchy", wins)
      .Set("simd_available", simd_active)
      .Set("simd_vs_unrolled", simd_vs_unrolled)
      .Set("three_way_single_mrows_per_s", single_default)
      .Set("three_way_twopass_mrows_per_s", twopass_unrolled)
      .Set("three_way_speedup", three_way_speedup)
      // Robustness PR acceptance: disarmed failpoint gates must cost <= 2%
      // of cracked-query time (compare_bench.py holds the bound).
      .Set("failpoint_gate_ns", gate_ns)
      .Set("failpoint_overhead_pct", failpoint_overhead_pct)
      .Set("note", note);
  std::cout << "\nheadline: predicated/branchy speedup on int32 = " << speedup
            << (wins ? " (predicated wins)" : " — see note in JSON output")
            << "\nheadline: simd/unrolled crack-in-two on int32 = "
            << simd_vs_unrolled << (simd_active ? "" : " (scalar fallback)")
            << "\nheadline: single-pass/two-pass crack-in-three = "
            << three_way_speedup << "\n";

  json.Write();
  return 0;
}
