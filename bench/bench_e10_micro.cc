// E10 — Micro-benchmarks backing the cost narrative (google-benchmark):
// the primitive operations whose relative costs explain every figure —
// scan, sort, binary search, crack-in-two/three, B+ tree ops, AVL ops.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/crack_ops.h"
#include "core/cracker_column.h"
#include "index/avl_tree.h"
#include "index/btree.h"
#include "index/scan.h"
#include "index/sorted_index.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/data_generator.h"

namespace aidx {
namespace {

std::vector<std::int64_t> Data(std::size_t n) {
  return GenerateData({.n = n, .domain = static_cast<std::int64_t>(n), .seed = 7});
}

void BM_ScanCount(benchmark::State& state) {
  const auto data = Data(static_cast<std::size_t>(state.range(0)));
  const auto pred = RangePredicate<std::int64_t>::Between(100, 100 + state.range(0) / 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanCount<std::int64_t>(data, pred));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanCount)->Arg(1 << 18)->Arg(1 << 21);

void BM_FullSortBuild(benchmark::State& state) {
  const auto data = Data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    FullSortIndex<std::int64_t> index(data);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullSortBuild)->Arg(1 << 18)->Arg(1 << 21);

void BM_BinarySearchQuery(benchmark::State& state) {
  const auto data = Data(1 << 21);
  const FullSortIndex<std::int64_t> index(data);
  Rng rng(3);
  for (auto _ : state) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(1 << 21));
    benchmark::DoNotOptimize(
        index.CountRange(RangePredicate<std::int64_t>::Between(lo, lo + 2048)));
  }
}
BENCHMARK(BM_BinarySearchQuery);

// Crack primitives per kernel (second arg: 0 = branchy, 1 = predicated,
// 2 = unrolled, 3 = simd — CrackKernel's enumerator order). bench_e12 is
// the full shootout; these registrations keep the kernels visible in the
// micro suite's one-stop cost table.
void BM_CrackInTwo(benchmark::State& state) {
  const auto base = Data(static_cast<std::size_t>(state.range(0)));
  const auto kernel = static_cast<CrackKernel>(state.range(1));
  const Cut<std::int64_t> cut{state.range(0) / 2, CutKind::kLess};
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwo<std::int64_t>(copy, {}, cut, kernel));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(CrackKernelName(kernel));
}
BENCHMARK(BM_CrackInTwo)
    ->ArgNames({"n", "kernel"})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 2})
    ->Args({1 << 18, 3})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 1})
    ->Args({1 << 21, 2})
    ->Args({1 << 21, 3})
    ->Iterations(30);

void BM_CrackInTwoTandem(benchmark::State& state) {
  const auto base = Data(static_cast<std::size_t>(state.range(0)));
  const auto kernel = static_cast<CrackKernel>(state.range(1));
  const Cut<std::int64_t> cut{state.range(0) / 2, CutKind::kLess};
  std::vector<row_id_t> rids(base.size());
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = base;
    for (std::size_t i = 0; i < rids.size(); ++i) rids[i] = static_cast<row_id_t>(i);
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInTwo<std::int64_t>(
        copy, std::span<row_id_t>(rids), cut, kernel));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(CrackKernelName(kernel));
}
BENCHMARK(BM_CrackInTwoTandem)
    ->ArgNames({"n", "kernel"})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 1})
    ->Args({1 << 21, 2})
    ->Args({1 << 21, 3})
    ->Iterations(30);

void BM_CrackInThree(benchmark::State& state) {
  const auto base = Data(static_cast<std::size_t>(state.range(0)));
  const auto kernel = static_cast<CrackKernel>(state.range(1));
  const Cut<std::int64_t> lo{state.range(0) / 3, CutKind::kLess};
  const Cut<std::int64_t> hi{2 * state.range(0) / 3, CutKind::kLessEq};
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(CrackInThree<std::int64_t>(copy, {}, lo, hi, kernel));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(CrackKernelName(kernel));
}
BENCHMARK(BM_CrackInThree)
    ->ArgNames({"n", "kernel"})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 2})
    ->Args({1 << 18, 3})
    ->Args({1 << 21, 0})
    ->Args({1 << 21, 1})
    ->Args({1 << 21, 2})
    ->Args({1 << 21, 3})
    ->Iterations(30);

void BM_CrackedQuerySequence(benchmark::State& state) {
  // Per-query cost after `range` queries of warm-up: shows convergence.
  const auto data = Data(1 << 21);
  for (auto _ : state) {
    state.PauseTiming();
    CrackerColumn<std::int64_t> col(data, {.with_row_ids = false});
    Rng rng(5);
    for (int i = 0; i < state.range(0); ++i) {
      const auto lo = static_cast<std::int64_t>(rng.NextBounded(1 << 21));
      col.Count(RangePredicate<std::int64_t>::Between(lo, lo + 2048));
    }
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(1 << 21));
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        col.Count(RangePredicate<std::int64_t>::Between(lo, lo + 2048)));
  }
}
// Heavy warm-up per iteration: cap iterations so the suite stays fast.
BENCHMARK(BM_CrackedQuerySequence)->Arg(0)->Iterations(20);
BENCHMARK(BM_CrackedQuerySequence)->Arg(10)->Iterations(20);
BENCHMARK(BM_CrackedQuerySequence)->Arg(100)->Iterations(10);
BENCHMARK(BM_CrackedQuerySequence)->Arg(1000)->Iterations(5);

// Fault-injection gate cost (docs/ROBUSTNESS.md). The disarmed fast path
// is a single relaxed atomic load; rebuilding with -DAIDX_NO_FAILPOINTS=ON
// compiles the same call to nothing, so running this pair in both builds
// measures the framework's true overhead floor. The cracked-query numbers
// above already run through gated piece loops, so the two builds also
// disagree by exactly the end-to-end gate cost there.
void BM_FailpointDisarmedGate(benchmark::State& state) {
  failpoints::crack_piece.Disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(failpoints::crack_piece.Inject().ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointDisarmedGate);

void BM_FailpointArmedDelayZero(benchmark::State& state) {
  // Armed-but-inert cost: the slow path with a zero-delay policy — what a
  // chaos run pays on gates whose fault never fires this evaluation.
  FailpointPolicy policy;
  policy.mode = FailpointMode::kDelay;
  policy.delay_micros = 0;
  failpoints::crack_piece.Arm(policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(failpoints::crack_piece.Inject().ok());
  }
  failpoints::crack_piece.Disarm();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointArmedDelayZero);

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<std::int64_t> tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(static_cast<std::int64_t>(rng.NextBounded(1 << 20)));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1 << 12)->Arg(1 << 15);

void BM_BTreeBulkLoad(benchmark::State& state) {
  auto data = Data(static_cast<std::size_t>(state.range(0)));
  std::sort(data.begin(), data.end());
  for (auto _ : state) {
    BPlusTree<std::int64_t> tree;
    tree.BulkLoadSorted(data);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(1 << 18);

void BM_BTreeRangeCount(benchmark::State& state) {
  auto data = Data(1 << 20);
  std::sort(data.begin(), data.end());
  BPlusTree<std::int64_t> tree;
  tree.BulkLoadSorted(data);
  Rng rng(9);
  for (auto _ : state) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(1 << 20));
    benchmark::DoNotOptimize(
        tree.CountRange(RangePredicate<std::int64_t>::Between(lo, lo + 1024)));
  }
}
BENCHMARK(BM_BTreeRangeCount);

void BM_AvlInsertLookup(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    AvlTree<std::int64_t, std::size_t> tree;
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(static_cast<std::int64_t>(rng.NextBounded(1 << 20)), i);
    }
    benchmark::DoNotOptimize(tree.FindFloor(1 << 19));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvlInsertLookup)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace aidx

BENCHMARK_MAIN();
