// A3 — Ablation: adaptive vs eager map alignment, and the partial-cracking
// storage budget (SIGMOD'09 §5-6 design choices).
//
// Expected shape: adaptive alignment wins when projection sets vary (maps
// not used by a query skip its crack); eager alignment pays for every map
// on every query. Shrinking the budget trades memory for re-materialization
// and tape replays.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "sideways/sideways.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"

using namespace aidx;

namespace {

struct Outcome {
  double total = 0;
  std::size_t replays = 0;
  std::size_t evictions = 0;
  std::uint64_t checksum = 0;
};

Outcome RunSession(const std::vector<std::int64_t>& head,
                   const std::vector<std::vector<std::int64_t>>& tails,
                   std::span<const RangePredicate<std::int64_t>> queries,
                   SidewaysCracker<std::int64_t>::Options options) {
  Outcome out;
  std::unique_ptr<SidewaysCracker<std::int64_t>> cracker;
  Rng rng(55);
  for (const auto& pred : queries) {
    WallTimer t;
    if (cracker == nullptr) {
      cracker = std::make_unique<SidewaysCracker<std::int64_t>>(head, options);
      for (std::size_t i = 0; i < tails.size(); ++i) {
        AIDX_CHECK_OK(cracker->AddTailColumn("t" + std::to_string(i), tails[i]));
      }
    }
    // Rotate through single-column projections: the access pattern where
    // alignment policy matters.
    const std::string tail = "t" + std::to_string(rng.NextBounded(tails.size()));
    auto sum = cracker->SelectSum(pred, tail);
    AIDX_CHECK(sum.ok()) << sum.status().ToString();
    out.checksum += static_cast<std::uint64_t>(*sum) & 0xFFFFFFFF;
    out.total += t.ElapsedSeconds();
  }
  out.replays = cracker->stats().alignment_replays;
  out.evictions = cracker->stats().maps_evicted;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("A3 ablation: sideways alignment & storage budget",
                     "SIGMOD'09 adaptive alignment + partial sideways cracking");
  const std::size_t n = bench::ColumnSize() / 4;
  const std::size_t q = bench::NumQueries() / 2;
  const auto domain = static_cast<std::int64_t>(n);
  constexpr std::size_t kTails = 6;

  const auto head = GenerateData({.n = n, .domain = domain, .seed = 7});
  std::vector<std::vector<std::int64_t>> tails(kTails);
  for (std::size_t i = 0; i < kTails; ++i) {
    tails[i] = GenerateData({.n = n, .domain = domain, .seed = 200 + i});
  }
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = domain,
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::cout << "N=" << n << ", " << kTails << " tail columns, Q=" << q
            << " (random projected column per query)\n\n";

  const std::size_t map_bytes = n * 2 * sizeof(std::int64_t);
  TablePrinter table({"configuration", "total", "tape replays", "evictions"});
  const Outcome adaptive = RunSession(head, tails, queries, {});
  table.AddRow({"adaptive alignment, unlimited", FormatSeconds(adaptive.total),
                std::to_string(adaptive.replays), std::to_string(adaptive.evictions)});
  const Outcome eager = RunSession(head, tails, queries, {.eager_alignment = true});
  table.AddRow({"eager alignment, unlimited", FormatSeconds(eager.total),
                std::to_string(eager.replays), std::to_string(eager.evictions)});
  for (const std::size_t maps : {kTails, kTails / 2, std::size_t{2}}) {
    const Outcome budget =
        RunSession(head, tails, queries, {.storage_budget_bytes = maps * map_bytes});
    table.AddRow({"adaptive, budget " + std::to_string(maps) + " maps",
                  FormatSeconds(budget.total), std::to_string(budget.replays),
                  std::to_string(budget.evictions)});
    if (budget.checksum != adaptive.checksum) {
      std::cerr << "CHECKSUM MISMATCH under budget\n";
      return 1;
    }
  }
  if (eager.checksum != adaptive.checksum) {
    std::cerr << "CHECKSUM MISMATCH eager vs adaptive\n";
    return 1;
  }
  table.Print(std::cout);
  return 0;
}
