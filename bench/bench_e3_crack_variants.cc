// E3 — Crack-in-three vs two crack-in-two passes (CIDR'07 §4 algorithm
// analysis): when a range's two bounds land in the same piece, is one
// three-way pass cheaper than two two-way passes?
//
// Expected shape: crack-in-three wins for wide middle regions (one pass
// over the data instead of ~1.7), narrows for selective ranges where the
// second two-way pass only touches a small piece.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/crack_ops.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/report.h"

using namespace aidx;

namespace {

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

}  // namespace

int main() {
  bench::PrintHeader("E3 crack-in-two x2 vs crack-in-three",
                     "tutorial §2 'Database Cracking' / CIDR'07 operator analysis");
  const std::size_t n = bench::ColumnSize();
  const auto domain = static_cast<std::int64_t>(n);
  const int reps = 9;

  TablePrinter table({"middle selectivity", "2x crack-in-two", "crack-in-three",
                      "speedup"});
  for (const double middle : {0.001, 0.01, 0.1, 0.3, 0.6, 0.9}) {
    const auto width = static_cast<std::int64_t>(middle * static_cast<double>(domain));
    const std::int64_t lo = (domain - width) / 2;
    const Cut<std::int64_t> lo_cut{lo, CutKind::kLess};
    const Cut<std::int64_t> hi_cut{lo + width, CutKind::kLessEq};

    double two_total = 0;
    double three_total = 0;
    std::size_t sink = 0;
    for (int r = 0; r < reps; ++r) {
      auto a = RandomValues(n, domain, 100 + static_cast<std::uint64_t>(r));
      auto b = a;
      {
        WallTimer t;
        const std::size_t s1 = CrackInTwo<std::int64_t>(a, {}, lo_cut);
        // Second bound: only the right part needs partitioning.
        const std::size_t s2 =
            s1 + CrackInTwo<std::int64_t>(std::span<std::int64_t>(a).subspan(s1), {},
                                          hi_cut);
        two_total += t.ElapsedSeconds();
        sink += s2;
      }
      {
        WallTimer t;
        const ThreeWaySplit s = CrackInThree<std::int64_t>(b, {}, lo_cut, hi_cut);
        three_total += t.ElapsedSeconds();
        sink += s.middle_end;
      }
      // Both must produce identical partitions (as multisets per region).
      if (r == 0) {
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (a != b) {
          std::cerr << "VARIANTS DISAGREE\n";
          return 1;
        }
      }
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", two_total / three_total);
    table.AddRow({std::to_string(middle), FormatSeconds(two_total / reps),
                  FormatSeconds(three_total / reps), speedup});
    (void)sink;
  }
  table.Print(std::cout);
  std::cout << "\n(column size " << n << "; each cell averages " << reps
            << " fresh-column cracks)\n";
  return 0;
}
