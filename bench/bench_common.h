// Shared plumbing for the experiment binaries.
//
// Every binary runs with no arguments using paper-scale defaults trimmed to
// finish in tens of seconds; the environment variables AIDX_N (column
// size), AIDX_Q (queries per run), and AIDX_CSV_DIR (CSV output directory,
// empty to disable) override them for full-scale runs.
//
// Machine-readable output: passing `--json` to a bench binary makes its
// JsonReport write BENCH_<name>.json (into AIDX_JSON_DIR, default ".") —
// one flat JSON document of result rows, the recorded perf trajectory CI
// archives on every push (scripts/check.sh --bench-smoke). See
// docs/BENCHMARKS.md for the schema and how to read it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <latch>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace aidx::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

/// Column size for the experiments (default 2^21 = 2,097,152 values).
inline std::size_t ColumnSize() { return EnvSize("AIDX_N", std::size_t{1} << 21); }

/// Queries per run (default 2000).
inline std::size_t NumQueries() { return EnvSize("AIDX_Q", 2000); }

/// Where CSV series land; "" disables CSV output.
inline std::string CsvDir() {
  const char* raw = std::getenv("AIDX_CSV_DIR");
  return raw == nullptr ? std::string(".") : std::string(raw);
}

inline std::string CsvPath(const std::string& name) {
  const std::string dir = CsvDir();
  if (dir.empty()) return "";
  return dir + "/" + name;
}

inline void PrintHeader(const char* experiment, const char* regenerates) {
  std::cout << "=== " << experiment << " ===\n"
            << "regenerates: " << regenerates << "\n";
}

/// Result of one multi-threaded throughput run.
struct ThroughputResult {
  std::size_t num_threads = 0;
  std::size_t total_queries = 0;
  double wall_seconds = 0;

  double QueriesPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(total_queries) / wall_seconds
                            : 0;
  }
};

/// One key/value cell of a JSON result row. Values are stored pre-rendered
/// (numbers verbatim, strings quoted+escaped) so a row is just a join.
struct JsonCell {
  std::string key;
  std::string rendered;
};

/// Minimal JSON string escaping (quotes, backslash, control chars) — the
/// bench vocabulary is ASCII identifiers, but the writer must never emit
/// invalid JSON regardless of input.
inline std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One result row: an ordered set of typed key/value pairs. Rows carry a
/// `section` key so one file can hold several experiment axes.
class JsonRow {
 public:
  JsonRow& Set(std::string_view key, std::string_view value) {
    std::string rendered;
    rendered.append(1, '"');
    rendered.append(JsonEscape(value));
    rendered.append(1, '"');
    cells_.push_back({std::string(key), std::move(rendered)});
    return *this;
  }
  JsonRow& Set(std::string_view key, const char* value) {
    return Set(key, std::string_view(value));
  }
  JsonRow& Set(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    cells_.push_back({std::string(key), buf});
    return *this;
  }
  JsonRow& Set(std::string_view key, std::size_t value) {
    cells_.push_back({std::string(key), std::to_string(value)});
    return *this;
  }
  JsonRow& Set(std::string_view key, int value) {
    cells_.push_back({std::string(key), std::to_string(value)});
    return *this;
  }
  JsonRow& Set(std::string_view key, bool value) {
    cells_.push_back({std::string(key), value ? "true" : "false"});
    return *this;
  }

  // Built with append() rather than operator+ chains: the temporaries the
  // latter creates trip GCC's -Werror=restrict false positive at -O3,
  // which the repo's warnings-as-errors policy turns fatal.
  void Render(std::string* out) const {
    out->append("    {");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(1, '"');
      out->append(JsonEscape(cells_[i].key));
      out->append("\": ");
      out->append(cells_[i].rendered);
    }
    out->append("}");
  }

 private:
  std::vector<JsonCell> cells_;
};

/// Collects rows and writes BENCH_<name>.json when the binary was invoked
/// with `--json`. Rows are recorded unconditionally (the cost is trivial
/// next to any measurement), so bench code needs no `if (json)` branches;
/// Write() is a no-op without the flag.
class JsonReport {
 public:
  /// `name` is the file stem ("e12_crack_kernels" -> BENCH_e12_crack_kernels.json).
  JsonReport(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") enabled_ = true;
    }
  }

  bool enabled() const { return enabled_; }

  /// Adds a result row tagged with `section`.
  JsonRow& AddRow(std::string_view section) {
    rows_.emplace_back();
    rows_.back().Set("section", section);
    return rows_.back();
  }

  /// Writes BENCH_<name>.json into AIDX_JSON_DIR (default "."). Returns
  /// the path written, or "" when --json was not given or the write
  /// failed (failure also prints to stderr — CI treats the missing file
  /// as the signal).
  std::string Write() const {
    if (!enabled_) return "";
    const char* dir_env = std::getenv("AIDX_JSON_DIR");
    const std::string dir = (dir_env == nullptr || dir_env[0] == '\0')
                                ? std::string(".")
                                : std::string(dir_env);
    std::string path = dir;
    path.append("/BENCH_");
    path.append(name_);
    path.append(".json");
    std::string out;
    out.append("{\n  \"bench\": \"");
    out.append(JsonEscape(name_));
    out.append("\",\n  \"schema_version\": 1,\n  \"env\": {\"n\": ");
    out.append(std::to_string(ColumnSize()));
    out.append(", \"q\": ");
    out.append(std::to_string(NumQueries()));
    out.append("},\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      rows_[i].Render(&out);
      if (i + 1 < rows_.size()) out.append(",");
      out.append("\n");
    }
    out.append("  ]\n}\n");
    std::ofstream file(path, std::ios::trunc);
    if (!file || !(file << out)) {
      std::cerr << "JsonReport: cannot write " << path << "\n";
      return "";
    }
    std::cout << "\njson: wrote " << path << "\n";
    return path;
  }

 private:
  std::string name_;
  bool enabled_ = false;
  std::vector<JsonRow> rows_;
};

/// Runs `body(thread, query)` for queries_per_thread queries on each of
/// num_threads concurrent threads and reports aggregate queries/sec. All
/// threads start together (latch-released) and the wall clock covers the
/// whole batch, so the result is end-to-end system throughput — the metric
/// for concurrent query streams, where the single-threaded per-query loops
/// above (RunWorkload et al.) do not apply. `body` must be thread-safe.
inline ThroughputResult MeasureThroughput(
    std::size_t num_threads, std::size_t queries_per_thread,
    const std::function<void(std::size_t thread, std::size_t query)>& body) {
  ThroughputResult out;
  out.num_threads = num_threads;
  out.total_queries = num_threads * queries_per_thread;
  std::latch start(static_cast<std::ptrdiff_t>(num_threads) + 1);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (std::size_t q = 0; q < queries_per_thread; ++q) body(t, q);
    });
  }
  WallTimer timer;
  start.arrive_and_wait();  // release the workers; timing starts now
  for (auto& thread : threads) thread.join();
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace aidx::bench
