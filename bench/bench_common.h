// Shared plumbing for the experiment binaries.
//
// Every binary runs with no arguments using paper-scale defaults trimmed to
// finish in tens of seconds; the environment variables AIDX_N (column
// size), AIDX_Q (queries per run), and AIDX_CSV_DIR (CSV output directory,
// empty to disable) override them for full-scale runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace aidx::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

/// Column size for the experiments (default 2^21 = 2,097,152 values).
inline std::size_t ColumnSize() { return EnvSize("AIDX_N", std::size_t{1} << 21); }

/// Queries per run (default 2000).
inline std::size_t NumQueries() { return EnvSize("AIDX_Q", 2000); }

/// Where CSV series land; "" disables CSV output.
inline std::string CsvDir() {
  const char* raw = std::getenv("AIDX_CSV_DIR");
  return raw == nullptr ? std::string(".") : std::string(raw);
}

inline std::string CsvPath(const std::string& name) {
  const std::string dir = CsvDir();
  if (dir.empty()) return "";
  return dir + "/" + name;
}

inline void PrintHeader(const char* experiment, const char* regenerates) {
  std::cout << "=== " << experiment << " ===\n"
            << "regenerates: " << regenerates << "\n";
}

}  // namespace aidx::bench
