// Shared plumbing for the experiment binaries.
//
// Every binary runs with no arguments using paper-scale defaults trimmed to
// finish in tens of seconds; the environment variables AIDX_N (column
// size), AIDX_Q (queries per run), and AIDX_CSV_DIR (CSV output directory,
// empty to disable) override them for full-scale runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.h"

namespace aidx::bench {

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

/// Column size for the experiments (default 2^21 = 2,097,152 values).
inline std::size_t ColumnSize() { return EnvSize("AIDX_N", std::size_t{1} << 21); }

/// Queries per run (default 2000).
inline std::size_t NumQueries() { return EnvSize("AIDX_Q", 2000); }

/// Where CSV series land; "" disables CSV output.
inline std::string CsvDir() {
  const char* raw = std::getenv("AIDX_CSV_DIR");
  return raw == nullptr ? std::string(".") : std::string(raw);
}

inline std::string CsvPath(const std::string& name) {
  const std::string dir = CsvDir();
  if (dir.empty()) return "";
  return dir + "/" + name;
}

inline void PrintHeader(const char* experiment, const char* regenerates) {
  std::cout << "=== " << experiment << " ===\n"
            << "regenerates: " << regenerates << "\n";
}

/// Result of one multi-threaded throughput run.
struct ThroughputResult {
  std::size_t num_threads = 0;
  std::size_t total_queries = 0;
  double wall_seconds = 0;

  double QueriesPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(total_queries) / wall_seconds
                            : 0;
  }
};

/// Runs `body(thread, query)` for queries_per_thread queries on each of
/// num_threads concurrent threads and reports aggregate queries/sec. All
/// threads start together (latch-released) and the wall clock covers the
/// whole batch, so the result is end-to-end system throughput — the metric
/// for concurrent query streams, where the single-threaded per-query loops
/// above (RunWorkload et al.) do not apply. `body` must be thread-safe.
inline ThroughputResult MeasureThroughput(
    std::size_t num_threads, std::size_t queries_per_thread,
    const std::function<void(std::size_t thread, std::size_t query)>& body) {
  ThroughputResult out;
  out.num_threads = num_threads;
  out.total_queries = num_threads * queries_per_thread;
  std::latch start(static_cast<std::ptrdiff_t>(num_threads) + 1);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (std::size_t q = 0; q < queries_per_thread; ++q) body(t, q);
    });
  }
  WallTimer timer;
  start.arrive_and_wait();  // release the workers; timing starts now
  for (auto& thread : threads) thread.join();
  out.wall_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace aidx::bench
