// E13 — Sharded serving layer: scatter/gather throughput vs shard count,
// and the cost of an online Rebalance (docs/DISTRIBUTION.md).
//
// Three sweeps over one routed table (k, a, b; k = routing key):
//   1. queries/sec vs shard count (1, 2, 4, 8) under RANGE routing — the
//      router prunes each key-range Count to the owning shard interval,
//      so more shards means both smaller cracked columns per node and
//      fewer rows scanned per leg;
//   2. the same sweep under HASH routing — every key-range query fans
//      out to all shards, isolating pure scatter overhead;
//   3. one Rebalance on the warmed 8-shard range store, moving shard 0's
//      whole interval (rows + realized cracked-piece cuts) to shard 1:
//      rows/sec and the carried-cut count.
//
// Every configuration answers the identical query stream and the result
// checksum is compared across configurations, so a routing bug fails
// loudly rather than flattering the numbers. The `headline` row reports
// shard_scaling = range-routed qps at 8 shards / qps at 1 shard. On a
// 1-core host expect little throughput scaling (legs serialize on the
// pool); the per-shard pruning of sweep 1 still helps, because pruned
// queries touch fewer rows regardless of parallelism.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dist/shard_router.h"
#include "dist/sharded_database.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace aidx;

namespace {

constexpr std::size_t kMaxShards = 8;

void Require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "FATAL: %s\n", what);
  std::exit(1);
}

std::int64_t PayloadA(std::int64_t k) { return k * 7 + 1; }
std::int64_t PayloadB(std::int64_t k) { return k % 13 - 5; }

QueryRequest CountReq(const RangePredicate<std::int64_t>& pred) {
  QueryRequest req;
  req.table = "t";
  req.column = "k";
  req.predicate = pred;
  req.strategy = StrategyConfig::Crack();
  return req;
}

TableRoutingSpec SpecFor(RoutingKind kind, std::size_t num_shards,
                         std::int64_t domain) {
  TableRoutingSpec spec;
  spec.key_column = "k";
  spec.kind = kind;
  if (kind == RoutingKind::kRange) {
    for (std::size_t i = 1; i < num_shards; ++i) {
      spec.range_boundaries.push_back(
          static_cast<std::int64_t>(i) * domain / static_cast<std::int64_t>(num_shards));
    }
  }
  return spec;
}

// Builds an N-shard store and bulk-loads `n` rows whose keys are a
// multiplicative scramble of 0..n-1 (a permutation when n is a power of
// two; with other n a few keys collide, which is harmless — the checksum
// only needs every config to load identical data).
std::unique_ptr<ShardedDatabase> BuildStore(RoutingKind kind, std::size_t shards,
                                            std::size_t n, ThreadPool* pool) {
  ShardedDatabaseOptions options;
  options.num_shards = shards;
  options.scatter_pool = pool;
  auto db = std::make_unique<ShardedDatabase>(options);
  const auto domain = static_cast<std::int64_t>(n);
  Require(db->CreateTable("t", SpecFor(kind, shards, domain)).ok(), "create");
  for (const char* column : {"k", "a", "b"}) {
    Require(db->AddColumn("t", column).ok(), "add column");
  }
  std::vector<std::int64_t> rows;
  rows.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::int64_t>((i * 2654435761ULL) % n);
    rows.push_back(k);
    rows.push_back(PayloadA(k));
    rows.push_back(PayloadB(k));
  }
  Require(db->InsertBatch("t", rows).ok(), "load");
  return db;
}

// `q` random fixed-selectivity key ranges; identical across configs.
std::vector<RangePredicate<std::int64_t>> MakeQueries(std::size_t q,
                                                      std::int64_t domain) {
  std::mt19937_64 rng(20120313);  // EDBT 2012
  const std::int64_t width = domain / 100 > 0 ? domain / 100 : 1;
  std::uniform_int_distribution<std::int64_t> lo_dist(0, domain - width);
  std::vector<RangePredicate<std::int64_t>> queries;
  queries.reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    const std::int64_t lo = lo_dist(rng);
    queries.push_back(RangePredicate<std::int64_t>::HalfOpen(lo, lo + width));
  }
  return queries;
}

struct SweepPoint {
  double qps = 0.0;
  std::uint64_t checksum = 0;
};

SweepPoint RunSweep(ShardedDatabase& db,
                    const std::vector<RangePredicate<std::int64_t>>& queries) {
  SweepPoint point;
  WallTimer timer;
  for (const auto& pred : queries) {
    auto count = db.Count(CountReq(pred));
    Require(count.ok(), "count");
    point.checksum += count.value();
  }
  point.qps = static_cast<double>(queries.size()) / timer.ElapsedSeconds();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto domain = static_cast<std::int64_t>(n);
  const auto queries = MakeQueries(q, domain);

  bench::JsonReport json("e13_sharded", argc, argv);
  bench::PrintHeader("E13 sharded serving layer",
                     "scatter/gather scaling and rebalance cost for adaptive "
                     "indexes behind a routed query API");
  std::printf("rows: %zu, queries: %zu, selectivity 1%%\n\n", n, q);
  std::printf("%8s %8s %14s %16s\n", "routing", "shards", "qps", "checksum");

  ThreadPool pool(kMaxShards);
  {
    // Throwaway store: pays one-time process costs (heap growth, pool
    // thread wakeup, first-touch page faults) outside every measured
    // window. Each measured config still adapts from scratch — the first
    // config would otherwise eat these costs alone and skew the scaling.
    auto warm = BuildStore(RoutingKind::kRange, 2, std::min<std::size_t>(n, 4096),
                           &pool);
    std::vector<RangePredicate<std::int64_t>> warm_queries(
        queries.begin(), queries.begin() + std::min<std::size_t>(q, 32));
    (void)RunSweep(*warm, warm_queries);
  }
  std::uint64_t reference_checksum = 0;
  double range_qps_1 = 0.0;
  double range_qps_max = 0.0;
  std::unique_ptr<ShardedDatabase> warmed_range_store;

  for (const RoutingKind kind : {RoutingKind::kRange, RoutingKind::kHash}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
      auto db = BuildStore(kind, shards, n, &pool);
      const SweepPoint point = RunSweep(*db, queries);
      if (reference_checksum == 0) reference_checksum = point.checksum;
      Require(point.checksum == reference_checksum, "checksum mismatch");
      std::printf("%8.*s %8zu %14.0f %16llu\n",
                  static_cast<int>(RoutingKindName(kind).size()),
                  RoutingKindName(kind).data(), shards, point.qps,
                  static_cast<unsigned long long>(point.checksum));
      json.AddRow("shard_sweep")
          .Set("routing", RoutingKindName(kind))
          .Set("shards", shards)
          .Set("qps", point.qps)
          .Set("checksum", point.checksum);
      if (kind == RoutingKind::kRange) {
        if (shards == 1) range_qps_1 = point.qps;
        if (shards == kMaxShards) {
          range_qps_max = point.qps;
          warmed_range_store = std::move(db);  // cracked by the sweep
        }
      }
    }
  }

  // Sweep 3: migrate shard 0's whole interval, index investment and all,
  // out of the store that the range sweep just cracked.
  {
    ShardedDatabase& db = *warmed_range_store;
    const std::int64_t hi = domain / static_cast<std::int64_t>(kMaxShards);
    WallTimer timer;
    auto report = db.Rebalance("t", 0, 1, 0, hi);
    const double seconds = timer.ElapsedSeconds();
    Require(report.ok(), "rebalance");
    const double rows_per_s =
        static_cast<double>(report.value().rows_moved) / seconds;
    std::printf("rebalance: %zu rows in %.3fs (%.0f rows/s), %zu cuts in %zu "
                "bundles carried\n",
                report.value().rows_moved, seconds, rows_per_s,
                report.value().cuts_carried, report.value().bundles);
    json.AddRow("rebalance")
        .Set("rows_moved", report.value().rows_moved)
        .Set("seconds", seconds)
        .Set("rows_per_s", rows_per_s)
        .Set("cuts_carried", report.value().cuts_carried)
        .Set("bundles", report.value().bundles);
    // The moved range must answer identically from its new home.
    const SweepPoint after = RunSweep(db, queries);
    Require(after.checksum == reference_checksum, "post-rebalance checksum");
  }

  const double scaling = range_qps_max / range_qps_1;
  std::printf("headline: range-routed qps scaling at %zu shards = %.2fx\n",
              kMaxShards, scaling);
  json.AddRow("headline")
      .Set("metric", "shard_scaling")
      .Set("shard_scaling", scaling)
      .Set("routing", "range")
      .Set("shards", kMaxShards);
  json.Write();
  return 0;
}
