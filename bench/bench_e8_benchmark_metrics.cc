// E8 — The adaptive-indexing benchmark table (TPCTC'10): for every
// strategy × workload pattern, the two headline metrics — first-query
// overhead relative to a scan, and queries-to-convergence — plus totals.
//
// Expected shape: cracking ≈ 1-2 × scan first query; sort/merge pay much
// more up front but converge in few queries; on sequential patterns plain
// cracking never converges while stochastic cracking does.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main() {
  bench::PrintHeader("E8 adaptive indexing benchmark",
                     "tutorial §2 'Performance Metrics and Benchmark' / TPCTC'10 table");
  const std::size_t n = bench::ColumnSize() / 2;
  const std::size_t q = bench::NumQueries() / 2;
  const auto domain = static_cast<std::int64_t>(n);
  const auto data = GenerateData({.n = n, .domain = domain, .seed = 7});

  const QueryPattern patterns[] = {QueryPattern::kRandom, QueryPattern::kSkewed,
                                   QueryPattern::kSequential, QueryPattern::kPeriodic};
  const StrategyConfig configs[] = {
      StrategyConfig::FullScan(),
      StrategyConfig::FullSort(),
      StrategyConfig::Crack(),
      StrategyConfig::StochasticCrack(1 << 14),
      StrategyConfig::AdaptiveMerge(n / 16),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, n / 16),
  };

  std::cout << "N=" << n << ", Q=" << q << " per pattern, selectivity 0.1%\n\n";
  TablePrinter table({"workload", "strategy", "first query", "xscan", "converged@",
                      "total"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const QueryPattern pattern : patterns) {
    const auto queries = GenerateQueries({.pattern = pattern,
                                          .num_queries = q,
                                          .domain = domain,
                                          .selectivity = 0.001,
                                          .seed = 13});
    // Per-pattern references.
    const RunResult scan =
        RunWorkload(data, StrategyConfig::FullScan(), queries, QueryPatternName(pattern));
    const RunResult sort =
        RunWorkload(data, StrategyConfig::FullSort(), queries, QueryPatternName(pattern));
    const double scan_cost = scan.tail_mean(100);
    const double reference = sort.tail_mean(100);

    for (const auto& config : configs) {
      const RunResult run =
          RunWorkload(data, config, queries, QueryPatternName(pattern));
      if (run.count_checksum != scan.count_checksum) {
        std::cerr << "CHECKSUM MISMATCH: " << run.strategy << " on "
                  << QueryPatternName(pattern) << "\n";
        return 1;
      }
      const BenchmarkMetrics m = ComputeMetrics(run, scan_cost, reference,
                                            {.convergence_factor = 8.0});
      char overhead[32];
      std::snprintf(overhead, sizeof(overhead), "%.1f", m.first_query_overhead);
      const std::string converged = m.queries_to_convergence < 0
                                        ? "never"
                                        : std::to_string(m.queries_to_convergence + 1);
      table.AddRow({QueryPatternName(pattern), run.strategy,
                    FormatSeconds(m.first_query_seconds), overhead, converged,
                    FormatSeconds(m.total_seconds)});
      csv_rows.push_back({QueryPatternName(pattern), run.strategy,
                          std::to_string(m.first_query_seconds),
                          std::to_string(m.first_query_overhead), converged,
                          std::to_string(m.total_seconds)});
    }
  }
  table.Print(std::cout);
  const std::string csv = bench::CsvPath("e8_metrics.csv");
  if (!csv.empty()) {
    (void)WriteCsv(csv, {"workload", "strategy", "first_s", "xscan", "converged",
                         "total_s"},
                   csv_rows);
    std::cout << "(csv: " << csv << ")\n";
  }
  return 0;
}
