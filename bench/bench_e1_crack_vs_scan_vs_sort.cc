// E1 — Selection cracking vs the two classical extremes (CIDR'07 Fig. 5
// shape): per-query response time over a random range workload for
//   scan   (never index),
//   sort   (full index up front: first query pays the sort),
//   btree  (full index variant),
//   crack  (adaptive: every query reorganizes a little).
//
// Expected shape: scan flat; sort/btree huge first query then microseconds;
// crack starts near scan cost and converges towards index speed.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

int main(int argc, char** argv) {
  bench::JsonReport json("e1_crack_vs_scan_vs_sort", argc, argv);
  bench::PrintHeader("E1 crack vs scan vs full index",
                     "tutorial §2 'Selection Cracking' / CIDR'07 response-time figure");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  std::cout << "column: " << n << " uniform int64, workload: " << q
            << " random ranges, selectivity 0.1%\n\n";

  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .distribution = DataDistribution::kUniform,
                                  .seed = 7});
  const auto queries = GenerateQueries({.pattern = QueryPattern::kRandom,
                                        .num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::vector<RunResult> runs;
  for (const auto& config : {StrategyConfig::FullScan(), StrategyConfig::FullSort(),
                             StrategyConfig::BTree(), StrategyConfig::Crack()}) {
    runs.push_back(RunWorkload(data, config, queries, "random"));
  }
  // Cross-strategy result agreement.
  for (const auto& run : runs) {
    if (run.count_checksum != runs.front().count_checksum) {
      std::cerr << "CHECKSUM MISMATCH: " << run.strategy << "\n";
      return 1;
    }
  }

  std::cout << "per-query response time (log-spaced sample):\n";
  PrintSeriesComparison(std::cout, runs, bench::CsvPath("e1_series.csv"));

  std::cout << "\nsummary:\n";
  TablePrinter summary({"strategy", "first query", "median tail", "total"});
  for (const auto& run : runs) {
    summary.AddRow({run.strategy, FormatSeconds(run.first_query_seconds()),
                    FormatSeconds(run.tail_mean(100)),
                    FormatSeconds(run.total_seconds())});
    json.AddRow("summary")
        .Set("strategy", run.strategy)
        .Set("rows", n)
        .Set("queries", q)
        .Set("first_query_seconds", run.first_query_seconds())
        .Set("tail_mean_seconds", run.tail_mean(100))
        .Set("total_seconds", run.total_seconds());
  }
  summary.Print(std::cout);
  json.Write();
  return 0;
}
