// E2 — Cumulative-average cost and break-even points (CIDR'07 cumulative
// figure): when does investing in (adaptive) indexing pay off?
//
// Expected shape: cracking's cumulative average undercuts scan within a
// handful of queries; full sort needs hundreds/thousands of queries to
// amortize its first-query spike; cracking is the best of both early on.
#include <iostream>

#include "bench_common.h"
#include "exec/access_path.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

using namespace aidx;

namespace {

/// First query index where `a`'s cumulative total drops below `b`'s; -1 if
/// never within the run.
std::ptrdiff_t BreakEven(const RunResult& a, const RunResult& b) {
  double ca = 0;
  double cb = 0;
  for (std::size_t i = 0; i < a.per_query_seconds.size(); ++i) {
    ca += a.per_query_seconds[i];
    cb += b.per_query_seconds[i];
    if (ca < cb) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace

int main() {
  bench::PrintHeader("E2 cumulative average & break-even",
                     "tutorial §2 'Selection Cracking' / CIDR'07 cumulative figure");
  const std::size_t n = bench::ColumnSize();
  const std::size_t q = bench::NumQueries();
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .seed = 7});
  const auto queries = GenerateQueries({.num_queries = q,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.001,
                                        .seed = 13});

  std::vector<RunResult> runs;
  for (const auto& config : {StrategyConfig::FullScan(), StrategyConfig::FullSort(),
                             StrategyConfig::Crack()}) {
    runs.push_back(RunWorkload(data, config, queries, "random"));
  }

  std::cout << "cumulative average per query (log-spaced sample):\n";
  TablePrinter table({"query", runs[0].strategy, runs[1].strategy, runs[2].strategy});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t i : LogSpacedIndices(q)) {
    table.AddRow({std::to_string(i + 1), FormatSeconds(runs[0].cumulative_average(i)),
                  FormatSeconds(runs[1].cumulative_average(i)),
                  FormatSeconds(runs[2].cumulative_average(i))});
  }
  table.Print(std::cout);

  const auto& scan = runs[0];
  const auto& sort = runs[1];
  const auto& crack = runs[2];
  std::cout << "\nbreak-even (cumulative cost drops below the competitor):\n";
  TablePrinter be({"comparison", "query #"});
  const auto show = [](std::ptrdiff_t v) {
    return v < 0 ? std::string("never (in run)") : std::to_string(v + 1);
  };
  be.AddRow({"crack beats scan", show(BreakEven(crack, scan))});
  be.AddRow({"crack beats sort", show(BreakEven(crack, sort))});
  be.AddRow({"sort beats scan", show(BreakEven(sort, scan))});
  be.AddRow({"sort catches crack", show(BreakEven(sort, crack))});
  be.Print(std::cout);
  return 0;
}
