// Striped write-path correctness (docs/CONCURRENCY.md §4, the write half):
//
//  - differential oracle: under every merge policy and value type, a
//    column taking the striped write path (piece-routed, value-hashed
//    write buckets under stripe latches) must produce exactly the answers
//    of the kPartitionMutex baseline AND of a plain vector model —
//    including Delete's hit/miss return value on every single call;
//  - batch writes, row-id materialization, and stochastic cracking ride
//    the same oracle;
//  - multi-threaded writers against a single-threaded replay: the final
//    multiset must match regardless of interleaving;
//  - write accounting: striped enqueues land in AggregatedUpdateStats with
//    the same queued/merged totals as the coarse path;
//  - adaptive stripe growth: the active stripe count starts small, grows
//    only with realized cuts, never passes the allocated capacity, and
//    pins to the capacity when adaptive_stripes is off.
//
// Runs under ThreadSanitizer via the `concurrency` ctest label
// (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/access_path.h"
#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/rng.h"

namespace aidx {
namespace {

template <typename T>
std::vector<T> RandomValues(std::size_t n, std::int64_t domain,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.NextBounded(domain));
  return v;
}

template <typename T>
RangePredicate<T> RandomPredicate(Rng* rng, std::int64_t domain) {
  const auto a = static_cast<T>(rng->NextInRange(-5, domain + 5));
  const auto width = static_cast<T>(rng->NextInRange(0, domain / 4));
  const auto kind = [&]() -> BoundKind {
    switch (rng->NextBounded(3)) {
      case 0: return BoundKind::kInclusive;
      case 1: return BoundKind::kExclusive;
      default: return BoundKind::kUnbounded;
    }
  };
  return RangePredicate<T>{a, kind(), a + width, kind()};
}

PartitionedCrackerOptions StripedWriteOptions(std::size_t partitions = 6) {
  PartitionedCrackerOptions options;
  options.num_partitions = partitions;
  options.latch_mode = LatchMode::kStripedPiece;
  options.write_mode = WriteMode::kStripedWrite;
  return options;
}

PartitionedCrackerOptions CoarseOptions(std::size_t partitions = 6) {
  PartitionedCrackerOptions options;
  options.num_partitions = partitions;
  options.latch_mode = LatchMode::kPartitionMutex;
  return options;
}

// The core differential pin, typed over every column value type: striped
// writes vs the coarse whole-partition baseline vs a vector model, with
// every Delete's return value asserted equal call by call.
template <typename T>
class StripedWriteDifferentialTest : public ::testing::Test {};

using ValueTypes = ::testing::Types<std::int32_t, std::int64_t, double>;
TYPED_TEST_SUITE(StripedWriteDifferentialTest, ValueTypes);

TYPED_TEST(StripedWriteDifferentialTest, MixedWorkloadAllMergePolicies) {
  using T = TypeParam;
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kComplete, MergePolicy::kGradual}) {
    constexpr std::int64_t kDomain = 1500;
    auto model = RandomValues<T>(6000, kDomain, 81);
    PartitionedCrackerOptions striped_opts = StripedWriteOptions();
    striped_opts.merge_policy = policy;
    PartitionedCrackerOptions coarse_opts = CoarseOptions();
    coarse_opts.merge_policy = policy;
    PartitionedCrackerColumn<T> striped(model, striped_opts);
    PartitionedCrackerColumn<T> coarse(model, coarse_opts);
    Rng rng(82);
    for (int step = 0; step < 600; ++step) {
      const auto dice = rng.NextBounded(10);
      if (dice < 3) {
        const T v = static_cast<T>(rng.NextBounded(kDomain));
        striped.Insert(v);
        coarse.Insert(v);
        model.push_back(v);
      } else if (dice < 5) {
        // Half the deletes target live values, half target values that may
        // be absent: the hit/miss decision must match on every call.
        const T v = (rng.NextBounded(2) == 0 && !model.empty())
                        ? model[rng.NextBounded(model.size())]
                        : static_cast<T>(rng.NextBounded(kDomain));
        const bool expect = [&] {
          const auto it = std::find(model.begin(), model.end(), v);
          if (it == model.end()) return false;
          *it = model.back();
          model.pop_back();
          return true;
        }();
        ASSERT_EQ(striped.Delete(v), expect)
            << MergePolicyName(policy) << " step " << step;
        ASSERT_EQ(coarse.Delete(v), expect)
            << MergePolicyName(policy) << " step " << step;
      } else if (dice < 8) {
        const auto p = RandomPredicate<T>(&rng, kDomain);
        const std::size_t expect = ScanCount<T>(model, p);
        ASSERT_EQ(striped.Count(p), expect)
            << MergePolicyName(policy) << " step " << step << " " << p.ToString();
        ASSERT_EQ(coarse.Count(p), expect)
            << MergePolicyName(policy) << " step " << step;
      } else {
        const auto p = RandomPredicate<T>(&rng, kDomain);
        const long double expect = ScanSum<T>(model, p);
        ASSERT_DOUBLE_EQ(static_cast<double>(striped.Sum(p)),
                         static_cast<double>(expect))
            << MergePolicyName(policy) << " step " << step;
      }
    }
    EXPECT_EQ(striped.size(), model.size()) << MergePolicyName(policy);
    EXPECT_EQ(striped.Count(RangePredicate<T>::All()), model.size());
    EXPECT_EQ(coarse.Count(RangePredicate<T>::All()), model.size());
    EXPECT_TRUE(striped.ValidatePieces()) << MergePolicyName(policy);
    EXPECT_TRUE(coarse.ValidatePieces()) << MergePolicyName(policy);
  }
}

TEST(StripedWriteTest, MaterializeValuesMatchesModelMidPending) {
  constexpr std::int64_t kDomain = 900;
  auto model = RandomValues<std::int64_t>(4000, kDomain, 91);
  PartitionedCrackerColumn<std::int64_t> col(model, StripedWriteOptions());
  Rng rng(92);
  for (int step = 0; step < 300; ++step) {
    const auto dice = rng.NextBounded(6);
    if (dice < 2) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      col.Insert(v);
      model.push_back(v);
    } else if (dice < 3 && !model.empty()) {
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(col.Delete(model[pick]));
      model[pick] = model.back();
      model.pop_back();
    } else {
      // Materialize WITHOUT flushing first: buffered writes must fold into
      // the result through the overlay, not get lost.
      const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
      std::vector<std::int64_t> got;
      col.MaterializeValues(p, &got);
      std::vector<std::int64_t> expect;
      for (const auto v : model) {
        if (p.Matches(v)) expect.push_back(v);
      }
      std::sort(got.begin(), got.end());
      std::sort(expect.begin(), expect.end());
      ASSERT_EQ(got, expect) << "step " << step << " " << p.ToString();
    }
  }
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, RowIdsSurviveStripedBuffering) {
  PartitionedCrackerOptions options = StripedWriteOptions(4);
  options.column_options.with_row_ids = true;
  const auto base = RandomValues<std::int64_t>(2000, 500, 93);
  PartitionedCrackerColumn<std::int64_t> col(base, options);
  // Fresh inserts get ids >= base size; a query overlapping them must
  // surface those exact ids even while the tuples sit in write buckets.
  const row_id_t r1 = col.Insert(1000);
  const row_id_t r2 = col.Insert(1001);
  const row_id_t r3 = col.Insert(1002);
  EXPECT_GE(r1, base.size());
  EXPECT_NE(r1, r2);
  ASSERT_TRUE(col.Delete(1001));
  std::vector<row_id_t> rids;
  col.MaterializeRowIds(RangePredicate<std::int64_t>::AtLeast(1000), &rids);
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<row_id_t>{r1, r3}));
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, BatchVariantsMatchScalarLoop) {
  constexpr std::int64_t kDomain = 700;
  const auto base = RandomValues<std::int64_t>(3000, kDomain, 95);
  PartitionedCrackerColumn<std::int64_t> batched(base, StripedWriteOptions());
  PartitionedCrackerColumn<std::int64_t> scalar(base, StripedWriteOptions());
  auto model = base;
  Rng rng(96);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::int64_t> ins(40);
    for (auto& v : ins) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
    batched.InsertBatch(ins);
    for (const auto v : ins) {
      scalar.Insert(v);
      model.push_back(v);
    }
    std::vector<std::int64_t> del;
    for (int i = 0; i < 25; ++i) {
      // Mix of present values and a sentinel absent from the domain.
      del.push_back(i % 5 == 0 ? std::int64_t{10'000}
                               : model[rng.NextBounded(model.size())]);
    }
    const std::size_t batch_hits = batched.DeleteBatch(del);
    std::size_t scalar_hits = 0;
    for (const auto v : del) {
      const bool hit = scalar.Delete(v);
      scalar_hits += hit ? 1 : 0;
      if (hit) {
        const auto it = std::find(model.begin(), model.end(), v);
        ASSERT_NE(it, model.end());
        *it = model.back();
        model.pop_back();
      }
    }
    ASSERT_EQ(batch_hits, scalar_hits) << "round " << round;
    const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
    ASSERT_EQ(batched.Count(p), ScanCount<std::int64_t>(model, p));
    ASSERT_EQ(scalar.Count(p), ScanCount<std::int64_t>(model, p));
  }
  EXPECT_EQ(batched.size(), model.size());
  EXPECT_TRUE(batched.ValidatePieces());
  EXPECT_TRUE(scalar.ValidatePieces());
}

TEST(StripedWriteTest, StochasticCrackingRidesTheSameOracle) {
  constexpr std::int64_t kDomain = 1200;
  auto model = RandomValues<std::int64_t>(5000, kDomain, 97);
  PartitionedCrackerOptions options = StripedWriteOptions();
  options.column_options.stochastic_threshold = 256;  // force stochastic cuts
  PartitionedCrackerColumn<std::int64_t> col(model, options);
  Rng rng(98);
  for (int step = 0; step < 400; ++step) {
    const auto dice = rng.NextBounded(8);
    if (dice < 2) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      col.Insert(v);
      model.push_back(v);
    } else if (dice < 3 && !model.empty()) {
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(col.Delete(model[pick]));
      model[pick] = model.back();
      model.pop_back();
    } else {
      const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
      ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(model, p))
          << "step " << step << " " << p.ToString();
    }
  }
  EXPECT_TRUE(col.ValidatePieces());
}

// Multi-threaded writers + readers, then a single-threaded replay of the
// same successful operations into a model: the final multiset must match.
TEST(StripedWriteTest, ConcurrentWritersConvergeToSequentialReplay) {
  constexpr std::int64_t kDomain = 800;
  constexpr std::size_t kThreads = 8;
  constexpr int kOpsPerThread = 300;
  const auto base = RandomValues<std::int64_t>(16000, kDomain, 99);
  PartitionedCrackerColumn<std::int64_t> col(base, StripedWriteOptions(4));

  // Each thread inserts values from a private residue class and deletes
  // only its own previous inserts, so every Delete must succeed and the
  // expected final multiset is exact regardless of interleaving.
  std::array<std::vector<std::int64_t>, kThreads> surviving;
  std::atomic<int> delete_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3100 + t);
      std::vector<std::int64_t>& mine = surviving[t];
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto dice = rng.NextBounded(10);
        if (dice < 4) {
          const auto v = static_cast<std::int64_t>(
              kDomain + (rng.NextBounded(kDomain) * kThreads + t));
          col.Insert(v);
          mine.push_back(v);
        } else if (dice < 6 && !mine.empty()) {
          const std::size_t pick = rng.NextBounded(mine.size());
          if (!col.Delete(mine[pick])) delete_misses.fetch_add(1);
          mine[pick] = mine.back();
          mine.pop_back();
        } else {
          const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
          (void)col.Count(p);  // exercised concurrently; exactness below
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(delete_misses.load(), 0);

  std::vector<std::int64_t> model = base;
  for (const auto& mine : surviving) {
    model.insert(model.end(), mine.begin(), mine.end());
  }
  EXPECT_EQ(col.size(), model.size());
  EXPECT_EQ(col.Count(RangePredicate<std::int64_t>::All()), model.size());
  std::vector<std::int64_t> got;
  col.MaterializeValues(RangePredicate<std::int64_t>::All(), &got);
  std::sort(got.begin(), got.end());
  std::sort(model.begin(), model.end());
  EXPECT_EQ(got, model);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, QueuedAndMergedCountsMatchCoarsePath) {
  const auto base = RandomValues<std::int64_t>(4000, 1000, 101);
  PartitionedCrackerColumn<std::int64_t> striped(base, StripedWriteOptions());
  PartitionedCrackerColumn<std::int64_t> coarse(base, CoarseOptions());
  for (std::int64_t v = 0; v < 30; ++v) {
    striped.Insert(v * 13 % 1000);
    coarse.Insert(v * 13 % 1000);
  }
  for (std::int64_t v = 0; v < 10; ++v) {
    ASSERT_TRUE(striped.Delete(v * 13 % 1000));
    ASSERT_TRUE(coarse.Delete(v * 13 % 1000));
  }
  // Force every pending tuple through the pipeline, then compare ledgers.
  ASSERT_EQ(striped.Count(RangePredicate<std::int64_t>::All()),
            coarse.Count(RangePredicate<std::int64_t>::All()));
  const UpdateStats s = striped.AggregatedUpdateStats();
  const UpdateStats c = coarse.AggregatedUpdateStats();
  EXPECT_EQ(s.inserts_queued, c.inserts_queued);
  EXPECT_EQ(s.deletes_queued + s.deletes_cancelled,
            c.deletes_queued + c.deletes_cancelled);
  EXPECT_EQ(s.inserts_merged + s.deletes_cancelled,
            c.inserts_merged + c.deletes_cancelled);
  EXPECT_EQ(s.inserts_queued, 30u);
}

TEST(StripedWriteTest, InsertThenDeleteCancelsInsideTheBucket) {
  const auto base = RandomValues<std::int64_t>(1000, 300, 103);
  PartitionedCrackerColumn<std::int64_t> col(base, StripedWriteOptions());
  const std::size_t before = col.size();
  col.Insert(9999);  // outside the base domain: uniquely identifiable
  ASSERT_TRUE(col.Delete(9999));
  EXPECT_EQ(col.size(), before);
  const UpdateStats stats = col.AggregatedUpdateStats();
  EXPECT_EQ(stats.deletes_cancelled, 1u);
  EXPECT_EQ(stats.deletes_queued, 0u);
  EXPECT_EQ(col.Count(RangePredicate<std::int64_t>::AtLeast(9999)), 0u);
  EXPECT_FALSE(col.Delete(9999));  // nothing left to claim
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, DeleteClaimsAreExactAcrossDuplicates) {
  // Three live copies of one value spread across base + buffer: exactly
  // three deletes may succeed, the fourth must miss.
  std::vector<std::int64_t> base(500);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::int64_t>(i);
  }
  base.push_back(42);  // second copy of 42 in the base
  PartitionedCrackerColumn<std::int64_t> col(base, StripedWriteOptions(2));
  col.Insert(42);  // third copy, buffered
  EXPECT_TRUE(col.Delete(42));
  EXPECT_TRUE(col.Delete(42));
  EXPECT_TRUE(col.Delete(42));
  EXPECT_FALSE(col.Delete(42));
  EXPECT_EQ(col.Count(RangePredicate<std::int64_t>::Between(42, 42)), 0u);
  EXPECT_EQ(col.size(), base.size() - 2);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, CoarseWriteModeUnderStripedLatchesStaysExact) {
  // write_mode is independent of latch_mode: striped reads with the coarse
  // write fallback must still satisfy the model.
  constexpr std::int64_t kDomain = 600;
  auto model = RandomValues<std::int64_t>(3000, kDomain, 105);
  PartitionedCrackerOptions options = StripedWriteOptions();
  options.write_mode = WriteMode::kCoarseWrite;
  PartitionedCrackerColumn<std::int64_t> col(model, options);
  Rng rng(106);
  for (int step = 0; step < 300; ++step) {
    const auto dice = rng.NextBounded(6);
    if (dice < 2) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      col.Insert(v);
      model.push_back(v);
    } else if (dice < 3 && !model.empty()) {
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(col.Delete(model[pick]));
      model[pick] = model.back();
      model.pop_back();
    } else {
      const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
      ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(model, p));
    }
  }
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(StripedWriteTest, AdaptiveStripesGrowWithRealizedCuts) {
  const auto base = RandomValues<std::int64_t>(40000, 10000, 107);
  PartitionedCrackerOptions options = StripedWriteOptions(2);
  options.latch_stripes = 64;
  PartitionedCrackerColumn<std::int64_t> col(base, options);
  ASSERT_EQ(col.latch_stripes(), 64u);  // capacity is allocated up front
  EXPECT_LE(col.active_stripes(0), 4u);  // but activation starts small
  Rng rng(108);
  for (int q = 0; q < 400; ++q) {
    const auto p = RandomPredicate<std::int64_t>(&rng, 10000);
    (void)col.Count(p);
  }
  col.FlushPending();  // a coarse hold runs the growth check
  std::size_t grown = 0;
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    EXPECT_LE(col.active_stripes(p), 64u);
    grown = std::max(grown, col.active_stripes(p));
  }
  EXPECT_GT(grown, 4u) << "hundreds of cracks must grow the active table";

  // With adaptation off, the full capacity is active from the start.
  options.adaptive_stripes = false;
  PartitionedCrackerColumn<std::int64_t> fixed(base, options);
  EXPECT_EQ(fixed.active_stripes(0), 64u);
  EXPECT_EQ(fixed.active_stripes(1), 64u);
}

TEST(StripedWriteTest, DisplayNamesExposeWriteKnobs) {
  StrategyConfig config = StrategyConfig::ParallelCrack(8, 4);
  EXPECT_EQ(config.DisplayName(), "pcrack(8x4)");  // defaults stay terse
  config.write_mode = WriteMode::kCoarseWrite;
  EXPECT_EQ(config.DisplayName(), "pcrack(8x4-wc)");
  config.write_mode = WriteMode::kStripedWrite;
  config.adaptive_stripes = false;
  EXPECT_EQ(config.DisplayName(), "pcrack(8x4-fs)");
  config.adaptive_stripes = true;
  config.background_merge_threshold = 64;
  EXPECT_EQ(config.DisplayName(), "pcrack(8x4-bg64)");
  // Knob variants must be distinct configs (the Database caches on this).
  EXPECT_FALSE(config == StrategyConfig::ParallelCrack(8, 4));
}

TEST(StripedWriteTest, AccessPathStripedWritesMatchOracle) {
  constexpr std::int64_t kDomain = 500;
  auto base = RandomValues<std::int64_t>(4000, kDomain, 109);
  StrategyConfig config = StrategyConfig::ParallelCrack(4, 2);
  const auto path = MakeAccessPath<std::int64_t>(base, config);
  auto model = base;
  Rng rng(110);
  for (int step = 0; step < 250; ++step) {
    const auto dice = rng.NextBounded(6);
    if (dice < 2) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      path->Insert(v);
      model.push_back(v);
    } else if (dice < 3 && !model.empty()) {
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(path->Delete(model[pick]));
      model[pick] = model.back();
      model.pop_back();
    } else {
      const auto p = RandomPredicate<std::int64_t>(&rng, kDomain);
      ASSERT_EQ(path->Count(p), ScanCount<std::int64_t>(model, p));
    }
  }
  EXPECT_EQ(path->Count(RangePredicate<std::int64_t>::All()), model.size());
}

}  // namespace
}  // namespace aidx
