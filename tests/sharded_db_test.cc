// Differential harness for the sharded serving layer (src/dist/,
// docs/DISTRIBUTION.md): a ShardedDatabase over N nodes must answer every
// query bit-exactly like one single-node Database over the same rows —
// across shard counts, both routing disciplines, interleaved DML,
// rebalances, and seeded fault schedules.
//
// The acceptance pins:
//  - differential exactness for N in {1, 2, 4, 8} under hash and range
//    routing, with writes interleaved between queries;
//  - Rebalance preserves index investment: carried cuts are re-realized
//    on the target, so a query bounded at a carried cut value performs
//    ZERO new cracks there;
//  - reads overlapping a rebalance stay exact (the topology lock makes a
//    scatter see the migration wholly before or wholly after);
//  - dist.* failpoints abort cleanly in the validate phase — a faulted
//    route/scatter/migration leaves every shard's answer unchanged.
//
// Environment knobs (CI's fault-schedule job sets both; the `dist`
// schedule aims at this suite):
//   AIDX_FAULT_SCHEDULE  quiet | delays | errors | mixed | dist
//   AIDX_FAULT_SEED      seed for the randomized test, echoed in the log
//
// Runs under ThreadSanitizer via the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dist/sharded_database.h"
#include "exec/engine.h"
#include "util/failpoint.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

constexpr std::int64_t kDomain = 1000;

// Rows are a pure function of the key, so two stores holding the same key
// multiset hold identical row multisets — the property every differential
// comparison below rests on.
std::int64_t PayloadA(std::int64_t k) { return k * 7 + 1; }
std::int64_t PayloadB(std::int64_t k) { return k % 13 - 5; }

QueryRequest Req(std::string table, std::string column, Pred pred) {
  QueryRequest req;
  req.table = std::move(table);
  req.column = std::move(column);
  req.predicate = pred;
  req.strategy = StrategyConfig::Crack();
  return req;
}

std::vector<std::int64_t> RandomKeys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  return keys;
}

std::vector<std::int64_t> RowMajor(const std::vector<std::int64_t>& keys) {
  std::vector<std::int64_t> rows;
  rows.reserve(keys.size() * 3);
  for (auto k : keys) {
    rows.push_back(k);
    rows.push_back(PayloadA(k));
    rows.push_back(PayloadB(k));
  }
  return rows;
}

TableRoutingSpec SpecFor(RoutingKind kind, std::size_t num_shards) {
  TableRoutingSpec spec;
  spec.key_column = "k";
  spec.kind = kind;
  if (kind == RoutingKind::kRange) {
    // Evenly spaced boundaries over the key domain.
    for (std::size_t i = 1; i < num_shards; ++i) {
      spec.range_boundaries.push_back(
          static_cast<std::int64_t>(i * kDomain / num_shards));
    }
  }
  return spec;
}

Status SetUpTable(ShardedDatabase* db, RoutingKind kind) {
  AIDX_RETURN_NOT_OK(db->CreateTable("t", SpecFor(kind, db->num_shards())));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "k"));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "a"));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "b"));
  return Status::OK();
}

Status SetUpOracle(Database* db) {
  AIDX_RETURN_NOT_OK(db->CreateTable("t"));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "k", {}));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "a", {}));
  AIDX_RETURN_NOT_OK(db->AddColumn("t", "b", {}));
  return Status::OK();
}

using RowTuple = std::vector<std::int64_t>;

std::vector<RowTuple> SortedRows(const ProjectionResult<std::int64_t>& res) {
  std::vector<RowTuple> rows(res.num_rows);
  for (std::size_t i = 0; i < res.num_rows; ++i) {
    for (const auto& column : res.columns) rows[i].push_back(column[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ShardedDbTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  static Status Configure(const std::string& spec) {
    return FailpointRegistry::Instance().Configure(spec);
  }
};

// ---------------------------------------------------------------------------
// Router unit surface.
// ---------------------------------------------------------------------------

TEST_F(ShardedDbTest, RouterValidatesSpecs) {
  ShardRouter router(4);
  TableRoutingSpec bad;
  bad.key_column = "k";
  bad.kind = RoutingKind::kRange;
  bad.range_boundaries = {10, 5, 20};  // not ascending
  EXPECT_TRUE(router.RegisterTable("t", bad).IsInvalidArgument());
  bad.range_boundaries = {10, 20};  // wrong count for 4 shards
  EXPECT_TRUE(router.RegisterTable("t", bad).IsInvalidArgument());
  bad.range_boundaries = {10, 20, 30};
  EXPECT_TRUE(router.RegisterTable("t", bad).ok());
  EXPECT_TRUE(router.RegisterTable("t", SpecFor(RoutingKind::kHash, 4))
                  .IsAlreadyExists());
  EXPECT_TRUE(router.ShardOf("unknown", 1).status().IsNotFound());
}

TEST_F(ShardedDbTest, RangeRoutingOwnsContiguousIntervals) {
  ShardRouter router(4);
  TableRoutingSpec spec;
  spec.key_column = "k";
  spec.kind = RoutingKind::kRange;
  spec.range_boundaries = {100, 200, 300};
  ASSERT_TRUE(router.RegisterTable("t", spec).ok());
  EXPECT_EQ(*router.ShardOf("t", -50), 0u);
  EXPECT_EQ(*router.ShardOf("t", 99), 0u);
  EXPECT_EQ(*router.ShardOf("t", 100), 1u);
  EXPECT_EQ(*router.ShardOf("t", 250), 2u);
  EXPECT_EQ(*router.ShardOf("t", 300), 3u);
  EXPECT_EQ(*router.ShardOf("t", 1 << 20), 3u);

  // Range reads prune to intersecting intervals only.
  auto shards = *router.ShardsFor("t", Pred::Between(120, 180));
  EXPECT_EQ(shards, (std::vector<std::size_t>{1}));
  shards = *router.ShardsFor("t", Pred::Between(99, 100));
  EXPECT_EQ(shards, (std::vector<std::size_t>{0, 1}));
  shards = *router.ShardsFor("t", Pred::All());
  EXPECT_EQ(shards.size(), 4u);
  shards = *router.ShardsFor("t", Pred::HalfOpen(0, 100));
  EXPECT_EQ(shards, (std::vector<std::size_t>{0}));
}

TEST_F(ShardedDbTest, HashRoutingIsDeterministicAndTotal) {
  ShardRouter a(8), b(8);
  ASSERT_TRUE(a.RegisterTable("t", SpecFor(RoutingKind::kHash, 8)).ok());
  ASSERT_TRUE(b.RegisterTable("t", SpecFor(RoutingKind::kHash, 8)).ok());
  std::vector<std::size_t> hits(8, 0);
  for (std::int64_t k = 0; k < 4000; ++k) {
    const std::size_t s = *a.ShardOf("t", k);
    ASSERT_LT(s, 8u);
    EXPECT_EQ(s, *b.ShardOf("t", k)) << "ring layout must be stable";
    ++hits[s];
  }
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns nothing";
  }
  // Hash reads scatter everywhere.
  EXPECT_EQ(a.ShardsFor("t", Pred::Between(1, 2))->size(), 8u);
}

TEST_F(ShardedDbTest, OverridesWinForInsertsAndWidenReads) {
  ShardRouter router(4);
  TableRoutingSpec spec;
  spec.key_column = "k";
  spec.kind = RoutingKind::kRange;
  spec.range_boundaries = {100, 200, 300};
  ASSERT_TRUE(router.RegisterTable("t", spec).ok());
  ASSERT_TRUE(router.AddOverride("t", 120, 180, 3).ok());
  EXPECT_EQ(*router.ShardOf("t", 150), 3u);  // override wins
  EXPECT_EQ(*router.ShardOf("t", 199), 1u);  // outside the override
  // A later overlapping override supersedes for inserts...
  ASSERT_TRUE(router.AddOverride("t", 120, 180, 2).ok());
  EXPECT_EQ(*router.ShardOf("t", 150), 2u);
  // ...but reads still include every historical target (superset).
  const auto shards = *router.ShardsFor("t", Pred::Between(150, 150));
  EXPECT_TRUE(std::find(shards.begin(), shards.end(), 3u) != shards.end());
  EXPECT_TRUE(std::find(shards.begin(), shards.end(), 2u) != shards.end());
  EXPECT_EQ(router.num_overrides("t"), 2u);
}

// ---------------------------------------------------------------------------
// Differential exactness across shard counts and routings.
// ---------------------------------------------------------------------------

void RunDifferential(std::size_t num_shards, RoutingKind kind,
                     std::uint64_t seed, ThreadPool* pool) {
  SCOPED_TRACE(std::string(RoutingKindName(kind)) + " N=" +
               std::to_string(num_shards) + " seed=" + std::to_string(seed));
  ShardedDatabaseOptions options;
  options.num_shards = num_shards;
  options.scatter_pool = pool;
  ShardedDatabase sharded(options);
  Database oracle;
  ASSERT_TRUE(SetUpTable(&sharded, kind).ok());
  ASSERT_TRUE(SetUpOracle(&oracle).ok());

  std::vector<std::int64_t> keys = RandomKeys(2000, seed);
  const auto rows = RowMajor(keys);
  ASSERT_TRUE(sharded.InsertBatch("t", rows).ok());
  ASSERT_TRUE(oracle.InsertBatch("t", rows).ok());

  Rng rng(seed ^ 0xD157);
  for (int round = 0; round < 20; ++round) {
    // Interleaved writes.
    for (int w = 0; w < 10; ++w) {
      if (rng.NextBounded(3) != 0 || keys.empty()) {
        const auto k = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        ASSERT_TRUE(sharded.Insert("t", {k, PayloadA(k), PayloadB(k)}).ok());
        ASSERT_TRUE(oracle.Insert("t", {k, PayloadA(k), PayloadB(k)}).ok());
        keys.push_back(k);
      } else {
        const auto k = keys[rng.NextBounded(keys.size())];
        auto d1 = sharded.Delete("t", "k", k);
        auto d2 = oracle.Delete("t", "k", k);
        ASSERT_TRUE(d1.ok() && d2.ok());
        ASSERT_EQ(*d1, *d2);
        keys.erase(std::find(keys.begin(), keys.end(), k));
      }
    }
    // Count / Sum over the key and a payload column; predicates over a
    // non-key column must not be prunable (TargetsFor falls back to all
    // shards) — both cases must match the oracle bit-for-bit.
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(kDomain));
    const Pred key_pred = Pred::Between(lo, lo + 150);
    const Pred pay_pred = Pred::Between(PayloadA(lo), PayloadA(lo + 100));
    for (const auto& probe :
         {Req("t", "k", key_pred), Req("t", "a", pay_pred),
          Req("t", "k", Pred::All())}) {
      auto c1 = sharded.Count(probe);
      auto c2 = oracle.Count(probe);
      ASSERT_TRUE(c1.ok() && c2.ok());
      ASSERT_EQ(*c1, *c2) << "round " << round;
      auto s1 = sharded.Sum(probe);
      auto s2 = oracle.Sum(probe);
      ASSERT_TRUE(s1.ok() && s2.ok());
      ASSERT_DOUBLE_EQ(*s1, *s2) << "round " << round;
    }
    // Projection: row order across shards is routing-dependent, compare
    // as sorted multisets.
    QueryRequest proj = Req("t", "k", key_pred);
    proj.tails = {"a", "b"};
    auto p1 = sharded.SelectProject(proj);
    auto p2 = oracle.SelectProject(proj);
    ASSERT_TRUE(p1.ok() && p2.ok());
    ASSERT_EQ(p1->column_names, p2->column_names);
    ASSERT_EQ(SortedRows(*p1), SortedRows(*p2)) << "round " << round;
  }
  // Shard stats stay consistent with the base: rows sum to the oracle's.
  std::size_t rows_total = 0;
  for (const auto& stats : sharded.Stats()) rows_total += stats.rows;
  EXPECT_EQ(rows_total, keys.size());
}

TEST_F(ShardedDbTest, DifferentialAcrossShardCountsHash) {
  ThreadPool pool(4);
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    RunDifferential(n, RoutingKind::kHash, 40'000 + n, &pool);
  }
}

TEST_F(ShardedDbTest, DifferentialAcrossShardCountsRange) {
  ThreadPool pool(4);
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    RunDifferential(n, RoutingKind::kRange, 50'000 + n, &pool);
  }
}

TEST_F(ShardedDbTest, InlineScatterMatchesPooledScatter) {
  // No pool: scatter degrades to an inline loop with identical answers.
  RunDifferential(4, RoutingKind::kRange, 60'000, nullptr);
}

// ---------------------------------------------------------------------------
// API surface contracts.
// ---------------------------------------------------------------------------

TEST_F(ShardedDbTest, SchemaChangesRequireEmptyTable) {
  ShardedDatabaseOptions options;
  options.num_shards = 2;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kHash).ok());
  ASSERT_TRUE(db.Insert("t", {1, PayloadA(1), PayloadB(1)}).ok());
  EXPECT_TRUE(db.AddColumn("t", "late").IsInvalidArgument());
  EXPECT_TRUE(db.CreateTable("t", SpecFor(RoutingKind::kHash, 2))
                  .IsAlreadyExists());
  EXPECT_TRUE(db.Insert("unknown", {1}).IsNotFound());
  // Row too narrow to even hold the key column.
  EXPECT_FALSE(db.InsertBatch("t", std::vector<std::int64_t>{1, 2}).ok());
}

TEST_F(ShardedDbTest, DeadlineExpiryPropagatesThroughTheScatter) {
  ShardedDatabaseOptions options;
  options.num_shards = 4;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kHash).ok());
  ASSERT_TRUE(db.InsertBatch("t", RowMajor(RandomKeys(500, 7))).ok());

  QueryRequest req = Req("t", "k", Pred::Between(100, 900));
  req.context = QueryContext::WithTimeout(std::chrono::hours(1));
  ASSERT_TRUE(db.Count(req).ok());

  // An already-expired deadline fails every leg; the scatter surfaces
  // DeadlineExceeded, not a partial answer.
  req.context =
      QueryContext::WithDeadline(std::chrono::steady_clock::now() -
                                 std::chrono::milliseconds(1));
  auto expired = db.Count(req);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();

  // A cancelled caller token is observed through the chained leg tokens.
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  QueryContext ctx;
  ctx.SetToken(token);
  req.context = ctx;
  auto cancelled = db.Count(req);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled()) << cancelled.status().ToString();
}

TEST_F(ShardedDbTest, DistFailpointsAbortCleanly) {
  ShardedDatabaseOptions options;
  options.num_shards = 2;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kRange).ok());
  ASSERT_TRUE(db.InsertBatch("t", RowMajor(RandomKeys(400, 11))).ok());
  const auto live = [&] {
    auto c = db.Count(Req("t", "k", Pred::All()));
    AIDX_CHECK_OK(c.status());
    return *c;
  };
  const std::size_t before = live();

  // A faulted route aborts the insert with no shard touched.
  ASSERT_TRUE(Configure("dist.route=error(resource_exhausted)").ok());
  EXPECT_TRUE(db.Insert("t", {1, PayloadA(1), PayloadB(1)}).IsResourceExhausted());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(live(), before);

  // A faulted scatter leg fails the query; the store is unchanged and the
  // same query answers after disarming.
  ASSERT_TRUE(Configure("dist.scatter=error").ok());
  EXPECT_FALSE(db.Count(Req("t", "k", Pred::All())).ok());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(live(), before);

  // A faulted migration chunk aborts the rebalance before either shard
  // mutates: answers and per-shard row counts are untouched.
  const auto stats_before = db.Stats();
  ASSERT_TRUE(Configure("dist.migrate_piece=error").ok());
  EXPECT_FALSE(db.Rebalance("t", 0, 1, 0, kDomain / 2).ok());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(live(), before);
  const auto stats_after = db.Stats();
  for (std::size_t s = 0; s < stats_before.size(); ++s) {
    EXPECT_EQ(stats_after[s].rows, stats_before[s].rows) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Rebalance: correctness and carried index investment.
// ---------------------------------------------------------------------------

TEST_F(ShardedDbTest, RebalanceMovesARangeAndKeepsAnswersExact) {
  ShardedDatabaseOptions options;
  options.num_shards = 2;
  ShardedDatabase db(options);
  Database oracle;
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kRange).ok());
  ASSERT_TRUE(SetUpOracle(&oracle).ok());
  const auto rows = RowMajor(RandomKeys(3000, 13));
  ASSERT_TRUE(db.InsertBatch("t", rows).ok());
  ASSERT_TRUE(oracle.InsertBatch("t", rows).ok());

  const std::size_t src_rows_before = db.Stats()[0].rows;
  // Move the bottom quarter of shard 0's half to shard 1.
  auto report = db.Rebalance("t", 0, 1, 0, kDomain / 4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->rows_moved, 0u);
  const auto stats = db.Stats();
  EXPECT_EQ(stats[0].rows, src_rows_before - report->rows_moved);

  // Future inserts in the migrated range land on the target.
  ASSERT_TRUE(db.Insert("t", {1, PayloadA(1), PayloadB(1)}).ok());
  ASSERT_TRUE(oracle.Insert("t", {1, PayloadA(1), PayloadB(1)}).ok());
  EXPECT_EQ(db.Stats()[1].rows, stats[1].rows + 1);

  // Differential exactness after the migration, including the migrated
  // range and the straddling boundary.
  for (const auto& pred :
       {Pred::All(), Pred::Between(0, kDomain / 4), Pred::Between(100, 600)}) {
    auto c1 = db.Count(Req("t", "k", pred));
    auto c2 = oracle.Count(Req("t", "k", pred));
    ASSERT_TRUE(c1.ok() && c2.ok());
    EXPECT_EQ(*c1, *c2);
  }
  QueryRequest proj = Req("t", "k", Pred::Between(0, kDomain / 2));
  proj.tails = {"a", "b"};
  auto p1 = db.SelectProject(proj);
  auto p2 = oracle.SelectProject(proj);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(SortedRows(*p1), SortedRows(*p2));
}

TEST_F(ShardedDbTest, RebalanceCarriesIndexInvestment) {
  ShardedDatabaseOptions options;
  options.num_shards = 2;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kRange).ok());
  ASSERT_TRUE(db.InsertBatch("t", RowMajor(RandomKeys(4000, 17))).ok());

  // Warm the source: these queries realize cuts at their bounds inside
  // the soon-to-migrate range [0, 200).
  const Pred warm1 = Pred::Between(40, 110);
  const Pred warm2 = Pred::Between(60, 160);
  ASSERT_TRUE(db.Count(Req("t", "k", warm1)).ok());
  ASSERT_TRUE(db.Count(Req("t", "k", warm2)).ok());

  auto report = db.Rebalance("t", 0, 1, 0, 200);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->rows_moved, 0u);
  EXPECT_GT(report->cuts_carried, 0u) << "warmed cuts must be exported";
  EXPECT_GT(report->bundles, 0u);

  // The carried cuts were re-realized during the rebalance itself; the
  // same bounded queries on the migrated rows crack NOTHING new on the
  // target. (Counters cover crack-in-two/three and stochastic cracks.)
  const auto work = [&](const DatabaseStats& s) {
    return s.crack.num_crack_in_two + s.crack.num_crack_in_three +
           s.crack.num_stochastic_cracks;
  };
  const DatabaseStats target_before = db.shard(1).Stats();
  auto c1 = db.Count(Req("t", "k", warm1));
  auto c2 = db.Count(Req("t", "k", warm2));
  ASSERT_TRUE(c1.ok() && c2.ok());
  const DatabaseStats target_after = db.shard(1).Stats();
  EXPECT_EQ(work(target_after), work(target_before))
      << "queries at carried cut values must not crack the target again";
  // The carried investment is real piece structure, not just counters.
  EXPECT_GT(target_after.cracked_pieces, 1u);
}

TEST_F(ShardedDbTest, ReadsOverlappingARebalanceStayExact) {
  ShardedDatabaseOptions options;
  options.num_shards = 4;
  ThreadPool pool(4);
  options.scatter_pool = &pool;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kRange).ok());
  const auto keys = RandomKeys(4000, 19);
  ASSERT_TRUE(db.InsertBatch("t", RowMajor(keys)).ok());
  const std::size_t expected = keys.size();
  const std::int64_t expected_sum = [&] {
    std::int64_t sum = 0;
    for (auto k : keys) sum += k;
    return sum;
  }();

  // Readers hammer scatter queries while the main thread migrates ranges
  // back and forth. Every read must see a pre- or post-migration
  // topology, never a torn one — i.e. always the full row multiset.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto count = db.Count(Req("t", "k", Pred::All()));
        auto sum = db.Sum(Req("t", "k", Pred::All()));
        if (!count.ok() || !sum.ok() || *count != expected ||
            *sum != static_cast<double>(expected_sum)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Migrations can finish before the OS even schedules the reader
  // threads; hold the first one until reads are actually in flight so
  // the overlap this test exists for really happens.
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  for (int i = 0; i < 6; ++i) {
    const std::size_t from = i % 2 == 0 ? 0 : 3;
    const std::size_t to = i % 2 == 0 ? 3 : 0;
    auto report = db.Rebalance("t", from, to, 0, kDomain / 4);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0u) << "after " << reads.load() << " reads";
  EXPECT_GT(reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized schedule: the dist chaos arm (AIDX_FAULT_SCHEDULE=dist arms
// dist.route / dist.scatter / dist.migrate_piece probabilistically; the
// other schedules exercise the engine under the sharded facade).
// ---------------------------------------------------------------------------

std::string ScheduleSpec(const std::string& name) {
  if (name == "quiet") return "";
  if (name == "delays") {
    return "crack.piece=delay(20);sideways.ripple=delay(50);"
           "storage.commit_row=delay(20);organizer.step=delay(10)";
  }
  if (name == "errors") {
    return "parallel.bg_merge_step=prob(0.2);parallel.bg_submit=prob(0.1);"
           "crack.piece=prob(0.05)";
  }
  if (name == "dist") {
    return "dist.route=prob(0.03);dist.scatter=prob(0.05);"
           "dist.migrate_piece=prob(0.1);crack.piece=delay(10)";
  }
  // mixed (default)
  return "crack.piece=prob(0.02);parallel.bg_merge_step=prob(0.05);"
         "sideways.ripple=delay(30);storage.commit_row=delay(10)";
}

TEST_F(ShardedDbTest, RandomizedScheduleKeepsDifferentialExactness) {
  std::uint64_t seed = 20260807;
  if (const char* env = std::getenv("AIDX_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::string schedule = "dist";
  if (const char* env = std::getenv("AIDX_FAULT_SCHEDULE")) schedule = env;
  std::cout << "[sharded-faults] schedule=" << schedule << " seed=" << seed
            << std::endl;
  RecordProperty("fault_schedule", schedule);
  RecordProperty("fault_seed", std::to_string(seed));
  const std::string spec = ScheduleSpec(schedule);
  if (!spec.empty()) {
    ASSERT_TRUE(Configure(spec).ok()) << spec;
  }

  ThreadPool pool(2);
  ShardedDatabaseOptions options;
  options.num_shards = 4;
  options.scatter_pool = &pool;
  ShardedDatabase db(options);
  ASSERT_TRUE(SetUpTable(&db, RoutingKind::kRange).ok());
  // The oracle is the key multiset; every comparison retries through
  // transient injected faults (all dist faults are validate-phase clean
  // aborts, so a failed op means "nothing happened").
  std::vector<std::int64_t> keys;

  const auto count_with_retries = [&](const Pred& pred) -> std::size_t {
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto c = db.Count(Req("t", "k", pred));
      if (c.ok()) return *c;
    }
    ADD_FAILURE() << "query kept failing under schedule";
    return 0;
  };

  Rng rng(seed);
  for (int burst = 0; burst < 12; ++burst) {
    for (int op = 0; op < 30; ++op) {
      const std::uint64_t dice = rng.NextBounded(10);
      if (dice < 6) {
        // Single-row DML only: cross-shard batches are atomic per shard,
        // not per batch (sharded_database.h), so the oracle tracks the
        // row-atomic surface.
        const auto k = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        if (db.Insert("t", {k, PayloadA(k), PayloadB(k)}).ok()) {
          keys.push_back(k);
        }  // else: clean abort, nothing landed
      } else if (dice < 8 && !keys.empty()) {
        const auto k = keys[rng.NextBounded(keys.size())];
        auto deleted = db.Delete("t", "k", k);
        if (deleted.ok()) {
          ASSERT_TRUE(*deleted);
          keys.erase(std::find(keys.begin(), keys.end(), k));
        }
      } else {
        const auto lo = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const Pred p = Pred::Between(lo, lo + 120);
        auto probe = db.Count(Req("t", "k", p));
        if (probe.ok()) {
          std::size_t expect = 0;
          for (auto key : keys) expect += p.Matches(key) ? 1 : 0;
          ASSERT_EQ(*probe, expect) << "burst " << burst;
        }
      }
    }
    // A mid-schedule rebalance either completes or aborts cleanly; either
    // way the row multiset is unchanged.
    if (burst % 3 == 1) {
      const auto lo = static_cast<std::int64_t>(rng.NextBounded(kDomain / 2));
      (void)db.Rebalance("t", burst % 4, (burst + 1) % 4, lo, lo + 100);
    }
    // Post-burst invariants.
    ASSERT_EQ(count_with_retries(Pred::All()), keys.size()) << "burst " << burst;
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(kDomain));
    const Pred p = Pred::Between(lo, lo + 200);
    std::size_t expect = 0;
    for (auto key : keys) expect += p.Matches(key) ? 1 : 0;
    ASSERT_EQ(count_with_retries(p), expect) << "burst " << burst;
  }
  FailpointRegistry::Instance().DisarmAll();
}

}  // namespace
}  // namespace aidx
