#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace aidx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryMethodsCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad range");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad range");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad range");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  const Status a = Status::NotFound("missing");
  const Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::Internal("boom");
  const Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  AIDX_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::OK());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AIDX_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2 = 3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace aidx
