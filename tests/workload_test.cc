// Workload generators, runner, metrics, and report plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "index/scan.h"
#include "workload/data_generator.h"
#include "workload/metrics.h"
#include "workload/query_generator.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

TEST(DataGeneratorTest, UniformWithinDomain) {
  const auto data = GenerateData({.n = 10000, .domain = 1000,
                                  .distribution = DataDistribution::kUniform,
                                  .seed = 1});
  EXPECT_EQ(data.size(), 10000u);
  for (const auto v : data) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
  }
}

TEST(DataGeneratorTest, DeterministicInSeed) {
  const DataSpec spec{.n = 1000, .domain = 100, .seed = 42};
  EXPECT_EQ(GenerateData(spec), GenerateData(spec));
  DataSpec other = spec;
  other.seed = 43;
  EXPECT_NE(GenerateData(spec), GenerateData(other));
}

TEST(DataGeneratorTest, PermutationIsAllDistinct) {
  const auto data = GenerateData({.n = 5000,
                                  .distribution = DataDistribution::kPermutation,
                                  .seed = 2});
  std::set<std::int64_t> distinct(data.begin(), data.end());
  EXPECT_EQ(distinct.size(), data.size());
  EXPECT_EQ(*distinct.begin(), 0);
  EXPECT_EQ(*distinct.rbegin(), 4999);
  // And not already sorted (vanishing probability).
  EXPECT_FALSE(std::is_sorted(data.begin(), data.end()));
}

TEST(DataGeneratorTest, NearlySortedIsMostlySorted) {
  const auto data = GenerateData({.n = 10000,
                                  .distribution = DataDistribution::kNearlySorted,
                                  .disorder = 0.01,
                                  .seed = 3});
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    inversions += data[i - 1] > data[i] ? 1 : 0;
  }
  EXPECT_LT(inversions, data.size() / 10);
  EXPECT_GT(inversions, 0u);
}

TEST(DataGeneratorTest, ZipfValuesHeavyDuplicates) {
  const auto data = GenerateData({.n = 20000, .domain = 1 << 16,
                                  .distribution = DataDistribution::kZipfValues,
                                  .zipf_theta = 1.2,
                                  .seed = 4});
  std::set<std::int64_t> distinct(data.begin(), data.end());
  // Heavy skew => far fewer distinct values than rows.
  EXPECT_LT(distinct.size(), data.size() / 4);
}

TEST(QueryGeneratorTest, SelectivityControlsWidth) {
  for (double sel : {0.001, 0.01, 0.1}) {
    const auto queries = GenerateQueries({.pattern = QueryPattern::kRandom,
                                          .num_queries = 100,
                                          .domain = 100000,
                                          .selectivity = sel,
                                          .seed = 5});
    const auto width = static_cast<std::int64_t>(sel * 100000);
    for (const auto& q : queries) {
      ASSERT_EQ(q.high - q.low, width);
      ASSERT_GE(q.low, 0);
      ASSERT_LE(q.high, 100000);
    }
  }
}

TEST(QueryGeneratorTest, SequentialMarchesForward) {
  const auto queries = GenerateQueries({.pattern = QueryPattern::kSequential,
                                        .num_queries = 50,
                                        .domain = 100000,
                                        .selectivity = 0.001,
                                        .seed = 6});
  for (std::size_t i = 1; i < 40; ++i) {
    ASSERT_GT(queries[i].low, queries[i - 1].low);
  }
}

TEST(QueryGeneratorTest, PeriodicCyclesRegions) {
  const auto queries = GenerateQueries({.pattern = QueryPattern::kPeriodic,
                                        .num_queries = 40,
                                        .domain = 100000,
                                        .selectivity = 0.001,
                                        .period = 4,
                                        .seed = 7});
  // Queries i and i+4 fall in the same region (domain/4 wide).
  const std::int64_t region = 100000 / 4;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(queries[i].low / region, static_cast<std::int64_t>(i % 4));
  }
}

TEST(QueryGeneratorTest, ZoomInNarrows) {
  const auto queries = GenerateQueries({.pattern = QueryPattern::kZoomIn,
                                        .num_queries = 10,
                                        .domain = 1 << 20,
                                        .selectivity = 0.0001,
                                        .seed = 8});
  for (std::size_t i = 1; i < queries.size(); ++i) {
    ASSERT_LE(queries[i].high - queries[i].low,
              queries[i - 1].high - queries[i - 1].low);
  }
}

TEST(QueryGeneratorTest, SkewedConcentratesOnHotspots) {
  const auto queries = GenerateQueries({.pattern = QueryPattern::kSkewed,
                                        .num_queries = 2000,
                                        .domain = 1 << 20,
                                        .selectivity = 0.001,
                                        .zipf_theta = 1.2,
                                        .num_hotspots = 10,
                                        .seed = 9});
  // The most popular query start should repeat many times (zipf head).
  std::map<std::int64_t, int> start_buckets;
  for (const auto& q : queries) ++start_buckets[q.low / 2048];
  int max_count = 0;
  for (const auto& [_, c] : start_buckets) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 200);  // >10% of queries hit one bucket
}

TEST(QueryGeneratorTest, ShiftingHotspotMoves) {
  const auto queries = GenerateQueries({.pattern = QueryPattern::kShiftingHotspot,
                                        .num_queries = 400,
                                        .domain = 1 << 20,
                                        .selectivity = 0.0005,
                                        .hotspot_phases = 4,
                                        .hotspot_width = 0.05,
                                        .seed = 10});
  // Queries inside one phase stay within a narrow band; compare phase means.
  auto phase_mean = [&](std::size_t phase) {
    double sum = 0;
    for (std::size_t i = phase * 100; i < (phase + 1) * 100; ++i) {
      sum += static_cast<double>(queries[i].low);
    }
    return sum / 100.0;
  };
  std::set<long> means;
  for (std::size_t p = 0; p < 4; ++p) {
    means.insert(static_cast<long>(phase_mean(p) / (0.06 * (1 << 20))));
  }
  EXPECT_GT(means.size(), 1u) << "hotspot never moved";
}

TEST(QueryGeneratorTest, AllPatternsProduceValidPredicates) {
  for (const QueryPattern pattern : kAllQueryPatterns) {
    const auto queries = GenerateQueries({.pattern = pattern,
                                          .num_queries = 200,
                                          .domain = 10000,
                                          .selectivity = 0.01,
                                          .seed = 11});
    ASSERT_EQ(queries.size(), 200u) << QueryPatternName(pattern);
    for (const auto& q : queries) {
      ASSERT_LE(0, q.low) << QueryPatternName(pattern);
      ASSERT_LT(q.low, q.high) << QueryPatternName(pattern);
      ASSERT_LE(q.high, 10000) << QueryPatternName(pattern);
    }
  }
}

TEST(RunnerTest, ChecksumsAgreeAcrossStrategies) {
  const auto data = GenerateData({.n = 20000, .domain = 10000, .seed = 12});
  const auto queries = GenerateQueries({.num_queries = 200,
                                        .domain = 10000,
                                        .selectivity = 0.01,
                                        .seed = 13});
  const auto scan = RunWorkload(data, StrategyConfig::FullScan(), queries, "random");
  const auto crack = RunWorkload(data, StrategyConfig::Crack(), queries, "random");
  const auto merge =
      RunWorkload(data, StrategyConfig::AdaptiveMerge(4096), queries, "random");
  EXPECT_EQ(scan.count_checksum, crack.count_checksum);
  EXPECT_EQ(scan.count_checksum, merge.count_checksum);
  EXPECT_EQ(crack.per_query_seconds.size(), queries.size());
  EXPECT_GT(crack.total_seconds(), 0.0);
}

TEST(RunnerTest, CumulativeAverageAndTailMean) {
  RunResult run;
  run.per_query_seconds = {4.0, 2.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(run.first_query_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(run.cumulative_average(0), 4.0);
  EXPECT_DOUBLE_EQ(run.cumulative_average(3), 2.5);
  EXPECT_DOUBLE_EQ(run.tail_mean(2), 2.0);
  EXPECT_DOUBLE_EQ(run.total_seconds(), 10.0);
}

TEST(MetricsTest, ConvergenceDetection) {
  RunResult run;
  run.strategy = "crack";
  run.workload = "random";
  // 20 slow queries, then fast ones.
  for (int i = 0; i < 20; ++i) run.per_query_seconds.push_back(1.0);
  for (int i = 0; i < 200; ++i) run.per_query_seconds.push_back(0.001);
  const auto m = ComputeMetrics(run, /*scan_seconds=*/0.5,
                                /*reference_seconds=*/0.001);
  EXPECT_DOUBLE_EQ(m.first_query_seconds, 1.0);
  EXPECT_DOUBLE_EQ(m.first_query_overhead, 2.0);
  // Convergence lands once the smoothing window clears the slow prefix.
  EXPECT_GE(m.queries_to_convergence, 10);
  EXPECT_LE(m.queries_to_convergence, 25);
  EXPECT_NEAR(m.steady_state_seconds, 0.001, 1e-9);
}

TEST(MetricsTest, NeverConverges) {
  RunResult run;
  run.per_query_seconds.assign(100, 1.0);
  const auto m = ComputeMetrics(run, 1.0, 0.001);
  EXPECT_EQ(m.queries_to_convergence, -1);
}

TEST(MetricsTest, ScanConvergesImmediatelyAgainstItself) {
  RunResult run;
  run.per_query_seconds.assign(100, 0.01);
  const auto m = ComputeMetrics(run, 0.01, 0.01);
  EXPECT_EQ(m.queries_to_convergence, 0);
  EXPECT_DOUBLE_EQ(m.first_query_overhead, 1.0);
}

TEST(ReportTest, TablePrinterAligns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1.0"});
  table.AddRow({"b", "22.5"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(0.0025), "2.50ms");
  EXPECT_EQ(FormatSeconds(2.5e-6), "2.5us");
  EXPECT_EQ(FormatSeconds(250e-9), "250ns");
}

TEST(ReportTest, LogSpacedIndicesCoverEnds) {
  const auto idx = LogSpacedIndices(1000);
  EXPECT_EQ(idx.front(), 0u);
  EXPECT_EQ(idx.back(), 999u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_LT(idx.size(), 15u);
  EXPECT_EQ(LogSpacedIndices(1).size(), 1u);
  EXPECT_TRUE(LogSpacedIndices(0).empty());
}

TEST(ReportTest, WriteCsvRoundTrip) {
  const std::string path = "/tmp/aidx_report_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  EXPECT_TRUE(WriteCsv("/nonexistent-dir/x.csv", {"a"}, {}).IsInternal());
}

}  // namespace
}  // namespace aidx
