// Integration matrix: every strategy × every workload pattern × several
// data distributions, validated query-by-query against the scan oracle.
// Also: the coarse-latch concurrency baseline and the multi-attribute
// sideways select.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/access_path.h"
#include "exec/serialized_path.h"
#include "index/scan.h"
#include "sideways/sideways.h"
#include "util/rng.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

struct MatrixParam {
  StrategyKind kind;
  OrganizeMode initial;
  OrganizeMode final_mode;
  QueryPattern pattern;
  DataDistribution distribution;
};

StrategyConfig ConfigFor(const MatrixParam& p) {
  StrategyConfig config;
  config.kind = p.kind;
  config.hybrid_initial = p.initial;
  config.hybrid_final = p.final_mode;
  config.run_size = 1500;          // small so several runs/partitions exist
  config.stochastic_threshold = 512;
  return config;
}

class StrategyWorkloadMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StrategyWorkloadMatrixTest, EveryQueryMatchesOracle) {
  const MatrixParam& param = GetParam();
  const std::size_t n = 8000;
  const auto data = GenerateData({.n = n,
                                  .domain = static_cast<std::int64_t>(n),
                                  .distribution = param.distribution,
                                  .zipf_theta = 1.1,
                                  .seed = 77});
  const auto queries = GenerateQueries({.pattern = param.pattern,
                                        .num_queries = 250,
                                        .domain = static_cast<std::int64_t>(n),
                                        .selectivity = 0.01,
                                        .seed = 78});
  auto path = MakeAccessPath<std::int64_t>(data, ConfigFor(param));
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(path->Count(queries[q]), ScanCount<std::int64_t>(data, queries[q]))
        << path->name() << " / " << QueryPatternName(param.pattern) << " / "
        << DataDistributionName(param.distribution) << " query " << q;
  }
}

std::vector<MatrixParam> BuildMatrix() {
  const StrategyKind kinds[] = {StrategyKind::kCrack, StrategyKind::kStochasticCrack,
                                StrategyKind::kAdaptiveMerge, StrategyKind::kHybrid};
  const QueryPattern patterns[] = {QueryPattern::kRandom, QueryPattern::kSequential,
                                   QueryPattern::kSkewed, QueryPattern::kZoomIn};
  const DataDistribution dists[] = {DataDistribution::kUniform,
                                    DataDistribution::kZipfValues,
                                    DataDistribution::kNearlySorted};
  std::vector<MatrixParam> out;
  for (const auto kind : kinds) {
    for (const auto pattern : patterns) {
      for (const auto dist : dists) {
        out.push_back({kind, OrganizeMode::kCrack, OrganizeMode::kSort, pattern, dist});
      }
    }
  }
  // A few extra hybrid corners on the random pattern.
  out.push_back({StrategyKind::kHybrid, OrganizeMode::kRadix, OrganizeMode::kRadix,
                 QueryPattern::kRandom, DataDistribution::kUniform});
  out.push_back({StrategyKind::kHybrid, OrganizeMode::kSort, OrganizeMode::kCrack,
                 QueryPattern::kPeriodic, DataDistribution::kUniform});
  return out;
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& p = info.param;
  StrategyConfig config = ConfigFor(p);
  std::string name = config.DisplayName();
  name += "_";
  name += QueryPatternName(p.pattern);
  name += "_";
  name += DataDistributionName(p.distribution);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(Matrix, StrategyWorkloadMatrixTest,
                         ::testing::ValuesIn(BuildMatrix()), MatrixName);

TEST(SerializedPathTest, ConcurrentQueriesOnSharedCrackedColumn) {
  const std::size_t n = 50000;
  const auto data = GenerateData({.n = n, .domain = static_cast<std::int64_t>(n),
                                  .seed = 91});
  auto path = MakeSerializedAccessPath<std::int64_t>(data, StrategyConfig::Crack());
  EXPECT_EQ(path->name(), "crack+latch");

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 200;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const auto a = static_cast<std::int64_t>(rng.NextBounded(n));
        const auto pred = Pred::Between(a, a + 500);
        const std::size_t got = path->Count(pred);
        const std::size_t expect = ScanCount<std::int64_t>(data, pred);
        if (got != expect) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(SidewaysMultiSelectTest, SelectCountWhereMatchesRowOracle) {
  const std::size_t n = 4000;
  const auto head = GenerateData({.n = n, .domain = 1000, .seed = 92});
  const auto tail = GenerateData({.n = n, .domain = 1000, .seed = 93});
  SidewaysCracker<std::int64_t> cracker(head);
  ASSERT_TRUE(cracker.AddTailColumn("b", tail).ok());
  Rng rng(94);
  for (int q = 0; q < 100; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(1000));
    const auto b = static_cast<std::int64_t>(rng.NextBounded(1000));
    const Pred head_pred = Pred::Between(a, a + 80);
    const Pred tail_pred = Pred::Between(b, b + 200);
    auto got = cracker.SelectCountWhere(head_pred, "b", tail_pred);
    ASSERT_TRUE(got.ok());
    std::size_t expect = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect += head_pred.Matches(head[i]) && tail_pred.Matches(tail[i]) ? 1 : 0;
    }
    ASSERT_EQ(*got, expect) << "query " << q;
  }
  EXPECT_TRUE(cracker.Validate());
}

TEST(SidewaysMultiSelectTest, UnknownTailRejected) {
  const auto head = GenerateData({.n = 100, .domain = 10, .seed = 95});
  SidewaysCracker<std::int64_t> cracker(head);
  EXPECT_TRUE(cracker.SelectCountWhere(Pred::Between(1, 5), "nope", Pred::All())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace aidx
