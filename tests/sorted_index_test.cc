#include "index/sorted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

TEST(FullSortIndexTest, SortsOnBuild) {
  const std::vector<std::int64_t> base = {5, 1, 4, 2, 3};
  FullSortIndex<std::int64_t> idx(base);
  EXPECT_TRUE(std::is_sorted(idx.values().begin(), idx.values().end()));
  EXPECT_EQ(idx.size(), 5u);
}

TEST(FullSortIndexTest, EmptyColumn) {
  FullSortIndex<std::int64_t> idx(std::span<const std::int64_t>{});
  EXPECT_EQ(idx.CountRange(Pred::All()), 0u);
  EXPECT_EQ(idx.SelectRange(Pred::Between(1, 2)), (PositionRange{0, 0}));
}

TEST(FullSortIndexTest, BoundKindsRespected) {
  const std::vector<std::int64_t> base = {1, 2, 2, 2, 3, 4};
  FullSortIndex<std::int64_t> idx(base);
  EXPECT_EQ(idx.CountRange(Pred::Between(2, 2)), 3u);
  EXPECT_EQ(idx.CountRange(Pred::HalfOpen(2, 3)), 3u);
  EXPECT_EQ(idx.CountRange(Pred::LessThan(2)), 1u);
  EXPECT_EQ(idx.CountRange(Pred::AtMost(2)), 4u);
  EXPECT_EQ(idx.CountRange(Pred::GreaterThan(2)), 2u);
  EXPECT_EQ(idx.CountRange(Pred::AtLeast(2)), 5u);
  EXPECT_EQ(idx.CountRange(Pred::Between(5, 9)), 0u);
  EXPECT_EQ(idx.CountRange(Pred::Between(9, 5)), 0u);  // inverted => empty
}

TEST(FullSortIndexTest, RowIdsPermuteWithValues) {
  const std::vector<std::int64_t> base = {30, 10, 20};
  FullSortIndex<std::int64_t> idx(base, {.with_row_ids = true});
  ASSERT_EQ(idx.row_ids().size(), 3u);
  // sorted order: 10 (row 1), 20 (row 2), 30 (row 0)
  EXPECT_EQ(idx.row_ids()[0], 1u);
  EXPECT_EQ(idx.row_ids()[1], 2u);
  EXPECT_EQ(idx.row_ids()[2], 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(idx.values()[i], base[idx.row_ids()[i]]);
  }
}

TEST(FullSortIndexTest, DifferentialAgainstScan) {
  Rng rng(77);
  std::vector<std::int64_t> base(20000);
  for (auto& v : base) v = static_cast<std::int64_t>(rng.NextBounded(5000));
  FullSortIndex<std::int64_t> idx(base);
  for (int q = 0; q < 500; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(5200)) - 100;
    const auto b = a + static_cast<std::int64_t>(rng.NextBounded(300));
    for (const Pred& p :
         {Pred::Between(a, b), Pred::HalfOpen(a, b), Pred::AtLeast(a), Pred::AtMost(b)}) {
      ASSERT_EQ(idx.CountRange(p), ScanCount<std::int64_t>(base, p))
          << p.ToString();
    }
  }
}

TEST(FullSortIndexTest, SumMatchesScan) {
  Rng rng(78);
  std::vector<std::int64_t> base(5000);
  for (auto& v : base) v = static_cast<std::int64_t>(rng.NextBounded(1000));
  FullSortIndex<std::int64_t> idx(base);
  const auto p = Pred::Between(100, 400);
  EXPECT_DOUBLE_EQ(static_cast<double>(idx.SumRange(p)),
                   static_cast<double>(ScanSum<std::int64_t>(base, p)));
}

TEST(ScanTest, PositionsAndValues) {
  const std::vector<std::int64_t> base = {5, 1, 7, 3, 9};
  const auto p = Pred::Between(3, 7);
  std::vector<std::size_t> pos;
  ScanPositions<std::int64_t>(base, p, &pos);
  EXPECT_EQ(pos, (std::vector<std::size_t>{0, 2, 3}));
  std::vector<std::int64_t> vals;
  ScanValues<std::int64_t>(base, p, &vals);
  EXPECT_EQ(vals, (std::vector<std::int64_t>{5, 7, 3}));
}

TEST(FullSortIndexTest, WorksForDoubles) {
  const std::vector<double> base = {2.5, 0.5, 1.5};
  FullSortIndex<double> idx(base);
  EXPECT_EQ(idx.CountRange(RangePredicate<double>::Between(1.0, 2.0)), 1u);
}

}  // namespace
}  // namespace aidx
