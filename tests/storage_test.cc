#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "storage/types.h"

namespace aidx {
namespace {

TEST(ColumnTest, TypedColumnBasics) {
  TypedColumn<std::int64_t> col("price", {3, 1, 4, 1, 5});
  EXPECT_EQ(col.type(), DataType::kInt64);
  EXPECT_EQ(col.size(), 5u);
  EXPECT_EQ(col.name(), "price");
  EXPECT_EQ(col.Get(2), 4);
  EXPECT_GE(col.MemoryUsageBytes(), 5 * sizeof(std::int64_t));
}

TEST(ColumnTest, AppendGrows) {
  TypedColumn<double> col("d");
  col.Append(1.5);
  col.Append(2.5);
  const std::vector<double> more = {3.5, 4.5};
  col.AppendMany(more);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col.Get(3), 4.5);
}

TEST(ColumnTest, TypedDowncastChecksType) {
  auto col = MakeColumn<std::int32_t>("a", {1, 2, 3});
  Column* base = col.get();
  ASSERT_TRUE(base->As<std::int32_t>().ok());
  const auto bad = base->As<std::int64_t>();
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(TableTest, AddAndLookup) {
  Table t("orders");
  ASSERT_TRUE(t.AddColumn<std::int64_t>("id", {1, 2, 3}).ok());
  ASSERT_TRUE(t.AddColumn<std::int64_t>("amount", {10, 20, 30}).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  auto col = t.GetTypedColumn<std::int64_t>("amount");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Get(1), 20);
}

TEST(TableTest, RejectsDuplicateColumnNames) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<std::int64_t>("a", {1}).ok());
  EXPECT_TRUE(t.AddColumn<std::int64_t>("a", {2}).IsAlreadyExists());
}

TEST(TableTest, RejectsLengthMismatch) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<std::int64_t>("a", {1, 2}).ok());
  EXPECT_TRUE(t.AddColumn<std::int64_t>("b", {1}).IsInvalidArgument());
}

TEST(TableTest, RejectsNullAndUnnamedColumns) {
  Table t("t");
  EXPECT_TRUE(t.AddColumn(nullptr).IsInvalidArgument());
  EXPECT_TRUE(t.AddColumn<std::int64_t>("", {1}).IsInvalidArgument());
}

TEST(TableTest, MissingColumnIsNotFound) {
  Table t("t");
  EXPECT_TRUE(t.GetColumn("ghost").status().IsNotFound());
}

TEST(TableTest, ColumnNamesInInsertionOrder) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<std::int64_t>("z", {1}).ok());
  ASSERT_TRUE(t.AddColumn<std::int64_t>("a", {2}).ok());
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"z", "a"}));
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  auto created = cat.CreateTable("t1");
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(cat.GetTable("t1").ok());
  EXPECT_TRUE(cat.CreateTable("t1").status().IsAlreadyExists());
  EXPECT_TRUE(cat.DropTable("t1").ok());
  EXPECT_TRUE(cat.GetTable("t1").status().IsNotFound());
  EXPECT_TRUE(cat.DropTable("t1").IsNotFound());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("b").ok());
  ASSERT_TRUE(cat.CreateTable("a").ok());
  EXPECT_EQ(cat.TableNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(PredicateTest, BetweenMatchesInclusive) {
  const auto p = RangePredicate<std::int64_t>::Between(2, 5);
  EXPECT_FALSE(p.Matches(1));
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(6));
}

TEST(PredicateTest, HalfOpenExcludesHigh) {
  const auto p = RangePredicate<std::int64_t>::HalfOpen(2, 5);
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(4));
  EXPECT_FALSE(p.Matches(5));
}

TEST(PredicateTest, OneSidedForms) {
  EXPECT_TRUE(RangePredicate<std::int64_t>::LessThan(3).Matches(2));
  EXPECT_FALSE(RangePredicate<std::int64_t>::LessThan(3).Matches(3));
  EXPECT_TRUE(RangePredicate<std::int64_t>::AtMost(3).Matches(3));
  EXPECT_TRUE(RangePredicate<std::int64_t>::GreaterThan(3).Matches(4));
  EXPECT_FALSE(RangePredicate<std::int64_t>::GreaterThan(3).Matches(3));
  EXPECT_TRUE(RangePredicate<std::int64_t>::AtLeast(3).Matches(3));
  EXPECT_TRUE(RangePredicate<std::int64_t>::All().Matches(-100));
}

TEST(PredicateTest, DefinitelyEmptyCases) {
  using P = RangePredicate<std::int64_t>;
  EXPECT_TRUE(P::Between(5, 4).DefinitelyEmpty());
  EXPECT_TRUE(P::HalfOpen(5, 5).DefinitelyEmpty());
  EXPECT_FALSE(P::Between(5, 5).DefinitelyEmpty());
  EXPECT_FALSE(P::LessThan(0).DefinitelyEmpty());
  P both_exclusive{5, BoundKind::kExclusive, 5, BoundKind::kExclusive};
  EXPECT_TRUE(both_exclusive.DefinitelyEmpty());
}

TEST(PredicateTest, PositionRangeHelpers) {
  PositionRange r{3, 7};
  EXPECT_EQ(r.size(), 4u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((PositionRange{5, 5}).empty());
}

TEST(PredicateTest, WorksForFloat64) {
  const auto p = RangePredicate<double>::HalfOpen(0.5, 1.5);
  EXPECT_TRUE(p.Matches(0.5));
  EXPECT_TRUE(p.Matches(1.0));
  EXPECT_FALSE(p.Matches(1.5));
}

}  // namespace
}  // namespace aidx
