// The mutable AccessPath surface: every strategy must answer a randomized
// mixed insert/delete/query workload exactly like a scan-with-updates
// oracle (a plain vector mutated in lockstep), across value types. This is
// the executable contract behind Database::Insert/Delete.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/access_path.h"
#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

/// All strategy configs the mixed-workload contract must hold for. Small
/// run/partition sizes so merge machinery engages at test scale.
std::vector<StrategyConfig> AllStrategies() {
  std::vector<StrategyConfig> configs = {
      StrategyConfig::FullScan(),
      StrategyConfig::FullSort(),
      StrategyConfig::BTree(),
      StrategyConfig::Crack(),
      StrategyConfig::StochasticCrack(512),
      StrategyConfig::AdaptiveMerge(700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, 700),
      StrategyConfig::Hybrid(OrganizeMode::kSort, OrganizeMode::kSort, 700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kRadix, 700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kCrack, 700),
      StrategyConfig::ParallelCrack(4, 1),
  };
  // The crack pipeline under each SIGMOD'07 merge policy.
  StrategyConfig mci = StrategyConfig::Crack();
  mci.merge_policy = MergePolicy::kComplete;
  configs.push_back(mci);
  StrategyConfig mgi = StrategyConfig::Crack();
  mgi.merge_policy = MergePolicy::kGradual;
  mgi.gradual_budget = 8;
  configs.push_back(mgi);
  return configs;
}

template <typename T>
struct ValueDomain;  // maps the test's integer dice to typed values

template <>
struct ValueDomain<std::int32_t> {
  static std::int32_t Make(std::uint64_t raw) { return static_cast<std::int32_t>(raw); }
};
template <>
struct ValueDomain<std::int64_t> {
  static std::int64_t Make(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }
};
template <>
struct ValueDomain<double> {
  // Quarter-steps: exercises non-integer keys while keeping sums exact in
  // long double arithmetic.
  static double Make(std::uint64_t raw) { return static_cast<double>(raw) * 0.25; }
};

template <typename T>
class MutablePathTypedTest : public ::testing::Test {};

using ValueTypes = ::testing::Types<std::int32_t, std::int64_t, double>;
TYPED_TEST_SUITE(MutablePathTypedTest, ValueTypes);

/// Deletes one occurrence of `v` from the oracle; false when absent.
template <typename T>
bool OracleDelete(std::vector<T>* model, T v) {
  for (std::size_t i = 0; i < model->size(); ++i) {
    if ((*model)[i] == v) {
      (*model)[i] = model->back();
      model->pop_back();
      return true;
    }
  }
  return false;
}

TYPED_TEST(MutablePathTypedTest, MixedWorkloadMatchesOracle) {
  using T = TypeParam;
  constexpr std::uint64_t kDomain = 2000;
  for (const StrategyConfig& config : AllStrategies()) {
    Rng rng(41);
    std::vector<T> base(3000);
    for (auto& v : base) v = ValueDomain<T>::Make(rng.NextBounded(kDomain));
    std::vector<T> model = base;

    auto path = MakeAccessPath<T>(base, config);
    ASSERT_NE(path, nullptr);
    const std::string label = config.DisplayName() + "/" +
                              MergePolicyName(config.merge_policy);
    for (int step = 0; step < 900; ++step) {
      const auto dice = rng.NextBounded(10);
      if (dice < 3) {  // insert
        const T v = ValueDomain<T>::Make(rng.NextBounded(kDomain));
        path->Insert(v);
        model.push_back(v);
      } else if (dice < 5) {  // delete (sometimes a value that is absent)
        T v;
        if (rng.NextBounded(4) == 0 || model.empty()) {
          v = ValueDomain<T>::Make(kDomain + rng.NextBounded(50));  // absent
        } else {
          v = model[rng.NextBounded(model.size())];
        }
        const bool expect = OracleDelete(&model, v);
        ASSERT_EQ(path->Delete(v), expect) << label << " step " << step;
      } else if (dice < 9) {  // count
        const auto lo = ValueDomain<T>::Make(rng.NextBounded(kDomain));
        const auto hi = ValueDomain<T>::Make(rng.NextBounded(200));
        const auto pred = RangePredicate<T>::Between(lo, lo + hi);
        ASSERT_EQ(path->Count(pred), ScanCount<T>(model, pred))
            << label << " step " << step << " " << pred.ToString();
      } else {  // sum
        const auto lo = ValueDomain<T>::Make(rng.NextBounded(kDomain));
        const auto pred = RangePredicate<T>::Between(lo, lo + ValueDomain<T>::Make(150));
        const auto got = static_cast<double>(path->Sum(pred));
        const auto want = static_cast<double>(ScanSum<T>(model, pred));
        ASSERT_DOUBLE_EQ(got, want) << label << " step " << step;
      }
    }
    // Drain: the full-range count must equal the oracle's live size.
    ASSERT_EQ(path->Count(RangePredicate<T>::All()), model.size()) << label;
  }
}

TEST(MutablePathTest, BatchVariantsMatchScalarSemantics) {
  using T = std::int64_t;
  Rng rng(7);
  std::vector<T> base(2000);
  for (auto& v : base) v = static_cast<T>(rng.NextBounded(500));
  for (const StrategyConfig& config : AllStrategies()) {
    std::vector<T> model = base;
    auto path = MakeAccessPath<T>(base, config);
    const auto pred = RangePredicate<T>::Between(100, 400);
    ASSERT_EQ(path->Count(pred), ScanCount<T>(model, pred));

    std::vector<T> batch(64);
    for (auto& v : batch) v = static_cast<T>(rng.NextBounded(500));
    path->InsertBatch(batch);
    model.insert(model.end(), batch.begin(), batch.end());
    ASSERT_EQ(path->Count(pred), ScanCount<T>(model, pred)) << config.DisplayName();

    // Delete the batch again plus some values that may be absent.
    std::vector<T> victims = batch;
    victims.push_back(10'000);  // definitely absent
    std::size_t expect_deleted = 0;
    for (const T v : victims) expect_deleted += OracleDelete(&model, v) ? 1 : 0;
    ASSERT_EQ(path->DeleteBatch(victims), expect_deleted) << config.DisplayName();
    ASSERT_EQ(path->Count(pred), ScanCount<T>(model, pred)) << config.DisplayName();
    ASSERT_EQ(path->Count(RangePredicate<T>::All()), model.size())
        << config.DisplayName();
  }
}

TEST(MutablePathTest, UpdateStatsProbeCountsWrites) {
  using T = std::int64_t;
  Rng rng(9);
  std::vector<T> base(1000);
  for (auto& v : base) v = static_cast<T>(rng.NextBounded(300));
  for (const StrategyConfig& config : AllStrategies()) {
    auto path = MakeAccessPath<T>(base, config);
    for (int i = 0; i < 20; ++i) {
      path->Insert(static_cast<T>(rng.NextBounded(300)));
    }
    path->Count(RangePredicate<T>::All());
    const UpdateStats stats = path->update_stats();
    EXPECT_EQ(stats.inserts_queued, 20u) << config.DisplayName();
    // A full-range query leaves nothing pending under any strategy.
    EXPECT_EQ(stats.inserts_merged, 20u) << config.DisplayName();
  }
}

TEST(MutablePathTest, MergePolicySelectableThroughConfig) {
  using T = std::int64_t;
  Rng rng(11);
  std::vector<T> base(2000);
  for (auto& v : base) v = static_cast<T>(rng.NextBounded(1000));

  // MCI drains every pending insert at the first query; MRI only merges
  // the queried range. Observable through the uniform stats probe.
  StrategyConfig complete = StrategyConfig::Crack();
  complete.merge_policy = MergePolicy::kComplete;
  auto mci = MakeAccessPath<T>(base, complete);
  auto mri = MakeAccessPath<T>(base, StrategyConfig::Crack());
  for (auto* path : {mci.get(), mri.get()}) {
    path->Count(RangePredicate<T>::Between(0, 999));  // crack broadly
    path->Insert(100);
    path->Insert(500);
    path->Insert(900);
    path->Count(RangePredicate<T>::Between(450, 550));  // touches only 500
  }
  EXPECT_EQ(mci->update_stats().inserts_merged, 3u);
  EXPECT_EQ(mri->update_stats().inserts_merged, 1u);
}

}  // namespace
}  // namespace aidx
