// Table-level DML harness: the Database facade's row-atomic contract,
// checked differentially against a plain row-store oracle.
//
//  - every strategy (and every merge policy under the cracked strategies)
//    must answer Count/Sum/SelectProject bit-exactly against the oracle
//    while rows are inserted and deleted between queries;
//  - sideways cracker maps must survive DML (incremental maintenance, no
//    rebuild) and stay equal to a from-scratch Database over the same
//    final table;
//  - the partial-failure contract must hold: a column write failing
//    mid-row (injected via the engine.dml_validate failpoint) leaves the
//    table, its cached paths, and its sideways maps observably unchanged —
//    no torn rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Row = std::array<std::int64_t, 3>;  // columns a, b, c

constexpr std::int64_t kDomain = 800;
const char* const kColumns[] = {"a", "b", "c"};

std::vector<Row> RandomRows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows(n);
  for (auto& row : rows) {
    for (auto& v : row) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  }
  return rows;
}

Pred RandomPredicate(Rng* rng) {
  const auto lo = rng->NextInRange(-5, kDomain);
  return Pred::Between(lo, lo + rng->NextInRange(0, kDomain / 4));
}

// Builds a 3-column table from the oracle rows.
void BuildTable(Database* db, const std::vector<Row>& rows) {
  ASSERT_TRUE(db->CreateTable("t").ok());
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<std::int64_t> values(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) values[i] = rows[i][c];
    ASSERT_TRUE(db->AddColumn("t", kColumns[c], std::move(values)).ok());
  }
}

std::size_t OracleCount(const std::vector<Row>& rows, std::size_t col,
                        const Pred& p) {
  std::size_t n = 0;
  for (const auto& row : rows) n += p.Matches(row[col]) ? 1 : 0;
  return n;
}

double OracleSum(const std::vector<Row>& rows, std::size_t col, const Pred& p) {
  long double sum = 0;
  for (const auto& row : rows) {
    if (p.Matches(row[col])) sum += static_cast<long double>(row[col]);
  }
  return static_cast<double>(sum);
}

// σ_p(a) projecting (b, c), as a sorted bag of pairs.
std::vector<std::array<std::int64_t, 2>> OracleProject(
    const std::vector<Row>& rows, const Pred& p) {
  std::vector<std::array<std::int64_t, 2>> out;
  for (const auto& row : rows) {
    if (p.Matches(row[0])) out.push_back({row[1], row[2]});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::array<std::int64_t, 2>> SortedPairs(
    const ProjectionResult<std::int64_t>& r) {
  std::vector<std::array<std::int64_t, 2>> out(r.num_rows);
  for (std::size_t i = 0; i < r.num_rows; ++i) {
    out[i] = {r.columns[0][i], r.columns[1][i]};
  }
  std::sort(out.begin(), out.end());
  return out;
}

StrategyConfig WithPolicy(StrategyConfig config, MergePolicy policy) {
  config.merge_policy = policy;
  return config;
}

// ---------------------------------------------------------------------------
// Differential property: every strategy × merge policy against the oracle.
// ---------------------------------------------------------------------------

class TableDmlDifferentialTest
    : public ::testing::TestWithParam<StrategyConfig> {};

INSTANTIATE_TEST_SUITE_P(
    Strategies, TableDmlDifferentialTest,
    ::testing::Values(
        StrategyConfig::FullScan(), StrategyConfig::FullSort(),
        StrategyConfig::BTree(),
        WithPolicy(StrategyConfig::Crack(), MergePolicy::kComplete),
        WithPolicy(StrategyConfig::Crack(), MergePolicy::kGradual),
        WithPolicy(StrategyConfig::Crack(), MergePolicy::kRipple),
        StrategyConfig::StochasticCrack(512), StrategyConfig::AdaptiveMerge(700),
        StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, 700),
        StrategyConfig::ParallelCrack(4, 2)),
    [](const auto& info) {
      std::string name = info.param.DisplayName() + "_" +
                         MergePolicyName(info.param.merge_policy);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Random interleaved inserts, deletes, and range queries on a 3-column
// table: after every operation, Count and Sum through this strategy's
// cached access paths — and SelectProject through the sideways maps —
// must equal the row oracle on every column.
TEST_P(TableDmlDifferentialTest, MixedWorkloadMatchesRowOracle) {
  const StrategyConfig config = GetParam();
  std::vector<Row> oracle = RandomRows(2500, 97);
  Database db;
  BuildTable(&db, oracle);
  Rng rng(101);
  for (int op = 0; op < 250; ++op) {
    switch (rng.NextBounded(6)) {
      case 0: {  // single-row insert
        Row row;
        for (auto& v : row) {
          v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        }
        ASSERT_TRUE(db.Insert("t", {row[0], row[1], row[2]}).ok()) << "op " << op;
        oracle.push_back(row);
        break;
      }
      case 1: {  // batch insert, row-major
        std::vector<std::int64_t> flat;
        const std::size_t batch = 1 + rng.NextBounded(4);
        for (std::size_t r = 0; r < batch; ++r) {
          Row row;
          for (auto& v : row) {
            v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
          }
          oracle.push_back(row);
          flat.insert(flat.end(), row.begin(), row.end());
        }
        ASSERT_TRUE(db.InsertBatch("t", flat).ok()) << "op " << op;
        break;
      }
      case 2: {  // delete first row matching a value in a random column
        const std::size_t col = rng.NextBounded(3);
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const auto it = std::find_if(
            oracle.begin(), oracle.end(),
            [&](const Row& row) { return row[col] == v; });
        auto deleted = db.Delete("t", kColumns[col], v);
        ASSERT_TRUE(deleted.ok()) << "op " << op;
        ASSERT_EQ(*deleted, it != oracle.end())
            << "op " << op << " col " << kColumns[col] << " value " << v;
        if (it != oracle.end()) oracle.erase(it);
        break;
      }
      case 3: {  // range count through the strategy's path, random column
        const std::size_t col = rng.NextBounded(3);
        const Pred p = RandomPredicate(&rng);
        auto count = db.Count("t", kColumns[col], p, config);
        ASSERT_TRUE(count.ok()) << "op " << op;
        ASSERT_EQ(*count, OracleCount(oracle, col, p))
            << config.DisplayName() << " op " << op << " col " << kColumns[col]
            << " " << p.ToString();
        break;
      }
      case 4: {  // sum
        const std::size_t col = rng.NextBounded(3);
        const Pred p = RandomPredicate(&rng);
        auto sum = db.Sum("t", kColumns[col], p, config);
        ASSERT_TRUE(sum.ok()) << "op " << op;
        ASSERT_DOUBLE_EQ(*sum, OracleSum(oracle, col, p))
            << config.DisplayName() << " op " << op << " col " << kColumns[col];
        break;
      }
      default: {  // select-project through sideways maps
        const Pred p = RandomPredicate(&rng);
        auto r = db.SelectProject("t", "a", p, {"b", "c"});
        ASSERT_TRUE(r.ok()) << "op " << op;
        ASSERT_EQ(SortedPairs(*r), OracleProject(oracle, p))
            << config.DisplayName() << " op " << op << " " << p.ToString();
        break;
      }
    }
  }
  // Full-table materialization: every column agrees with the oracle bag.
  for (std::size_t col = 0; col < 3; ++col) {
    auto count = db.Count("t", kColumns[col], Pred::All(), config);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, oracle.size()) << kColumns[col];
  }
}

// ---------------------------------------------------------------------------
// Row-atomicity pins.
// ---------------------------------------------------------------------------

TEST(TableDmlContractTest, RowWidthIsValidatedBeforeAnyMutation) {
  Database db;
  BuildTable(&db, RandomRows(100, 7));
  EXPECT_TRUE(db.Insert("t", {1, 2}).IsInvalidArgument());        // too narrow
  EXPECT_TRUE(db.Insert("t", {1, 2, 3, 4}).IsInvalidArgument());  // too wide
  // Batch size must be a multiple of the column count.
  EXPECT_TRUE(
      db.InsertBatch("t", std::vector<std::int64_t>{1, 2, 3, 4})
          .IsInvalidArgument());
  auto count = db.Count("t", "a", Pred::All(), StrategyConfig::FullScan());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 100u);  // nothing applied
}

TEST(TableDmlContractTest, ColumnAddressedDmlRejectedOnMultiColumnTables) {
  Database db;
  BuildTable(&db, RandomRows(50, 8));
  EXPECT_TRUE(db.Insert("t", "a", 1).IsInvalidArgument());
  EXPECT_TRUE(db.InsertBatch("t", "a", std::vector<std::int64_t>{1, 2})
                  .IsInvalidArgument());
  // Single-column tables keep the historical surface.
  ASSERT_TRUE(db.CreateTable("narrow").ok());
  ASSERT_TRUE(db.AddColumn("narrow", "v", {1, 2, 3}).ok());
  EXPECT_TRUE(db.Insert("narrow", "v", 4).ok());
  EXPECT_TRUE(
      db.InsertBatch("narrow", "v", std::vector<std::int64_t>{5, 6}).ok());
  auto count = db.Count("narrow", "v", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

// The partial-failure contract, witnessed by fault injection: a column
// write that fails mid-row (here: the second of three columns) must leave
// the table, its cached paths, and its sideways maps observably unchanged.
TEST(TableDmlContractTest, FailedDmlLeavesNoTornRows) {
  std::vector<Row> oracle = RandomRows(500, 9);
  Database db;
  BuildTable(&db, oracle);
  // Warm paths and sideways maps so the fault would hit cached structures.
  const Pred warm = Pred::Between(100, 400);
  ASSERT_TRUE(db.Count("t", "b", warm, StrategyConfig::Crack()).ok());
  ASSERT_TRUE(db.SelectProject("t", "a", warm, {"b", "c"}).ok());
  const auto snapshot = [&](std::size_t col) {
    auto sum = db.Sum("t", kColumns[col], Pred::All(), StrategyConfig::Crack());
    AIDX_CHECK_OK(sum.status());
    return *sum;
  };
  const double sums_before[] = {snapshot(0), snapshot(1), snapshot(2)};
  auto state = db.SidewaysState("t", "a");
  ASSERT_TRUE(state.ok());
  const std::size_t dml_before = (*state)->stats().dml_inserts;

  // Fault the validate phase for column "b" only, through the engine's
  // own failpoint (the scope is "<table>\x1f<column>").
  FailpointPolicy fault;
  fault.mode = FailpointMode::kCallback;
  fault.handler = [](std::string_view scope) {
    const std::size_t sep = scope.find(kFailpointScopeSep);
    const std::string_view column =
        sep == std::string_view::npos ? scope : scope.substr(sep + 1);
    return column == std::string_view("b") ? Status::Internal("injected fault")
                                           : Status::OK();
  };
  failpoints::engine_dml_validate.Arm(std::move(fault));
  EXPECT_FALSE(db.Insert("t", {1, 2, 3}).ok());
  EXPECT_FALSE(db.InsertBatch("t", std::vector<std::int64_t>{1, 2, 3}).ok());
  EXPECT_FALSE(db.Delete("t", "a", oracle.front()[0]).ok());
  failpoints::engine_dml_validate.Disarm();

  // No torn rows: row count, per-column sums, sideways log, and query
  // results are exactly what they were before the faulting calls.
  auto count = db.Count("t", "a", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, oracle.size());
  for (std::size_t col = 0; col < 3; ++col) {
    EXPECT_DOUBLE_EQ(snapshot(col), sums_before[col]) << kColumns[col];
  }
  state = db.SidewaysState("t", "a");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->stats().dml_inserts, dml_before);
  auto r = db.SelectProject("t", "a", warm, {"b", "c"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SortedPairs(*r), OracleProject(oracle, warm));
  // With the failpoint disarmed the same row applies cleanly.
  EXPECT_TRUE(db.Insert("t", {1, 2, 3}).ok());
  count = db.Count("t", "a", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, oracle.size() + 1);
}

// ---------------------------------------------------------------------------
// Sideways survival: cracked investment is not dropped by writes.
// ---------------------------------------------------------------------------

// Regression pin for the old drop-on-write behavior: a write burst leaves
// maps_created flat (incremental maintenance, not rebuild), piece counts
// keep growing, and the maintained maps answer exactly like a from-scratch
// Database over the same final table after every DML batch.
TEST(SidewaysSurvivalTest, MapsMaintainedIncrementallyAcrossWriteBursts) {
  std::vector<Row> oracle = RandomRows(2000, 17);
  Database db;
  BuildTable(&db, oracle);
  Rng rng(19);
  // Warm both maps; remember the cracked state.
  for (int q = 0; q < 8; ++q) {
    ASSERT_TRUE(db.SelectProject("t", "a", RandomPredicate(&rng), {"b", "c"}).ok());
  }
  auto state = db.SidewaysState("t", "a");
  ASSERT_TRUE(state.ok());
  const std::size_t maps_before = (*state)->stats().maps_created;
  ASSERT_EQ(maps_before, 2u);
  const auto* map_b = (*state)->PeekMap("b");
  ASSERT_NE(map_b, nullptr);
  const std::size_t cuts_before = map_b->index().num_cuts();
  ASSERT_GT(cuts_before, 0u);

  for (int batch = 0; batch < 10; ++batch) {
    // A write burst...
    for (int i = 0; i < 12; ++i) {
      if (rng.NextBounded(4) != 0) {
        Row row;
        for (auto& v : row) {
          v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        }
        ASSERT_TRUE(db.Insert("t", {row[0], row[1], row[2]}).ok());
        oracle.push_back(row);
      } else if (!oracle.empty()) {
        const std::size_t pick = rng.NextBounded(oracle.size());
        const auto key = oracle[pick][0];
        const auto it = std::find_if(
            oracle.begin(), oracle.end(),
            [&](const Row& row) { return row[0] == key; });
        auto deleted = db.Delete("t", "a", key);
        ASSERT_TRUE(deleted.ok());
        ASSERT_TRUE(*deleted);
        oracle.erase(it);
      }
    }
    // ...then queries: incremental result == rebuild-from-scratch result
    // == oracle, for the same predicate.
    Database rebuilt;
    BuildTable(&rebuilt, oracle);
    for (int q = 0; q < 4; ++q) {
      const Pred p = RandomPredicate(&rng);
      auto inc = db.SelectProject("t", "a", p, {"b", "c"});
      auto fresh = rebuilt.SelectProject("t", "a", p, {"b", "c"});
      ASSERT_TRUE(inc.ok()) << "batch " << batch;
      ASSERT_TRUE(fresh.ok()) << "batch " << batch;
      ASSERT_EQ(inc->num_rows, fresh->num_rows) << "batch " << batch;
      ASSERT_EQ(SortedPairs(*inc), SortedPairs(*fresh)) << "batch " << batch;
      ASSERT_EQ(SortedPairs(*inc), OracleProject(oracle, p)) << "batch " << batch;
    }
  }

  // The cracker survived every burst: same object, no extra map builds,
  // DML folded into the op log, cracked pieces accumulated.
  state = db.SidewaysState("t", "a");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->stats().maps_created, maps_before);
  EXPECT_GT((*state)->stats().dml_inserts, 0u);
  EXPECT_GT((*state)->stats().dml_deletes, 0u);
  map_b = (*state)->PeekMap("b");
  ASSERT_NE(map_b, nullptr);
  EXPECT_GE(map_b->index().num_cuts(), cuts_before);
  EXPECT_EQ(db.num_cached_sideways(), 1u);
  // Schema changes are the one remaining drop: AddColumn resets the state.
  ASSERT_TRUE(
      db.AddColumn("t", "d", std::vector<std::int64_t>(oracle.size(), 0)).ok());
  EXPECT_EQ(db.num_cached_sideways(), 0u);
  EXPECT_TRUE(db.SidewaysState("t", "a").status().IsNotFound());
}

}  // namespace
}  // namespace aidx
