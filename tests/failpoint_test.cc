// The fault-injection substrate itself: Failpoint mode semantics (error,
// delay, probabilistic, callback, max-hits auto-disarm), the registry's
// spec grammar and pending-spec queue, QueryContext's deadline/cancel
// contract, the ResourceGovernor's soft-budget arithmetic, and ThreadPool
// shutdown semantics that the merge mode machine depends on.
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/query_context.h"
#include "util/resource_governor.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

// Every test disarms the whole registry on entry and exit so suites can
// run in any order (and alongside AIDX_FAILPOINTS-configured processes).
class FailpointTest : public ::testing::Test {
 protected:
  static void Reset() {
    auto& registry = FailpointRegistry::Instance();
    registry.DisarmAll();
    for (Failpoint* point : registry.List()) point->ResetCounters();
  }
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }
};

TEST_F(FailpointTest, DisarmedInjectIsFreeAndUncounted) {
  Failpoint& fp = failpoints::crack_piece;
  EXPECT_FALSE(fp.armed());
  EXPECT_TRUE(fp.Inject().ok());
  // The disarmed fast path does not even count evaluations — that is the
  // property the e10 overhead benchmark measures.
  EXPECT_EQ(fp.evaluations(), 0u);
  EXPECT_EQ(fp.hits(), 0u);
}

TEST_F(FailpointTest, ErrorModeReturnsConfiguredCodeAndMessage) {
  FailpointPolicy policy;
  policy.mode = FailpointMode::kError;
  policy.code = StatusCode::kResourceExhausted;
  policy.message = "disk on fire";
  failpoints::organizer_step.Arm(policy);
  const Status s = failpoints::organizer_step.Inject();
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(failpoints::organizer_step.hits(), 1u);
  EXPECT_EQ(failpoints::organizer_step.evaluations(), 1u);
}

TEST_F(FailpointTest, DefaultMessageNamesThePoint) {
  FailpointPolicy policy;
  policy.mode = FailpointMode::kError;
  failpoints::crack_piece.Arm(policy);
  const Status s = failpoints::crack_piece.Inject();
  EXPECT_TRUE(s.IsInternal());
  EXPECT_NE(s.message().find("crack.piece"), std::string::npos);
}

TEST_F(FailpointTest, MaxHitsAutoDisarms) {
  FailpointPolicy policy;
  policy.mode = FailpointMode::kError;
  policy.max_hits = 2;
  failpoints::crack_piece.Arm(policy);
  EXPECT_FALSE(failpoints::crack_piece.Inject().ok());
  EXPECT_FALSE(failpoints::crack_piece.Inject().ok());
  // Third evaluation sees the point already disarmed by the second hit.
  EXPECT_TRUE(failpoints::crack_piece.Inject().ok());
  EXPECT_FALSE(failpoints::crack_piece.armed());
  EXPECT_EQ(failpoints::crack_piece.hits(), 2u);
}

TEST_F(FailpointTest, DelayModeSleepsButSucceeds) {
  FailpointPolicy policy;
  policy.mode = FailpointMode::kDelay;
  policy.delay_micros = 2000;
  failpoints::sideways_ripple.Arm(policy);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(failpoints::sideways_ripple.Inject().ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(2000));
  EXPECT_EQ(failpoints::sideways_ripple.hits(), 1u);
}

TEST_F(FailpointTest, ProbabilisticExtremes) {
  FailpointPolicy never;
  never.mode = FailpointMode::kProbabilistic;
  never.probability = 0.0;
  failpoints::crack_piece.Arm(never);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(failpoints::crack_piece.Inject().ok());
  // Non-fires count as evaluations but not hits.
  EXPECT_EQ(failpoints::crack_piece.evaluations(), 200u);
  EXPECT_EQ(failpoints::crack_piece.hits(), 0u);

  FailpointPolicy always;
  always.mode = FailpointMode::kProbabilistic;
  always.probability = 1.0;
  always.code = StatusCode::kResourceExhausted;
  failpoints::crack_piece.Arm(always);
  failpoints::crack_piece.ResetCounters();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(failpoints::crack_piece.Inject().IsResourceExhausted());
  }
  EXPECT_EQ(failpoints::crack_piece.hits(), 50u);
}

TEST_F(FailpointTest, ProbabilisticDrawsAreSeedDeterministic) {
  const auto fire_pattern = [](std::uint64_t seed) {
    FailpointPolicy policy;
    policy.mode = FailpointMode::kProbabilistic;
    policy.probability = 0.5;
    policy.seed = seed;
    failpoints::crack_piece.Arm(policy);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!failpoints::crack_piece.Inject().ok());
    return fired;
  };
  EXPECT_EQ(fire_pattern(7), fire_pattern(7));
  EXPECT_NE(fire_pattern(7), fire_pattern(8));
}

TEST_F(FailpointTest, CallbackReceivesCallSiteScope) {
  std::string seen;
  FailpointPolicy policy;
  policy.mode = FailpointMode::kCallback;
  policy.handler = [&seen](std::string_view scope) {
    seen = std::string(scope);
    return Status::NotFound("from handler");
  };
  failpoints::engine_dml_validate.Arm(policy);
  const std::string scope =
      std::string("orders") + kFailpointScopeSep + std::string("amount");
  EXPECT_TRUE(failpoints::engine_dml_validate.Inject(scope).IsNotFound());
  EXPECT_EQ(seen, scope);
}

TEST_F(FailpointTest, ResetCountersClearsWithoutDisarming) {
  FailpointPolicy policy;
  policy.mode = FailpointMode::kError;
  failpoints::crack_piece.Arm(policy);
  (void)failpoints::crack_piece.Inject();
  failpoints::crack_piece.ResetCounters();
  EXPECT_EQ(failpoints::crack_piece.hits(), 0u);
  EXPECT_EQ(failpoints::crack_piece.evaluations(), 0u);
  EXPECT_TRUE(failpoints::crack_piece.armed());
}

TEST_F(FailpointTest, RegistryFindsEveryCatalogPoint) {
  auto& registry = FailpointRegistry::Instance();
  for (const char* name :
       {"crack.piece", "organizer.step", "engine.dml_validate", "parallel.bg_submit",
        "parallel.bg_merge_step", "threadpool.submit", "sideways.select",
        "sideways.ripple", "storage.add_column", "storage.commit_row"}) {
    Failpoint* point = registry.Find(name);
    ASSERT_NE(point, nullptr) << name;
    EXPECT_STREQ(point->name(), name);
  }
  EXPECT_EQ(registry.Find("no.such.point"), nullptr);
  EXPECT_GE(registry.List().size(), 10u);
}

TEST_F(FailpointTest, ConfigureParsesTheModeGrammar) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("crack.piece=error(not_found)").ok());
  EXPECT_TRUE(failpoints::crack_piece.Inject().IsNotFound());

  ASSERT_TRUE(registry.Configure("crack.piece=error*1").ok());
  EXPECT_TRUE(failpoints::crack_piece.Inject().IsInternal());
  EXPECT_TRUE(failpoints::crack_piece.Inject().ok()) << "max-hits suffix ignored";

  ASSERT_TRUE(registry.Configure("crack.piece=delay(100)").ok());
  failpoints::crack_piece.ResetCounters();
  EXPECT_TRUE(failpoints::crack_piece.Inject().ok());
  EXPECT_EQ(failpoints::crack_piece.hits(), 1u);

  ASSERT_TRUE(registry.Configure("crack.piece=prob(1.0,out_of_range)").ok());
  EXPECT_TRUE(failpoints::crack_piece.Inject().IsOutOfRange());

  ASSERT_TRUE(registry.Configure("crack.piece=off").ok());
  EXPECT_FALSE(failpoints::crack_piece.armed());

  // Multiple points in one spec, both separators accepted.
  ASSERT_TRUE(
      registry.Configure("crack.piece=error;organizer.step=delay(10)").ok());
  EXPECT_TRUE(failpoints::crack_piece.armed());
  EXPECT_TRUE(failpoints::organizer_step.armed());
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_TRUE(registry.Configure("crack.piece").IsInvalidArgument());
  EXPECT_TRUE(registry.Configure("crack.piece=bogus").IsInvalidArgument());
  EXPECT_TRUE(registry.Configure("crack.piece=error(nonsense_code)")
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.Configure("crack.piece=prob(1.5)").IsInvalidArgument());
  EXPECT_TRUE(registry.Configure("crack.piece=delay(oops)").IsInvalidArgument());
  EXPECT_TRUE(registry.Configure("crack.piece=error*0").IsInvalidArgument());
  EXPECT_FALSE(failpoints::crack_piece.armed()) << "bad spec must not arm";
}

TEST_F(FailpointTest, UnknownNamesQueueAsPendingForLateRegistration) {
  auto& registry = FailpointRegistry::Instance();
  // The env path (AIDX_FAILPOINTS) runs before any point registers, so
  // unknown names must queue instead of erroring; a late-registering
  // point picks up its spec on construction. Points never unregister, so
  // the probe must outlive the process: function-local static.
  ASSERT_TRUE(
      registry.Configure("test.late.registration=error(already_exists)").ok());
  static Failpoint late("test.late.registration");
  EXPECT_TRUE(late.armed());
  EXPECT_TRUE(late.Inject().IsAlreadyExists());
}

TEST_F(FailpointTest, DisarmAllClearsEveryPoint) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("crack.piece=error,sideways.select=error").ok());
  registry.DisarmAll();
  for (Failpoint* point : registry.List()) {
    EXPECT_FALSE(point->armed()) << point->name();
  }
}

TEST(QueryContextTest, BackgroundNeverExpires) {
  const QueryContext ctx = QueryContext::Background();
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_FALSE(ctx.has_deadline());
}

TEST(QueryContextTest, PastDeadlineIsDeadlineExceeded) {
  const QueryContext ctx = QueryContext::WithTimeout(std::chrono::nanoseconds(0));
  const Status s = ctx.Check();
  EXPECT_TRUE(s.IsDeadlineExceeded());
  // A generous future deadline passes.
  EXPECT_TRUE(QueryContext::WithTimeout(std::chrono::hours(1)).Check().ok());
}

TEST(QueryContextTest, CancellationTokenFlipsCheck) {
  auto token = std::make_shared<CancellationToken>();
  QueryContext ctx = QueryContext::Background();
  ctx.SetToken(token);
  EXPECT_TRUE(ctx.Check().ok());
  token->Cancel();
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(QueryContextTest, CancellationWinsOverExpiredDeadline) {
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  QueryContext ctx = QueryContext::WithTimeout(std::chrono::nanoseconds(0));
  ctx.SetToken(token);
  // Both conditions hold; the contract is that the explicit cancel wins,
  // so callers can distinguish "user aborted" from "too slow".
  EXPECT_TRUE(ctx.Check().IsCancelled());
}

TEST(ResourceGovernorTest, UnlimitedByDefault) {
  ResourceGovernor governor;
  EXPECT_TRUE(governor.unlimited());
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 1ull << 40);
  EXPECT_FALSE(governor.UnderPressure());
  EXPECT_TRUE(governor.Admit(1ull << 40));
  EXPECT_FALSE(governor.MaybeShed(1ull << 40));
  EXPECT_EQ(governor.admission_denials(), 0u);
}

TEST(ResourceGovernorTest, GaugesAreAbsolutePerComponent) {
  ResourceGovernor governor({.soft_budget_bytes = 1000});
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 300);
  governor.SetUsage(ResourceComponent::kPendingUpdates, 200);
  governor.SetUsage(ResourceComponent::kWriteBuffers, 100);
  EXPECT_EQ(governor.UsageOf(ResourceComponent::kSidewaysMaps), 300u);
  EXPECT_EQ(governor.used_bytes(), 600u);
  // Absolute, not cumulative: re-setting replaces.
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 50);
  EXPECT_EQ(governor.used_bytes(), 350u);
}

TEST(ResourceGovernorTest, AdmitCountsDenials) {
  ResourceGovernor governor({.soft_budget_bytes = 1000});
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 900);
  EXPECT_TRUE(governor.Admit(100));
  EXPECT_FALSE(governor.Admit(101));
  EXPECT_FALSE(governor.Admit(ResourceGovernor::kUnlimited));  // no overflow
  EXPECT_EQ(governor.admission_denials(), 2u);
  EXPECT_FALSE(governor.UnderPressure()) << "at budget is not over budget";
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 1001);
  EXPECT_TRUE(governor.UnderPressure());
}

TEST(ResourceGovernorTest, MaybeShedConsidersIncomingBytes) {
  ResourceGovernor governor({.soft_budget_bytes = 1000});
  int shed_calls = 0;
  governor.SetPressureCallback([&] { ++shed_calls; });
  governor.SetUsage(ResourceComponent::kSidewaysMaps, 600);
  // Under budget even with the incoming allocation: no shed.
  EXPECT_FALSE(governor.MaybeShed(400));
  // used + incoming overflows though used alone does not: shed fires.
  EXPECT_TRUE(governor.MaybeShed(401));
  EXPECT_EQ(shed_calls, 1);
  EXPECT_EQ(governor.sheds(), 1u);
  // No callback installed: pressure is real but nothing can react.
  governor.SetPressureCallback(nullptr);
  EXPECT_FALSE(governor.MaybeShed(401));
  EXPECT_EQ(governor.sheds(), 1u);
}

TEST(ThreadPoolShutdownTest, ShutdownIsIdempotentAndStopsIntake) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.TrySubmit([] {}));
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(pool.num_threads(), 0u);
  EXPECT_FALSE(pool.TrySubmit([] {}));
  // ParallelFor degrades to an inline loop on a stopped pool.
  std::size_t sum = 0;
  pool.ParallelFor(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPoolShutdownTest, QueuedClosuresAreDestroyedNotRun) {
  // A zero-worker pool queues Submit()ed tasks forever, so Shutdown must
  // destroy them un-run — and destruction must release whatever RAII
  // state the closure captured (the merge ticket pattern).
  auto ran = std::make_shared<std::atomic<bool>>(false);
  bool destroyed = false;
  {
    ThreadPool pool(0);
    auto sentinel = std::shared_ptr<void>(static_cast<void*>(nullptr),
                                          [&destroyed](void*) { destroyed = true; });
    pool.Submit([ran, sentinel] { ran->store(true); });
    sentinel.reset();
    EXPECT_FALSE(destroyed) << "closure still holds the sentinel";
    pool.Shutdown();
    EXPECT_TRUE(destroyed) << "Shutdown must destroy dropped closures";
  }
  EXPECT_FALSE(ran->load());
}

TEST(ThreadPoolShutdownTest, SubmitFailpointForcesTrySubmitFalse) {
  FailpointRegistry::Instance().DisarmAll();
  ThreadPool pool(1);
  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("threadpool.submit=error").ok());
  EXPECT_FALSE(pool.TrySubmit([] {}));
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_TRUE(pool.TrySubmit([] {}));
  pool.Shutdown();
}

}  // namespace
}  // namespace aidx
