// Property tests for the AVL tree against std::map as the reference model.
#include "index/avl_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace aidx {
namespace {

TEST(AvlTreeTest, EmptyTree) {
  AvlTree<int, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_EQ(t.FindFloor(1), nullptr);
  EXPECT_EQ(t.FindCeiling(1), nullptr);
  EXPECT_EQ(t.Min(), nullptr);
  EXPECT_EQ(t.Max(), nullptr);
  EXPECT_TRUE(t.Validate());
}

TEST(AvlTreeTest, InsertAndFind) {
  AvlTree<int, std::string> t;
  EXPECT_TRUE(t.Insert(2, "two").second);
  EXPECT_TRUE(t.Insert(1, "one").second);
  EXPECT_TRUE(t.Insert(3, "three").second);
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.Find(2), nullptr);
  EXPECT_EQ(t.Find(2)->value, "two");
  EXPECT_EQ(t.Find(4), nullptr);
  EXPECT_TRUE(t.Validate());
}

TEST(AvlTreeTest, DuplicateInsertKeepsOriginal) {
  AvlTree<int, int> t;
  EXPECT_TRUE(t.Insert(1, 10).second);
  const auto [node, inserted] = t.Insert(1, 20);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(node->value, 10);
  EXPECT_EQ(t.size(), 1u);
}

TEST(AvlTreeTest, FloorCeilingSemantics) {
  AvlTree<int, int> t;
  for (int k : {10, 20, 30}) t.Insert(k, k);
  EXPECT_EQ(t.FindFloor(25)->key, 20);
  EXPECT_EQ(t.FindFloor(20)->key, 20);
  EXPECT_EQ(t.FindFloor(5), nullptr);
  EXPECT_EQ(t.FindCeiling(25)->key, 30);
  EXPECT_EQ(t.FindCeiling(20)->key, 20);
  EXPECT_EQ(t.FindCeiling(35), nullptr);
  EXPECT_EQ(t.FindBelow(20)->key, 10);
  EXPECT_EQ(t.FindBelow(10), nullptr);
  EXPECT_EQ(t.FindAbove(20)->key, 30);
  EXPECT_EQ(t.FindAbove(30), nullptr);
}

TEST(AvlTreeTest, SequentialInsertStaysBalanced) {
  AvlTree<int, int> t;
  for (int i = 0; i < 4096; ++i) t.Insert(i, i);
  EXPECT_EQ(t.size(), 4096u);
  // AVL height bound: 1.44 * log2(n+2) ~ 17.3 for n = 4096.
  EXPECT_LE(t.height(), 18);
  EXPECT_TRUE(t.Validate());
}

TEST(AvlTreeTest, ReverseInsertStaysBalanced) {
  AvlTree<int, int> t;
  for (int i = 4096; i > 0; --i) t.Insert(i, i);
  EXPECT_LE(t.height(), 18);
  EXPECT_TRUE(t.Validate());
}

TEST(AvlTreeTest, EraseLeafInternalAndRoot) {
  AvlTree<int, int> t;
  for (int k : {50, 30, 70, 20, 40, 60, 80}) t.Insert(k, k);
  EXPECT_TRUE(t.Erase(20));   // leaf
  EXPECT_TRUE(t.Erase(30));   // one child
  EXPECT_TRUE(t.Erase(50));   // two children (root)
  EXPECT_FALSE(t.Erase(50));  // already gone
  EXPECT_EQ(t.size(), 4u);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(40)->key, 40);
}

TEST(AvlTreeTest, VisitInOrderIsSorted) {
  AvlTree<int, int> t;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(10000));
    t.Insert(k, k);
  }
  std::vector<int> keys;
  t.VisitInOrder([&](auto& node) { keys.push_back(node.key); });
  EXPECT_EQ(keys.size(), t.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(AvlTreeTest, VisitFromStartsAtKey) {
  AvlTree<int, int> t;
  for (int i = 0; i < 100; i += 10) t.Insert(i, i);
  std::vector<int> keys;
  t.VisitFrom(35, [&](auto& node) { keys.push_back(node.key); });
  EXPECT_EQ(keys, (std::vector<int>{40, 50, 60, 70, 80, 90}));
  keys.clear();
  t.VisitFrom(40, [&](auto& node) { keys.push_back(node.key); });
  EXPECT_EQ(keys.front(), 40);
}

TEST(AvlTreeTest, VisitFromCanMutateValues) {
  AvlTree<int, int> t;
  for (int i = 0; i < 10; ++i) t.Insert(i, i);
  t.VisitFrom(5, [&](auto& node) { node.value += 100; });
  EXPECT_EQ(t.Find(4)->value, 4);
  EXPECT_EQ(t.Find(5)->value, 105);
  EXPECT_EQ(t.Find(9)->value, 109);
}

TEST(AvlTreeTest, MoveConstructionTransfersOwnership) {
  AvlTree<int, int> a;
  a.Insert(1, 1);
  a.Insert(2, 2);
  AvlTree<int, int> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_NE(b.Find(1), nullptr);
}

// Randomized differential test: AVL vs std::map under a mixed op stream.
TEST(AvlTreeTest, DifferentialAgainstStdMap) {
  AvlTree<int, int> tree;
  std::map<int, int> model;
  Rng rng(12345);
  for (int step = 0; step < 20000; ++step) {
    const int key = static_cast<int>(rng.NextBounded(500));
    const int op = static_cast<int>(rng.NextBounded(4));
    switch (op) {
      case 0: {  // insert
        const bool inserted = tree.Insert(key, step).second;
        const bool model_inserted = model.emplace(key, step).second;
        ASSERT_EQ(inserted, model_inserted);
        break;
      }
      case 1: {  // erase
        ASSERT_EQ(tree.Erase(key), model.erase(key) > 0);
        break;
      }
      case 2: {  // find
        const auto* node = tree.Find(key);
        const auto it = model.find(key);
        ASSERT_EQ(node != nullptr, it != model.end());
        if (node != nullptr) {
          ASSERT_EQ(node->value, it->second);
        }
        break;
      }
      default: {  // floor + ceiling
        const auto* floor = tree.FindFloor(key);
        auto it = model.upper_bound(key);
        const bool has_floor = it != model.begin();
        ASSERT_EQ(floor != nullptr, has_floor);
        if (has_floor) {
          ASSERT_EQ(floor->key, std::prev(it)->first);
        }
        const auto* ceil = tree.FindCeiling(key);
        const auto lb = model.lower_bound(key);
        ASSERT_EQ(ceil != nullptr, lb != model.end());
        if (ceil != nullptr) {
          ASSERT_EQ(ceil->key, lb->first);
        }
        break;
      }
    }
    ASSERT_EQ(tree.size(), model.size());
  }
  EXPECT_TRUE(tree.Validate());
  std::vector<std::pair<int, int>> tree_entries;
  tree.VisitInOrder([&](auto& n) { tree_entries.emplace_back(n.key, n.value); });
  std::vector<std::pair<int, int>> model_entries(model.begin(), model.end());
  EXPECT_EQ(tree_entries, model_entries);
}

}  // namespace
}  // namespace aidx
