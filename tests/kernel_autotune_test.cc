// Tests for the startup kernel calibration (core/kernel_autotune.h): the
// sweep must pick a concrete measurable kernel, the disabled path must pin
// the documented fallback exactly, and the min-piece threshold must route
// small pieces to the branchy kernel element-for-element.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/crack_ops.h"
#include "core/kernel_autotune.h"
#include "util/rng.h"

namespace aidx {
namespace {

std::vector<std::int32_t> RandomI32(std::size_t n, std::uint64_t domain,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> out(n);
  for (auto& v : out) v = static_cast<std::int32_t>(rng.NextBounded(domain));
  return out;
}

TEST(KernelAutotuneTest, DisabledCalibrationPinsDocumentedFallback) {
  SetCalibrationEnabled(false);
  const KernelCalibration& cal = Calibrate();
  EXPECT_FALSE(cal.calibrated);
  EXPECT_EQ(cal.kernel_w4, CrackKernel::kPredicatedUnrolled);
  EXPECT_EQ(cal.kernel_w8, CrackKernel::kPredicatedUnrolled);
  EXPECT_EQ(cal.min_piece_w4, kPredicationMinPiece);
  EXPECT_EQ(cal.min_piece_w8, kPredicationMinPiece);
  EXPECT_EQ(ResolveCrackKernel(CrackKernel::kAuto, 4),
            CrackKernel::kPredicatedUnrolled);
  EXPECT_EQ(ResolveCrackKernel(CrackKernel::kAuto, 8),
            CrackKernel::kPredicatedUnrolled);
  EXPECT_EQ(DefaultCrackMinPiece(4), kPredicationMinPiece);
  EXPECT_EQ(DefaultCrackMinPiece(8), kPredicationMinPiece);
}

TEST(KernelAutotuneTest, SweepPicksAConcreteMeasuredKernel) {
  SetCalibrationEnabled(true);
  const KernelCalibration& cal = Calibrate();
  ASSERT_TRUE(cal.calibrated);
  ASSERT_NE(CalibrationIfRan(), nullptr);
  for (const auto& [kernel, mrows] :
       {std::pair<CrackKernel, const double*>{cal.kernel_w4, cal.mrows_w4},
        {cal.kernel_w8, cal.mrows_w8}}) {
    // The winner is a concrete kernel that was actually measured, and no
    // measured candidate beat it.
    ASSERT_NE(kernel, CrackKernel::kAuto);
    const auto idx = static_cast<std::size_t>(kernel);
    ASSERT_LT(idx, kNumCrackKernels);
    EXPECT_GT(mrows[idx], 0.0);
    for (std::size_t k = 0; k < kNumCrackKernels; ++k) {
      EXPECT_LE(mrows[k], mrows[idx]) << "kernel " << k << " beat the winner";
    }
  }
  // kSimd may only win where a vector ISA exists.
  if (!cal.simd_available) {
    EXPECT_NE(cal.kernel_w4, CrackKernel::kSimd);
    EXPECT_NE(cal.kernel_w8, CrackKernel::kSimd);
    EXPECT_EQ(cal.mrows_w4[static_cast<std::size_t>(CrackKernel::kSimd)], 0.0);
  }
  EXPECT_GT(cal.min_piece_w4, 0u);
  EXPECT_GT(cal.min_piece_w8, 0u);
  // kAuto now resolves to the calibrated winners without re-sweeping.
  EXPECT_EQ(ResolveCrackKernel(CrackKernel::kAuto, 4), cal.kernel_w4);
  EXPECT_EQ(ResolveCrackKernel(CrackKernel::kAuto, 8), cal.kernel_w8);
  EXPECT_EQ(DefaultCrackMinPiece(4), cal.min_piece_w4);
  EXPECT_EQ(DefaultCrackMinPiece(8), cal.min_piece_w8);
}

TEST(KernelAutotuneTest, ResolveIsIdentityForConcreteKernels) {
  SetCalibrationEnabled(false);
  for (const CrackKernel kernel :
       {CrackKernel::kBranchy, CrackKernel::kPredicated,
        CrackKernel::kPredicatedUnrolled, CrackKernel::kSimd}) {
    EXPECT_EQ(ResolveCrackKernel(kernel, 4), kernel);
    EXPECT_EQ(ResolveCrackKernel(kernel, 8), kernel);
  }
}

// Pieces below the min-piece threshold must be cracked by the branchy
// kernel regardless of the requested kernel: not just the same split, the
// exact same element order (the fallback IS the branchy sweep).
TEST(KernelAutotuneTest, MinPieceFallbackIsBranchyElementForElement) {
  SetCalibrationEnabled(false);  // threshold = kPredicationMinPiece (128)
  const Cut<std::int32_t> cut{500, CutKind::kLess};
  for (const std::size_t n :
       {std::size_t{17}, std::size_t{100}, kPredicationMinPiece - 1}) {
    const std::vector<std::int32_t> base = RandomI32(n, 1000, 9 + n);
    std::vector<std::int32_t> oracle = base;
    const std::size_t want =
        CrackInTwo<std::int32_t>(oracle, {}, cut, CrackKernel::kBranchy);
    for (const CrackKernel kernel :
         {CrackKernel::kPredicated, CrackKernel::kPredicatedUnrolled,
          CrackKernel::kSimd, CrackKernel::kAuto}) {
      std::vector<std::int32_t> got = base;
      // min_piece = 0 defers to DefaultCrackMinPiece() — the fallback
      // threshold with calibration off.
      const std::size_t split =
          CrackInTwo<std::int32_t>(got, {}, cut, kernel, /*min_piece=*/0);
      EXPECT_EQ(split, want) << CrackKernelName(kernel) << " n=" << n;
      EXPECT_EQ(got, oracle) << CrackKernelName(kernel)
                             << " did not take the branchy fallback at n=" << n;
    }
  }
  // An explicit min_piece wins over the process default: a large threshold
  // forces branchy even on big pieces, a threshold of 1 disables the
  // fallback entirely.
  const std::vector<std::int32_t> base = RandomI32(4096, 1000, 77);
  std::vector<std::int32_t> oracle = base;
  CrackInTwo<std::int32_t>(oracle, {}, cut, CrackKernel::kBranchy);
  std::vector<std::int32_t> forced = base;
  CrackInTwo<std::int32_t>(forced, {}, cut, CrackKernel::kPredicatedUnrolled,
                           /*min_piece=*/1u << 20);
  EXPECT_EQ(forced, oracle) << "large min_piece did not force branchy";
}

}  // namespace
}  // namespace aidx
