// Partition invariants of crack-in-two / crack-in-three, including
// row-id tandem movement, duplicates, and randomized sweeps.
#include "core/crack_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace aidx {
namespace {

using I64Cut = Cut<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

TEST(CutTest, BelowSemantics) {
  const I64Cut less{5, CutKind::kLess};
  EXPECT_TRUE(less.Below(4));
  EXPECT_FALSE(less.Below(5));
  const I64Cut less_eq{5, CutKind::kLessEq};
  EXPECT_TRUE(less_eq.Below(5));
  EXPECT_FALSE(less_eq.Below(6));
}

TEST(CutTest, OrderingValueThenKind) {
  const I64Cut a{5, CutKind::kLess};
  const I64Cut b{5, CutKind::kLessEq};
  const I64Cut c{6, CutKind::kLess};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_FALSE(b < a);
  EXPECT_EQ(a, (I64Cut{5, CutKind::kLess}));
}

TEST(CutsForPredicateTest, AllFourBoundForms) {
  using P = RangePredicate<std::int64_t>;
  auto cuts = CutsForPredicate(P::Between(3, 8));
  EXPECT_TRUE(cuts.has_lower);
  EXPECT_EQ(cuts.lower, (I64Cut{3, CutKind::kLess}));
  EXPECT_TRUE(cuts.has_upper);
  EXPECT_EQ(cuts.upper, (I64Cut{8, CutKind::kLessEq}));

  cuts = CutsForPredicate(P{3, BoundKind::kExclusive, 8, BoundKind::kExclusive});
  EXPECT_EQ(cuts.lower, (I64Cut{3, CutKind::kLessEq}));
  EXPECT_EQ(cuts.upper, (I64Cut{8, CutKind::kLess}));

  cuts = CutsForPredicate(P::AtLeast(3));
  EXPECT_TRUE(cuts.has_lower);
  EXPECT_FALSE(cuts.has_upper);

  cuts = CutsForPredicate(P::LessThan(8));
  EXPECT_FALSE(cuts.has_lower);
  EXPECT_EQ(cuts.upper, (I64Cut{8, CutKind::kLess}));
}

void ExpectTwoWayPartitioned(const std::vector<std::int64_t>& v, std::size_t split,
                             const I64Cut& cut) {
  for (std::size_t i = 0; i < split; ++i) {
    ASSERT_TRUE(cut.Below(v[i])) << "position " << i << " value " << v[i];
  }
  for (std::size_t i = split; i < v.size(); ++i) {
    ASSERT_FALSE(cut.Below(v[i])) << "position " << i << " value " << v[i];
  }
}

TEST(CrackInTwoTest, BasicPartition) {
  std::vector<std::int64_t> v = {5, 2, 8, 1, 9, 3, 7};
  const I64Cut cut{5, CutKind::kLess};
  const std::size_t split = CrackInTwo<std::int64_t>(v, {}, cut);
  EXPECT_EQ(split, 3u);  // 2, 1, 3
  ExpectTwoWayPartitioned(v, split, cut);
}

TEST(CrackInTwoTest, PreservesMultiset) {
  auto v = RandomValues(1000, 100, 5);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  CrackInTwo<std::int64_t>(v, {}, {50, CutKind::kLess});
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TEST(CrackInTwoTest, AllBelow) {
  std::vector<std::int64_t> v = {1, 2, 3};
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {10, CutKind::kLess}), 3u);
}

TEST(CrackInTwoTest, NoneBelow) {
  std::vector<std::int64_t> v = {11, 12, 13};
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {10, CutKind::kLess}), 0u);
}

TEST(CrackInTwoTest, EmptyInput) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {10, CutKind::kLess}), 0u);
}

TEST(CrackInTwoTest, SingleElement) {
  std::vector<std::int64_t> v = {10};
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {10, CutKind::kLess}), 0u);
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {10, CutKind::kLessEq}), 1u);
}

TEST(CrackInTwoTest, AllDuplicatesLessVsLessEq) {
  std::vector<std::int64_t> v(100, 7);
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {7, CutKind::kLess}), 0u);
  EXPECT_EQ(CrackInTwo<std::int64_t>(v, {}, {7, CutKind::kLessEq}), 100u);
}

TEST(CrackInTwoTest, RowIdsMoveInTandem) {
  std::vector<std::int64_t> v = {5, 2, 8, 1};
  const std::vector<std::int64_t> original = v;
  std::vector<row_id_t> rids(v.size());
  std::iota(rids.begin(), rids.end(), row_id_t{0});
  CrackInTwo<std::int64_t>(v, std::span<row_id_t>(rids), {5, CutKind::kLess});
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], original[rids[i]]) << "tandem broken at " << i;
  }
}

TEST(CrackInThreeTest, BasicThreeWay) {
  std::vector<std::int64_t> v = {5, 2, 8, 1, 9, 3, 7, 6};
  const I64Cut lo{3, CutKind::kLess};   // below: v < 3
  const I64Cut hi{7, CutKind::kLessEq}; // middle: 3 <= v <= 7
  const ThreeWaySplit s = CrackInThree<std::int64_t>(v, {}, lo, hi);
  EXPECT_EQ(s.lower_end, 2u);   // 2, 1
  EXPECT_EQ(s.middle_end, 6u);  // 5, 3, 7, 6
  for (std::size_t i = 0; i < s.lower_end; ++i) ASSERT_LT(v[i], 3);
  for (std::size_t i = s.lower_end; i < s.middle_end; ++i) {
    ASSERT_GE(v[i], 3);
    ASSERT_LE(v[i], 7);
  }
  for (std::size_t i = s.middle_end; i < v.size(); ++i) ASSERT_GT(v[i], 7);
}

TEST(CrackInThreeTest, EmptyMiddle) {
  std::vector<std::int64_t> v = {1, 9, 2, 8};
  const ThreeWaySplit s =
      CrackInThree<std::int64_t>(v, {}, {5, CutKind::kLess}, {5, CutKind::kLessEq});
  EXPECT_EQ(s.lower_end, s.middle_end);  // no value == 5
}

TEST(CrackInThreeTest, RowIdsMoveInTandem) {
  auto v = RandomValues(500, 50, 21);
  const auto original = v;
  std::vector<row_id_t> rids(v.size());
  std::iota(rids.begin(), rids.end(), row_id_t{0});
  CrackInThree<std::int64_t>(v, std::span<row_id_t>(rids), {10, CutKind::kLess},
                             {40, CutKind::kLessEq});
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i], original[rids[i]]);
  }
}

struct SweepParam {
  std::size_t n;
  std::int64_t domain;
};

class CrackOpsSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrackOpsSweepTest, CrackInTwoRandomizedInvariants) {
  const auto [n, domain] = GetParam();
  Rng rng(n * 31 + static_cast<std::uint64_t>(domain));
  for (int trial = 0; trial < 30; ++trial) {
    auto v = RandomValues(n, domain, rng.Next());
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    const I64Cut cut{static_cast<std::int64_t>(rng.NextBounded(
                         static_cast<std::uint64_t>(domain) + 2)) - 1,
                     rng.NextBounded(2) == 0 ? CutKind::kLess : CutKind::kLessEq};
    const std::size_t split = CrackInTwo<std::int64_t>(v, {}, cut);
    ExpectTwoWayPartitioned(v, split, cut);
    std::sort(v.begin(), v.end());
    ASSERT_EQ(v, sorted) << "multiset changed";
  }
}

TEST_P(CrackOpsSweepTest, CrackInThreeRandomizedInvariants) {
  const auto [n, domain] = GetParam();
  Rng rng(n * 37 + static_cast<std::uint64_t>(domain));
  for (int trial = 0; trial < 30; ++trial) {
    auto v = RandomValues(n, domain, rng.Next());
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    std::int64_t a = static_cast<std::int64_t>(rng.NextBounded(
        static_cast<std::uint64_t>(domain)));
    std::int64_t b = static_cast<std::int64_t>(rng.NextBounded(
        static_cast<std::uint64_t>(domain)));
    if (a > b) std::swap(a, b);
    const I64Cut lo{a, CutKind::kLess};
    const I64Cut hi{b, CutKind::kLessEq};
    const ThreeWaySplit s = CrackInThree<std::int64_t>(v, {}, lo, hi);
    ASSERT_LE(s.lower_end, s.middle_end);
    ASSERT_LE(s.middle_end, v.size());
    for (std::size_t i = 0; i < s.lower_end; ++i) ASSERT_TRUE(lo.Below(v[i]));
    for (std::size_t i = s.lower_end; i < s.middle_end; ++i) {
      ASSERT_FALSE(lo.Below(v[i]));
      ASSERT_TRUE(hi.Below(v[i]));
    }
    for (std::size_t i = s.middle_end; i < v.size(); ++i) ASSERT_FALSE(hi.Below(v[i]));
    std::sort(v.begin(), v.end());
    ASSERT_EQ(v, sorted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDomains, CrackOpsSweepTest,
    ::testing::Values(SweepParam{1, 10}, SweepParam{2, 2}, SweepParam{100, 3},
                      SweepParam{1000, 10}, SweepParam{1000, 1000000},
                      SweepParam{4096, 64}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.domain);
    });

}  // namespace
}  // namespace aidx
