// Sideways cracking: cracker-map mechanics, adaptive alignment invariants,
// multi-column projection correctness against a row-oracle, and the
// partial-cracking storage budget (eviction + failure path).
#include "sideways/sideways.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sideways/cracker_map.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Map = CrackerMap<std::int64_t>;
using Cracker = SidewaysCracker<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

TEST(CrackerMapTest, TailTravelsWithHead) {
  // head = key, tail = key * 1000 so consistency is directly checkable.
  const std::size_t n = 2000;
  auto head = RandomValues(n, 500, 1);
  std::vector<std::int64_t> tail(n);
  for (std::size_t i = 0; i < n; ++i) tail[i] = head[i] * 1000;
  Map map(head, tail);
  Rng rng(2);
  for (int q = 0; q < 100; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(500));
    const auto p = Pred::Between(a, a + 30);
    const PositionRange r = map.Select(p);
    const auto h = map.head();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(map.tail_at(i), h[i] * 1000) << "pair broke at " << i;
    }
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ASSERT_TRUE(p.Matches(h[i]));
    }
  }
  EXPECT_TRUE(map.Validate());
}

TEST(CrackerMapTest, SelectCountsMatchOracle) {
  const auto head = RandomValues(3000, 800, 3);
  const auto tail = RandomValues(3000, 100, 4);
  Map map(head, tail);
  Rng rng(5);
  for (int q = 0; q < 200; ++q) {
    const std::int64_t a = rng.NextInRange(-5, 805);
    const std::int64_t w = rng.NextInRange(0, 100);
    const auto p = Pred::HalfOpen(a, a + w);
    std::size_t expect = 0;
    for (const auto v : head) expect += p.Matches(v) ? 1 : 0;
    ASSERT_EQ(map.Select(p).size(), expect) << p.ToString();
  }
}

TEST(CrackerMapTest, DeterministicLayoutUnderSameOps) {
  const auto head = RandomValues(1000, 300, 6);
  const auto tail = RandomValues(1000, 300, 7);
  Map a(head, tail);
  Map b(head, tail);
  Rng rng(8);
  for (int q = 0; q < 60; ++q) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(300));
    const auto p = Pred::Between(lo, lo + 20);
    const PositionRange ra = a.Select(p);
    const PositionRange rb = b.Select(p);
    ASSERT_EQ(ra, rb);
  }
  // Byte-identical layouts: the property adaptive alignment relies on.
  EXPECT_TRUE(std::equal(a.head().begin(), a.head().end(), b.head().begin()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.tail_at(i), b.tail_at(i));
    ASSERT_EQ(a.rid_at(i), b.rid_at(i));
  }
}

TEST(CrackerMapTest, RejectsLengthMismatch) {
  const std::vector<std::int64_t> head = {1, 2, 3};
  const std::vector<std::int64_t> tail = {1, 2};
  EXPECT_DEATH({ Map map(head, tail); }, "mismatch");
}

// Fixture with a 4-column table: head "a", tails derived deterministically.
class SidewaysTest : public ::testing::Test {
 protected:
  void SetUp() override {
    head_ = RandomValues(kN, 1000, 11);
    b_.resize(kN);
    c_.resize(kN);
    d_.resize(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      b_[i] = head_[i] + 1;
      c_[i] = head_[i] * 2;
      d_[i] = -head_[i];
    }
    cracker_ = std::make_unique<Cracker>(head_, opts_);
    ASSERT_TRUE(cracker_->AddTailColumn("b", b_).ok());
    ASSERT_TRUE(cracker_->AddTailColumn("c", c_).ok());
    ASSERT_TRUE(cracker_->AddTailColumn("d", d_).ok());
  }

  static constexpr std::size_t kN = 3000;
  Cracker::Options opts_{};
  std::vector<std::int64_t> head_, b_, c_, d_;
  std::unique_ptr<Cracker> cracker_;
};

TEST_F(SidewaysTest, SingleColumnProjection) {
  const auto p = Pred::Between(100, 200);
  auto res = cracker_->SelectProject(p, {"b"});
  ASSERT_TRUE(res.ok());
  std::size_t expect = 0;
  for (const auto v : head_) expect += p.Matches(v) ? 1 : 0;
  EXPECT_EQ(res->num_rows, expect);
  // b == a + 1, and a in [100, 200] -> b in [101, 201].
  for (const auto v : res->columns[0]) {
    EXPECT_GE(v, 101);
    EXPECT_LE(v, 201);
  }
}

TEST_F(SidewaysTest, MultiColumnRowsAligned) {
  const auto p = Pred::Between(300, 450);
  auto res = cracker_->SelectProject(p, {"b", "c", "d"});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->columns.size(), 3u);
  ASSERT_EQ(res->columns[0].size(), res->num_rows);
  ASSERT_EQ(res->columns[1].size(), res->num_rows);
  ASSERT_EQ(res->columns[2].size(), res->num_rows);
  // Row alignment: b = a+1, c = 2a, d = -a must hold row-wise, which pins
  // all three projections to the same base tuple.
  for (std::size_t i = 0; i < res->num_rows; ++i) {
    const std::int64_t a = res->columns[0][i] - 1;
    EXPECT_EQ(res->columns[1][i], 2 * a);
    EXPECT_EQ(res->columns[2][i], -a);
    EXPECT_TRUE(p.Matches(a));
  }
}

TEST_F(SidewaysTest, MultisetMatchesRowOracle) {
  Rng rng(12);
  for (int q = 0; q < 80; ++q) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(1000));
    const auto p = Pred::Between(lo, lo + 50);
    auto res = cracker_->SelectProject(p, {"c"});
    ASSERT_TRUE(res.ok());
    std::multiset<std::int64_t> got(res->columns[0].begin(), res->columns[0].end());
    std::multiset<std::int64_t> expect;
    for (std::size_t i = 0; i < kN; ++i) {
      if (p.Matches(head_[i])) expect.insert(c_[i]);
    }
    ASSERT_EQ(got, expect) << "query " << q;
  }
  EXPECT_TRUE(cracker_->Validate());
}

TEST_F(SidewaysTest, MapsCreatedLazilyAndAligned) {
  EXPECT_EQ(cracker_->num_live_maps(), 0u);
  ASSERT_TRUE(cracker_->SelectProject(Pred::Between(1, 500), {"b"}).ok());
  EXPECT_EQ(cracker_->num_live_maps(), 1u);
  ASSERT_TRUE(cracker_->SelectProject(Pred::Between(200, 300), {"b"}).ok());
  ASSERT_TRUE(cracker_->SelectProject(Pred::Between(400, 600), {"b"}).ok());
  EXPECT_EQ(cracker_->stats().maps_created, 1u);
  // A late-joining map replays the whole tape to catch up.
  const std::size_t replays_before = cracker_->stats().alignment_replays;
  auto res = cracker_->SelectProject(Pred::Between(100, 150), {"c"});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(cracker_->num_live_maps(), 2u);
  // 4 tape entries total (3 old + this one); the fresh map replays all 4.
  EXPECT_EQ(cracker_->stats().alignment_replays - replays_before, 4u);
  EXPECT_TRUE(cracker_->Validate());
}

TEST_F(SidewaysTest, SelectSumMatchesOracle) {
  const auto p = Pred::Between(250, 750);
  auto sum = cracker_->SelectSum(p, "c");
  ASSERT_TRUE(sum.ok());
  long double expect = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    if (p.Matches(head_[i])) expect += c_[i];
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(*sum), static_cast<double>(expect));
}

TEST_F(SidewaysTest, UnknownTailIsNotFound) {
  auto res = cracker_->SelectProject(Pred::Between(1, 2), {"nope"});
  EXPECT_TRUE(res.status().IsNotFound());
  EXPECT_TRUE(cracker_->SelectSum(Pred::Between(1, 2), "nope").status().IsNotFound());
}

TEST_F(SidewaysTest, EmptyProjectionListRejected) {
  EXPECT_TRUE(cracker_->SelectProject(Pred::Between(1, 2), {})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SidewaysTest, MismatchedTailLengthRejected) {
  const std::vector<std::int64_t> short_tail(10, 0);
  EXPECT_TRUE(cracker_->AddTailColumn("short", short_tail).IsInvalidArgument());
  EXPECT_TRUE(cracker_->AddTailColumn("b", b_).IsAlreadyExists());
}

TEST(SidewaysBudgetTest, EvictsLruUnderPressure) {
  const auto head = RandomValues(1000, 100, 21);
  const auto t1 = RandomValues(1000, 100, 22);
  const auto t2 = RandomValues(1000, 100, 23);
  const auto t3 = RandomValues(1000, 100, 24);
  // Budget fits exactly two maps (each 1000 rows of head + tail + rid).
  Cracker cracker(head, {.storage_budget_bytes = 2 * 1000 * Map::kBytesPerRow});
  ASSERT_TRUE(cracker.AddTailColumn("t1", t1).ok());
  ASSERT_TRUE(cracker.AddTailColumn("t2", t2).ok());
  ASSERT_TRUE(cracker.AddTailColumn("t3", t3).ok());
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(10, 20), {"t1"}).ok());
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(10, 20), {"t2"}).ok());
  EXPECT_EQ(cracker.num_live_maps(), 2u);
  // Third map forces eviction of t1 (least recently used).
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(10, 20), {"t3"}).ok());
  EXPECT_EQ(cracker.num_live_maps(), 2u);
  EXPECT_EQ(cracker.stats().maps_evicted, 1u);
  // Evicted map rebuilds on demand and still answers correctly.
  auto res = cracker.SelectProject(Pred::Between(10, 20), {"t1"});
  ASSERT_TRUE(res.ok());
  std::size_t expect = 0;
  for (const auto v : head) expect += Pred::Between(10, 20).Matches(v) ? 1 : 0;
  EXPECT_EQ(res->num_rows, expect);
  EXPECT_EQ(cracker.stats().maps_evicted, 2u);
  EXPECT_TRUE(cracker.Validate());
}

TEST(SidewaysBudgetTest, QueryWiderThanBudgetFails) {
  const auto head = RandomValues(1000, 100, 25);
  const auto t1 = RandomValues(1000, 100, 26);
  const auto t2 = RandomValues(1000, 100, 27);
  Cracker cracker(head, {.storage_budget_bytes = 1000 * Map::kBytesPerRow});
  ASSERT_TRUE(cracker.AddTailColumn("t1", t1).ok());
  ASSERT_TRUE(cracker.AddTailColumn("t2", t2).ok());
  auto res = cracker.SelectProject(Pred::Between(10, 20), {"t1", "t2"});
  EXPECT_TRUE(res.status().IsResourceExhausted());
  // Single-map queries still work.
  EXPECT_TRUE(cracker.SelectProject(Pred::Between(10, 20), {"t1"}).ok());
}

TEST(SidewaysBudgetTest, BudgetSmallerThanOneMapFails) {
  const auto head = RandomValues(100, 10, 28);
  const auto t1 = RandomValues(100, 10, 29);
  Cracker cracker(head, {.storage_budget_bytes = 8});
  ASSERT_TRUE(cracker.AddTailColumn("t1", t1).ok());
  EXPECT_TRUE(cracker.SelectProject(Pred::Between(1, 5), {"t1"})
                  .status()
                  .IsResourceExhausted());
}

TEST(SidewaysAlignmentTest, EagerAlignmentKeepsAllMapsCurrent) {
  const auto head = RandomValues(1000, 200, 31);
  const auto t1 = RandomValues(1000, 200, 32);
  const auto t2 = RandomValues(1000, 200, 33);
  Cracker cracker(head, {.eager_alignment = true});
  ASSERT_TRUE(cracker.AddTailColumn("t1", t1).ok());
  ASSERT_TRUE(cracker.AddTailColumn("t2", t2).ok());
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(10, 50), {"t1"}).ok());
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(60, 90), {"t2"}).ok());
  // Under eager alignment both maps have applied the full tape, so a mixed
  // projection replays nothing new.
  const std::size_t replays_before = cracker.stats().alignment_replays;
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(100, 140), {"t1", "t2"}).ok());
  // Only the new tape entry for each map (2 replays), nothing historical.
  EXPECT_EQ(cracker.stats().alignment_replays - replays_before, 2u);
}

TEST(SidewaysAlignmentTest, InterleavedProjectionSetsStayConsistent) {
  const std::size_t n = 2000;
  const auto head = RandomValues(n, 400, 34);
  std::vector<std::int64_t> b(n);
  std::vector<std::int64_t> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = head[i] * 10;
    c[i] = head[i] * 100;
  }
  Cracker cracker(head, {});
  ASSERT_TRUE(cracker.AddTailColumn("b", b).ok());
  ASSERT_TRUE(cracker.AddTailColumn("c", c).ok());
  Rng rng(35);
  for (int q = 0; q < 120; ++q) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(400));
    const auto p = Pred::Between(lo, lo + 25);
    std::vector<std::string> proj;
    switch (rng.NextBounded(3)) {
      case 0: proj = {"b"}; break;
      case 1: proj = {"c"}; break;
      default: proj = {"b", "c"}; break;
    }
    auto res = cracker.SelectProject(p, proj);
    ASSERT_TRUE(res.ok());
    if (proj.size() == 2) {
      for (std::size_t i = 0; i < res->num_rows; ++i) {
        ASSERT_EQ(res->columns[0][i] * 10, res->columns[1][i]) << "q" << q;
      }
    }
  }
  EXPECT_TRUE(cracker.Validate());
}

}  // namespace
}  // namespace aidx
