// CrackJoin: oracle-differential equi-join counts and pair materialization,
// plus the adaptive reuse property (repeated joins refine shared cracks).
#include "exec/join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Join = CrackJoin<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

std::size_t OracleJoinCount(const std::vector<std::int64_t>& l,
                            const std::vector<std::int64_t>& r, const Pred& pred) {
  std::unordered_map<std::int64_t, std::size_t> counts;
  for (const auto v : l) {
    if (pred.Matches(v)) ++counts[v];
  }
  std::size_t total = 0;
  for (const auto v : r) {
    if (!pred.Matches(v)) continue;
    const auto it = counts.find(v);
    if (it != counts.end()) total += it->second;
  }
  return total;
}

TEST(CrackJoinTest, SmallExactJoin) {
  const std::vector<std::int64_t> l = {1, 2, 2, 3, 5};
  const std::vector<std::int64_t> r = {2, 3, 3, 4};
  Join join(l, r, {.num_pivots = 2});
  // matches: 2x1 (two 2s left, one 2 right) + 1x2 (one 3 left, two 3s right)
  EXPECT_EQ(join.CountJoin(), 4u);
  EXPECT_TRUE(join.Validate());
}

TEST(CrackJoinTest, CountMatchesOracleAcrossPredicates) {
  const auto l = RandomValues(4000, 500, 1);
  const auto r = RandomValues(3000, 500, 2);
  Join join(l, r);
  Rng rng(3);
  for (int q = 0; q < 50; ++q) {
    const std::int64_t a = rng.NextInRange(-5, 505);
    const std::int64_t w = rng.NextInRange(0, 200);
    for (const Pred& p : {Pred::Between(a, a + w), Pred::HalfOpen(a, a + w),
                          Pred::All(), Pred::AtLeast(a)}) {
      ASSERT_EQ(join.CountJoin(p), OracleJoinCount(l, r, p)) << p.ToString();
    }
  }
  EXPECT_TRUE(join.Validate());
}

TEST(CrackJoinTest, MaterializedPairsAreExact) {
  const auto l = RandomValues(300, 40, 4);
  const auto r = RandomValues(200, 40, 5);
  Join join(l, r, {.num_pivots = 7});
  const Pred p = Pred::Between(10, 25);
  std::vector<std::pair<row_id_t, row_id_t>> pairs;
  join.MaterializePairs(p, &pairs);
  // Every pair must be a real match.
  for (const auto& [lr, rr] : pairs) {
    ASSERT_EQ(l[lr], r[rr]);
    ASSERT_TRUE(p.Matches(l[lr]));
  }
  // And the pair count must equal the oracle count (no dupes/misses).
  EXPECT_EQ(pairs.size(), OracleJoinCount(l, r, p));
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

TEST(CrackJoinTest, RepeatedJoinsReuseCracks) {
  const auto l = RandomValues(20000, 5000, 6);
  const auto r = RandomValues(20000, 5000, 7);
  Join join(l, r);
  const std::size_t first = join.CountJoin(Pred::Between(1000, 2000));
  const std::size_t cracks_after_first = join.left().stats().num_crack_in_two +
                                         join.left().stats().num_crack_in_three;
  EXPECT_EQ(join.CountJoin(Pred::Between(1000, 2000)), first);
  // Identical join => no new physical reorganization on the left input.
  EXPECT_EQ(join.left().stats().num_crack_in_two +
                join.left().stats().num_crack_in_three,
            cracks_after_first);
}

TEST(CrackJoinTest, EmptyInputsAndEmptyPredicate) {
  const std::vector<std::int64_t> l = {1, 2, 3};
  Join empty_right(l, {});
  EXPECT_EQ(empty_right.CountJoin(), 0u);
  Join empty_left({}, l);
  EXPECT_EQ(empty_left.CountJoin(), 0u);
  Join join(l, l);
  EXPECT_EQ(join.CountJoin(Pred::Between(5, 2)), 0u);
}

TEST(CrackJoinTest, SelfJoinWithDuplicates) {
  std::vector<std::int64_t> v(100, 7);  // 100 equal keys -> 10k pairs
  Join join(v, v, {.num_pivots = 3});
  EXPECT_EQ(join.CountJoin(), 10000u);
  EXPECT_EQ(join.CountJoin(Pred::Between(8, 9)), 0u);
}

TEST(CrackJoinTest, PivotCountSweep) {
  const auto l = RandomValues(5000, 1000, 8);
  const auto r = RandomValues(5000, 1000, 9);
  const std::size_t expect = OracleJoinCount(l, r, Pred::All());
  for (const std::size_t pivots : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                                   std::size_t{255}}) {
    Join join(l, r, {.num_pivots = pivots});
    ASSERT_EQ(join.CountJoin(), expect) << pivots << " pivots";
    ASSERT_TRUE(join.Validate()) << pivots << " pivots";
  }
}

}  // namespace
}  // namespace aidx
