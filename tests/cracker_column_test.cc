// CrackerColumn correctness: oracle-differential property tests across
// configurations (row ids, piece-size thresholds, stochastic cracking),
// data distributions, and predicate shapes; plus invariant sweeps.
#include "core/cracker_column.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = CrackerColumn<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

TEST(CrackerColumnTest, FirstSelectCracksAndAnswers) {
  const std::vector<std::int64_t> base = {5, 2, 8, 1, 9, 3, 7, 6, 4, 0};
  Column col(base);
  const auto sel = col.Select(Pred::Between(3, 6));
  EXPECT_EQ(sel.num_edges, 0);
  EXPECT_EQ(sel.core.size(), 4u);  // 3, 4, 5, 6
  EXPECT_TRUE(col.ValidatePieces());
  EXPECT_EQ(col.stats().num_crack_in_three, 1u);  // both bounds in one piece
}

TEST(CrackerColumnTest, CountMatchesScanOracle) {
  const auto base = RandomValues(5000, 1000, 42);
  Column col(base);
  for (std::int64_t a = 0; a < 1000; a += 37) {
    const auto p = Pred::HalfOpen(a, a + 53);
    ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(base, p)) << p.ToString();
  }
}

TEST(CrackerColumnTest, RepeatedIdenticalQueriesStable) {
  const auto base = RandomValues(2000, 500, 7);
  Column col(base);
  const auto p = Pred::Between(100, 200);
  const std::size_t first = col.Count(p);
  const std::size_t cracks_after_first = col.stats().num_crack_in_two +
                                         col.stats().num_crack_in_three;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(col.Count(p), first);
  // No further physical reorganization for an already-realized range.
  EXPECT_EQ(col.stats().num_crack_in_two + col.stats().num_crack_in_three,
            cracks_after_first);
}

TEST(CrackerColumnTest, SumMatchesScan) {
  const auto base = RandomValues(3000, 300, 11);
  Column col(base);
  const auto p = Pred::Between(50, 150);
  EXPECT_DOUBLE_EQ(static_cast<double>(col.Sum(p)),
                   static_cast<double>(ScanSum<std::int64_t>(base, p)));
}

TEST(CrackerColumnTest, MaterializeValuesMatchesScanMultiset) {
  const auto base = RandomValues(2000, 100, 13);
  Column col(base);
  const auto p = Pred::Between(20, 60);
  const auto sel = col.Select(p);
  std::vector<std::int64_t> got;
  col.MaterializeValues(sel, p, &got);
  std::vector<std::int64_t> expect;
  ScanValues<std::int64_t>(base, p, &expect);
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(CrackerColumnTest, RowIdsRemainConsistentAfterManyCracks) {
  const auto base = RandomValues(3000, 400, 17);
  Column col(base);
  Rng rng(18);
  for (int q = 0; q < 200; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(400));
    col.Select(Pred::Between(a, a + 20));
  }
  // Every (value, row_id) pair must still map back to the base column.
  const auto values = col.values();
  const auto rids = col.row_ids();
  ASSERT_EQ(values.size(), base.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], base[rids[i]]) << "at " << i;
  }
}

TEST(CrackerColumnTest, RowIdProjectionMatchesOracle) {
  const auto base = RandomValues(1000, 50, 19);
  Column col(base);
  const auto p = Pred::Between(10, 20);
  const auto sel = col.Select(p);
  std::vector<row_id_t> got;
  col.MaterializeRowIds(sel, p, &got);
  std::vector<row_id_t> expect;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (p.Matches(base[i])) expect.push_back(static_cast<row_id_t>(i));
  }
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(CrackerColumnTest, EmptyColumn) {
  Column col(std::span<const std::int64_t>{});
  EXPECT_EQ(col.Count(Pred::Between(1, 10)), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(CrackerColumnTest, EmptyPredicate) {
  const auto base = RandomValues(100, 10, 23);
  Column col(base);
  EXPECT_EQ(col.Count(Pred::Between(8, 2)), 0u);
  // Definitely-empty predicates must not crack at all.
  EXPECT_EQ(col.stats().num_crack_in_two, 0u);
  EXPECT_EQ(col.stats().num_crack_in_three, 0u);
}

TEST(CrackerColumnTest, PointQueriesWithDuplicates) {
  std::vector<std::int64_t> base;
  for (int i = 0; i < 50; ++i) {
    base.push_back(5);
    base.push_back(7);
  }
  Column col(base);
  EXPECT_EQ(col.Count(Pred::Between(5, 5)), 50u);
  EXPECT_EQ(col.Count(Pred::Between(7, 7)), 50u);
  EXPECT_EQ(col.Count(Pred::Between(6, 6)), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(CrackerColumnTest, AllSameValue) {
  std::vector<std::int64_t> base(500, 9);
  Column col(base);
  EXPECT_EQ(col.Count(Pred::Between(9, 9)), 500u);
  EXPECT_EQ(col.Count(Pred::LessThan(9)), 0u);
  EXPECT_EQ(col.Count(Pred::GreaterThan(9)), 0u);
  EXPECT_EQ(col.Count(Pred::All()), 500u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(CrackerColumnTest, UnboundedSides) {
  const auto base = RandomValues(1000, 100, 29);
  Column col(base);
  EXPECT_EQ(col.Count(Pred::AtMost(50)),
            ScanCount<std::int64_t>(base, Pred::AtMost(50)));
  EXPECT_EQ(col.Count(Pred::AtLeast(50)),
            ScanCount<std::int64_t>(base, Pred::AtLeast(50)));
  EXPECT_EQ(col.Count(Pred::All()), 1000u);
}

TEST(CrackerColumnTest, PiecesShrinkMonotonically) {
  const auto base = RandomValues(10000, 100000, 31);
  Column col(base);
  Rng rng(32);
  std::size_t last_pieces = col.index().num_pieces();
  for (int q = 0; q < 100; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(100000));
    col.Select(Pred::Between(a, a + 1000));
    const std::size_t pieces = col.index().num_pieces();
    ASSERT_GE(pieces, last_pieces);  // cracking only adds structure
    last_pieces = pieces;
  }
  ASSERT_TRUE(col.ValidatePieces());
}

struct ConfigParam {
  bool with_row_ids;
  std::size_t min_piece_size;
  std::size_t stochastic_threshold;
  std::int64_t domain;  // small => heavy duplicates
  const char* name;
};

class CrackerColumnConfigTest : public ::testing::TestWithParam<ConfigParam> {};

TEST_P(CrackerColumnConfigTest, OracleDifferentialSweep) {
  const auto& param = GetParam();
  const std::size_t n = 4000;
  const auto base = RandomValues(n, param.domain, 1000 + param.min_piece_size);
  Column col(base, {.with_row_ids = param.with_row_ids,
                    .min_piece_size = param.min_piece_size,
                    .stochastic_threshold = param.stochastic_threshold});
  Rng rng(55);
  for (int q = 0; q < 400; ++q) {
    const std::int64_t a =
        rng.NextInRange(-2, param.domain + 2);
    const std::int64_t width = rng.NextInRange(0, param.domain / 4 + 1);
    Pred p;
    switch (rng.NextBounded(6)) {
      case 0: p = Pred::Between(a, a + width); break;
      case 1: p = Pred::HalfOpen(a, a + width); break;
      case 2: p = Pred{a, BoundKind::kExclusive, a + width, BoundKind::kExclusive}; break;
      case 3: p = Pred::AtLeast(a); break;
      case 4: p = Pred::AtMost(a); break;
      default: p = Pred::Between(a, a); break;
    }
    ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(base, p))
        << "query " << q << ": " << p.ToString();
  }
  EXPECT_TRUE(col.ValidatePieces());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrackerColumnConfigTest,
    ::testing::Values(
        ConfigParam{true, 0, 0, 1000, "rids_alwayscrack"},
        ConfigParam{false, 0, 0, 1000, "norids_alwayscrack"},
        ConfigParam{true, 64, 0, 1000, "threshold64"},
        ConfigParam{true, 1024, 0, 1000, "threshold1k"},
        ConfigParam{true, 0, 256, 1000, "stochastic256"},
        ConfigParam{true, 128, 512, 1000, "threshold_and_stochastic"},
        ConfigParam{true, 0, 0, 5, "heavy_duplicates"},
        ConfigParam{true, 64, 0, 2, "binary_domain_threshold"}),
    [](const auto& info) { return info.param.name; });

TEST(CrackerColumnStochasticTest, RandomCracksHappenOnLargePieces) {
  const auto base = RandomValues(100000, 1000000, 91);
  Column col(base, {.stochastic_threshold = 1000});
  col.Select(Pred::Between(500000, 500100));
  EXPECT_GT(col.stats().num_stochastic_cracks, 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(CrackerColumnStochasticTest, SequentialPatternPieceCountGrows) {
  // Under a strictly sequential pattern, standard cracking leaves one huge
  // suffix piece; stochastic cracking subdivides it.
  const auto base = RandomValues(50000, 1000000, 93);
  Column plain(base);
  Column stochastic(base, {.stochastic_threshold = 4096});
  for (std::int64_t a = 0; a < 900000; a += 30000) {
    plain.Select(Pred::Between(a, a + 1000));
    stochastic.Select(Pred::Between(a, a + 1000));
  }
  EXPECT_GT(stochastic.index().num_pieces(), plain.index().num_pieces());
  EXPECT_TRUE(plain.ValidatePieces());
  EXPECT_TRUE(stochastic.ValidatePieces());
}

TEST(CrackerColumnTest, WorksForInt32AndDouble) {
  const std::vector<std::int32_t> base32 = {5, 2, 8, 1, 9};
  CrackerColumn<std::int32_t> col32(base32);
  EXPECT_EQ(col32.Count(RangePredicate<std::int32_t>::Between(2, 8)), 3u);

  const std::vector<double> based = {0.5, 2.5, 1.5, 3.5};
  CrackerColumn<double> cold(based);
  EXPECT_EQ(cold.Count(RangePredicate<double>::HalfOpen(1.0, 3.0)), 2u);
  EXPECT_TRUE(cold.ValidatePieces());
}

TEST(CrackerColumnTest, ConvergenceReducesTouchedValues) {
  // After many queries the piece map is fine-grained: later queries touch
  // far fewer values than early ones (the adaptive-indexing promise).
  const auto base = RandomValues(100000, 1000000, 101);
  Column col(base);
  Rng rng(102);
  std::size_t touched_first10 = 0;
  std::size_t touched_last10 = 0;
  for (int q = 0; q < 500; ++q) {
    const std::size_t before = col.stats().values_touched;
    const auto a = static_cast<std::int64_t>(rng.NextBounded(990000));
    col.Select(Pred::Between(a, a + 1000));
    const std::size_t delta = col.stats().values_touched - before;
    if (q < 10) touched_first10 += delta;
    if (q >= 490) touched_last10 += delta;
  }
  EXPECT_LT(touched_last10, touched_first10 / 10);
}

}  // namespace
}  // namespace aidx
