// Update-aware sideways cracking: cracker maps maintained incrementally
// under row DML (tandem ripple moves), cohorts kept aligned through the
// shared operation log, and late joiners built by cloning a sibling.
//
// The spine of every test is a differential oracle: the map's full
// (head, tail, rid) content — and each Select's position range — must
// match a plain row-store model after every operation, and an
// incrementally maintained cracker must answer exactly like one rebuilt
// from scratch over the final base.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "sideways/cracker_map.h"
#include "sideways/sideways.h"
#include "storage/table.h"
#include "util/logging.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Map = CrackerMap<std::int64_t>;
using Row = std::tuple<std::int64_t, std::int64_t, row_id_t>;  // head, tail, rid

constexpr std::int64_t kDomain = 500;

std::vector<std::int64_t> RandomValues(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  return v;
}

Pred RandomPredicate(Rng* rng) {
  const auto lo = rng->NextInRange(-5, kDomain);
  return Pred::Between(lo, lo + rng->NextInRange(0, kDomain / 4));
}

// The map's content as a sorted multiset of (head, tail, rid) rows —
// physical order abstracted away, so it compares against any oracle.
std::vector<Row> Rows(const Map& map) {
  std::vector<Row> rows;
  rows.reserve(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    rows.emplace_back(map.head()[i], map.tail_at(i), map.rid_at(i));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::size_t OracleCount(const std::vector<Row>& rows, const Pred& p) {
  std::size_t n = 0;
  for (const auto& [head, tail, rid] : rows) n += p.Matches(head) ? 1 : 0;
  return n;
}

class CrackerMapDmlTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrackerMapDmlTest,
                         ::testing::Values(7ull, 99ull, 0xABCDull));

// Interleaved selects and ripple inserts: after every operation the map is
// content-equal to the row oracle, selects count like a scan, and piece
// invariants hold. Inserts into a cracked map move O(#pieces) elements.
TEST_P(CrackerMapDmlTest, RippleInsertMatchesOracle) {
  const std::uint64_t seed = GetParam();
  const auto head = RandomValues(2000, seed);
  const auto tail = RandomValues(2000, seed ^ 0x1);
  std::vector<Row> oracle;
  for (std::size_t i = 0; i < head.size(); ++i) {
    oracle.emplace_back(head[i], tail[i], static_cast<row_id_t>(i));
  }
  Map map(head, tail);
  Rng rng(seed ^ 0x2);
  row_id_t next_rid = static_cast<row_id_t>(head.size());
  for (int op = 0; op < 400; ++op) {
    if (rng.NextBounded(2) == 0) {
      const auto h = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      const auto t = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      map.RippleInsert(h, t, next_rid);
      oracle.emplace_back(h, t, next_rid);
      ++next_rid;
    } else {
      const Pred p = RandomPredicate(&rng);
      ASSERT_EQ(map.Select(p).size(), OracleCount(oracle, p))
          << "seed " << seed << " op " << op;
    }
    ASSERT_EQ(Rows(map), Sorted(oracle)) << "seed " << seed << " op " << op;
  }
  EXPECT_TRUE(map.Validate()) << "seed " << seed;
  EXPECT_GT(map.stats().inserts_applied, 0u);
}

// Ripple deletes address tuples by rid (duplicate head values carry
// different tails, so value addressing could not pick a canonical victim).
TEST_P(CrackerMapDmlTest, RippleDeleteMatchesOracle) {
  const std::uint64_t seed = GetParam();
  const auto head = RandomValues(2000, seed ^ 0x10);
  const auto tail = RandomValues(2000, seed ^ 0x11);
  std::vector<Row> oracle;
  for (std::size_t i = 0; i < head.size(); ++i) {
    oracle.emplace_back(head[i], tail[i], static_cast<row_id_t>(i));
  }
  Map map(head, tail);
  Rng rng(seed ^ 0x12);
  for (int op = 0; op < 400 && !oracle.empty(); ++op) {
    switch (rng.NextBounded(3)) {
      case 0: {
        const std::size_t pick = rng.NextBounded(oracle.size());
        const auto [h, t, rid] = oracle[pick];
        ASSERT_TRUE(map.RippleDelete(h, rid)) << "seed " << seed << " op " << op;
        oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
      case 1: {
        // A rid absent from the head value's piece: delete reports a miss
        // and the map is untouched.
        const auto h = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        ASSERT_FALSE(map.RippleDelete(h, static_cast<row_id_t>(1u << 30)));
        break;
      }
      default: {
        const Pred p = RandomPredicate(&rng);
        ASSERT_EQ(map.Select(p).size(), OracleCount(oracle, p))
            << "seed " << seed << " op " << op;
        break;
      }
    }
    ASSERT_EQ(Rows(map), Sorted(oracle)) << "seed " << seed << " op " << op;
  }
  EXPECT_TRUE(map.Validate()) << "seed " << seed;
  EXPECT_GT(map.stats().deletes_applied, 0u);
}

// Determinism under DML: two maps with identical initial content applying
// the same select/insert/delete sequence end bitwise identical — the
// property the operation-log alignment in sideways.h relies on.
TEST_P(CrackerMapDmlTest, LayoutDeterministicUnderSameDmlSequence) {
  const std::uint64_t seed = GetParam();
  const auto head = RandomValues(1500, seed ^ 0x20);
  const auto tail = RandomValues(1500, seed ^ 0x21);
  Map a(head, tail);
  Map b(head, tail);
  Rng rng(seed ^ 0x22);
  row_id_t next_rid = static_cast<row_id_t>(head.size());
  for (int op = 0; op < 300; ++op) {
    switch (rng.NextBounded(3)) {
      case 0: {
        const auto h = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const auto t = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        a.RippleInsert(h, t, next_rid);
        b.RippleInsert(h, t, next_rid);
        ++next_rid;
        break;
      }
      case 1: {
        if (a.size() == 0) break;
        const std::size_t pick = rng.NextBounded(a.size());
        const auto h = a.head()[pick];
        const auto rid = a.rid_at(pick);
        ASSERT_EQ(a.RippleDelete(h, rid), b.RippleDelete(h, rid));
        break;
      }
      default: {
        const Pred p = RandomPredicate(&rng);
        const PositionRange ra = a.Select(p);
        const PositionRange rb = b.Select(p);
        ASSERT_EQ(ra.begin, rb.begin) << "seed " << seed << " op " << op;
        ASSERT_EQ(ra.end, rb.end) << "seed " << seed << " op " << op;
        break;
      }
    }
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.head()[i], b.head()[i]) << "seed " << seed << " pos " << i;
    ASSERT_EQ(a.tail_at(i), b.tail_at(i)) << "seed " << seed << " pos " << i;
    ASSERT_EQ(a.rid_at(i), b.rid_at(i)) << "seed " << seed << " pos " << i;
  }
}

// The clone constructor copies layout, rids, and realized cuts: subsequent
// identical operations keep clone and source in lock step.
TEST(CrackerMapCloneTest, CloneSharesLayoutAndCuts) {
  const auto head = RandomValues(1000, 3);
  const auto tail = RandomValues(1000, 4);
  Map source(head, tail);
  (void)source.Select(Pred::Between(100, 200));
  (void)source.Select(Pred::Between(350, 420));
  std::vector<std::int64_t> clone_tail(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    clone_tail[i] = source.tail_at(i) * 7;
  }
  Map clone(source, clone_tail);
  ASSERT_EQ(clone.index().num_cuts(), source.index().num_cuts());
  // A further select cracks both the same way (same realized cuts).
  const Pred p = Pred::Between(40, 460);
  const PositionRange rs = source.Select(p);
  const PositionRange rc = clone.Select(p);
  EXPECT_EQ(rs.begin, rc.begin);
  EXPECT_EQ(rs.end, rc.end);
  for (std::size_t i = 0; i < source.size(); ++i) {
    ASSERT_EQ(clone.head()[i], source.head()[i]) << "pos " << i;
    ASSERT_EQ(clone.rid_at(i), source.rid_at(i)) << "pos " << i;
    ASSERT_EQ(clone.tail_at(i), source.tail_at(i) * 7) << "pos " << i;
  }
  EXPECT_TRUE(clone.Validate());
}

// ---------------------------------------------------------------------------
// Table-backed SidewaysCracker under DML.
// ---------------------------------------------------------------------------

struct TableFixture {
  Table table{"t"};
  std::vector<std::vector<std::int64_t>> oracle;  // rows: {head, b, c}
  row_id_t next_rid = 0;

  explicit TableFixture(std::size_t n, std::uint64_t seed) {
    const auto head = RandomValues(n, seed);
    const auto b = RandomValues(n, seed ^ 0x100);
    const auto c = RandomValues(n, seed ^ 0x200);
    AIDX_CHECK_OK(table.AddColumn<std::int64_t>("head", head));
    AIDX_CHECK_OK(table.AddColumn<std::int64_t>("b", b));
    AIDX_CHECK_OK(table.AddColumn<std::int64_t>("c", c));
    for (std::size_t i = 0; i < n; ++i) {
      oracle.push_back({head[i], b[i], c[i]});
    }
    next_rid = static_cast<row_id_t>(n);
  }

  // Mirrors what the Database facade does per inserted row: allocate one
  // rid, log into the cracker, append to the base, commit the rid.
  void Insert(SidewaysCracker<std::int64_t>* cracker, std::int64_t head,
              std::int64_t b, std::int64_t c) {
    const row_id_t rid = table.AllocateRowId();
    cracker->ApplyInsert(rid, head, {b, c});
    AppendValue("head", head);
    AppendValue("b", b);
    AppendValue("c", c);
    table.CommitAppendedRow(rid);
    oracle.push_back({head, b, c});
  }

  void DeleteAt(SidewaysCracker<std::int64_t>* cracker, std::size_t pos) {
    const row_id_t rid = table.row_ids()[pos];
    cracker->ApplyDelete(rid, oracle[pos][0]);
    AIDX_CHECK_OK(table.EraseRow(pos));
    oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  std::vector<std::vector<std::int64_t>> OracleProject(const Pred& p) const {
    std::vector<std::vector<std::int64_t>> rows;
    for (const auto& row : oracle) {
      if (p.Matches(row[0])) rows.push_back({row[1], row[2]});
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

 private:
  void AppendValue(std::string_view name, std::int64_t v) {
    auto col = table.GetColumn(name);
    AIDX_CHECK_OK(col.status());
    auto typed = (*col)->As<std::int64_t>();
    AIDX_CHECK_OK(typed.status());
    (*typed)->Append(v);
  }
};

std::vector<std::vector<std::int64_t>> SortedRows(
    const ProjectionResult<std::int64_t>& r) {
  std::vector<std::vector<std::int64_t>> rows(r.num_rows);
  for (std::size_t i = 0; i < r.num_rows; ++i) {
    for (const auto& col : r.columns) rows[i].push_back(col[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// DML folds into live maps incrementally (no rebuild): maps_created stays
// flat across a write burst while results keep matching the oracle.
TEST(SidewaysDmlTest, MapsSurviveWritesAndStayExact) {
  TableFixture fx(3000, 11);
  SidewaysCracker<std::int64_t> cracker(&fx.table, "head");
  ASSERT_TRUE(cracker.AddTailColumn("b").ok());
  ASSERT_TRUE(cracker.AddTailColumn("c").ok());
  Rng rng(13);
  // Warm both maps up with a few queries.
  for (int q = 0; q < 5; ++q) {
    const Pred p = RandomPredicate(&rng);
    auto r = cracker.SelectProject(p, {"b", "c"});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(SortedRows(*r), fx.OracleProject(p)) << "warmup " << q;
  }
  const std::size_t maps_before = cracker.stats().maps_created;
  ASSERT_EQ(maps_before, 2u);
  // Write burst interleaved with queries: every result stays exact and no
  // map is ever recreated.
  for (int round = 0; round < 50; ++round) {
    if (rng.NextBounded(3) != 0) {
      fx.Insert(&cracker, static_cast<std::int64_t>(rng.NextBounded(kDomain)),
                static_cast<std::int64_t>(rng.NextBounded(kDomain)),
                static_cast<std::int64_t>(rng.NextBounded(kDomain)));
    } else if (!fx.oracle.empty()) {
      fx.DeleteAt(&cracker, rng.NextBounded(fx.oracle.size()));
    }
    const Pred p = RandomPredicate(&rng);
    auto r = cracker.SelectProject(p, {"b", "c"});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(SortedRows(*r), fx.OracleProject(p)) << "round " << round;
  }
  EXPECT_EQ(cracker.stats().maps_created, maps_before);
  EXPECT_EQ(cracker.stats().maps_evicted, 0u);
  EXPECT_GT(cracker.stats().dml_inserts, 0u);
  EXPECT_GT(cracker.stats().dml_deletes, 0u);
  EXPECT_TRUE(cracker.Validate());
  // The maps' cracked investment survived: cuts accumulated across the
  // burst instead of resetting with each write.
  const auto* map = cracker.PeekMap("b");
  ASSERT_NE(map, nullptr);
  EXPECT_GT(map->index().num_cuts(), 0u);
}

// A map materialized after DML joins the cohort by cloning a sibling's
// layout (replay cannot reproduce an interleaved crack/ripple history) and
// regathering its tail by rid; the alignment invariant must then hold.
TEST(SidewaysDmlTest, LateJoinerClonesAlignedSibling) {
  TableFixture fx(2000, 21);
  SidewaysCracker<std::int64_t> cracker(&fx.table, "head");
  ASSERT_TRUE(cracker.AddTailColumn("b").ok());
  ASSERT_TRUE(cracker.AddTailColumn("c").ok());
  Rng rng(23);
  // Only "b" is materialized before the writes.
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(cracker.SelectProject(RandomPredicate(&rng), {"b"}).ok());
  }
  for (int i = 0; i < 40; ++i) {
    fx.Insert(&cracker, static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)));
    if (i % 3 == 0 && !fx.oracle.empty()) {
      fx.DeleteAt(&cracker, rng.NextBounded(fx.oracle.size()));
    }
  }
  ASSERT_EQ(cracker.stats().maps_cloned, 0u);
  // First query projecting "c" after DML: the new map must clone "b".
  const Pred p = Pred::Between(50, 300);
  auto r = cracker.SelectProject(p, {"b", "c"});
  ASSERT_TRUE(r.ok());  // would die on the alignment CHECK if layouts diverged
  EXPECT_EQ(SortedRows(*r), fx.OracleProject(p));
  EXPECT_EQ(cracker.stats().maps_cloned, 1u);
  // Further mixed traffic keeps the cohort aligned and exact.
  for (int round = 0; round < 20; ++round) {
    fx.Insert(&cracker, static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)));
    const Pred q = RandomPredicate(&rng);
    auto rr = cracker.SelectProject(q, {"b", "c"});
    ASSERT_TRUE(rr.ok());
    ASSERT_EQ(SortedRows(*rr), fx.OracleProject(q)) << "round " << round;
  }
  EXPECT_TRUE(cracker.Validate());
}

// Eviction after DML: with budget for one map, projecting the other tail
// evicts the only (fully caught-up) sibling, so the rebuilt map takes the
// empty-cohort path — materialize from the post-DML base, replay selects
// only. Results must stay exact either way.
TEST(SidewaysDmlTest, EvictedMapRebuildsFromPostDmlBase) {
  TableFixture fx(1000, 31);
  SidewaysCracker<std::int64_t>::Options options;
  options.storage_budget_bytes =
      1100 * CrackerMap<std::int64_t>::kBytesPerRow;  // one map, some growth
  SidewaysCracker<std::int64_t> cracker(&fx.table, "head", options);
  ASSERT_TRUE(cracker.AddTailColumn("b").ok());
  ASSERT_TRUE(cracker.AddTailColumn("c").ok());
  Rng rng(33);
  ASSERT_TRUE(cracker.SelectProject(Pred::Between(10, 200), {"b"}).ok());
  for (int i = 0; i < 30; ++i) {
    fx.Insert(&cracker, static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)),
              static_cast<std::int64_t>(rng.NextBounded(kDomain)));
  }
  for (int round = 0; round < 10; ++round) {
    const Pred p = RandomPredicate(&rng);
    const std::string tail = (round % 2 == 0) ? "c" : "b";
    auto r = cracker.SelectProject(p, {tail});
    ASSERT_TRUE(r.ok()) << "round " << round;
    std::vector<std::int64_t> got = r->columns[0];
    std::sort(got.begin(), got.end());
    std::vector<std::int64_t> expect;
    for (const auto& row : fx.oracle) {
      if (p.Matches(row[0])) expect.push_back(tail == "b" ? row[1] : row[2]);
    }
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << "round " << round;
  }
  EXPECT_GT(cracker.stats().maps_evicted, 0u);
  EXPECT_TRUE(cracker.Validate());
}

// The headline differential: an incrementally maintained cracker answers
// bit-exactly like one rebuilt from scratch over the final base, for the
// same predicates — after every DML batch.
TEST(SidewaysDmlTest, IncrementalEqualsRebuildFromScratch) {
  TableFixture fx(2000, 41);
  SidewaysCracker<std::int64_t> incremental(&fx.table, "head");
  ASSERT_TRUE(incremental.AddTailColumn("b").ok());
  ASSERT_TRUE(incremental.AddTailColumn("c").ok());
  Rng rng(43);
  for (int batch = 0; batch < 15; ++batch) {
    // One DML batch.
    for (int i = 0; i < 10; ++i) {
      if (rng.NextBounded(4) != 0) {
        fx.Insert(&incremental,
                  static_cast<std::int64_t>(rng.NextBounded(kDomain)),
                  static_cast<std::int64_t>(rng.NextBounded(kDomain)),
                  static_cast<std::int64_t>(rng.NextBounded(kDomain)));
      } else if (!fx.oracle.empty()) {
        fx.DeleteAt(&incremental, rng.NextBounded(fx.oracle.size()));
      }
    }
    // Differential: a from-scratch cracker over the same table must give
    // the same answers the maintained maps give.
    SidewaysCracker<std::int64_t> rebuilt(&fx.table, "head");
    ASSERT_TRUE(rebuilt.AddTailColumn("b").ok());
    ASSERT_TRUE(rebuilt.AddTailColumn("c").ok());
    for (int q = 0; q < 5; ++q) {
      const Pred p = RandomPredicate(&rng);
      auto a = incremental.SelectProject(p, {"b", "c"});
      auto b = rebuilt.SelectProject(p, {"b", "c"});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->num_rows, b->num_rows) << "batch " << batch << " q " << q;
      ASSERT_EQ(SortedRows(*a), SortedRows(*b)) << "batch " << batch << " q " << q;
      ASSERT_EQ(SortedRows(*a), fx.OracleProject(p))
          << "batch " << batch << " q " << q;
    }
  }
  EXPECT_EQ(incremental.stats().maps_created, 2u);  // never rebuilt
  EXPECT_TRUE(incremental.Validate());
}

// DML entry points are table-backed-only; the span-mode constructor keeps
// its historical borrowing semantics and must refuse them loudly.
TEST(SidewaysDmlDeathTest, SpanModeRejectsDml) {
  const auto head = RandomValues(100, 51);
  SidewaysCracker<std::int64_t> cracker{std::span<const std::int64_t>(head)};
  EXPECT_DEATH(cracker.ApplyInsert(0, 1, {}), "span-mode");
  EXPECT_DEATH(cracker.ApplyDelete(0, 1), "span-mode");
}

}  // namespace
}  // namespace aidx
