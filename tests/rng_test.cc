#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace aidx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeCoversInclusiveEnds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInRange(42, 42), 42);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) over 20k draws: ~0.5 within a loose tolerance.
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(19);
  constexpr std::uint64_t kBuckets = 16;
  std::vector<int> histogram(kBuckets, 0);
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.NextBounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int h : histogram) {
    EXPECT_NEAR(h, expected, expected * 0.1);
  }
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfGenerator zipf(100, 1.0, 23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Zipf(1.0): P(0)/P(9) == 10; allow generous sampling noise.
  EXPECT_GT(counts[0], counts[9] * 4);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 29);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
}

TEST(ZipfTest, AllRanksReachable) {
  ZipfGenerator zipf(5, 1.2, 31);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 20000; ++i) seen[zipf.Next()] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(50, 0.8, 37);
  ZipfGenerator b(50, 0.8, 37);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

}  // namespace
}  // namespace aidx
