// B+ tree tests: structural invariants plus differential range queries
// against a sorted-vector model, across fanouts (parameterized).
#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/predicate.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<std::int64_t> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.CountRange(Pred::All()), 0u);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.height(), 0);
}

TEST(BPlusTreeTest, SingleInsert) {
  BPlusTree<std::int64_t> t;
  t.Insert(5);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountRange(Pred::Between(5, 5)), 1u);
  EXPECT_EQ(t.CountRange(Pred::Between(6, 9)), 0u);
  EXPECT_TRUE(t.Validate());
}

TEST(BPlusTreeTest, DuplicatesAllRetrievable) {
  BPlusTree<std::int64_t> t({.leaf_capacity = 4, .internal_fanout = 4});
  for (int i = 0; i < 100; ++i) t.Insert(7);
  t.Insert(6);
  t.Insert(8);
  EXPECT_EQ(t.CountRange(Pred::Between(7, 7)), 100u);
  EXPECT_EQ(t.CountRange(Pred::All()), 102u);
  EXPECT_TRUE(t.Validate());
}

TEST(BPlusTreeTest, RowIdsTravelWithKeys) {
  BPlusTree<std::int64_t> t({.leaf_capacity = 4, .internal_fanout = 4,
                             .with_row_ids = true});
  for (row_id_t r = 0; r < 50; ++r) t.Insert(static_cast<std::int64_t>(r * 2), r);
  std::vector<row_id_t> rids;
  t.VisitRange(Pred::Between(10, 20), [&](std::int64_t, row_id_t r) {
    rids.push_back(r);
  });
  EXPECT_EQ(rids, (std::vector<row_id_t>{5, 6, 7, 8, 9, 10}));
}

TEST(BPlusTreeTest, VisitAscendingOrder) {
  BPlusTree<std::int64_t> t({.leaf_capacity = 8, .internal_fanout = 5});
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    t.Insert(static_cast<std::int64_t>(rng.NextBounded(1000)));
  }
  std::vector<std::int64_t> keys;
  t.VisitRange(Pred::All(), [&](std::int64_t k, row_id_t) { keys.push_back(k); });
  EXPECT_EQ(keys.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(t.Validate());
}

TEST(BPlusTreeTest, BulkLoadMatchesInserts) {
  std::vector<std::int64_t> keys;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(static_cast<std::int64_t>(rng.NextBounded(5000)));
  }
  std::sort(keys.begin(), keys.end());
  BPlusTree<std::int64_t> bulk;
  bulk.BulkLoadSorted(keys);
  EXPECT_EQ(bulk.size(), keys.size());
  EXPECT_TRUE(bulk.Validate());
  for (std::int64_t probe : {0, 1, 999, 2500, 4999, 12345}) {
    const auto pred = Pred::Between(probe - 10, probe + 10);
    const auto expect = static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), probe + 10) -
        std::lower_bound(keys.begin(), keys.end(), probe - 10));
    EXPECT_EQ(bulk.CountRange(pred), expect) << "probe " << probe;
  }
}

TEST(BPlusTreeTest, InsertSortedBatchAppendsRanges) {
  BPlusTree<std::int64_t> t({.leaf_capacity = 16, .internal_fanout = 8});
  // Disjoint value ranges arriving out of order (the adaptive-merging case).
  const std::vector<std::int64_t> r1 = {50, 51, 52, 53};
  const std::vector<std::int64_t> r2 = {10, 11, 12};
  const std::vector<std::int64_t> r3 = {90, 91};
  t.InsertSortedBatch(r1);
  t.InsertSortedBatch(r2);
  t.InsertSortedBatch(r3);
  EXPECT_EQ(t.size(), 9u);
  std::vector<std::int64_t> all;
  t.VisitRange(Pred::All(), [&](std::int64_t k, row_id_t) { all.push_back(k); });
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(t.CountRange(Pred::Between(11, 51)), 4u);  // 11, 12, 50, 51
}

struct FanoutParam {
  std::size_t leaf_capacity;
  std::size_t internal_fanout;
};

class BPlusTreeFanoutTest : public ::testing::TestWithParam<FanoutParam> {};

// Differential test vs a sorted-vector model across node geometries,
// exercising inclusive/exclusive/unbounded range ends.
TEST_P(BPlusTreeFanoutTest, DifferentialRangeQueries) {
  const auto param = GetParam();
  BPlusTree<std::int64_t> t(
      {.leaf_capacity = param.leaf_capacity, .internal_fanout = param.internal_fanout});
  std::vector<std::int64_t> model;
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    const auto k = static_cast<std::int64_t>(rng.NextBounded(400));
    t.Insert(k);
    model.push_back(k);
  }
  std::sort(model.begin(), model.end());
  ASSERT_TRUE(t.Validate());

  auto model_count = [&](const Pred& p) {
    return static_cast<std::size_t>(
        std::count_if(model.begin(), model.end(), [&](auto v) { return p.Matches(v); }));
  };

  for (int q = 0; q < 300; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(420)) - 10;
    const auto b = a + static_cast<std::int64_t>(rng.NextBounded(60));
    for (const Pred& p : {Pred::Between(a, b), Pred::HalfOpen(a, b), Pred::LessThan(b),
                          Pred::AtMost(b), Pred::GreaterThan(a), Pred::AtLeast(a),
                          Pred{a, BoundKind::kExclusive, b, BoundKind::kExclusive}}) {
      ASSERT_EQ(t.CountRange(p), model_count(p))
          << "pred " << p.ToString() << " fanout " << param.leaf_capacity;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BPlusTreeFanoutTest,
    ::testing::Values(FanoutParam{2, 3}, FanoutParam{4, 4}, FanoutParam{16, 8},
                      FanoutParam{256, 64}),
    [](const auto& info) {
      return "leaf" + std::to_string(info.param.leaf_capacity) + "_fan" +
             std::to_string(info.param.internal_fanout);
    });

TEST(BPlusTreeTest, SumRangeMatchesManualSum) {
  BPlusTree<std::int64_t> t;
  long double expect = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    t.Insert(i);
    if (i >= 100 && i < 200) expect += i;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(t.SumRange(Pred::HalfOpen(100, 200))),
                   static_cast<double>(expect));
}

// Sustained deletes must compact drained leaves: after removing 90% of
// the keys the leaf chain must be near the minimum the survivors need,
// not the original leaf count with near-empty husks chained in between.
TEST(BPlusTreeTest, SustainedDeletesCompactLeaves) {
  constexpr std::size_t kLeafCap = 16;
  BPlusTree<std::int64_t> t({.leaf_capacity = kLeafCap, .internal_fanout = 4});
  Rng rng(17);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 8000; ++i) {
    const auto k = static_cast<std::int64_t>(rng.NextBounded(100000));
    keys.push_back(k);
    t.Insert(k);
  }
  const std::size_t initial_leaves = t.LeafCount();
  ASSERT_GE(initial_leaves, 8000u / kLeafCap);

  // Random-order sustained deletes down to 10%.
  while (keys.size() > 800) {
    const std::size_t pick = rng.NextBounded(keys.size());
    ASSERT_TRUE(t.EraseOne(keys[pick]));
    keys[pick] = keys.back();
    keys.pop_back();
  }
  ASSERT_EQ(t.size(), keys.size());
  ASSERT_TRUE(t.Validate());
  // Compaction keeps every leaf at >= capacity/4 (the fill threshold), so
  // the chain length is bounded by size / (capacity/4), plus slack for
  // leaves that never dipped below the threshold.
  EXPECT_LE(t.LeafCount(), keys.size() / (kLeafCap / 4) + 2)
      << "near-empty leaves left chained";
  EXPECT_LT(t.LeafCount(), initial_leaves / 4);

  // Queries still exact after heavy compaction.
  std::sort(keys.begin(), keys.end());
  for (int q = 0; q < 200; ++q) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(100000));
    const Pred p = Pred::Between(lo, lo + 2000);
    const auto want = static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), lo + 2000) -
        std::lower_bound(keys.begin(), keys.end(), lo));
    ASSERT_EQ(t.CountRange(p), want) << "query " << q;
  }

  // Drain to empty: the root must collapse all the way back down.
  for (const auto k : keys) ASSERT_TRUE(t.EraseOne(k));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
  EXPECT_FALSE(t.EraseOne(1));
  EXPECT_LE(t.height(), 1);
}

// Skewed sustained deletes: drain one key region completely while its
// neighbours stay full. Internal borrow (not just merge) is what keeps a
// lone leaf from being stranded under a one-child internal here — the
// drained region's subtree must shrink away instead of surviving as a
// chain of near-empty husks.
TEST(BPlusTreeTest, SkewedRegionDrainCompacts) {
  constexpr std::size_t kLeafCap = 16;
  BPlusTree<std::int64_t> t({.leaf_capacity = kLeafCap, .internal_fanout = 4});
  Rng rng(29);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 6000; ++i) {
    const auto k = static_cast<std::int64_t>(rng.NextBounded(60000));
    keys.push_back(k);
    t.Insert(k);
  }
  // Drain [0, 45000) entirely, low keys first (maximum skew pressure on
  // the left spine), keeping the top quarter untouched.
  std::sort(keys.begin(), keys.end());
  std::vector<std::int64_t> survivors;
  for (const auto k : keys) {
    if (k < 45000) {
      ASSERT_TRUE(t.EraseOne(k));
    } else {
      survivors.push_back(k);
    }
  }
  ASSERT_EQ(t.size(), survivors.size());
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.CountRange(Pred::LessThan(45000)), 0u);
  EXPECT_EQ(t.CountRange(Pred::All()), survivors.size());
  // Density bound must hold even though the deletes were maximally skewed.
  EXPECT_LE(t.LeafCount(), survivors.size() / (kLeafCap / 4) + 2)
      << "near-empty leaves stranded under thinned internals";
}

// Delete-heavy churn with duplicates across leaf boundaries: erase and
// re-insert in waves, validating structure and counts throughout.
TEST(BPlusTreeTest, DeleteChurnWithDuplicatesStaysValid) {
  BPlusTree<std::int64_t> t({.leaf_capacity = 8, .internal_fanout = 4});
  std::vector<std::int64_t> model;
  Rng rng(23);
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 500; ++i) {
      const auto k = static_cast<std::int64_t>(rng.NextBounded(40));  // heavy dups
      t.Insert(k);
      model.push_back(k);
    }
    for (int i = 0; i < 400 && !model.empty(); ++i) {
      const std::size_t pick = rng.NextBounded(model.size());
      ASSERT_TRUE(t.EraseOne(model[pick]));
      model[pick] = model.back();
      model.pop_back();
    }
    ASSERT_TRUE(t.Validate()) << "wave " << wave;
    ASSERT_EQ(t.size(), model.size());
    for (std::int64_t v = 0; v < 40; v += 7) {
      const auto want = static_cast<std::size_t>(
          std::count(model.begin(), model.end(), v));
      ASSERT_EQ(t.CountRange(Pred::Between(v, v)), want)
          << "wave " << wave << " value " << v;
    }
  }
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree<std::int64_t> a;
  for (int i = 0; i < 100; ++i) a.Insert(i);
  BPlusTree<std::int64_t> b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.Validate());
  a = std::move(b);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 100u);
}

}  // namespace
}  // namespace aidx
