// The Database facade and the AccessPath registry: every strategy must
// agree with the scan oracle through the uniform interface (TEST_P), and
// the facade's error paths must surface proper Statuses.
#include "exec/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/access_path.h"
#include "exec/operators.h"
#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

class AccessPathStrategyTest : public ::testing::TestWithParam<StrategyConfig> {};

TEST_P(AccessPathStrategyTest, AgreesWithScanOracle) {
  const auto base = RandomValues(5000, 2000, 51);
  auto path = MakeAccessPath<std::int64_t>(base, GetParam());
  ASSERT_NE(path, nullptr);
  Rng rng(52);
  for (int q = 0; q < 150; ++q) {
    const std::int64_t a = rng.NextInRange(-10, 2010);
    const std::int64_t w = rng.NextInRange(0, 250);
    const auto p = Pred::HalfOpen(a, a + w);
    ASSERT_EQ(path->Count(p), ScanCount<std::int64_t>(base, p))
        << path->name() << " q" << q << " " << p.ToString();
  }
  // Sum agreement on a few queries.
  for (int q = 0; q < 10; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(2000));
    const auto p = Pred::Between(a, a + 100);
    ASSERT_DOUBLE_EQ(static_cast<double>(path->Sum(p)),
                     static_cast<double>(ScanSum<std::int64_t>(base, p)))
        << path->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AccessPathStrategyTest,
    ::testing::Values(StrategyConfig::FullScan(), StrategyConfig::FullSort(),
                      StrategyConfig::BTree(), StrategyConfig::Crack(),
                      StrategyConfig::StochasticCrack(512),
                      StrategyConfig::AdaptiveMerge(700),
                      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort,
                                             700),
                      StrategyConfig::Hybrid(OrganizeMode::kSort, OrganizeMode::kSort,
                                             700),
                      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kRadix,
                                             700)),
    [](const auto& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(StrategyConfigTest, DisplayNames) {
  EXPECT_EQ(StrategyConfig::FullScan().DisplayName(), "scan");
  EXPECT_EQ(StrategyConfig::FullSort().DisplayName(), "sort");
  EXPECT_EQ(StrategyConfig::BTree().DisplayName(), "btree");
  EXPECT_EQ(StrategyConfig::Crack().DisplayName(), "crack");
  EXPECT_EQ(StrategyConfig::StochasticCrack().DisplayName(), "stochastic");
  EXPECT_EQ(StrategyConfig::AdaptiveMerge().DisplayName(), "merge");
  EXPECT_EQ(
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort).DisplayName(),
      "HCS");
}

TEST(DatabaseTest, EndToEndCountAcrossStrategies) {
  Database db;
  ASSERT_TRUE(db.CreateTable("orders").ok());
  const auto amounts = RandomValues(3000, 1000, 53);
  ASSERT_TRUE(db.AddColumn("orders", "amount", std::vector<std::int64_t>(amounts)).ok());

  const auto p = Pred::Between(100, 300);
  const std::size_t expect = ScanCount<std::int64_t>(amounts, p);
  for (const auto& config :
       {StrategyConfig::FullScan(), StrategyConfig::Crack(),
        StrategyConfig::AdaptiveMerge(512),
        StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, 512)}) {
    auto count = db.Count("orders", "amount", p, config);
    ASSERT_TRUE(count.ok()) << config.DisplayName();
    EXPECT_EQ(*count, expect) << config.DisplayName();
  }
  // One cached path per strategy.
  EXPECT_EQ(db.num_cached_paths(), 4u);
  // Repeat queries hit the cached adaptive structure.
  ASSERT_TRUE(db.Count("orders", "amount", p, StrategyConfig::Crack()).ok());
  EXPECT_EQ(db.num_cached_paths(), 4u);
}

TEST(DatabaseTest, SumMatchesOracle) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  const auto values = RandomValues(2000, 500, 54);
  ASSERT_TRUE(db.AddColumn("t", "v", std::vector<std::int64_t>(values)).ok());
  const auto p = Pred::Between(100, 400);
  auto sum = db.Sum("t", "v", p, StrategyConfig::Crack());
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, static_cast<double>(ScanSum<std::int64_t>(values, p)));
}

TEST(DatabaseTest, SelectProjectViaSideways) {
  Database db;
  ASSERT_TRUE(db.CreateTable("lineitem").ok());
  const std::size_t n = 2000;
  const auto keys = RandomValues(n, 400, 55);
  std::vector<std::int64_t> price(n);
  std::vector<std::int64_t> qty(n);
  for (std::size_t i = 0; i < n; ++i) {
    price[i] = keys[i] * 3;
    qty[i] = keys[i] % 7;
  }
  ASSERT_TRUE(db.AddColumn("lineitem", "shipdate", std::vector<std::int64_t>(keys)).ok());
  ASSERT_TRUE(db.AddColumn("lineitem", "price", std::move(price)).ok());
  ASSERT_TRUE(db.AddColumn("lineitem", "qty", std::move(qty)).ok());

  const auto p = Pred::Between(100, 200);
  auto res = db.SelectProject("lineitem", "shipdate", p, {"price", "qty"});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_rows, ScanCount<std::int64_t>(keys, p));
  for (std::size_t i = 0; i < res->num_rows; ++i) {
    const std::int64_t key = res->columns[0][i] / 3;
    ASSERT_TRUE(p.Matches(key));
    ASSERT_EQ(res->columns[1][i], key % 7);
  }
}

TEST(DatabaseTest, ErrorPaths) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  EXPECT_TRUE(db.CreateTable("t").IsAlreadyExists());
  EXPECT_TRUE(db.AddColumn("ghost", "v", {1}).IsNotFound());
  ASSERT_TRUE(db.AddColumn("t", "v", {1, 2, 3}).ok());
  EXPECT_TRUE(db.AddColumn("t", "v", {1, 2, 3}).IsAlreadyExists());
  EXPECT_TRUE(db.Count("ghost", "v", Pred::Between(1, 2), StrategyConfig::Crack())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db.Count("t", "ghost", Pred::Between(1, 2), StrategyConfig::Crack())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db.SelectProject("t", "v", Pred::Between(1, 2), {"ghost"})
                  .status()
                  .IsNotFound());
}

TEST(DatabaseTest, ResetAdaptiveStateDropsCaches) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "v", RandomValues(500, 100, 56)).ok());
  ASSERT_TRUE(db.Count("t", "v", Pred::Between(1, 50), StrategyConfig::Crack()).ok());
  EXPECT_EQ(db.num_cached_paths(), 1u);
  db.ResetAdaptiveState();
  EXPECT_EQ(db.num_cached_paths(), 0u);
  // Still answers after reset (fresh adaptive state).
  auto count = db.Count("t", "v", Pred::Between(1, 50), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
}

// Regression for the old DisplayName-keyed cache: same-kind configs that
// differ only in knobs the name omits must get distinct adaptive
// structures (AdaptiveMerge(512) and AdaptiveMerge(2048) both print
// "merge" and used to alias).
TEST(DatabaseTest, StructuralCacheKeyDistinguishesKnobs) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "v", RandomValues(4000, 1000, 57)).ok());
  const auto p = Pred::Between(100, 500);
  ASSERT_TRUE(db.Count("t", "v", p, StrategyConfig::AdaptiveMerge(512)).ok());
  ASSERT_TRUE(db.Count("t", "v", p, StrategyConfig::AdaptiveMerge(2048)).ok());
  EXPECT_EQ(db.num_cached_paths(), 2u);
  // Same for crack configs differing only in merge policy.
  StrategyConfig mci = StrategyConfig::Crack();
  mci.merge_policy = MergePolicy::kComplete;
  ASSERT_TRUE(db.Count("t", "v", p, StrategyConfig::Crack()).ok());
  ASSERT_TRUE(db.Count("t", "v", p, mci).ok());
  EXPECT_EQ(db.num_cached_paths(), 4u);
  // Identical configs still share one structure.
  ASSERT_TRUE(db.Count("t", "v", p, StrategyConfig::AdaptiveMerge(512)).ok());
  EXPECT_EQ(db.num_cached_paths(), 4u);
}

// Kernel variants of one strategy are distinct adaptive structures (their
// physical layouts diverge) — distinct in the cache, distinct in the name.
TEST(DatabaseTest, CacheAndDisplayNameDistinguishKernelVariants) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "v", RandomValues(4000, 1000, 60)).ok());
  const auto p = Pred::Between(100, 500);
  const auto expect = db.Count("t", "v", p, StrategyConfig::FullScan());
  ASSERT_TRUE(expect.ok());
  std::size_t paths = db.num_cached_paths();
  for (const CrackKernel kernel :
       {CrackKernel::kBranchy, CrackKernel::kPredicated,
        CrackKernel::kPredicatedUnrolled}) {
    StrategyConfig config = StrategyConfig::Crack();
    config.crack_kernel = kernel;
    auto count = db.Count("t", "v", p, config);
    ASSERT_TRUE(count.ok()) << config.DisplayName();
    EXPECT_EQ(*count, *expect) << config.DisplayName();
    EXPECT_EQ(db.num_cached_paths(), ++paths)
        << config.DisplayName() << " aliased an existing kernel variant";
  }
  EXPECT_EQ(StrategyConfig::Crack().DisplayName(), "crack");
  StrategyConfig pred_config = StrategyConfig::Crack();
  pred_config.crack_kernel = CrackKernel::kPredicated;
  EXPECT_EQ(pred_config.DisplayName(), "crack+pred");
}

TEST(DatabaseTest, InsertAndDeleteKeepEveryCachedPathConsistent) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  auto values = RandomValues(3000, 1000, 58);
  ASSERT_TRUE(db.AddColumn("t", "v", std::vector<std::int64_t>(values)).ok());

  const std::vector<StrategyConfig> configs = {
      StrategyConfig::FullScan(),
      StrategyConfig::FullSort(),
      StrategyConfig::BTree(),
      StrategyConfig::Crack(),
      StrategyConfig::StochasticCrack(512),
      StrategyConfig::AdaptiveMerge(700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, 700),
      StrategyConfig::ParallelCrack(4, 1),
  };
  const auto p = Pred::Between(200, 600);
  // Warm every path, then write through the facade.
  for (const auto& config : configs) {
    ASSERT_TRUE(db.Count("t", "v", p, config).ok());
  }
  Rng rng(59);
  for (int i = 0; i < 50; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(1000));
    ASSERT_TRUE(db.Insert("t", "v", v).ok());
    values.push_back(v);
  }
  for (int i = 0; i < 20; ++i) {
    const auto v = values[rng.NextBounded(values.size())];
    auto deleted = db.Delete("t", "v", v);
    ASSERT_TRUE(deleted.ok());
    EXPECT_TRUE(*deleted);
    values.erase(std::find(values.begin(), values.end(), v));
  }
  const std::size_t expect = ScanCount<std::int64_t>(values, p);
  for (const auto& config : configs) {
    auto count = db.Count("t", "v", p, config);
    ASSERT_TRUE(count.ok()) << config.DisplayName();
    EXPECT_EQ(*count, expect) << config.DisplayName();
  }
  // A path created only now (fresh strategy) sees the mutated base.
  auto fresh = db.Count("t", "v", p, StrategyConfig::AdaptiveMerge(512));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, expect);
  // The catalog's base column mirrors the live multiset.
  auto span = db.catalog().GetTable("t").value()->GetTypedColumn<std::int64_t>("v");
  ASSERT_TRUE(span.ok());
  EXPECT_EQ((*span)->size(), values.size());
}

TEST(DatabaseTest, DeleteOfAbsentValueIsANoOp) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "v", {1, 2, 3}).ok());
  ASSERT_TRUE(db.Count("t", "v", Pred::All(), StrategyConfig::Crack()).ok());
  auto deleted = db.Delete("t", "v", 99);
  ASSERT_TRUE(deleted.ok());
  EXPECT_FALSE(*deleted);
  auto count = db.Count("t", "v", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  EXPECT_TRUE(db.Delete("ghost", "v", 1).status().IsNotFound());
}

TEST(DatabaseTest, InsertBatchMatchesScalarInserts) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  auto values = RandomValues(500, 100, 60);
  ASSERT_TRUE(db.AddColumn("t", "v", std::vector<std::int64_t>(values)).ok());
  const auto p = Pred::Between(10, 90);
  ASSERT_TRUE(db.Count("t", "v", p, StrategyConfig::Crack()).ok());
  const std::vector<std::int64_t> batch = {5, 50, 95, 50};
  ASSERT_TRUE(db.InsertBatch("t", "v", batch).ok());
  values.insert(values.end(), batch.begin(), batch.end());
  auto count = db.Count("t", "v", p, StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, ScanCount<std::int64_t>(values, p));
}

// DML does not drop the table's cached sideways crackers: row mutations
// flow into the cracker's operation log and live maps fold them in
// incrementally (ripple moves), so the cracked investment survives writes.
TEST(DatabaseTest, SidewaysMaintainedIncrementallyAcrossWrites) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "k", {10, 20, 30}).ok());
  ASSERT_TRUE(db.AddColumn("t", "a", {1, 2, 3}).ok());
  const auto p = Pred::Between(10, 30);
  auto before = db.SelectProject("t", "k", p, {"a"});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->num_rows, 3u);
  // Row-atomic writes: one value per column, column_names() order (k, a).
  ASSERT_TRUE(db.Insert("t", {25, 9}).ok());
  auto after = db.SelectProject("t", "k", p, {"a"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->num_rows, 4u);
  // The cracker (and its map) survived the write instead of rebuilding.
  auto state = db.SidewaysState("t", "k");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->stats().maps_created, 1u);
  EXPECT_EQ((*state)->stats().dml_inserts, 1u);
  // Column-addressed writes on a multi-column table are rejected — they
  // would desynchronize rows (the old footgun this API closed).
  EXPECT_TRUE(db.Insert("t", "k", 15).IsInvalidArgument());
  EXPECT_TRUE(db.InsertBatch("t", "k", std::vector<std::int64_t>{1, 2})
                  .IsInvalidArgument());
  // Row-atomic delete removes the first row whose key column matches.
  auto deleted = db.Delete("t", "k", 25);
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(*deleted);
  auto final_res = db.SelectProject("t", "k", p, {"a"});
  ASSERT_TRUE(final_res.ok());
  EXPECT_EQ(final_res->num_rows, 3u);
}

TEST(OperatorsTest, GatherAndPermutation) {
  const std::vector<std::int64_t> values = {10, 20, 30, 40};
  const std::vector<row_id_t> rids = {3, 0, 2};
  std::vector<std::int64_t> out;
  Gather<std::int64_t>(values, rids, &out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{40, 10, 30}));
  EXPECT_DOUBLE_EQ(static_cast<double>(GatherSum<std::int64_t>(values, rids)), 80.0);
  const std::vector<row_id_t> perm = {1, 0, 3, 2};
  EXPECT_EQ(ApplyPermutation<std::int64_t>(values, perm),
            (std::vector<std::int64_t>{20, 10, 40, 30}));
}

}  // namespace
}  // namespace aidx
