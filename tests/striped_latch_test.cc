// Striped piece-latch correctness (docs/CONCURRENCY.md §4–§5):
//
//  - differential oracle: single-threaded, kStripedPiece must produce the
//    same answers AND the same adaptation stats as the kPartitionMutex
//    baseline (the striped fast path mirrors the coarse Select
//    decision-for-decision);
//  - stripe collisions: with a 1- or 2-entry latch table every piece maps
//    to the same stripe(s), so disjoint-piece cracks serialize through
//    latch collisions — answers must stay exact under full contention;
//  - high-thread mixed read/write stress in both latch modes, with
//    ValidatePieces() and exact total balancing afterwards;
//  - same-partition concurrent cracking (num_partitions = 1): the exact
//    contention the striped table exists to relieve — every query cracks
//    the one partition, results checked against a scan oracle.
//
// Runs under ThreadSanitizer via the `concurrency` ctest label
// (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "exec/access_path.h"
#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = PartitionedCrackerColumn<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

Pred RandomPredicate(Rng* rng, std::int64_t domain) {
  const auto a = rng->NextInRange(-5, domain + 5);
  const auto width = rng->NextInRange(0, domain / 4);
  const auto kind = [&]() -> BoundKind {
    switch (rng->NextBounded(3)) {
      case 0: return BoundKind::kInclusive;
      case 1: return BoundKind::kExclusive;
      default: return BoundKind::kUnbounded;
    }
  };
  return Pred{a, kind(), a + width, kind()};
}

PartitionedCrackerOptions ModeOptions(LatchMode mode, std::size_t partitions,
                                      std::size_t stripes = 16) {
  PartitionedCrackerOptions options;
  options.num_partitions = partitions;
  options.latch_mode = mode;
  options.latch_stripes = stripes;
  return options;
}

void ExpectStatsEqual(const CrackerStats& a, const CrackerStats& b) {
  EXPECT_EQ(a.num_selects, b.num_selects);
  EXPECT_EQ(a.num_crack_in_two, b.num_crack_in_two);
  EXPECT_EQ(a.num_crack_in_three, b.num_crack_in_three);
  EXPECT_EQ(a.num_stochastic_cracks, b.num_stochastic_cracks);
  EXPECT_EQ(a.values_touched, b.values_touched);
}

// The core differential pin: same queries, same order, both latch modes —
// identical answers and identical physical adaptation (crack counts and
// touched-value totals), because single-threaded the striped fast path must
// make exactly the coarse path's decisions.
TEST(StripedLatchTest, DifferentialCountSumMatchesPartitionMutexOracle) {
  const auto base = RandomValues(20000, 4000, 71);
  Column striped(base, ModeOptions(LatchMode::kStripedPiece, 8));
  Column coarse(base, ModeOptions(LatchMode::kPartitionMutex, 8));
  Rng rng(72);
  for (int q = 0; q < 300; ++q) {
    const Pred p = RandomPredicate(&rng, 4000);
    ASSERT_EQ(striped.Count(p), coarse.Count(p)) << p.ToString();
    ASSERT_EQ(striped.Sum(p), coarse.Sum(p)) << p.ToString();
  }
  ExpectStatsEqual(striped.AggregatedStats(), coarse.AggregatedStats());
  EXPECT_TRUE(striped.ValidatePieces());
  EXPECT_TRUE(coarse.ValidatePieces());
}

// Differential pin with writes in the mix, for every merge policy: pending
// updates force the striped slow path, which must behave exactly like the
// partition-mutex protocol (it runs the same coarse code).
TEST(StripedLatchTest, DifferentialWithUpdatesAllMergePolicies) {
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kComplete, MergePolicy::kGradual}) {
    constexpr std::int64_t kDomain = 2000;
    auto model = RandomValues(8000, kDomain, 73);
    PartitionedCrackerOptions striped_opts =
        ModeOptions(LatchMode::kStripedPiece, 6);
    striped_opts.merge_policy = policy;
    PartitionedCrackerOptions coarse_opts =
        ModeOptions(LatchMode::kPartitionMutex, 6);
    coarse_opts.merge_policy = policy;
    Column striped(model, striped_opts);
    Column coarse(model, coarse_opts);
    Rng rng(74);
    for (int step = 0; step < 500; ++step) {
      const auto dice = rng.NextBounded(10);
      if (dice < 3) {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        striped.Insert(v);
        coarse.Insert(v);
        model.push_back(v);
      } else if (dice < 5 && !model.empty()) {
        const std::size_t pick = rng.NextBounded(model.size());
        const std::int64_t v = model[pick];
        ASSERT_TRUE(striped.Delete(v)) << "step " << step;
        ASSERT_TRUE(coarse.Delete(v)) << "step " << step;
        model[pick] = model.back();
        model.pop_back();
      } else {
        const Pred p = RandomPredicate(&rng, kDomain);
        const std::size_t expect = ScanCount<std::int64_t>(model, p);
        ASSERT_EQ(striped.Count(p), expect)
            << MergePolicyName(policy) << " step " << step << " " << p.ToString();
        ASSERT_EQ(coarse.Count(p), expect)
            << MergePolicyName(policy) << " step " << step << " " << p.ToString();
      }
    }
    EXPECT_EQ(striped.size(), model.size());
    EXPECT_TRUE(striped.ValidatePieces());
    EXPECT_TRUE(coarse.ValidatePieces());
  }
}

// Latch-stripe collisions: a 1-entry table maps every piece to one stripe
// (total collision — disjoint-piece cracks all contend on the same latch),
// a 2-entry table forces the "two pieces hash to one stripe" case
// constantly. Neither may change any answer.
TEST(StripedLatchTest, StripeCollisionsStaySound) {
  constexpr std::int64_t kDomain = 3000;
  const auto base = RandomValues(24000, kDomain, 75);
  for (const std::size_t stripes : {std::size_t{1}, std::size_t{2}}) {
    Column col(base, ModeOptions(LatchMode::kStripedPiece, 4, stripes));
    ASSERT_EQ(col.latch_stripes(), stripes);

    constexpr std::size_t kThreads = 8;
    constexpr int kQueriesPerThread = 120;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(7000 + t);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const Pred p = RandomPredicate(&rng, kDomain);
          if (col.Count(p) != ScanCount<std::int64_t>(base, p)) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << stripes << " stripes";
    EXPECT_TRUE(col.ValidatePieces()) << stripes << " stripes";
  }
}

// The contention the striped table exists to relieve: one partition, so
// every concurrent query cracks the same partition and overlap is possible
// only at piece granularity. Answers stay exact and invariants hold.
TEST(StripedLatchTest, SamePartitionConcurrentCrackStress) {
  constexpr std::size_t kThreads = 8;
  constexpr int kQueriesPerThread = 150;
  constexpr std::int64_t kDomain = 2000;
  const auto base = RandomValues(30000, kDomain, 77);
  Column col(base, ModeOptions(LatchMode::kStripedPiece, 1));
  ASSERT_EQ(col.num_partitions(), 1u);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(8000 + t);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Pred p = RandomPredicate(&rng, kDomain);
        if (q % 3 == 0) {
          // Sum exercises the shared-stripe value-read path under the same
          // contention (int64 sums at this scale are exact in long double).
          if (col.Sum(p) != ScanSum<std::int64_t>(base, p)) {
            failures.fetch_add(1);
          }
        } else if (col.Count(p) != ScanCount<std::int64_t>(base, p)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(col.ValidatePieces());
}

// §5's "invariants survive" check, run as the issue specifies: high-thread
// mixed read/write stress, then ValidatePieces() — in BOTH latch modes.
// Writers insert fresh values above the base domain (so only their inserter
// deletes them), readers count throughout; afterwards totals must balance
// exactly and every piece invariant must hold.
TEST(StripedLatchTest, ValidatePiecesAfterMixedStressBothModes) {
  for (const LatchMode mode :
       {LatchMode::kStripedPiece, LatchMode::kPartitionMutex}) {
    constexpr std::size_t kWriters = 4;
    constexpr std::size_t kReaders = 4;
    constexpr int kOpsPerThread = 300;
    constexpr std::int64_t kDomain = 2000;
    const auto base = RandomValues(16000, kDomain, 79);
    Column col(base, ModeOptions(mode, 8));

    std::atomic<std::size_t> inserted{0};
    std::atomic<std::size_t> deleted{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (std::size_t t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(9000 + t);
        std::vector<std::int64_t> own;
        for (int i = 0; i < kOpsPerThread; ++i) {
          if (own.empty() || rng.NextBounded(3) != 0) {
            const auto v = static_cast<std::int64_t>(
                kDomain + 1 + t + kWriters * rng.NextBounded(1000));
            col.Insert(v);
            own.push_back(v);
            inserted.fetch_add(1);
          } else {
            const std::size_t pick = rng.NextBounded(own.size());
            if (col.Delete(own[pick])) {
              deleted.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            own[pick] = own.back();
            own.pop_back();
          }
        }
      });
    }
    for (std::size_t t = 0; t < kReaders; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(9500 + t);
        for (int q = 0; q < kOpsPerThread; ++q) {
          const Pred p = RandomPredicate(&rng, kDomain);
          // Base values are never deleted: the live count is at least the
          // base's match count at all times.
          if (col.Count(p) < ScanCount<std::int64_t>(base, p)) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << LatchModeName(mode);
    EXPECT_EQ(col.size(), base.size() + inserted.load() - deleted.load())
        << LatchModeName(mode);
    EXPECT_EQ(col.Count(Pred::All()), col.size()) << LatchModeName(mode);
    EXPECT_TRUE(col.ValidatePieces()) << LatchModeName(mode);
  }
}

TEST(StripedLatchTest, MaterializeMatchesOracleStriped) {
  const auto base = RandomValues(6000, 400, 81);
  PartitionedCrackerOptions options = ModeOptions(LatchMode::kStripedPiece, 4);
  options.column_options.with_row_ids = true;
  Column col(base, options);
  Rng rng(82);
  for (int q = 0; q < 60; ++q) {
    const Pred p = RandomPredicate(&rng, 400);
    std::vector<std::int64_t> got;
    col.MaterializeValues(p, &got);
    std::vector<std::int64_t> expect;
    ScanValues<std::int64_t>(base, p, &expect);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << p.ToString();

    std::vector<row_id_t> rids;
    col.MaterializeRowIds(p, &rids);
    std::vector<row_id_t> expect_rids;
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (p.Matches(base[i])) expect_rids.push_back(static_cast<row_id_t>(i));
    }
    std::sort(rids.begin(), rids.end());
    ASSERT_EQ(rids, expect_rids) << p.ToString();
  }
  // With a pending write the same calls must take the slow path and still
  // observe the update.
  col.Insert(113);
  std::vector<std::int64_t> got;
  col.MaterializeValues(Pred::Between(113, 113), &got);
  EXPECT_EQ(got.size(), 1 + ScanCount<std::int64_t>(base, Pred::Between(113, 113)));
}

// Stochastic cracking under the striped protocol: pre-cracks run under the
// original piece's exclusive stripes and must not change any answer (and
// single-threaded must match the coarse stochastic path's stats exactly).
TEST(StripedLatchTest, StochasticStripedMatchesOracle) {
  const auto base = RandomValues(30000, 6000, 83);
  PartitionedCrackerOptions striped_opts = ModeOptions(LatchMode::kStripedPiece, 4);
  striped_opts.column_options.stochastic_threshold = 512;
  PartitionedCrackerOptions coarse_opts = ModeOptions(LatchMode::kPartitionMutex, 4);
  coarse_opts.column_options.stochastic_threshold = 512;
  Column striped(base, striped_opts);
  Column coarse(base, coarse_opts);
  Rng rng(84);
  for (int q = 0; q < 150; ++q) {
    const Pred p = RandomPredicate(&rng, 6000);
    const std::size_t expect = ScanCount<std::int64_t>(base, p);
    ASSERT_EQ(striped.Count(p), expect) << p.ToString();
    ASSERT_EQ(coarse.Count(p), expect) << p.ToString();
  }
  ExpectStatsEqual(striped.AggregatedStats(), coarse.AggregatedStats());
  EXPECT_GT(striped.AggregatedStats().num_stochastic_cracks, 0u);
  EXPECT_TRUE(striped.ValidatePieces());
}

// min_piece_size > 0 exercises the edge-piece path: sub-threshold pieces
// are scanned (under shared stripes) instead of cracked.
TEST(StripedLatchTest, MinPieceEdgesStripedMatchesOracle) {
  const auto base = RandomValues(20000, 2500, 85);
  PartitionedCrackerOptions striped_opts = ModeOptions(LatchMode::kStripedPiece, 4);
  striped_opts.column_options.min_piece_size = 128;
  PartitionedCrackerOptions coarse_opts = ModeOptions(LatchMode::kPartitionMutex, 4);
  coarse_opts.column_options.min_piece_size = 128;
  Column striped(base, striped_opts);
  Column coarse(base, coarse_opts);
  Rng rng(86);
  for (int q = 0; q < 200; ++q) {
    const Pred p = RandomPredicate(&rng, 2500);
    ASSERT_EQ(striped.Count(p), coarse.Count(p)) << p.ToString();
    ASSERT_EQ(striped.Sum(p), coarse.Sum(p)) << p.ToString();
  }
  ExpectStatsEqual(striped.AggregatedStats(), coarse.AggregatedStats());

  // Concurrent smoke on the edge path.
  constexpr std::size_t kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng trng(8600 + t);
      for (int q = 0; q < 100; ++q) {
        const Pred p = RandomPredicate(&trng, 2500);
        if (striped.Count(p) != ScanCount<std::int64_t>(base, p)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(striped.ValidatePieces());
}

TEST(StripedLatchTest, LatchStripeCountIsClamped) {
  const auto base = RandomValues(1000, 100, 87);
  Column tiny(base, ModeOptions(LatchMode::kStripedPiece, 2, 0));
  EXPECT_EQ(tiny.latch_stripes(), 1u);
  Column huge(base, ModeOptions(LatchMode::kStripedPiece, 2, 1000));
  EXPECT_EQ(huge.latch_stripes(), 64u);
  Column coarse(base, ModeOptions(LatchMode::kPartitionMutex, 2, 1000));
  EXPECT_EQ(coarse.latch_stripes(), 1u);  // unused in mutex mode
  EXPECT_EQ(huge.Count(Pred::All()), base.size());
}

// Both cuts of a range landing in an *empty* piece must still count as one
// crack-in-three (the coarse ResolveBothInPiece does), not decompose into
// two crack-in-twos — a stat-parity regression caught in review: {1,7}
// cracked on (2,4) leaves an empty piece between the cuts, and (3,3) then
// lands both of its cuts inside it.
TEST(StripedLatchTest, EmptyPieceThreeWayKeepsStatParity) {
  const std::vector<std::int64_t> base = {1, 7};
  Column striped(base, ModeOptions(LatchMode::kStripedPiece, 1));
  Column coarse(base, ModeOptions(LatchMode::kPartitionMutex, 1));
  for (const Pred& p : {Pred::Between(2, 4), Pred::Between(3, 3)}) {
    ASSERT_EQ(striped.Count(p), coarse.Count(p)) << p.ToString();
  }
  ExpectStatsEqual(striped.AggregatedStats(), coarse.AggregatedStats());
  EXPECT_GT(striped.AggregatedStats().num_crack_in_three, 0u);
  EXPECT_TRUE(striped.ValidatePieces());
}

TEST(StripedLatchTest, EmptyAndDegenerateColumns) {
  Column empty(std::span<const std::int64_t>{},
               ModeOptions(LatchMode::kStripedPiece, 4));
  EXPECT_EQ(empty.Count(Pred::Between(1, 10)), 0u);
  EXPECT_TRUE(empty.ValidatePieces());

  const std::vector<std::int64_t> dupes(2000, 42);
  Column col(dupes, ModeOptions(LatchMode::kStripedPiece, 8));
  EXPECT_EQ(col.Count(Pred::Between(42, 42)), 2000u);
  EXPECT_EQ(col.Count(Pred::LessThan(42)), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

// The latch knobs are part of the strategy identity: distinct display names
// (nothing keyed on the name may alias modes) and distinct configs (the
// Database path cache keys on the full config).
TEST(StripedLatchTest, StrategyKnobsAreDistinct) {
  const StrategyConfig striped = StrategyConfig::ParallelCrack(8, 4);
  const StrategyConfig mutex_mode =
      StrategyConfig::ParallelCrack(8, 4, LatchMode::kPartitionMutex);
  const StrategyConfig wide =
      StrategyConfig::ParallelCrack(8, 4, LatchMode::kStripedPiece, 32);
  EXPECT_EQ(striped.DisplayName(), "pcrack(8x4)");
  EXPECT_EQ(mutex_mode.DisplayName(), "pcrack(8x4-mtx)");
  EXPECT_EQ(wide.DisplayName(), "pcrack(8x4-s32)");
  EXPECT_FALSE(striped == mutex_mode);
  EXPECT_FALSE(striped == wide);
  EXPECT_FALSE(mutex_mode == wide);
}

// Both latch modes through the shared kParallelCrack access path, writers
// in the mix, including the racy lazy-construction moment.
TEST(StripedLatchTest, AccessPathMixedStressBothModes) {
  for (const LatchMode mode :
       {LatchMode::kStripedPiece, LatchMode::kPartitionMutex}) {
    constexpr std::size_t kThreads = 6;
    constexpr int kOpsPerThread = 150;
    constexpr std::int64_t kDomain = 1500;
    const auto base = RandomValues(12000, kDomain, 89);
    const auto path = MakeAccessPath<std::int64_t>(
        base, StrategyConfig::ParallelCrack(8, 2, mode));

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(9800 + t);
        std::vector<std::int64_t> own;
        for (int i = 0; i < kOpsPerThread; ++i) {
          const auto dice = rng.NextBounded(10);
          if (dice < 2) {
            const auto v = static_cast<std::int64_t>(
                kDomain + 1 + t + kThreads * rng.NextBounded(500));
            path->Insert(v);
            own.push_back(v);
          } else if (dice < 4 && !own.empty()) {
            const std::size_t pick = rng.NextBounded(own.size());
            if (!path->Delete(own[pick])) failures.fetch_add(1);
            own[pick] = own.back();
            own.pop_back();
          } else {
            const Pred p = RandomPredicate(&rng, kDomain);
            if (path->Count(p) < ScanCount<std::int64_t>(base, p)) {
              failures.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0) << LatchModeName(mode);
  }
}

}  // namespace
}  // namespace aidx
