// Differential suite for the crack kernels (core/crack_ops.h): every
// CrackKernel must be observationally identical to the branchy oracle —
// same split points from the raw primitives, same query results from every
// strategy built on them, and sound pieces (ValidatePieces) throughout.
// Runs over randomized workloads × all StrategyKinds × int32/int64/float64
// × tandem/no-tandem payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/crack_ops.h"
#include "core/cracker_column.h"
#include "exec/access_path.h"
#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "sideways/cracker_map.h"
#include "update/updatable_column.h"
#include "util/rng.h"

namespace aidx {
namespace {

constexpr CrackKernel kAllKernels[] = {
    CrackKernel::kBranchy,
    CrackKernel::kPredicated,
    CrackKernel::kPredicatedUnrolled,
    CrackKernel::kSimd,
};

// The non-branchy kernels under differential test against the branchy
// oracle. kSimd is always in the list: on hosts without AVX2/NEON it
// resolves to the scalar blocked classifier, which must be just as exact.
constexpr CrackKernel kVariantKernels[] = {
    CrackKernel::kPredicated,
    CrackKernel::kPredicatedUnrolled,
    CrackKernel::kSimd,
};

template <typename T>
struct ValueDomain;  // maps the test's integer dice to typed values

template <>
struct ValueDomain<std::int32_t> {
  static std::int32_t Make(std::uint64_t raw) { return static_cast<std::int32_t>(raw); }
};
template <>
struct ValueDomain<std::int64_t> {
  static std::int64_t Make(std::uint64_t raw) { return static_cast<std::int64_t>(raw); }
};
template <>
struct ValueDomain<double> {
  // Quarter-steps: exercises non-integer keys while keeping sums exact in
  // long double arithmetic.
  static double Make(std::uint64_t raw) { return static_cast<double>(raw) * 0.25; }
};

template <typename T>
std::vector<T> RandomValues(std::size_t n, std::uint64_t domain, Rng* rng) {
  std::vector<T> out(n);
  for (auto& v : out) v = ValueDomain<T>::Make(rng->NextBounded(domain));
  return out;
}

template <typename T>
class CrackKernelTypedTest : public ::testing::Test {};

using ValueTypes = ::testing::Types<std::int32_t, std::int64_t, double>;
TYPED_TEST_SUITE(CrackKernelTypedTest, ValueTypes);

// ---------------------------------------------------------------------------
// Raw primitive equivalence: split points, partition property, multiset
// preservation, tandem pairing — across sizes spanning the dispatch
// threshold and block boundaries.
// ---------------------------------------------------------------------------

TYPED_TEST(CrackKernelTypedTest, CrackInTwoMatchesBranchyOracle) {
  using T = TypeParam;
  const std::size_t sizes[] = {0,   1,   2,   3,   31,  32,   33,   63,
                               64,  65,  127, 128, 129, 255,  256,  1000,
                               4096, 5000};
  const std::uint64_t domains[] = {1, 8, 1u << 16};  // all-equal .. mostly-distinct
  Rng rng(1234);
  for (const std::size_t n : sizes) {
    for (const std::uint64_t domain : domains) {
      const std::vector<T> base = RandomValues<T>(n, domain, &rng);
      for (const CutKind kind : {CutKind::kLess, CutKind::kLessEq}) {
        const Cut<T> cut{ValueDomain<T>::Make(rng.NextBounded(domain + 1)), kind};
        std::vector<T> oracle = base;
        const std::size_t want =
            CrackInTwo<T>(oracle, {}, cut, CrackKernel::kBranchy);
        for (const CrackKernel kernel : kVariantKernels) {
          std::vector<T> got = base;
          const std::size_t split = CrackInTwo<T>(got, {}, cut, kernel);
          ASSERT_EQ(split, want)
              << CrackKernelName(kernel) << " n=" << n << " cut=" << cut.ToString();
          for (std::size_t i = 0; i < split; ++i) {
            ASSERT_TRUE(cut.Below(got[i])) << CrackKernelName(kernel) << " @" << i;
          }
          for (std::size_t i = split; i < n; ++i) {
            ASSERT_FALSE(cut.Below(got[i])) << CrackKernelName(kernel) << " @" << i;
          }
          std::vector<T> a = got, b = base;
          std::sort(a.begin(), a.end());
          std::sort(b.begin(), b.end());
          ASSERT_EQ(a, b) << CrackKernelName(kernel) << ": multiset changed";
        }
      }
    }
  }
}

TYPED_TEST(CrackKernelTypedTest, CrackInTwoKeepsPayloadsInTandem) {
  using T = TypeParam;
  Rng rng(99);
  for (const std::size_t n : {65u, 200u, 4096u}) {
    const std::vector<T> base = RandomValues<T>(n, 1 << 10, &rng);
    const Cut<T> cut{ValueDomain<T>::Make(1 << 9), CutKind::kLess};
    for (const CrackKernel kernel : kAllKernels) {
      std::vector<T> values = base;
      std::vector<row_id_t> rids(n);
      for (std::size_t i = 0; i < n; ++i) rids[i] = static_cast<row_id_t>(i);
      const std::size_t split =
          CrackInTwo<T>(values, std::span<row_id_t>(rids), cut, kernel);
      (void)split;
      // Every payload must still sit next to the value it started with.
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(values[i], base[rids[i]])
            << CrackKernelName(kernel) << " payload detached at " << i;
      }
    }
  }
}

TYPED_TEST(CrackKernelTypedTest, CrackInThreeMatchesBranchyOracle) {
  using T = TypeParam;
  Rng rng(4321);
  // 511..513 straddle the SIMD crack-in-three block threshold (2 * 256);
  // 10000 is enough whole blocks to exercise the double-ended main loop.
  for (const std::size_t n :
       {0u, 1u, 100u, 127u, 128u, 511u, 512u, 513u, 1000u, 4096u, 10000u}) {
    for (const std::uint64_t domain : {4u, 1u << 12}) {
      const std::vector<T> base = RandomValues<T>(n, domain, &rng);
      const T a = ValueDomain<T>::Make(rng.NextBounded(domain));
      const T b = ValueDomain<T>::Make(rng.NextBounded(domain));
      const Cut<T> lo{std::min(a, b), CutKind::kLess};
      const Cut<T> hi{std::max(a, b), CutKind::kLessEq};
      std::vector<T> oracle = base;
      const ThreeWaySplit want =
          CrackInThree<T>(oracle, {}, lo, hi, CrackKernel::kBranchy);
      for (const CrackKernel kernel : kVariantKernels) {
        std::vector<T> got = base;
        std::vector<row_id_t> rids(n);
        for (std::size_t i = 0; i < n; ++i) rids[i] = static_cast<row_id_t>(i);
        const ThreeWaySplit split =
            CrackInThree<T>(got, std::span<row_id_t>(rids), lo, hi, kernel);
        ASSERT_EQ(split.lower_end, want.lower_end) << CrackKernelName(kernel);
        ASSERT_EQ(split.middle_end, want.middle_end) << CrackKernelName(kernel);
        for (std::size_t i = 0; i < n; ++i) {
          const bool in_a = i < split.lower_end;
          const bool in_c = i >= split.middle_end;
          ASSERT_EQ(lo.Below(got[i]), in_a) << CrackKernelName(kernel) << " @" << i;
          ASSERT_EQ(!hi.Below(got[i]), in_c) << CrackKernelName(kernel) << " @" << i;
          ASSERT_EQ(got[i], base[rids[i]]) << CrackKernelName(kernel) << " @" << i;
        }
      }
    }
  }
}

// The single-pass crack-in-three must produce exactly the split points of
// the two-pass decomposition it replaced, for every kernel, every cut-kind
// combination, and duplicate-heavy data — with per-region multisets equal
// (element order within a region is kernel-specific and not part of the
// contract).
TYPED_TEST(CrackKernelTypedTest, CrackInThreeMatchesTwoPassOracle) {
  using T = TypeParam;
  Rng rng(888);
  for (const std::size_t n : {63u, 256u, 511u, 512u, 513u, 3000u, 10000u}) {
    for (const std::uint64_t domain : {8u, 1u << 12}) {  // dup-heavy .. distinct
      const std::vector<T> base = RandomValues<T>(n, domain, &rng);
      const T raw_a = ValueDomain<T>::Make(rng.NextBounded(domain));
      const T raw_b = ValueDomain<T>::Make(rng.NextBounded(domain));
      const T lo_v = std::min(raw_a, raw_b);
      const T hi_v = std::max(raw_a, raw_b);
      for (const CutKind lo_kind : {CutKind::kLess, CutKind::kLessEq}) {
        for (const CutKind hi_kind : {CutKind::kLess, CutKind::kLessEq}) {
          if (lo_v == hi_v &&
              lo_kind == CutKind::kLessEq && hi_kind == CutKind::kLess) {
            continue;  // illegal pair: empty middle below the lower cut
          }
          const Cut<T> lo{lo_v, lo_kind};
          const Cut<T> hi{hi_v, hi_kind};
          std::vector<T> oracle = base;
          const ThreeWaySplit want = CrackInThreeTwoPass<T>(
              oracle, {}, lo, hi, CrackKernel::kBranchy);
          for (const CrackKernel kernel : kAllKernels) {
            for (const bool tandem : {false, true}) {
              std::vector<T> got = base;
              std::vector<row_id_t> rids(tandem ? n : 0);
              for (std::size_t i = 0; i < rids.size(); ++i) {
                rids[i] = static_cast<row_id_t>(i);
              }
              const ThreeWaySplit split = CrackInThree<T>(
                  got, std::span<row_id_t>(rids), lo, hi, kernel);
              ASSERT_EQ(split.lower_end, want.lower_end)
                  << CrackKernelName(kernel) << " n=" << n
                  << " tandem=" << tandem;
              ASSERT_EQ(split.middle_end, want.middle_end)
                  << CrackKernelName(kernel) << " n=" << n;
              // Per-region multisets match the two-pass oracle's regions.
              auto region_sorted = [](std::vector<T> v, std::size_t b,
                                      std::size_t e) {
                std::sort(v.begin() + b, v.begin() + e);
                return std::vector<T>(v.begin() + b, v.begin() + e);
              };
              for (const auto& [b, e] :
                   {std::pair<std::size_t, std::size_t>{0, split.lower_end},
                    {split.lower_end, split.middle_end},
                    {split.middle_end, n}}) {
                ASSERT_EQ(region_sorted(got, b, e), region_sorted(oracle, b, e))
                    << CrackKernelName(kernel) << " n=" << n << " region ["
                    << b << "," << e << ")";
              }
              for (std::size_t i = 0; tandem && i < n; ++i) {
                ASSERT_EQ(got[i], base[rids[i]])
                    << CrackKernelName(kernel) << " payload detached @" << i;
              }
            }
          }
        }
      }
    }
  }
}

// Pieces rarely start at an aligned address: crack subspans at odd offsets
// and lengths around the vector width, with guard bands on both sides. Any
// kernel store that strays outside its piece corrupts a neighbouring piece
// in production; here it trips the guard check.
TYPED_TEST(CrackKernelTypedTest, UnalignedPieceOffsetsStayInBounds) {
  using T = TypeParam;
  constexpr std::size_t kGuard = 64;
  const T kSentinel = ValueDomain<T>::Make(0xABCDEF);
  Rng rng(246);
  for (const std::size_t offset : {1u, 3u, 7u, 9u, 31u, 33u}) {
    for (const std::size_t len :
         {7u, 8u, 15u, 16u, 17u, 31u, 32u, 33u, 255u, 256u, 257u, 511u,
          512u, 513u, 2048u}) {
      const std::vector<T> piece = RandomValues<T>(len, 1u << 10, &rng);
      std::vector<T> buf(offset + len + kGuard, kSentinel);
      const Cut<T> cut{ValueDomain<T>::Make(1u << 9), CutKind::kLess};
      const Cut<T> hi{ValueDomain<T>::Make(3u << 8), CutKind::kLessEq};
      for (const CrackKernel kernel : kAllKernels) {
        // Crack-in-two on the unaligned subspan.
        std::copy(piece.begin(), piece.end(), buf.begin() + offset);
        std::vector<T> oracle = piece;
        const std::size_t want =
            CrackInTwo<T>(oracle, {}, cut, CrackKernel::kBranchy);
        const std::size_t split = CrackInTwo<T>(
            std::span<T>(buf).subspan(offset, len), {}, cut, kernel);
        ASSERT_EQ(split, want)
            << CrackKernelName(kernel) << " off=" << offset << " len=" << len;
        for (std::size_t i = 0; i < offset; ++i) {
          ASSERT_EQ(buf[i], kSentinel)
              << CrackKernelName(kernel) << " wrote before piece @" << i;
        }
        for (std::size_t i = offset + len; i < buf.size(); ++i) {
          ASSERT_EQ(buf[i], kSentinel)
              << CrackKernelName(kernel) << " wrote after piece @" << i;
        }
        // Crack-in-three on the same subspan.
        std::copy(piece.begin(), piece.end(), buf.begin() + offset);
        CrackInThree<T>(std::span<T>(buf).subspan(offset, len), {}, cut, hi,
                        kernel);
        for (std::size_t i = 0; i < offset; ++i) {
          ASSERT_EQ(buf[i], kSentinel)
              << CrackKernelName(kernel) << " 3-way wrote before piece @" << i;
        }
        for (std::size_t i = offset + len; i < buf.size(); ++i) {
          ASSERT_EQ(buf[i], kSentinel)
              << CrackKernelName(kernel) << " 3-way wrote after piece @" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CrackerColumn: every kernel answers a randomized query stream exactly
// like the branchy column, with sound pieces after every query.
// ---------------------------------------------------------------------------

TYPED_TEST(CrackKernelTypedTest, CrackerColumnDifferential) {
  using T = TypeParam;
  constexpr std::uint64_t kDomain = 4000;
  for (const bool with_rids : {false, true}) {
    for (const bool stochastic : {false, true}) {
      Rng data_rng(7);
      const std::vector<T> base = RandomValues<T>(6000, kDomain, &data_rng);
      CrackerColumnOptions oracle_options{.with_row_ids = with_rids};
      if (stochastic) oracle_options.stochastic_threshold = 512;
      CrackerColumn<T> oracle(base, oracle_options);
      for (const CrackKernel kernel : kVariantKernels) {
        CrackerColumnOptions options = oracle_options;
        options.kernel = kernel;
        CrackerColumn<T> column(base, options);
        Rng query_rng(13);
        for (int q = 0; q < 120; ++q) {
          const T lo = ValueDomain<T>::Make(query_rng.NextBounded(kDomain));
          const T width = ValueDomain<T>::Make(query_rng.NextBounded(400));
          const auto pred = RangePredicate<T>::Between(lo, lo + width);
          ASSERT_EQ(column.Count(pred), oracle.Count(pred))
              << CrackKernelName(kernel) << " stochastic=" << stochastic
              << " query " << q;
          ASSERT_EQ(static_cast<double>(column.Sum(pred)),
                    static_cast<double>(oracle.Sum(pred)))
              << CrackKernelName(kernel) << " query " << q;
          ASSERT_TRUE(column.ValidatePieces())
              << CrackKernelName(kernel) << " unsound pieces after query " << q;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full strategy surface: all eight StrategyKinds produce identical query
// results under every kernel (read-only and mixed-update workloads).
// ---------------------------------------------------------------------------

std::vector<StrategyConfig> AllStrategyShapes() {
  // Small run/partition sizes so merge machinery engages at test scale.
  return {
      StrategyConfig::FullScan(),
      StrategyConfig::FullSort(),
      StrategyConfig::BTree(),
      StrategyConfig::Crack(),
      StrategyConfig::StochasticCrack(512),
      StrategyConfig::AdaptiveMerge(700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort, 700),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kCrack, 700),
      StrategyConfig::ParallelCrack(4, 1),
  };
}

TYPED_TEST(CrackKernelTypedTest, AllStrategiesAgreeUnderEveryKernel) {
  using T = TypeParam;
  constexpr std::uint64_t kDomain = 3000;
  Rng data_rng(21);
  const std::vector<T> base = RandomValues<T>(5000, kDomain, &data_rng);

  for (StrategyConfig config : AllStrategyShapes()) {
    for (const bool with_rids : {false, true}) {
      config.with_row_ids = with_rids;
      // Branchy is the oracle; the variants must match it query by query.
      config.crack_kernel = CrackKernel::kBranchy;
      auto oracle = MakeAccessPath<T>(base, config);
      std::vector<std::unique_ptr<AccessPath<T>>> variants;
      for (const CrackKernel kernel : kVariantKernels) {
        config.crack_kernel = kernel;
        variants.push_back(MakeAccessPath<T>(base, config));
      }
      Rng query_rng(34);
      for (int q = 0; q < 80; ++q) {
        const T lo = ValueDomain<T>::Make(query_rng.NextBounded(kDomain));
        const T width = ValueDomain<T>::Make(query_rng.NextBounded(300));
        const auto pred = q == 0 ? RangePredicate<T>::All()
                                 : RangePredicate<T>::Between(lo, lo + width);
        const std::size_t want_count = oracle->Count(pred);
        const auto want_sum = static_cast<double>(oracle->Sum(pred));
        for (std::size_t k = 0; k < variants.size(); ++k) {
          ASSERT_EQ(variants[k]->Count(pred), want_count)
              << variants[k]->name() << " query " << q;
          ASSERT_EQ(static_cast<double>(variants[k]->Sum(pred)), want_sum)
              << variants[k]->name() << " query " << q;
        }
      }
    }
  }
}

TYPED_TEST(CrackKernelTypedTest, MixedUpdatesAgreeUnderEveryKernel) {
  using T = TypeParam;
  constexpr std::uint64_t kDomain = 2000;
  // The strategies whose write pipelines route through crack kernels.
  std::vector<StrategyConfig> configs = {
      StrategyConfig::Crack(),
      StrategyConfig::StochasticCrack(512),
      StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kCrack, 700),
      StrategyConfig::ParallelCrack(4, 1),
  };
  for (StrategyConfig config : configs) {
    for (const CrackKernel kernel : kVariantKernels) {
      config.crack_kernel = kernel;
      Rng rng(55);
      std::vector<T> base = RandomValues<T>(3000, kDomain, &rng);
      std::vector<T> model = base;
      auto path = MakeAccessPath<T>(base, config);
      const std::string label = path->name();
      for (int step = 0; step < 500; ++step) {
        const auto dice = rng.NextBounded(10);
        if (dice < 3) {
          const T v = ValueDomain<T>::Make(rng.NextBounded(kDomain));
          path->Insert(v);
          model.push_back(v);
        } else if (dice < 5) {
          T v;
          if (rng.NextBounded(4) == 0 || model.empty()) {
            v = ValueDomain<T>::Make(kDomain + rng.NextBounded(50));  // absent
          } else {
            v = model[rng.NextBounded(model.size())];
          }
          bool expect = false;
          for (std::size_t i = 0; i < model.size(); ++i) {
            if (model[i] == v) {
              model[i] = model.back();
              model.pop_back();
              expect = true;
              break;
            }
          }
          ASSERT_EQ(path->Delete(v), expect) << label << " step " << step;
        } else {
          const T lo = ValueDomain<T>::Make(rng.NextBounded(kDomain));
          const T width = ValueDomain<T>::Make(rng.NextBounded(200));
          const auto pred = RangePredicate<T>::Between(lo, lo + width);
          ASSERT_EQ(path->Count(pred), ScanCount<T>(model, pred))
              << label << " step " << step << " " << pred.ToString();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structure-level soundness under the variant kernels.
// ---------------------------------------------------------------------------

TEST(CrackKernelStructuresTest, PartitionedColumnStaysSound) {
  Rng rng(77);
  std::vector<std::int64_t> base(20000);
  for (auto& v : base) v = static_cast<std::int64_t>(rng.NextBounded(1 << 14));
  for (const CrackKernel kernel : kVariantKernels) {
    PartitionedCrackerOptions options;
    options.num_partitions = 6;
    options.column_options.with_row_ids = true;
    options.column_options.kernel = kernel;
    PartitionedCrackerColumn<std::int64_t> column(base, options);
    Rng query_rng(3);
    for (int q = 0; q < 60; ++q) {
      const auto lo = static_cast<std::int64_t>(query_rng.NextBounded(1 << 14));
      const auto pred = RangePredicate<std::int64_t>::Between(lo, lo + 500);
      const std::size_t got = column.Count(pred);
      ASSERT_EQ(got, ScanCount<std::int64_t>(base, pred))
          << CrackKernelName(kernel) << " query " << q;
    }
    ASSERT_TRUE(column.ValidatePieces()) << CrackKernelName(kernel);
  }
}

TEST(CrackKernelStructuresTest, CrackerMapTandemTailUnderEveryKernel) {
  Rng rng(11);
  const std::size_t n = 9000;
  std::vector<std::int64_t> head(n);
  std::vector<double> tail(n);
  for (std::size_t i = 0; i < n; ++i) {
    head[i] = static_cast<std::int64_t>(rng.NextBounded(1 << 12));
    tail[i] = static_cast<double>(head[i]) * 2.5;  // derived: detects detachment
  }
  for (const CrackKernel kernel : kAllKernels) {
    CrackerMap<std::int64_t, double> map(head, tail, kernel);
    Rng query_rng(29);
    for (int q = 0; q < 50; ++q) {
      const auto lo = static_cast<std::int64_t>(query_rng.NextBounded(1 << 12));
      const auto pred = RangePredicate<std::int64_t>::Between(lo, lo + 200);
      const PositionRange r = map.Select(pred);
      ASSERT_EQ(r.size(), ScanCount<std::int64_t>(head, pred))
          << CrackKernelName(kernel) << " query " << q;
      for (std::size_t p = r.begin; p < r.end; ++p) {
        ASSERT_EQ(map.tail_at(p), static_cast<double>(map.head()[p]) * 2.5)
            << CrackKernelName(kernel) << " tail detached at " << p;
      }
    }
    ASSERT_TRUE(map.Validate()) << CrackKernelName(kernel);
  }
}

// Ripple merges interleaved with kernel cracks: the update pipeline and the
// predicated kernels manipulate the same arrays.
TEST(CrackKernelStructuresTest, UpdatableColumnRippleWithKernels) {
  constexpr std::uint64_t kDomain = 1500;
  for (const MergePolicy policy :
       {MergePolicy::kComplete, MergePolicy::kGradual, MergePolicy::kRipple}) {
    for (const CrackKernel kernel : kVariantKernels) {
      Rng rng(101);
      std::vector<std::int64_t> base(4000);
      for (auto& v : base) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      std::vector<std::int64_t> model = base;
      UpdatableCrackerColumn<std::int64_t> column(
          base, {.policy = policy,
                 .gradual_budget = 16,
                 .crack = {.with_row_ids = true, .kernel = kernel}});
      for (int step = 0; step < 400; ++step) {
        const auto dice = rng.NextBounded(6);
        if (dice == 0) {
          const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
          column.Insert(v);
          model.push_back(v);
        } else if (dice == 1 && !model.empty()) {
          const auto v = model[rng.NextBounded(model.size())];
          ASSERT_TRUE(column.DeleteValue(v));
          auto it = std::find(model.begin(), model.end(), v);
          *it = model.back();
          model.pop_back();
        } else {
          const auto lo = static_cast<std::int64_t>(rng.NextBounded(kDomain));
          const auto pred = RangePredicate<std::int64_t>::Between(lo, lo + 120);
          ASSERT_EQ(column.Count(pred), ScanCount<std::int64_t>(model, pred))
              << CrackKernelName(kernel) << "/" << MergePolicyName(policy)
              << " step " << step;
        }
      }
      ASSERT_TRUE(column.Validate())
          << CrackKernelName(kernel) << "/" << MergePolicyName(policy);
    }
  }
}

// ---------------------------------------------------------------------------
// Naming: kernel variants can never alias in figures or name-keyed caches.
// ---------------------------------------------------------------------------

TEST(CrackKernelNamingTest, DisplayNameDistinguishesKernelVariants) {
  for (StrategyConfig config :
       {StrategyConfig::Crack(), StrategyConfig::StochasticCrack(),
        StrategyConfig::Hybrid(OrganizeMode::kCrack, OrganizeMode::kSort),
        StrategyConfig::ParallelCrack(8, 4)}) {
    std::vector<std::string> names;
    for (const CrackKernel kernel : kAllKernels) {
      config.crack_kernel = kernel;
      names.push_back(config.DisplayName());
    }
    EXPECT_NE(names[0], names[1]) << names[0];
    EXPECT_NE(names[0], names[2]) << names[0];
    EXPECT_NE(names[1], names[2]) << names[1];
  }
  // Non-cracking strategies keep their plain names under any kernel —
  // including the sort-only hybrid, whose segments never invoke a kernel.
  StrategyConfig scan = StrategyConfig::FullScan();
  scan.crack_kernel = CrackKernel::kPredicated;
  EXPECT_EQ(scan.DisplayName(), "scan");
  StrategyConfig hss = StrategyConfig::Hybrid(OrganizeMode::kSort, OrganizeMode::kSort);
  hss.crack_kernel = CrackKernel::kPredicated;
  EXPECT_EQ(hss.DisplayName(), "HSS");

  StrategyConfig crack = StrategyConfig::Crack();
  crack.crack_kernel = CrackKernel::kPredicated;
  EXPECT_EQ(crack.DisplayName(), "crack+pred");
  crack.crack_kernel = CrackKernel::kPredicatedUnrolled;
  EXPECT_EQ(crack.DisplayName(), "crack+vec");
}

}  // namespace
}  // namespace aidx
