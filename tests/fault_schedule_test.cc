// Chaos harness for the fault-injection framework (docs/ROBUSTNESS.md):
// named fault schedules drive injected errors, delays, and probabilistic
// faults through the engine while invariants are checked after every
// burst — ValidatePieces on every cracked structure, live counts and
// checksums against a scan oracle, and sideways clone alignment.
//
// The two acceptance pins live here:
//  - a query cancelled / deadline-expired mid-crack returns Cancelled /
//    DeadlineExceeded, the index stays ValidatePieces-clean, and every
//    crack already performed is KEPT (incremental investment);
//  - an injected background-merge failure retries with backoff and then
//    degrades to foreground merging without losing a single buffered
//    write.
//
// Environment knobs (CI's fault-schedule job sets both):
//   AIDX_FAULT_SCHEDULE  named schedule for the randomized test
//                        (quiet | delays | errors | mixed | dist;
//                        default mixed)
//   AIDX_FAULT_SEED      seed for the randomized test, echoed in the log
//
// Runs under ThreadSanitizer via the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cracker_column.h"
#include "exec/engine.h"
#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/failpoint.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

// Every test starts and ends with a quiet registry so suites compose.
class FaultScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  static Status Configure(const std::string& spec) {
    return FailpointRegistry::Instance().Configure(spec);
  }
};

// ---------------------------------------------------------------------------
// Acceptance pin 1: cancellation / deadline expiry mid-crack.
// ---------------------------------------------------------------------------

// The callback cancels the token and returns OK, so the crack the gate
// guards still happens; the NEXT gate observes the cancelled context.
// That makes "expired between two piece-level cracks" fully
// deterministic: exactly one new cut is realized, then the walk stops.
TEST_F(FaultScheduleTest, CancelledMidCrackKeepsPartialInvestment) {
  const auto base = RandomValues(4000, 1000, 101);
  CrackerColumn<std::int64_t> col(base);
  // Warm query splits the column at 500 so the next predicate's bounds
  // land in different pieces (two gated cracks, not one crack-in-three).
  (void)col.Count(Pred::HalfOpen(0, 500));
  const std::size_t cuts_before = col.index().num_cuts();

  auto token = std::make_shared<CancellationToken>();
  FailpointPolicy policy;
  policy.mode = FailpointMode::kCallback;
  policy.handler = [token](std::string_view) {
    token->Cancel();
    return Status::OK();
  };
  failpoints::crack_piece.Arm(policy);
  QueryContext ctx = QueryContext::Background();
  ctx.SetToken(token);

  const auto pred = Pred::Between(200, 800);
  const auto result = col.Count(pred, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();

  // The lower-bound crack completed before the cancel was observed; the
  // upper-bound crack never ran. Nothing was rolled back.
  EXPECT_EQ(col.index().num_cuts(), cuts_before + 1);
  EXPECT_TRUE(col.ValidatePieces());

  // The partial investment is usable: the same query re-run without
  // faults is exact and only has the upper cut left to add.
  failpoints::crack_piece.Disarm();
  EXPECT_EQ(col.Count(pred), ScanCount<std::int64_t>(base, pred));
  EXPECT_TRUE(col.ValidatePieces());
}

TEST_F(FaultScheduleTest, DeadlineExpiryMidCrackIsCleanAndKept) {
  const auto base = RandomValues(4000, 1000, 103);
  CrackerColumn<std::int64_t> col(base);
  (void)col.Count(Pred::HalfOpen(0, 500));
  const std::size_t cuts_before = col.index().num_cuts();

  // The first gate passes (fresh deadline), sleeps 20ms inside the
  // injected delay, cracks; the second gate sees the 5ms deadline long
  // gone. Order is deterministic even on a loaded machine because the
  // context is checked before the delay fires.
  ASSERT_TRUE(Configure("crack.piece=delay(20000)").ok());
  const QueryContext ctx =
      QueryContext::WithTimeout(std::chrono::milliseconds(5));
  const auto result = col.Count(Pred::Between(200, 800), ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ(col.index().num_cuts(), cuts_before + 1);
  EXPECT_TRUE(col.ValidatePieces());

  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(col.Count(Pred::Between(200, 800)),
            ScanCount<std::int64_t>(base, Pred::Between(200, 800)));
}

TEST_F(FaultScheduleTest, DeadlinePropagatesThroughTheDatabaseFacade) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  const auto values = RandomValues(4000, 1000, 107);
  ASSERT_TRUE(db.AddColumn("t", "v", std::vector<std::int64_t>(values)).ok());

  // A generous deadline answers exactly.
  const auto pred = Pred::Between(200, 800);
  const QueryContext relaxed = QueryContext::WithTimeout(std::chrono::hours(1));
  auto ok_count = db.Count("t", "v", Pred::HalfOpen(0, 500),
                           StrategyConfig::Crack(), relaxed);
  ASSERT_TRUE(ok_count.ok()) << ok_count.status().ToString();
  EXPECT_EQ(*ok_count, ScanCount<std::int64_t>(values, Pred::HalfOpen(0, 500)));

  // Same two-gate construction as above, now through Database::Count.
  ASSERT_TRUE(Configure("crack.piece=delay(20000)").ok());
  const QueryContext tight = QueryContext::WithTimeout(std::chrono::milliseconds(5));
  auto expired = db.Count("t", "v", pred, StrategyConfig::Crack(), tight);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();

  // The cached path survived the expiry and answers exactly afterwards.
  FailpointRegistry::Instance().DisarmAll();
  auto after = db.Count("t", "v", pred, StrategyConfig::Crack());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, ScanCount<std::int64_t>(values, pred));
}

// ---------------------------------------------------------------------------
// Acceptance pin 2: background-merge faults retry, then degrade, and
// never lose a buffered write.
// ---------------------------------------------------------------------------

using ParallelColumn = PartitionedCrackerColumn<std::int64_t>;

PartitionedCrackerOptions MachineOptions(std::size_t threshold) {
  PartitionedCrackerOptions options;
  options.num_partitions = 2;
  options.latch_mode = LatchMode::kStripedPiece;
  options.write_mode = WriteMode::kStripedWrite;
  options.background_merge_threshold = threshold;
  options.background_merge_chunk = 128;
  return options;
}

TEST_F(FaultScheduleTest, BackgroundMergeRetriesTransientFaultsWithBackoff) {
  const auto base = RandomValues(2000, 1000, 109);
  ThreadPool pool(2);
  ParallelColumn col(base, MachineOptions(/*threshold=*/4), &pool);
  // Two step faults total, then the point auto-disarms: the merge task
  // retries through both and completes without degrading anything.
  ASSERT_TRUE(Configure("parallel.bg_merge_step=error*2").ok());

  Rng rng(110);
  for (int i = 0; i < 64; ++i) {
    col.Insert(static_cast<std::int64_t>(rng.NextBounded(1000)));
  }
  col.WaitForBackgroundMerges();

  const BackgroundMergeStats stats = col.background_merge_stats();
  EXPECT_EQ(stats.step_failures, 2u);
  EXPECT_EQ(stats.step_retries, 2u);
  EXPECT_EQ(stats.degrades, 0u);
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    EXPECT_FALSE(col.shard_degraded(p)) << "shard " << p;
  }
  EXPECT_EQ(col.Count(Pred::All()), base.size() + 64);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST_F(FaultScheduleTest, PersistentMergeFaultsDegradeToForegroundWithoutWriteLoss) {
  const auto base = RandomValues(2000, 1000, 113);
  ThreadPool pool(2);
  ParallelColumn col(base, MachineOptions(/*threshold=*/4), &pool);
  // Every merge step fails: the first task burns its retry budget
  // (base 200us doubling to the 2ms cap), gives up, and flags the shard.
  ASSERT_TRUE(Configure("parallel.bg_merge_step=error").ok());

  Rng rng(114);
  std::size_t inserted = 0;
  // Keep writing until some shard has degraded; later threshold
  // crossings on that shard merge in the foreground (which never touches
  // the bg_merge_step point), so writes keep landing while the fault is
  // still armed.
  while (col.background_merge_stats().degrades == 0) {
    col.Insert(static_cast<std::int64_t>(rng.NextBounded(1000)));
    ++inserted;
    col.WaitForBackgroundMerges();
    ASSERT_LT(inserted, 10000u) << "no degrade after many faulted merges";
  }
  for (int i = 0; i < 32; ++i) {
    col.Insert(static_cast<std::int64_t>(rng.NextBounded(1000)));
    ++inserted;
  }

  const BackgroundMergeStats stats = col.background_merge_stats();
  EXPECT_GE(stats.step_failures, 4u) << "retry budget is 3 retries per task";
  EXPECT_GE(stats.step_retries, 3u);
  EXPECT_GE(stats.degrades, 1u);
  bool any_degraded = false;
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    any_degraded |= col.shard_degraded(p);
  }
  EXPECT_TRUE(any_degraded);

  // Not a single write was lost, with the fault STILL armed.
  EXPECT_EQ(col.Count(Pred::All()), base.size() + inserted);
  EXPECT_TRUE(col.ValidatePieces());

  // Recovery: a coarse flush clears the degraded flag and the machine
  // resumes background merging once the fault is gone.
  FailpointRegistry::Instance().DisarmAll();
  col.FlushPending();
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    EXPECT_FALSE(col.shard_degraded(p)) << "shard " << p;
  }
  EXPECT_EQ(col.Count(Pred::All()), base.size() + inserted);
}

TEST_F(FaultScheduleTest, SubmitFailuresDegradeTheShard) {
  const auto base = RandomValues(2000, 1000, 127);
  ThreadPool pool(2);
  ParallelColumn col(base, MachineOptions(/*threshold=*/4), &pool);
  ASSERT_TRUE(Configure("parallel.bg_submit=error").ok());

  // Smallest value always lands in partition 0, so every buffered write
  // past the threshold re-attempts (and re-fails) that shard's submit.
  for (int i = 0; i < 16; ++i) col.Insert(-1);
  const BackgroundMergeStats stats = col.background_merge_stats();
  EXPECT_GE(stats.submit_failures, 4u);
  EXPECT_TRUE(col.shard_degraded(0));
  // Foreground merging carried the shard: all writes visible, index clean.
  EXPECT_EQ(col.Count(Pred::All()), base.size() + 16);
  EXPECT_TRUE(col.ValidatePieces());

  FailpointRegistry::Instance().DisarmAll();
  col.FlushPending();
  EXPECT_FALSE(col.shard_degraded(0));
}

// ---------------------------------------------------------------------------
// Engine-level fault surfaces.
// ---------------------------------------------------------------------------

TEST_F(FaultScheduleTest, DmlValidationFaultFailsCleanAndRowAtomically) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "k", {10, 20, 30}).ok());
  ASSERT_TRUE(db.AddColumn("t", "a", {1, 2, 3}).ok());
  ASSERT_TRUE(db.Count("t", "k", Pred::All(), StrategyConfig::Crack()).ok());

  ASSERT_TRUE(Configure("engine.dml_validate=error(resource_exhausted)").ok());
  EXPECT_TRUE(db.Insert("t", {40, 4}).IsResourceExhausted());
  FailpointRegistry::Instance().DisarmAll();

  // The faulted insert left no partial row behind anywhere.
  auto count = db.Count("t", "k", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  ASSERT_TRUE(db.Insert("t", {40, 4}).ok());
  count = db.Count("t", "k", Pred::All(), StrategyConfig::Crack());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);
}

TEST_F(FaultScheduleTest, SidewaysSelectFaultLeavesTheCrackerUntouched) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  const auto keys = RandomValues(2000, 400, 131);
  std::vector<std::int64_t> payload(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) payload[i] = keys[i] * 3;
  ASSERT_TRUE(db.AddColumn("t", "k", std::vector<std::int64_t>(keys)).ok());
  ASSERT_TRUE(db.AddColumn("t", "a", std::move(payload)).ok());

  const auto pred = Pred::Between(100, 200);
  auto before = db.SelectProject("t", "k", pred, {"a"});
  ASSERT_TRUE(before.ok());
  const auto queries_before = (*db.SidewaysState("t", "k"))->stats().num_queries;

  // The gate sits before any bookkeeping: the fault neither logs a query
  // nor touches a map.
  ASSERT_TRUE(Configure("sideways.select=error(resource_exhausted)").ok());
  EXPECT_TRUE(db.SelectProject("t", "k", pred, {"a"}).status().IsResourceExhausted());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ((*db.SidewaysState("t", "k"))->stats().num_queries, queries_before);

  auto after = db.SelectProject("t", "k", pred, {"a"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->num_rows, before->num_rows);
}

TEST_F(FaultScheduleTest, AddColumnFaultLeavesTheTableUnchanged) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  ASSERT_TRUE(db.AddColumn("t", "v", {1, 2, 3}).ok());
  ASSERT_TRUE(Configure("storage.add_column=error").ok());
  EXPECT_TRUE(db.AddColumn("t", "w", {4, 5, 6}).IsInternal());
  FailpointRegistry::Instance().DisarmAll();
  // Schema unchanged by the faulted attempt; the retry succeeds.
  ASSERT_TRUE(db.AddColumn("t", "w", {4, 5, 6}).ok());
  auto count = db.Count("t", "w", Pred::All(), StrategyConfig::FullScan());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
}

// ---------------------------------------------------------------------------
// Resource pressure: shed, fall back to scan, never abort.
// ---------------------------------------------------------------------------

using RowTuple = std::vector<std::int64_t>;

std::vector<RowTuple> SortedRows(const ProjectionResult<std::int64_t>& res) {
  std::vector<RowTuple> rows(res.num_rows);
  for (std::size_t i = 0; i < res.num_rows; ++i) {
    for (const auto& column : res.columns) rows[i].push_back(column[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_F(FaultScheduleTest, BudgetPressureFallsBackToScanWithExactAnswers) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  const std::size_t n = 3000;
  const auto keys = RandomValues(n, 500, 137);
  std::vector<std::int64_t> price(n);
  std::vector<std::int64_t> qty(n);
  for (std::size_t i = 0; i < n; ++i) {
    price[i] = keys[i] * 7;
    qty[i] = keys[i] % 5;
  }
  ASSERT_TRUE(db.AddColumn("t", "k", std::vector<std::int64_t>(keys)).ok());
  ASSERT_TRUE(db.AddColumn("t", "price", std::move(price)).ok());
  ASSERT_TRUE(db.AddColumn("t", "qty", std::move(qty)).ok());

  const auto pred = Pred::Between(100, 300);
  // Reference answer on an unlimited budget (sideways cracked path).
  auto cracked = db.SelectProject("t", "k", pred, {"price", "qty"});
  ASSERT_TRUE(cracked.ok());
  const auto expect = SortedRows(*cracked);

  // A 1-byte budget denies every map admission: the query degrades to
  // scan-plus-crack-later and still answers exactly. Scan order differs
  // from cracked order, so rows compare as sorted multisets.
  Database tiny;
  ASSERT_TRUE(tiny.CreateTable("t").ok());
  ASSERT_TRUE(tiny.AddColumn("t", "k", std::vector<std::int64_t>(keys)).ok());
  std::vector<std::int64_t> price2(n);
  std::vector<std::int64_t> qty2(n);
  for (std::size_t i = 0; i < n; ++i) {
    price2[i] = keys[i] * 7;
    qty2[i] = keys[i] % 5;
  }
  ASSERT_TRUE(tiny.AddColumn("t", "price", std::move(price2)).ok());
  ASSERT_TRUE(tiny.AddColumn("t", "qty", std::move(qty2)).ok());
  tiny.SetMemoryBudget(1);

  auto scanned = tiny.SelectProject("t", "k", pred, {"price", "qty"});
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(SortedRows(*scanned), expect);
  EXPECT_GE(tiny.resource_governor().admission_denials(), 1u);
  EXPECT_EQ((*tiny.SidewaysState("t", "k"))->num_live_maps(), 0u)
      << "denied admission must not grow the map cache";

  // Raising the budget back restores the cracked path on the same db.
  tiny.SetMemoryBudget(ResourceGovernor::kUnlimited);
  auto recovered = tiny.SelectProject("t", "k", pred, {"price", "qty"});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(SortedRows(*recovered), expect);
  EXPECT_GE((*tiny.SidewaysState("t", "k"))->num_live_maps(), 1u);
}

// Shedding drops whole cold (table, head) crackers — pure acceleration
// state that rebuilds on demand — so the hot query's new map fits and the
// cracked path survives the squeeze.
TEST_F(FaultScheduleTest, PressureShedsColdCrackersBeforeFallingBack) {
  Database db;
  const std::size_t n = 2000;
  const auto keys = RandomValues(n, 500, 139);
  for (const char* table : {"hot", "cold"}) {
    ASSERT_TRUE(db.CreateTable(table).ok());
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = keys[i] + 1;
      b[i] = keys[i] + 2;
    }
    ASSERT_TRUE(db.AddColumn(table, "k", std::vector<std::int64_t>(keys)).ok());
    ASSERT_TRUE(db.AddColumn(table, "a", std::move(a)).ok());
    ASSERT_TRUE(db.AddColumn(table, "b", std::move(b)).ok());
  }

  // One map in each cracker on an unlimited budget, then squeeze so the
  // hot table's second map no longer fits next to the cold cracker.
  const auto pred = Pred::Between(100, 300);
  ASSERT_TRUE(db.SelectProject("hot", "k", pred, {"a"}).ok());
  ASSERT_TRUE(db.SelectProject("cold", "k", pred, {"a"}).ok());
  const std::size_t per_map = (*db.SidewaysState("hot", "k"))->per_map_bytes();
  db.SetMemoryBudget(db.resource_governor().used_bytes() + per_map / 2);

  auto res = db.SelectProject("hot", "k", pred, {"b"});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->num_rows, ScanCount<std::int64_t>(keys, pred));
  EXPECT_GE(db.resource_governor().sheds(), 1u);
  // The cold cracker was evicted to make room; the hot one kept growing.
  EXPECT_FALSE(db.SidewaysState("cold", "k").ok());
  EXPECT_EQ((*db.SidewaysState("hot", "k"))->num_live_maps(), 2u);
}

// ---------------------------------------------------------------------------
// Randomized schedules: DML + queries under probabilistic faults, checked
// against a scan oracle after every burst.
// ---------------------------------------------------------------------------

std::string ScheduleSpec(const std::string& name) {
  if (name == "quiet") return "";
  if (name == "delays") {
    return "crack.piece=delay(20);sideways.ripple=delay(50);"
           "storage.commit_row=delay(20);organizer.step=delay(10)";
  }
  if (name == "errors") {
    return "parallel.bg_merge_step=prob(0.2);parallel.bg_submit=prob(0.1);"
           "crack.piece=prob(0.05)";
  }
  if (name == "dist") {
    // Aimed at the sharded serving layer (tests/sharded_db_test.cc picks
    // this up through the same env knob); the dist.* points never fire on
    // a single node, so for this suite it behaves like a light `errors`.
    return "dist.route=prob(0.03);dist.scatter=prob(0.05);"
           "dist.migrate_piece=prob(0.1);crack.piece=delay(10)";
  }
  // mixed (default)
  return "crack.piece=prob(0.02);parallel.bg_merge_step=prob(0.05);"
         "sideways.ripple=delay(30);storage.commit_row=delay(10)";
}

TEST_F(FaultScheduleTest, RandomizedScheduleKeepsEveryInvariant) {
  std::uint64_t seed = 20260807;
  if (const char* env = std::getenv("AIDX_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::string schedule = "mixed";
  if (const char* env = std::getenv("AIDX_FAULT_SCHEDULE")) schedule = env;
  // Echoed so a CI failure is reproducible: AIDX_FAULT_SEED=<seed>.
  std::cout << "[fault-schedule] schedule=" << schedule << " seed=" << seed
            << std::endl;
  RecordProperty("fault_schedule", schedule);
  RecordProperty("fault_seed", std::to_string(seed));

  const std::string spec = ScheduleSpec(schedule);
  if (!spec.empty()) {
    ASSERT_TRUE(Configure(spec).ok()) << spec;
  }

  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  std::vector<std::int64_t> oracle = RandomValues(3000, 1000, seed ^ 0xABCD);
  ASSERT_TRUE(db.AddColumn("t", "v", std::vector<std::int64_t>(oracle)).ok());

  const std::vector<StrategyConfig> configs = {
      StrategyConfig::Crack(),
      StrategyConfig::AdaptiveMerge(700),
      StrategyConfig::ParallelCrack(4, 2),
  };
  ThreadPool pool(2);

  Rng rng(seed);
  for (int burst = 0; burst < 30; ++burst) {
    for (int op = 0; op < 25; ++op) {
      const std::uint64_t dice = rng.NextBounded(10);
      if (dice < 6) {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(1000));
        ASSERT_TRUE(db.Insert("t", "v", v).ok());
        oracle.push_back(v);
      } else if (dice < 8 && !oracle.empty()) {
        const auto v = oracle[rng.NextBounded(oracle.size())];
        auto deleted = db.Delete("t", "v", v);
        ASSERT_TRUE(deleted.ok());
        ASSERT_TRUE(*deleted);
        oracle.erase(std::find(oracle.begin(), oracle.end(), v));
      } else {
        // Context-carrying probe: injected piece faults and deadline
        // expiry both surface as errors on this path. Any outcome is
        // legal except a wrong answer.
        const auto lo = static_cast<std::int64_t>(rng.NextBounded(1000));
        const auto p = Pred::Between(lo, lo + 150);
        const QueryContext ctx =
            QueryContext::WithTimeout(std::chrono::seconds(30));
        auto probe = db.Count("t", "v", p, StrategyConfig::Crack(), ctx);
        if (probe.ok()) {
          ASSERT_EQ(*probe, ScanCount<std::int64_t>(oracle, p));
        }
      }
    }
    // Post-burst invariants: live count, range counts, and checksum
    // across every strategy, all against the oracle.
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(900));
    const auto p = Pred::Between(lo, lo + 120);
    for (const auto& config : configs) {
      auto live = db.Count("t", "v", Pred::All(), config);
      ASSERT_TRUE(live.ok()) << config.DisplayName();
      ASSERT_EQ(*live, oracle.size()) << config.DisplayName() << " burst " << burst;
      auto count = db.Count("t", "v", p, config);
      ASSERT_TRUE(count.ok()) << config.DisplayName();
      ASSERT_EQ(*count, ScanCount<std::int64_t>(oracle, p))
          << config.DisplayName() << " burst " << burst;
    }
    auto checksum = db.Sum("t", "v", Pred::All(), StrategyConfig::Crack());
    ASSERT_TRUE(checksum.ok());
    ASSERT_DOUBLE_EQ(*checksum,
                     static_cast<double>(ScanSum<std::int64_t>(oracle, Pred::All())))
        << "burst " << burst;
  }
  FailpointRegistry::Instance().DisarmAll();
}

// Sideways clone alignment under a faulted schedule: every map's payload
// stays aligned with its key clone across rippled DML.
TEST_F(FaultScheduleTest, SidewaysClonesStayAlignedUnderRippleDelays) {
  ASSERT_TRUE(
      Configure("sideways.ripple=delay(100);storage.commit_row=delay(50)").ok());
  Database db;
  ASSERT_TRUE(db.CreateTable("t").ok());
  const std::size_t n = 1500;
  const auto keys = RandomValues(n, 300, 149);
  std::vector<std::int64_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = keys[i] * 11 + 1;
  ASSERT_TRUE(db.AddColumn("t", "k", std::vector<std::int64_t>(keys)).ok());
  ASSERT_TRUE(db.AddColumn("t", "a", std::move(payload)).ok());

  std::vector<std::int64_t> oracle_keys = keys;
  Rng rng(151);
  for (int round = 0; round < 10; ++round) {
    const auto lo = static_cast<std::int64_t>(rng.NextBounded(250));
    const auto pred = Pred::Between(lo, lo + 60);
    auto res = db.SelectProject("t", "k", pred, {"a"});
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->num_rows, ScanCount<std::int64_t>(oracle_keys, pred));
    // Alignment invariant: the projected payload is derived from the key,
    // so any clone misalignment shows up as a value that fails k*11+1.
    for (std::size_t i = 0; i < res->num_rows; ++i) {
      ASSERT_EQ((res->columns[0][i] - 1) % 11, 0) << "round " << round;
      ASSERT_TRUE(pred.Matches((res->columns[0][i] - 1) / 11)) << "round " << round;
    }
    for (int w = 0; w < 8; ++w) {
      const auto k = static_cast<std::int64_t>(rng.NextBounded(300));
      ASSERT_TRUE(db.Insert("t", {k, k * 11 + 1}).ok());
      oracle_keys.push_back(k);
    }
  }
  FailpointRegistry::Instance().DisarmAll();
  // Stripe growth kept adapting through the faults: the final projection
  // over everything is exact.
  auto all = db.SelectProject("t", "k", Pred::All(), {"a"});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows, oracle_keys.size());
}

}  // namespace
}  // namespace aidx
