// PartitionedCrackerColumn correctness: result equivalence against the
// single-threaded CrackerColumn oracle under random workloads, partition
// boundary edge cases (predicates spanning all/one/zero partitions and
// landing exactly on splitters), and a concurrent-select stress test
// (N threads x M queries, every count checked against a scan oracle).
// The stress tests are the payload of the ThreadSanitizer CI job.
#include "parallel/partitioned_cracker_column.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "exec/access_path.h"
#include "index/scan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = PartitionedCrackerColumn<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

Pred RandomPredicate(Rng* rng, std::int64_t domain) {
  const auto a = rng->NextInRange(-5, domain + 5);
  const auto width = rng->NextInRange(0, domain / 4);
  const auto kind = [&]() -> BoundKind {
    switch (rng->NextBounded(3)) {
      case 0: return BoundKind::kInclusive;
      case 1: return BoundKind::kExclusive;
      default: return BoundKind::kUnbounded;
    }
  };
  return Pred{a, kind(), a + width, kind()};
}

TEST(PartitionedCrackerTest, CountMatchesCrackerColumnOnRandomWorkload) {
  const auto base = RandomValues(20000, 4000, 42);
  Column parallel(base, {.num_partitions = 8});
  CrackerColumn<std::int64_t> single(base);
  Rng rng(99);
  for (int q = 0; q < 300; ++q) {
    const Pred p = RandomPredicate(&rng, 4000);
    ASSERT_EQ(parallel.Count(p), single.Count(p)) << p.ToString();
  }
  EXPECT_TRUE(parallel.ValidatePieces());
  EXPECT_TRUE(single.ValidatePieces());
}

TEST(PartitionedCrackerTest, SumMatchesCrackerColumnOnRandomWorkload) {
  const auto base = RandomValues(10000, 2000, 7);
  Column parallel(base, {.num_partitions = 5});
  CrackerColumn<std::int64_t> single(base);
  Rng rng(8);
  for (int q = 0; q < 150; ++q) {
    const Pred p = RandomPredicate(&rng, 2000);
    // Values are integers small enough that long double sums are exact.
    ASSERT_EQ(parallel.Sum(p), single.Sum(p)) << p.ToString();
  }
}

TEST(PartitionedCrackerTest, MaterializedValuesMatchScanMultiset) {
  const auto base = RandomValues(5000, 300, 13);
  Column col(base, {.num_partitions = 4});
  Rng rng(14);
  for (int q = 0; q < 40; ++q) {
    const Pred p = RandomPredicate(&rng, 300);
    std::vector<std::int64_t> got;
    col.MaterializeValues(p, &got);
    std::vector<std::int64_t> expect;
    ScanValues<std::int64_t>(base, p, &expect);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << p.ToString();
  }
}

TEST(PartitionedCrackerTest, RowIdsAreGlobalBaseOffsets) {
  const auto base = RandomValues(3000, 200, 17);
  PartitionedCrackerOptions options{.num_partitions = 6};
  options.column_options.with_row_ids = true;
  Column col(base, options);
  const Pred p = Pred::Between(50, 120);
  std::vector<row_id_t> got;
  col.MaterializeRowIds(p, &got);
  std::vector<row_id_t> expect;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (p.Matches(base[i])) expect.push_back(static_cast<row_id_t>(i));
  }
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(PartitionedCrackerTest, PredicateSpanningAllPartitions) {
  const auto base = RandomValues(4000, 1000, 3);
  Column col(base, {.num_partitions = 8});
  EXPECT_EQ(col.Count(Pred::All()), base.size());
  const auto sel = col.Select(Pred::All());
  EXPECT_EQ(sel.partitions.size(), col.num_partitions());
}

TEST(PartitionedCrackerTest, PredicateInsideOnePartition) {
  // Known data 0..999 with K=4: a narrow range lands in one partition.
  std::vector<std::int64_t> base(1000);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::int64_t>((i * 7919) % 1000);  // shuffled 0..999
  }
  Column col(base, {.num_partitions = 4});
  ASSERT_EQ(col.num_partitions(), 4u);
  const auto splitters = col.splitters();
  // A range strictly between the first two splitters touches one partition.
  const std::int64_t lo = splitters[0] + 1;
  const std::int64_t hi = splitters[1] - 1;
  ASSERT_LT(lo, hi);
  const auto sel = col.Select(Pred::HalfOpen(lo, hi));
  EXPECT_EQ(sel.partitions.size(), 1u);
  EXPECT_EQ(col.Count(Pred::HalfOpen(lo, hi)),
            ScanCount<std::int64_t>(base, Pred::HalfOpen(lo, hi)));
}

TEST(PartitionedCrackerTest, PredicateMatchingNothing) {
  const auto base = RandomValues(2000, 500, 21);
  Column col(base, {.num_partitions = 4});
  EXPECT_EQ(col.Count(Pred::Between(1000, 2000)), 0u);   // above the domain
  EXPECT_EQ(col.Count(Pred::Between(-50, -1)), 0u);      // below the domain
  EXPECT_EQ(col.Count(Pred::HalfOpen(100, 100)), 0u);    // syntactically empty
  const auto sel = col.Select(Pred::HalfOpen(100, 100));
  EXPECT_TRUE(sel.partitions.empty());
}

TEST(PartitionedCrackerTest, BoundsExactlyOnSplitters) {
  const auto base = RandomValues(6000, 600, 23);
  Column col(base, {.num_partitions = 6});
  for (const std::int64_t s : col.splitters()) {
    for (const Pred& p :
         {Pred::Between(s, s), Pred::HalfOpen(s, s + 10), Pred::LessThan(s),
          Pred::AtMost(s), Pred::GreaterThan(s), Pred::AtLeast(s)}) {
      ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(base, p)) << p.ToString();
    }
  }
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(PartitionedCrackerTest, SinglePartitionBehavesLikeCrackerColumn) {
  const auto base = RandomValues(3000, 700, 29);
  Column parallel(base, {.num_partitions = 1});
  CrackerColumn<std::int64_t> single(base);
  EXPECT_EQ(parallel.num_partitions(), 1u);
  Rng rng(30);
  for (int q = 0; q < 100; ++q) {
    const Pred p = RandomPredicate(&rng, 700);
    ASSERT_EQ(parallel.Count(p), single.Count(p)) << p.ToString();
  }
  // Identical cracks, too: one partition means the same piece structure.
  EXPECT_EQ(parallel.AggregatedStats().num_crack_in_two,
            single.stats().num_crack_in_two);
}

TEST(PartitionedCrackerTest, MorePartitionsThanDistinctValues) {
  const auto base = RandomValues(500, 5, 31);  // 5 distinct values, K=64
  Column col(base, {.num_partitions = 64});
  EXPECT_LE(col.num_partitions(), 5u);
  for (std::int64_t v = -1; v <= 5; ++v) {
    const Pred p = Pred::Between(v, v);
    ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(base, p)) << p.ToString();
  }
}

TEST(PartitionedCrackerTest, AllDuplicates) {
  const std::vector<std::int64_t> base(1000, 77);
  Column col(base, {.num_partitions = 8});
  EXPECT_EQ(col.num_partitions(), 1u);  // one distinct value, no splitters
  EXPECT_EQ(col.Count(Pred::Between(77, 77)), 1000u);
  EXPECT_EQ(col.Count(Pred::LessThan(77)), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(PartitionedCrackerTest, EmptyColumn) {
  Column col(std::span<const std::int64_t>{}, {.num_partitions = 4});
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(col.Count(Pred::Between(1, 10)), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(PartitionedCrackerTest, StatsAggregateAcrossPartitions) {
  const auto base = RandomValues(8000, 1000, 37);
  // Partition-mutex mode: all work flows through the inner columns, so the
  // aggregate must equal the per-partition sum exactly.
  Column col(base,
             {.num_partitions = 4, .latch_mode = LatchMode::kPartitionMutex});
  Rng rng(38);
  for (int q = 0; q < 50; ++q) col.Count(RandomPredicate(&rng, 1000));
  const CrackerStats stats = col.AggregatedStats();
  EXPECT_GT(stats.num_selects, 0u);
  EXPECT_GT(stats.num_crack_in_two + stats.num_crack_in_three, 0u);
  std::size_t per_partition_selects = 0;
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    per_partition_selects += col.partition(p).stats().num_selects;
  }
  EXPECT_EQ(stats.num_selects, per_partition_selects);
}

TEST(PartitionedCrackerTest, StatsAggregateIncludeStripedFastPath) {
  const auto base = RandomValues(8000, 1000, 37);
  // Striped mode counts its fast-path selects in shard-level counters; the
  // aggregate must still see every query exactly once.
  Column col(base,
             {.num_partitions = 4, .latch_mode = LatchMode::kStripedPiece});
  Rng rng(38);
  std::size_t shard_queries = 0;
  for (int q = 0; q < 50; ++q) {
    const Pred p = RandomPredicate(&rng, 1000);
    if (p.DefinitelyEmpty()) continue;
    col.Count(p);
    const auto sel = col.Select(p);  // single-threaded: safe, counts too
    shard_queries += 2 * sel.partitions.size();
  }
  const CrackerStats stats = col.AggregatedStats();
  EXPECT_EQ(stats.num_selects, shard_queries);
  EXPECT_GT(stats.num_crack_in_two + stats.num_crack_in_three, 0u);
}

TEST(PartitionedCrackerTest, IntraQueryPoolGivesSameAnswers) {
  const auto base = RandomValues(20000, 3000, 41);
  ThreadPool pool(3);
  Column with_pool(base, {.num_partitions = 8}, &pool);
  Column without_pool(base, {.num_partitions = 8});
  Rng rng(43);
  for (int q = 0; q < 200; ++q) {
    const Pred p = RandomPredicate(&rng, 3000);
    ASSERT_EQ(with_pool.Count(p), without_pool.Count(p)) << p.ToString();
  }
  EXPECT_TRUE(with_pool.ValidatePieces());
}

// The headline concurrency test: N threads x M queries against one shared
// column, every per-query count verified against the immutable base via a
// scan oracle. Runs under TSan in CI (scripts/check.sh --tsan).
TEST(PartitionedCrackerTest, ConcurrentSelectStress) {
  constexpr std::size_t kThreads = 8;
  constexpr int kQueriesPerThread = 150;
  constexpr std::int64_t kDomain = 2000;
  const auto base = RandomValues(30000, kDomain, 47);
  Column col(base, {.num_partitions = 8});

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Pred p = RandomPredicate(&rng, kDomain);
        const std::size_t got = col.Count(p);
        const std::size_t expect = ScanCount<std::int64_t>(base, p);
        if (got != expect) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(col.ValidatePieces());
}

// The same stress pinned to the kPartitionMutex fallback protocol, so the
// PR-2 latch scheme stays TSan-covered alongside the striped default (the
// striped mode has its own suite, tests/striped_latch_test.cc).
TEST(PartitionedCrackerTest, ConcurrentSelectStressPartitionMutex) {
  constexpr std::size_t kThreads = 8;
  constexpr int kQueriesPerThread = 100;
  constexpr std::int64_t kDomain = 2000;
  const auto base = RandomValues(20000, kDomain, 49);
  Column col(base,
             {.num_partitions = 8, .latch_mode = LatchMode::kPartitionMutex});

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1500 + t);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Pred p = RandomPredicate(&rng, kDomain);
        if (col.Count(p) != ScanCount<std::int64_t>(base, p)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(col.ValidatePieces());
}

// Same stress through the AccessPath layer: concurrent Count on a shared
// kParallelCrack path, including the racy lazy-construction moment. The
// intra-query pool (num_threads = 2) and the client threads compose.
TEST(PartitionedCrackerTest, ConcurrentAccessPathStress) {
  constexpr std::size_t kThreads = 6;
  constexpr int kQueriesPerThread = 100;
  constexpr std::int64_t kDomain = 1500;
  const auto base = RandomValues(20000, kDomain, 53);
  const auto path =
      MakeAccessPath<std::int64_t>(base, StrategyConfig::ParallelCrack(8, 2));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Pred p = RandomPredicate(&rng, kDomain);
        if (path->Count(p) != ScanCount<std::int64_t>(base, p)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PartitionedCrackerTest, ParallelCrackPathMatchesCrackPath) {
  const auto base = RandomValues(10000, 2500, 59);
  const auto parallel =
      MakeAccessPath<std::int64_t>(base, StrategyConfig::ParallelCrack(4, 1));
  const auto crack = MakeAccessPath<std::int64_t>(base, StrategyConfig::Crack());
  Rng rng(60);
  for (int q = 0; q < 100; ++q) {
    const Pred p = RandomPredicate(&rng, 2500);
    ASSERT_EQ(parallel->Count(p), crack->Count(p)) << p.ToString();
  }
  EXPECT_EQ(parallel->name(), "pcrack(4x1)");
}

// Single-threaded write semantics through the partitioned column: inserts
// and deletes route to the splitter-owning partition and the aggregate
// answers match a mutated-vector oracle.
TEST(PartitionedCrackerTest, UpdatesMatchOracleSingleThreaded) {
  constexpr std::int64_t kDomain = 2000;
  auto model = RandomValues(8000, kDomain, 61);
  Column col(model, {.num_partitions = 6});
  Rng rng(62);
  for (int step = 0; step < 600; ++step) {
    const auto dice = rng.NextBounded(10);
    if (dice < 3) {
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      col.Insert(v);
      model.push_back(v);
    } else if (dice < 5 && !model.empty()) {
      const std::size_t pick = rng.NextBounded(model.size());
      const std::int64_t v = model[pick];
      ASSERT_TRUE(col.Delete(v)) << "step " << step;
      model[pick] = model.back();
      model.pop_back();
    } else {
      const Pred p = RandomPredicate(&rng, kDomain);
      ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(model, p))
          << "step " << step << " " << p.ToString();
    }
  }
  EXPECT_FALSE(col.Delete(kDomain + 7));  // absent value
  EXPECT_EQ(col.size(), model.size());
  EXPECT_TRUE(col.ValidatePieces());
}

// Batch writes group by owning partition (one latch per partition per
// batch) and must be observationally identical to the equivalent scalar
// loops — same counts, same live size, same multiset.
TEST(PartitionedCrackerTest, BatchWritesMatchScalarLoops) {
  constexpr std::int64_t kDomain = 3000;
  auto model = RandomValues(10000, kDomain, 63);
  Column col(model, {.num_partitions = 6, .column_options = {.with_row_ids = true}});
  Rng rng(64);
  for (int round = 0; round < 8; ++round) {
    // Insert a batch spanning many partitions (with duplicates).
    std::vector<std::int64_t> batch(300);
    for (auto& v : batch) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
    col.InsertBatch(batch);
    model.insert(model.end(), batch.begin(), batch.end());
    ASSERT_EQ(col.size(), model.size());

    // Delete a batch: mostly live values, some absent, some duplicated
    // within the batch.
    std::vector<std::int64_t> victims;
    std::size_t expect_deleted = 0;
    std::vector<std::int64_t> scratch = model;
    for (int i = 0; i < 150; ++i) {
      std::int64_t v;
      if (rng.NextBounded(5) == 0) {
        v = kDomain + static_cast<std::int64_t>(rng.NextBounded(100));  // absent
      } else {
        v = model[rng.NextBounded(model.size())];
      }
      victims.push_back(v);
      const auto it = std::find(scratch.begin(), scratch.end(), v);
      if (it != scratch.end()) {
        *it = scratch.back();
        scratch.pop_back();
        ++expect_deleted;
      }
    }
    ASSERT_EQ(col.DeleteBatch(victims), expect_deleted) << "round " << round;
    model = std::move(scratch);
    ASSERT_EQ(col.size(), model.size());

    const Pred p = RandomPredicate(&rng, kDomain);
    ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(model, p)) << "round " << round;
  }
  EXPECT_TRUE(col.ValidatePieces());
}

// Concurrent batch writers: two threads InsertBatch/DeleteBatch their own
// disjoint value spaces while readers count. Balances totals afterwards;
// the latch protocol (one partition latch at a time, ascending) must hold
// under TSan.
TEST(PartitionedCrackerTest, ConcurrentBatchWriterStress) {
  constexpr std::int64_t kDomain = 4000;
  const auto base = RandomValues(20000, kDomain, 65);
  Column col(base, {.num_partitions = 8});
  constexpr int kWriters = 2;
  constexpr int kRounds = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(700 + t);
      for (int round = 0; round < kRounds; ++round) {
        // Fresh values disjoint from the base domain and from other threads.
        std::vector<std::int64_t> batch(64);
        for (auto& v : batch) {
          v = kDomain + 1 + t + kWriters * static_cast<std::int64_t>(
                                    rng.NextBounded(1000));
        }
        col.InsertBatch(batch);
        if (col.DeleteBatch(batch) != batch.size()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(900);
    for (int q = 0; q < 200; ++q) {
      const Pred p = RandomPredicate(&rng, kDomain);
      if (col.Count(p) < ScanCount<std::int64_t>(base, p)) failures.fetch_add(1);
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(col.size(), base.size());
  EXPECT_TRUE(col.ValidatePieces());
}

// Concurrent writers and readers on one shared column: writer threads
// insert disjoint fresh values and delete some of their own inserts,
// reader threads issue range counts throughout. The readers cannot check
// exact counts mid-flight (writes race them by design); afterwards the
// total must balance and every invariant must hold. Run under TSan by
// scripts/check.sh --tsan / CI.
TEST(PartitionedCrackerTest, ConcurrentWriterStress) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kReaders = 4;
  constexpr int kOpsPerWriter = 400;
  constexpr std::int64_t kDomain = 2000;
  const auto base = RandomValues(20000, kDomain, 63);
  Column col(base, {.num_partitions = 8});

  std::atomic<std::size_t> inserted{0};
  std::atomic<std::size_t> deleted{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3000 + t);
      std::vector<std::int64_t> own;  // this thread's not-yet-deleted inserts
      for (int i = 0; i < kOpsPerWriter; ++i) {
        if (own.empty() || rng.NextBounded(3) != 0) {
          // Values above the base domain, so only their inserter deletes
          // them and every delete must succeed.
          const auto v = static_cast<std::int64_t>(
              kDomain + 1 + t + kWriters * rng.NextBounded(1000));
          col.Insert(v);
          own.push_back(v);
          inserted.fetch_add(1);
        } else {
          const std::size_t pick = rng.NextBounded(own.size());
          if (col.Delete(own[pick])) {
            deleted.fetch_add(1);
          } else {
            failures.fetch_add(1);
          }
          own[pick] = own.back();
          own.pop_back();
        }
      }
    });
  }
  for (std::size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(4000 + t);
      for (int q = 0; q < kOpsPerWriter; ++q) {
        const Pred p = RandomPredicate(&rng, kDomain);
        // Base values are never deleted, so the count is at least the
        // base's and at most base + all concurrent inserts.
        const std::size_t got = col.Count(p);
        if (got < ScanCount<std::int64_t>(base, p)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(col.size(), base.size() + inserted.load() - deleted.load());
  EXPECT_EQ(col.Count(Pred::All()), col.size());
  EXPECT_TRUE(col.ValidatePieces());
  const UpdateStats stats = col.AggregatedUpdateStats();
  EXPECT_EQ(stats.inserts_queued, inserted.load());
}

// Same through the shared kParallelCrack access path, including the racy
// lazy-construction moment with writers in the mix.
TEST(PartitionedCrackerTest, ConcurrentMixedAccessPathStress) {
  constexpr std::size_t kThreads = 6;
  constexpr int kOpsPerThread = 200;
  constexpr std::int64_t kDomain = 1500;
  const auto base = RandomValues(15000, kDomain, 67);
  const auto path =
      MakeAccessPath<std::int64_t>(base, StrategyConfig::ParallelCrack(8, 2));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(5000 + t);
      std::vector<std::int64_t> own;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto dice = rng.NextBounded(10);
        if (dice < 2) {
          const auto v = static_cast<std::int64_t>(
              kDomain + 1 + t + kThreads * rng.NextBounded(500));
          path->Insert(v);
          own.push_back(v);
        } else if (dice < 4 && !own.empty()) {
          const std::size_t pick = rng.NextBounded(own.size());
          if (!path->Delete(own[pick])) failures.fetch_add(1);
          own[pick] = own.back();
          own.pop_back();
        } else {
          const Pred p = RandomPredicate(&rng, kDomain);
          if (path->Count(p) < ScanCount<std::int64_t>(base, p)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace aidx
