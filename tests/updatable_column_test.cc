// Updates under cracking: differential tests against an immediately-applied
// model across all three merge policies, plus ripple mechanics checks.
#include "update/updatable_column.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = UpdatableCrackerColumn<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

TEST(UpdatableColumnTest, InsertVisibleAfterMerge) {
  const auto base = RandomValues(1000, 100, 1);
  Column col(base);
  const std::size_t before = col.Count(Pred::Between(40, 60));
  col.Insert(50);
  col.Insert(50);
  EXPECT_EQ(col.num_pending_inserts(), 2u);
  EXPECT_EQ(col.Count(Pred::Between(40, 60)), before + 2);
  EXPECT_EQ(col.num_pending_inserts(), 0u);  // ripple merged them
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, DeleteRemovesMergedTuple) {
  const std::vector<std::int64_t> base = {10, 20, 30, 40, 50};
  Column col(base);
  EXPECT_EQ(col.Count(Pred::Between(10, 50)), 5u);
  EXPECT_TRUE(col.Delete(30, 2));  // row id 2 holds value 30
  EXPECT_EQ(col.Count(Pred::Between(10, 50)), 4u);
  EXPECT_EQ(col.Count(Pred::Between(30, 30)), 0u);
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, InsertThenDeleteCancelsWhilePending) {
  const auto base = RandomValues(100, 50, 2);
  Column col(base);
  const row_id_t rid = col.Insert(25);
  EXPECT_TRUE(col.Delete(25, rid));
  EXPECT_EQ(col.num_pending_inserts(), 0u);
  EXPECT_EQ(col.num_pending_deletes(), 0u);
  EXPECT_EQ(col.update_stats().deletes_cancelled, 1u);
  EXPECT_EQ(col.Count(Pred::Between(25, 25)),
            ScanCount<std::int64_t>(base, Pred::Between(25, 25)));
}

TEST(UpdatableColumnTest, DoubleDeleteRejected) {
  const std::vector<std::int64_t> base = {10, 20, 30};
  Column col(base);
  EXPECT_TRUE(col.Delete(20, 1));
  EXPECT_FALSE(col.Delete(20, 1));
  EXPECT_EQ(col.Count(Pred::All()), 2u);
}

TEST(UpdatableColumnTest, RippleOnlyMergesQueriedRange) {
  const auto base = RandomValues(2000, 1000, 3);
  Column col(base, {.policy = MergePolicy::kRipple});
  col.Count(Pred::Between(0, 999));  // crack broadly first
  col.Insert(100);
  col.Insert(500);
  col.Insert(900);
  col.Count(Pred::Between(450, 550));  // touches only value 500
  EXPECT_EQ(col.num_pending_inserts(), 2u);
  EXPECT_EQ(col.update_stats().inserts_merged, 1u);
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, CompleteMergesEverythingAtOnce) {
  const auto base = RandomValues(2000, 1000, 4);
  Column col(base, {.policy = MergePolicy::kComplete});
  col.Insert(100);
  col.Insert(500);
  col.Insert(900);
  col.Count(Pred::Between(450, 550));
  EXPECT_EQ(col.num_pending_inserts(), 0u);
  EXPECT_EQ(col.update_stats().inserts_merged, 3u);
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, GradualDrainsWithBudget) {
  const auto base = RandomValues(2000, 1000, 5);
  Column col(base, {.policy = MergePolicy::kGradual, .gradual_budget = 2});
  for (int i = 0; i < 10; ++i) col.Insert(50);  // all far from queried range
  // Each query merges up to 2 extra pending tuples.
  col.Count(Pred::Between(900, 950));
  EXPECT_EQ(col.num_pending_inserts(), 8u);
  col.Count(Pred::Between(900, 950));
  EXPECT_EQ(col.num_pending_inserts(), 6u);
  for (int i = 0; i < 3; ++i) col.Count(Pred::Between(900, 950));
  EXPECT_EQ(col.num_pending_inserts(), 0u);
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, RippleMovesFarFewerElementsThanColumnSize) {
  const auto base = RandomValues(50000, 100000, 6);
  Column col(base);
  // Crack into ~50 pieces first.
  Rng rng(7);
  for (int q = 0; q < 25; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(100000));
    col.Count(Pred::Between(a, a + 2000));
  }
  const std::size_t moves_before = col.update_stats().ripple_element_moves;
  col.Insert(50000);
  col.Count(Pred::Between(49000, 51000));
  const std::size_t moves = col.update_stats().ripple_element_moves - moves_before;
  // One move per downstream piece boundary, bounded by the piece count.
  EXPECT_LE(moves, col.index().num_pieces());
  EXPECT_TRUE(col.Validate());
}

struct PolicyParam {
  MergePolicy policy;
  std::size_t budget;
  const char* name;
};

class UpdatePolicyTest : public ::testing::TestWithParam<PolicyParam> {};

// The central property: under any interleaving of queries, inserts, and
// deletes, every query answers exactly like a model that applies updates
// immediately.
TEST_P(UpdatePolicyTest, DifferentialAgainstImmediateModel) {
  const auto& param = GetParam();
  const std::int64_t kDomain = 500;
  const auto base = RandomValues(3000, kDomain, 10 + param.budget);
  Column col(base, {.policy = param.policy, .gradual_budget = param.budget});

  // Model: rid -> value for live tuples.
  std::map<row_id_t, std::int64_t> model;
  for (std::size_t i = 0; i < base.size(); ++i) {
    model[static_cast<row_id_t>(i)] = base[i];
  }
  Rng rng(11);
  for (int step = 0; step < 1500; ++step) {
    const auto dice = rng.NextBounded(10);
    if (dice < 3) {  // insert
      const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
      const row_id_t rid = col.Insert(v);
      model[rid] = v;
    } else if (dice < 5 && !model.empty()) {  // delete a random live tuple
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
      ASSERT_TRUE(col.Delete(it->second, it->first));
      model.erase(it);
    } else {  // range query
      const std::int64_t a = rng.NextInRange(-5, kDomain + 5);
      const std::int64_t w = rng.NextInRange(0, 60);
      const auto p = Pred::Between(a, a + w);
      std::size_t expect = 0;
      for (const auto& [rid, v] : model) expect += p.Matches(v) ? 1 : 0;
      ASSERT_EQ(col.Count(p), expect) << param.name << " step " << step;
    }
  }
  EXPECT_TRUE(col.Validate());
  // Drain and do a final full check.
  ASSERT_EQ(col.Count(Pred::All()), model.size());
  EXPECT_TRUE(col.Validate());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, UpdatePolicyTest,
    ::testing::Values(PolicyParam{MergePolicy::kRipple, 0, "MRI"},
                      PolicyParam{MergePolicy::kComplete, 0, "MCI"},
                      PolicyParam{MergePolicy::kGradual, 4, "MGI4"},
                      PolicyParam{MergePolicy::kGradual, 64, "MGI64"}),
    [](const auto& info) { return info.param.name; });

TEST(UpdatableColumnTest, SumReflectsUpdates) {
  const std::vector<std::int64_t> base = {1, 2, 3, 4, 5};
  Column col(base);
  col.Insert(10);
  col.Delete(2, 1);
  EXPECT_DOUBLE_EQ(static_cast<double>(col.Sum(Pred::All())), 1 + 3 + 4 + 5 + 10.0);
}

TEST(UpdatableColumnTest, RowIdValueTandemSurvivesUpdates) {
  const auto base = RandomValues(1000, 200, 13);
  Column col(base);
  Rng rng(14);
  std::map<row_id_t, std::int64_t> model;
  for (std::size_t i = 0; i < base.size(); ++i) {
    model[static_cast<row_id_t>(i)] = base[i];
  }
  for (int step = 0; step < 200; ++step) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(200));
    model[col.Insert(v)] = v;
    const auto a = static_cast<std::int64_t>(rng.NextBounded(200));
    col.Count(Pred::Between(a, a + 20));
  }
  col.Count(Pred::All());
  // Every stored (value, rid) pair must match the model.
  const auto values = col.values();
  const auto rids = col.row_ids();
  ASSERT_EQ(values.size(), model.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto it = model.find(rids[i]);
    ASSERT_NE(it, model.end());
    ASSERT_EQ(values[i], it->second);
  }
}

TEST(UpdatableColumnTest, UpdatesOnEmptyBase) {
  Column col(std::span<const std::int64_t>{});
  col.Insert(5);
  col.Insert(3);
  EXPECT_EQ(col.Count(Pred::All()), 2u);
  EXPECT_EQ(col.Count(Pred::Between(4, 9)), 1u);
  EXPECT_TRUE(col.Validate());
}

TEST(UpdatableColumnTest, InsertIntoEveryPieceOfAHeavilyCrackedColumn) {
  const auto base = RandomValues(5000, 1000, 15);
  Column col(base);
  for (std::int64_t a = 0; a < 1000; a += 50) {
    col.Count(Pred::Between(a, a + 25));  // ~40 pieces
  }
  const std::size_t pieces = col.index().num_pieces();
  EXPECT_GT(pieces, 20u);
  std::size_t expect_total = base.size();
  for (std::int64_t v = 0; v < 1000; v += 10) {
    col.Insert(v);
    ++expect_total;
  }
  EXPECT_EQ(col.Count(Pred::All()), expect_total);
  EXPECT_TRUE(col.Validate());
}

}  // namespace
}  // namespace aidx
