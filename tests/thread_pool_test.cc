// ThreadPool: ParallelFor correctness (all indices exactly once, caller
// participation, zero-worker degradation, nesting) and Submit execution.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace aidx {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForComputesSum) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::size_t sum = 0;  // no synchronization needed: must run on this thread
  pool.ParallelFor(50, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 50u * 49u / 2u);
}

TEST(ThreadPoolTest, EmptyAndSingleIterationLoops) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t) { ++calls; });  // runs inline
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  // Outer iterations issue inner loops on the same pool; caller
  // participation guarantees progress even with every worker busy.
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 32);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool ran = false;
  pool.Submit([&] {
    const std::lock_guard<std::mutex> guard(mu);
    ran = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ManyConcurrentParallelForCallers) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(16, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), kCallers * 20u * 16u);
}

}  // namespace
}  // namespace aidx
