// Background-merge mode machine (docs/UPDATES.md) and the overlay read
// path's routing guarantees:
//
//  - transition legality: shards start Normal, a granted request moves the
//    shard off Normal, a second request while off Normal is rejected, and
//    the machine always returns to Normal once the merge drains;
//  - requests degrade to "did not run" (false, no state change) without a
//    pool, without pool workers, or under kPartitionMutex;
//  - readers are never blocked while a shard is Merging: queries running
//    concurrently with a chunked background merge stay exact throughout;
//  - background merge is observationally identical to the foreground
//    coarse flush — same answers, same empty pending stores;
//  - destroying the column while merges are in flight (then the pool) is
//    clean — the regression that motivated ThreadPool::TrySubmit and the
//    ticket accounting;
//  - the NeedsMergeFor fix: queries that overlap no pending key take the
//    shared fast path under EVERY merge policy — the read-path counters
//    pin a 100% fast-path hit rate for disjoint traffic.
//
// Runs under ThreadSanitizer via the `concurrency` ctest label
// (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = PartitionedCrackerColumn<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

PartitionedCrackerOptions MachineOptions(std::size_t threshold,
                                         std::size_t chunk = 128) {
  PartitionedCrackerOptions options;
  options.num_partitions = 2;
  options.latch_mode = LatchMode::kStripedPiece;
  options.write_mode = WriteMode::kStripedWrite;
  options.background_merge_threshold = threshold;
  options.background_merge_chunk = chunk;
  return options;
}

TEST(MergeModeMachineTest, ShardsStartNormalAndNamesRoundTrip) {
  const auto base = RandomValues(1000, 300, 11);
  ThreadPool pool(1);
  Column col(base, MachineOptions(8), &pool);
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    EXPECT_EQ(col.shard_mode(p), ShardMergeMode::kNormal);
  }
  EXPECT_STREQ(ShardMergeModeName(ShardMergeMode::kNormal), "normal");
  EXPECT_STREQ(ShardMergeModeName(ShardMergeMode::kPrepareToMerge),
               "prepare-to-merge");
  EXPECT_STREQ(ShardMergeModeName(ShardMergeMode::kMerging), "merging");
  EXPECT_STREQ(ShardMergeModeName(ShardMergeMode::kMerged), "merged");
  EXPECT_STREQ(WriteModeName(WriteMode::kStripedWrite), "striped-write");
  EXPECT_STREQ(WriteModeName(WriteMode::kCoarseWrite), "coarse-write");
}

TEST(MergeModeMachineTest, RequestsDegradeWithoutARunnableMachine) {
  const auto base = RandomValues(1000, 300, 13);
  {
    Column no_pool(base, MachineOptions(8));  // no pool at all
    EXPECT_FALSE(no_pool.RequestBackgroundMerge(0));
    EXPECT_EQ(no_pool.shard_mode(0), ShardMergeMode::kNormal);
  }
  {
    ThreadPool empty_pool(0);  // a pool with no workers can never run tasks
    Column col(base, MachineOptions(8), &empty_pool);
    EXPECT_FALSE(col.RequestBackgroundMerge(0));
    EXPECT_EQ(col.shard_mode(0), ShardMergeMode::kNormal);
  }
  {
    ThreadPool pool(1);
    PartitionedCrackerOptions options = MachineOptions(8);
    options.latch_mode = LatchMode::kPartitionMutex;
    Column col(base, options, &pool);
    EXPECT_FALSE(col.RequestBackgroundMerge(0));
  }
}

TEST(MergeModeMachineTest, SecondRequestWhileOffNormalIsRejected) {
  const auto base = RandomValues(1000, 300, 17);
  ThreadPool pool(1);
  Column col(base, MachineOptions(/*threshold=*/0), &pool);
  // Park the pool's only worker so the granted merge cannot start: the
  // shard deterministically sits in PrepareToMerge while we probe.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  ASSERT_TRUE(col.RequestBackgroundMerge(0));
  EXPECT_EQ(col.shard_mode(0), ShardMergeMode::kPrepareToMerge);
  EXPECT_FALSE(col.RequestBackgroundMerge(0)) << "double request must lose";
  // The other shard's machine is independent.
  ASSERT_TRUE(col.RequestBackgroundMerge(1));
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  col.WaitForBackgroundMerges();
  EXPECT_EQ(col.shard_mode(0), ShardMergeMode::kNormal);
  EXPECT_EQ(col.shard_mode(1), ShardMergeMode::kNormal);
}

TEST(MergeModeMachineTest, ThresholdCrossingTriggersAndDrains) {
  const auto base = RandomValues(4000, 1000, 19);
  ThreadPool pool(2);
  Column col(base, MachineOptions(/*threshold=*/8), &pool);
  for (std::int64_t v = 0; v < 64; ++v) col.Insert(v % 1000);
  col.WaitForBackgroundMerges();
  // Everything buffered crossed a threshold eventually; after quiescence
  // the machine is back at Normal with nothing pending anywhere.
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    EXPECT_EQ(col.shard_mode(p), ShardMergeMode::kNormal);
  }
  EXPECT_EQ(col.pending_update_count(), 0u);
  EXPECT_EQ(col.Count(Pred::All()), base.size() + 64);
  const UpdateStats stats = col.AggregatedUpdateStats();
  EXPECT_EQ(stats.inserts_queued, 64u);
  EXPECT_EQ(stats.inserts_merged + stats.deletes_cancelled, 64u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(MergeModeMachineTest, BackgroundMergeMatchesForegroundFlush) {
  const auto base = RandomValues(6000, 1500, 23);
  ThreadPool pool(2);
  Column background(base, MachineOptions(/*threshold=*/0, /*chunk=*/32),
                    &pool);
  Column foreground(base, MachineOptions(/*threshold=*/0));
  Rng rng(24);
  std::vector<std::int64_t> model = base;
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(1500));
    background.Insert(v);
    foreground.Insert(v);
    model.push_back(v);
  }
  for (int i = 0; i < 60; ++i) {
    const std::size_t pick = rng.NextBounded(model.size());
    const std::int64_t v = model[pick];
    ASSERT_TRUE(background.Delete(v));
    ASSERT_TRUE(foreground.Delete(v));
    model[pick] = model.back();
    model.pop_back();
  }
  for (std::size_t p = 0; p < background.num_partitions(); ++p) {
    ASSERT_TRUE(background.RequestBackgroundMerge(p));
  }
  background.WaitForBackgroundMerges();
  foreground.FlushPending();
  EXPECT_EQ(background.pending_update_count(), 0u);
  EXPECT_EQ(foreground.pending_update_count(), 0u);
  for (int q = 0; q < 100; ++q) {
    const auto a = rng.NextInRange(-5, 1505);
    const Pred p = Pred::Between(a, a + rng.NextInRange(0, 400));
    const std::size_t expect = ScanCount<std::int64_t>(model, p);
    ASSERT_EQ(background.Count(p), expect) << p.ToString();
    ASSERT_EQ(foreground.Count(p), expect) << p.ToString();
  }
  EXPECT_TRUE(background.ValidatePieces());
  EXPECT_TRUE(foreground.ValidatePieces());
}

TEST(MergeModeMachineTest, ReadersStayLiveAndExactDuringMerge) {
  const auto base = RandomValues(20000, 2000, 29);
  ThreadPool pool(1);
  Column col(base, MachineOptions(/*threshold=*/0, /*chunk=*/64), &pool);
  std::vector<std::int64_t> inserted;
  for (std::int64_t v = 0; v < 1500; ++v) {
    const auto value = 3000 + v;  // disjoint from the base domain
    col.Insert(value);
    inserted.push_back(value);
  }
  // Park the pool's only worker: both shards sit in PrepareToMerge until
  // we release it, so "reads while the machine is off Normal" is a
  // deterministic window, not a race against a fast merge.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  for (std::size_t p = 0; p < col.num_partitions(); ++p) {
    ASSERT_TRUE(col.RequestBackgroundMerge(p));
  }
  std::atomic<int> failures{0};
  std::atomic<int> reads_during_merge{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // The whole-column total is invariant across the merge: buffered
      // tuples count via the overlay before folding and via the array
      // after. Any wrong intermediate state shows up here.
      const std::size_t expect = base.size() + inserted.size();
      for (;;) {
        bool merging = false;
        for (std::size_t p = 0; p < col.num_partitions(); ++p) {
          merging |= col.shard_mode(p) != ShardMergeMode::kNormal;
        }
        if (col.Count(Pred::All()) != expect) failures.fetch_add(1);
        if (!merging) break;
        reads_during_merge.fetch_add(1);
        // Brief backoff: leave latch gaps so the merger's exclusive holds
        // are not starved behind a wall of back-to-back shared readers.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  // Only open the merge itself once every reader had time to observe the
  // off-Normal window.
  while (reads_during_merge.load() < 8) std::this_thread::yield();
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& reader : readers) reader.join();
  col.WaitForBackgroundMerges();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(reads_during_merge.load(), 8)
      << "readers must have overlapped the merge window";
  EXPECT_EQ(col.pending_update_count(), 0u);
  EXPECT_TRUE(col.ValidatePieces());
}

TEST(MergeModeMachineTest, ColumnDestructionWaitsOutInFlightMerges) {
  const auto base = RandomValues(30000, 3000, 31);
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    Column col(base, MachineOptions(/*threshold=*/4, /*chunk=*/1), &pool);
    for (std::int64_t v = 0; v < 300; ++v) col.Insert(v % 3000);
    // Scope exit destroys the column while merges are very likely still
    // chunking; the destructor must wait for every ticket, never letting a
    // pool task touch a dead column.
  }
  // And the symmetric shutdown: the pool dies right after a burst of
  // requests; dropped closures must still release their tickets.
  {
    auto local_pool = std::make_unique<ThreadPool>(1);
    Column col(base, MachineOptions(/*threshold=*/4, /*chunk=*/1),
               local_pool.get());
    for (std::int64_t v = 0; v < 200; ++v) col.Insert(v % 3000);
    col.WaitForBackgroundMerges();  // column must quiesce before the pool dies
  }
  SUCCEED();
}

TEST(MergeModeMachineTest, MoveTransfersAQuiescentMachine) {
  const auto base = RandomValues(5000, 1000, 37);
  ThreadPool pool(2);
  Column col(base, MachineOptions(/*threshold=*/4, /*chunk=*/8), &pool);
  for (std::int64_t v = 0; v < 100; ++v) col.Insert(v % 1000);
  Column moved = std::move(col);  // waits out in-flight merges first
  EXPECT_EQ(moved.Count(Pred::All()), base.size() + 100);
  for (std::size_t p = 0; p < moved.num_partitions(); ++p) {
    EXPECT_EQ(moved.shard_mode(p), ShardMergeMode::kNormal);
  }
  EXPECT_TRUE(moved.ValidatePieces());
}

// The NeedsMergeFor fix (satellite: overlap-only merge decisions for every
// policy): traffic disjoint from all pending keys must never leave the
// shared fast path, so the coarse-read counter stays zero.
TEST(MergeModeMachineTest, DisjointQueriesKeepFullFastPathHitRate) {
  for (const MergePolicy policy :
       {MergePolicy::kRipple, MergePolicy::kComplete, MergePolicy::kGradual}) {
  for (const WriteMode write_mode :
       {WriteMode::kStripedWrite, WriteMode::kCoarseWrite}) {
    // kCoarseWrite places the pending tuples in the internal per-shard
    // stores, the exact spot where NeedsMergeFor used to short-circuit to
    // "merge everything" under kComplete/kGradual; kStripedWrite places
    // them in the write buckets. Neither location may tax disjoint reads.
    const auto base = RandomValues(8000, 1000, 41);
    PartitionedCrackerOptions options = MachineOptions(/*threshold=*/0);
    options.merge_policy = policy;
    options.write_mode = write_mode;
    Column col(base, options);
    // Warm up the cracked structure, then buffer writes far above the
    // query domain: every pending key is >= 5000, every query is < 1000.
    (void)col.Count(Pred::Between(100, 900));
    for (std::int64_t v = 0; v < 50; ++v) col.Insert(5000 + v);
    ASSERT_GT(col.pending_update_count(), 0u);
    const StripedReadPathStats before = col.AggregatedReadPathStats();
    Rng rng(42);
    for (int q = 0; q < 200; ++q) {
      const auto a = rng.NextInRange(0, 900);
      const Pred p = Pred::Between(a, a + rng.NextInRange(0, 80));
      ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(base, p))
          << MergePolicyName(policy) << " " << p.ToString();
    }
    const StripedReadPathStats after = col.AggregatedReadPathStats();
    EXPECT_EQ(after.coarse_reads, before.coarse_reads)
        << MergePolicyName(policy)
        << ": disjoint queries must not take the exclusive fallback";
    EXPECT_GT(after.fast_reads, before.fast_reads) << MergePolicyName(policy);
    // The buffered writes are still there — nothing forced them to merge.
    EXPECT_GT(col.pending_update_count(), 0u) << MergePolicyName(policy);
  }
  }
}

// Overlapping queries with a runnable machine answer from the overlay (and
// kick a background merge) instead of blocking on the exclusive fallback.
TEST(MergeModeMachineTest, OverlappingQueriesUseOverlayWhenPoolAvailable) {
  const auto base = RandomValues(8000, 1000, 43);
  ThreadPool pool(2);
  Column col(base, MachineOptions(/*threshold=*/1 << 30, /*chunk=*/64),
             &pool);
  std::vector<std::int64_t> model = base;
  for (std::int64_t v = 0; v < 40; ++v) {
    col.Insert(v * 25 % 1000);
    model.push_back(v * 25 % 1000);
  }
  const StripedReadPathStats before = col.AggregatedReadPathStats();
  Rng rng(44);
  for (int q = 0; q < 50; ++q) {
    const auto a = rng.NextInRange(0, 900);
    const Pred p = Pred::Between(a, a + 100);
    ASSERT_EQ(col.Count(p), ScanCount<std::int64_t>(model, p)) << p.ToString();
  }
  col.WaitForBackgroundMerges();
  const StripedReadPathStats after = col.AggregatedReadPathStats();
  EXPECT_GT(after.overlay_reads, before.overlay_reads);
  EXPECT_EQ(after.coarse_reads, before.coarse_reads);
  EXPECT_TRUE(col.ValidatePieces());
}

// Regression: a merge closure that is queued but never started when the
// pool shuts down must be DESTROYED, and destroying it must release the
// merge ticket — the ticket's deleter repairs PrepareToMerge back to
// Normal. Before the repair, the shard wedged off Normal forever and
// every later merge request was rejected.
TEST(MergeModeMachineTest, DroppedClosureAtShutdownRepairsModeMachine) {
  const auto base = RandomValues(2000, 500, 47);
  ThreadPool pool(1);
  Column col(base, MachineOptions(/*threshold=*/0), &pool);
  // Park the only worker so the granted merge closure stays queued.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  ASSERT_TRUE(col.RequestBackgroundMerge(0));
  ASSERT_EQ(col.shard_mode(0), ShardMergeMode::kPrepareToMerge);

  // Shutdown blocks joining the parked worker; once intake has stopped
  // (TrySubmit refuses), release the worker so the join — and the
  // destruction of the still-queued merge closure — can complete.
  std::thread stopper([&] { pool.Shutdown(); });
  while (pool.TrySubmit([] {})) {
    std::this_thread::yield();
  }
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  stopper.join();

  // The dropped closure's ticket repaired the machine: back to Normal,
  // no in-flight merge accounted, and the shard degrades (foreground
  // merges) instead of wedging.
  EXPECT_EQ(col.shard_mode(0), ShardMergeMode::kNormal);
  col.WaitForBackgroundMerges();  // must not hang on a leaked ticket
  Rng rng(48);
  std::vector<std::int64_t> model = base;
  for (int i = 0; i < 40; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(500));
    col.Insert(v);
    model.push_back(v);
  }
  col.FlushPending();
  EXPECT_EQ(col.pending_update_count(), 0u);
  EXPECT_EQ(col.Count(Pred::All()), model.size());
  EXPECT_TRUE(col.ValidatePieces());
}

}  // namespace
}  // namespace aidx
