// SegmentOrganizer and HybridIndex: oracle-differential sweeps across the
// full {C,S,R} x {C,S,R} policy grid (TEST_P), plus mechanics tests.
#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/organizer.h"
#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Organizer = SegmentOrganizer<std::int64_t>;
using Hybrid = HybridIndex<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

std::vector<row_id_t> Iota(std::size_t n) {
  std::vector<row_id_t> r(n);
  std::iota(r.begin(), r.end(), row_id_t{0});
  return r;
}

class OrganizerModeTest : public ::testing::TestWithParam<OrganizeMode> {};

TEST_P(OrganizerModeTest, ResolveMatchesScanOracle) {
  const auto base = RandomValues(3000, 800, 21);
  Organizer org(std::vector<std::int64_t>(base), Iota(base.size()),
                {.mode = GetParam(), .radix_bits = 4});
  Rng rng(22);
  for (int q = 0; q < 200; ++q) {
    const std::int64_t a = rng.NextInRange(-3, 803);
    const std::int64_t w = rng.NextInRange(0, 120);
    const auto p = Pred::HalfOpen(a, a + w);
    const PositionRange r = org.Resolve(p);
    ASSERT_EQ(r.size(), ScanCount<std::int64_t>(base, p)) << p.ToString();
    // Every position in the resolved range must satisfy the predicate, and
    // (value, row id) pairs must stay consistent with the base column.
    const auto vals = org.values();
    const auto rids = org.row_ids();
    for (std::size_t i = r.begin; i < r.end; ++i) {
      ASSERT_TRUE(p.Matches(vals[i]));
      ASSERT_EQ(vals[i], base[rids[i]]);
    }
  }
  EXPECT_TRUE(org.Validate());
}

TEST_P(OrganizerModeTest, EnsureOrganizedIdempotent) {
  const auto base = RandomValues(500, 100, 23);
  Organizer org(std::vector<std::int64_t>(base), Iota(base.size()),
                {.mode = GetParam(), .radix_bits = 3});
  const std::size_t work_first = org.EnsureOrganized();
  EXPECT_EQ(org.EnsureOrganized(), 0u);
  if (GetParam() == OrganizeMode::kCrack) {
    EXPECT_EQ(work_first, 0u);  // fully lazy
  } else {
    EXPECT_EQ(work_first, base.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, OrganizerModeTest,
                         ::testing::Values(OrganizeMode::kCrack, OrganizeMode::kSort,
                                           OrganizeMode::kRadix),
                         [](const auto& info) {
                           return std::string(1, OrganizeModeLetter(info.param));
                         });

TEST(OrganizerTest, RadixSeedsClusterCuts) {
  const auto base = RandomValues(4000, 100000, 25);
  Organizer org(std::vector<std::int64_t>(base), {},
                {.mode = OrganizeMode::kRadix, .radix_bits = 5, .with_row_ids = false});
  org.EnsureOrganized();
  // 2^5 clusters => up to 31 seeded cuts; dense uniform data hits all.
  EXPECT_GT(org.crack_stats().values_touched, 0u);
  EXPECT_TRUE(org.Validate());
  const auto p = Pred::Between(40000, 60000);
  EXPECT_EQ(org.Resolve(p).size(), ScanCount<std::int64_t>(base, p));
}

TEST(OrganizerTest, AllDuplicatesRadixDegradesGracefully) {
  std::vector<std::int64_t> base(100, 5);
  Organizer org(std::vector<std::int64_t>(base), {},
                {.mode = OrganizeMode::kRadix, .radix_bits = 4, .with_row_ids = false});
  EXPECT_EQ(org.Resolve(Pred::Between(5, 5)).size(), 100u);
  EXPECT_EQ(org.Resolve(Pred::Between(6, 6)).size(), 0u);
}

struct HybridParam {
  OrganizeMode initial;
  OrganizeMode final_mode;
};

class HybridGridTest : public ::testing::TestWithParam<HybridParam> {};

TEST_P(HybridGridTest, OracleDifferentialSweep) {
  const auto [initial, final_mode] = GetParam();
  const auto base = RandomValues(6000, 3000, 31);
  Hybrid idx(base, {.partition_size = 700,
                    .initial_mode = initial,
                    .final_mode = final_mode,
                    .radix_bits = 4});
  Rng rng(32);
  for (int q = 0; q < 250; ++q) {
    const std::int64_t a = rng.NextInRange(-10, 3010);
    const std::int64_t w = rng.NextInRange(0, 300);
    Pred p;
    switch (rng.NextBounded(5)) {
      case 0: p = Pred::Between(a, a + w); break;
      case 1: p = Pred::HalfOpen(a, a + w); break;
      case 2: p = Pred{a, BoundKind::kExclusive, a + w, BoundKind::kExclusive}; break;
      case 3: p = Pred::AtLeast(a); break;
      default: p = Pred::AtMost(a); break;
    }
    ASSERT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p))
        << idx.name() << " q" << q << " " << p.ToString();
    if (q % 50 == 0) {
      ASSERT_TRUE(idx.Validate()) << idx.name() << " q" << q;
    }
  }
  EXPECT_TRUE(idx.Validate());
}

TEST_P(HybridGridTest, SumMatchesOracle) {
  const auto [initial, final_mode] = GetParam();
  const auto base = RandomValues(2000, 500, 33);
  Hybrid idx(base, {.partition_size = 300,
                    .initial_mode = initial,
                    .final_mode = final_mode});
  Rng rng(34);
  for (int q = 0; q < 60; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(500));
    const auto p = Pred::Between(a, a + 40);
    ASSERT_DOUBLE_EQ(static_cast<double>(idx.Sum(p)),
                     static_cast<double>(ScanSum<std::int64_t>(base, p)))
        << idx.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HybridGridTest,
    ::testing::Values(HybridParam{OrganizeMode::kCrack, OrganizeMode::kCrack},
                      HybridParam{OrganizeMode::kCrack, OrganizeMode::kSort},
                      HybridParam{OrganizeMode::kCrack, OrganizeMode::kRadix},
                      HybridParam{OrganizeMode::kSort, OrganizeMode::kSort},
                      HybridParam{OrganizeMode::kSort, OrganizeMode::kRadix},
                      HybridParam{OrganizeMode::kSort, OrganizeMode::kCrack},
                      HybridParam{OrganizeMode::kRadix, OrganizeMode::kRadix},
                      HybridParam{OrganizeMode::kRadix, OrganizeMode::kCrack},
                      HybridParam{OrganizeMode::kRadix, OrganizeMode::kSort}),
    [](const auto& info) {
      return HybridIndex<std::int64_t>::NameOf(info.param.initial,
                                               info.param.final_mode);
    });

TEST(HybridTest, NamesFollowPaperConvention) {
  EXPECT_EQ(Hybrid::NameOf(OrganizeMode::kCrack, OrganizeMode::kCrack), "HCC");
  EXPECT_EQ(Hybrid::NameOf(OrganizeMode::kCrack, OrganizeMode::kSort), "HCS");
  EXPECT_EQ(Hybrid::NameOf(OrganizeMode::kCrack, OrganizeMode::kRadix), "HCR");
  EXPECT_EQ(Hybrid::NameOf(OrganizeMode::kSort, OrganizeMode::kSort), "HSS");
}

TEST(HybridTest, DataMigratesOutOfPartitions) {
  const auto base = RandomValues(4000, 1000, 35);
  Hybrid idx(base, {.partition_size = 500});
  idx.Count(Pred::HalfOpen(100, 200));
  EXPECT_GT(idx.stats().values_merged, 0u);
  EXPECT_GE(idx.num_final_segments(), 1u);
  const std::size_t merged_after_first = idx.stats().values_merged;
  // Repeat query: no further migration.
  idx.Count(Pred::HalfOpen(100, 200));
  EXPECT_EQ(idx.stats().values_merged, merged_after_first);
  // Full-domain query drains every partition.
  EXPECT_EQ(idx.Count(Pred::All()), base.size());
  EXPECT_TRUE(idx.fully_merged());
  EXPECT_EQ(idx.stats().partitions_exhausted, idx.num_partitions());
  EXPECT_TRUE(idx.Validate());
  // Still answers correctly after full migration.
  const auto p = Pred::Between(300, 400);
  EXPECT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p));
}

TEST(HybridTest, MaterializeReturnsConsistentPairs) {
  const auto base = RandomValues(3000, 600, 37);
  Hybrid idx(base, {.partition_size = 400, .final_mode = OrganizeMode::kSort});
  const auto p = Pred::Between(100, 300);
  std::vector<std::int64_t> values;
  std::vector<row_id_t> rids;
  idx.Materialize(p, &values, &rids);
  ASSERT_EQ(values.size(), rids.size());
  EXPECT_EQ(values.size(), ScanCount<std::int64_t>(base, p));
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], base[rids[i]]);
    ASSERT_TRUE(p.Matches(values[i]));
  }
}

TEST(HybridTest, EmptyAndDegenerateInputs) {
  Hybrid empty(std::span<const std::int64_t>{}, {});
  EXPECT_EQ(empty.Count(Pred::Between(1, 5)), 0u);
  const auto base = RandomValues(100, 20, 39);
  Hybrid idx(base, {.partition_size = 1000});  // single partition
  EXPECT_EQ(idx.Count(Pred::Between(5, 5)),
            ScanCount<std::int64_t>(base, Pred::Between(5, 5)));
  EXPECT_EQ(idx.Count(Pred::Between(19, 2)), 0u);  // inverted
  EXPECT_TRUE(idx.Validate());
}

TEST(HybridTest, HeavyDuplicatesAcrossPartitions) {
  std::vector<std::int64_t> base(2000);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<std::int64_t>(i % 3);
  Hybrid idx(base, {.partition_size = 128, .final_mode = OrganizeMode::kSort});
  EXPECT_EQ(idx.Count(Pred::Between(1, 1)), ScanCount<std::int64_t>(
      base, Pred::Between(1, 1)));
  EXPECT_EQ(idx.Count(Pred::Between(0, 2)), 2000u);
  EXPECT_TRUE(idx.fully_merged());
  EXPECT_TRUE(idx.Validate());
}

TEST(HybridTest, ConvergenceReducesMergeWork) {
  const auto base = RandomValues(50000, 100000, 41);
  Hybrid idx(base, {.partition_size = 5000});
  Rng rng(42);
  for (int q = 0; q < 300; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(100000));
    idx.Count(Pred::Between(a, a + 500));
  }
  std::size_t no_merge = 0;
  for (int q = 0; q < 50; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(90000));
    const std::size_t before = idx.stats().merge_queries;
    idx.Count(Pred::Between(a, a + 50));
    if (idx.stats().merge_queries == before) ++no_merge;
  }
  EXPECT_GT(no_merge, 25u);
}

}  // namespace
}  // namespace aidx
