// CutIntervalSet: union/subtraction semantics in cut space, including the
// inclusive/exclusive boundary cases that motivate cut-space bookkeeping.
#include "core/cut_interval_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace aidx {
namespace {

using I64Cut = Cut<std::int64_t>;
using Range = CutRange<std::int64_t>;
using Set = CutIntervalSet<std::int64_t>;

Range R(std::int64_t lo, std::int64_t hi) {
  // Convention for these tests: [lo, hi) in value space.
  return {{lo, CutKind::kLess}, {hi, CutKind::kLess}};
}

TEST(CutRangeTest, ContainsRespectsCutKinds) {
  const Range r{{3, CutKind::kLess}, {7, CutKind::kLessEq}};  // [3, 7]
  EXPECT_FALSE(r.Contains(2));
  EXPECT_TRUE(r.Contains(3));
  EXPECT_TRUE(r.Contains(7));
  EXPECT_FALSE(r.Contains(8));
  const Range open{{3, CutKind::kLessEq}, {7, CutKind::kLess}};  // (3, 7)
  EXPECT_FALSE(open.Contains(3));
  EXPECT_TRUE(open.Contains(4));
  EXPECT_FALSE(open.Contains(7));
}

TEST(CutRangeTest, EmptyDetection) {
  EXPECT_TRUE(R(5, 5).Empty());
  EXPECT_TRUE(R(6, 5).Empty());
  EXPECT_FALSE(R(5, 6).Empty());
  // (5, kLess) .. (5, kLessEq) admits exactly v == 5: non-empty.
  const Range just_five{{5, CutKind::kLess}, {5, CutKind::kLessEq}};
  EXPECT_FALSE(just_five.Empty());
  EXPECT_TRUE(just_five.Contains(5));
  EXPECT_FALSE(just_five.Contains(4));
}

TEST(CutRangeTest, PredicateRoundTrip) {
  using P = RangePredicate<std::int64_t>;
  for (const P& pred : {P::Between(3, 9), P::HalfOpen(3, 9),
                        P{3, BoundKind::kExclusive, 9, BoundKind::kExclusive}}) {
    const Range range = CutRangeForPredicate(pred);
    const P back = PredicateForCutRange(range);
    for (std::int64_t v = 0; v < 12; ++v) {
      EXPECT_EQ(pred.Matches(v), range.Contains(v)) << v;
      EXPECT_EQ(pred.Matches(v), back.Matches(v)) << v;
    }
  }
}

TEST(CutRangeTest, UnboundedPredicateUsesSentinels) {
  using P = RangePredicate<std::int64_t>;
  const Range all = CutRangeForPredicate(P::All());
  EXPECT_TRUE(all.Contains(std::numeric_limits<std::int64_t>::lowest()));
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(std::numeric_limits<std::int64_t>::max()));
}

TEST(CutIntervalSetTest, EmptySetMissesEverything) {
  Set s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Covers(R(1, 5)));
  EXPECT_TRUE(s.Covers(R(5, 5)));  // empty range is trivially covered
  const auto missing = s.Missing(R(1, 5));
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], R(1, 5));
}

TEST(CutIntervalSetTest, AddThenCovered) {
  Set s;
  s.Add(R(10, 20));
  EXPECT_TRUE(s.Covers(R(10, 20)));
  EXPECT_TRUE(s.Covers(R(12, 18)));
  EXPECT_FALSE(s.Covers(R(5, 15)));
  EXPECT_FALSE(s.Covers(R(15, 25)));
  EXPECT_TRUE(s.Missing(R(12, 18)).empty());
}

TEST(CutIntervalSetTest, MissingSplitsAroundCoverage) {
  Set s;
  s.Add(R(10, 20));
  s.Add(R(30, 40));
  const auto missing = s.Missing(R(5, 45));
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[0], R(5, 10));
  EXPECT_EQ(missing[1], R(20, 30));
  EXPECT_EQ(missing[2], R(40, 45));
}

TEST(CutIntervalSetTest, OverlapCoalesces) {
  Set s;
  s.Add(R(10, 20));
  s.Add(R(15, 30));
  EXPECT_EQ(s.num_ranges(), 1u);
  EXPECT_TRUE(s.Covers(R(10, 30)));
  EXPECT_TRUE(s.Validate());
}

TEST(CutIntervalSetTest, AdjacencyCoalesces) {
  Set s;
  s.Add(R(10, 20));
  s.Add(R(20, 30));  // exactly adjacent in cut space
  EXPECT_EQ(s.num_ranges(), 1u);
  EXPECT_TRUE(s.Covers(R(10, 30)));
}

TEST(CutIntervalSetTest, BridgingAddMergesMultiple) {
  Set s;
  s.Add(R(10, 20));
  s.Add(R(30, 40));
  s.Add(R(50, 60));
  s.Add(R(15, 55));  // bridges all three
  EXPECT_EQ(s.num_ranges(), 1u);
  EXPECT_TRUE(s.Covers(R(10, 60)));
  EXPECT_FALSE(s.Covers(R(9, 60)));
  EXPECT_TRUE(s.Validate());
}

TEST(CutIntervalSetTest, ContainedAddIsNoop) {
  Set s;
  s.Add(R(10, 40));
  s.Add(R(20, 30));
  EXPECT_EQ(s.num_ranges(), 1u);
  const auto missing = s.Missing(R(0, 50));
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], R(0, 10));
  EXPECT_EQ(missing[1], R(40, 50));
}

TEST(CutIntervalSetTest, KindBoundariesStayExact) {
  Set s;
  // Merge [5, 10] (inclusive both ends).
  s.Add({{5, CutKind::kLess}, {10, CutKind::kLessEq}});
  // (10, 20) exclusive both ends is NOT covered at 10 itself... it starts
  // just above 10, so it abuts the merged range exactly.
  const Range open{{10, CutKind::kLessEq}, {20, CutKind::kLess}};
  EXPECT_FALSE(s.Covers(open));
  const auto missing = s.Missing(open);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], open);
  // [5, 10) does not cover value 10; asking for [9, 10] leaves (9?, ...]
  Set s2;
  s2.Add({{5, CutKind::kLess}, {10, CutKind::kLess}});  // [5, 10)
  const Range nine_to_ten{{9, CutKind::kLess}, {10, CutKind::kLessEq}};  // [9, 10]
  const auto gap = s2.Missing(nine_to_ten);
  ASSERT_EQ(gap.size(), 1u);
  // Exactly the value 10 is missing: [10, 10] == (10,kLess)..(10,kLessEq).
  EXPECT_EQ(gap[0], (Range{{10, CutKind::kLess}, {10, CutKind::kLessEq}}));
}

// Randomized differential test against a dense boolean model over a small
// integer domain ([v, v+1) unit ranges).
TEST(CutIntervalSetTest, DifferentialAgainstDenseModel) {
  constexpr std::int64_t kDomain = 200;
  Set s;
  std::vector<bool> model(kDomain, false);
  Rng rng(4242);
  for (int step = 0; step < 2000; ++step) {
    std::int64_t a = static_cast<std::int64_t>(rng.NextBounded(kDomain));
    std::int64_t b = a + static_cast<std::int64_t>(rng.NextBounded(20));
    if (b > kDomain) b = kDomain;
    if (rng.NextBounded(2) == 0) {
      s.Add(R(a, b));
      for (std::int64_t v = a; v < b; ++v) model[static_cast<std::size_t>(v)] = true;
    } else {
      // Covers must agree with the model.
      bool all = true;
      for (std::int64_t v = a; v < b; ++v) {
        all &= model[static_cast<std::size_t>(v)];
      }
      ASSERT_EQ(s.Covers(R(a, b)), all || a == b) << "range [" << a << "," << b << ")";
      // Missing must agree value-by-value.
      std::vector<bool> missing_model(static_cast<std::size_t>(kDomain), false);
      for (std::int64_t v = a; v < b; ++v) {
        missing_model[static_cast<std::size_t>(v)] = !model[static_cast<std::size_t>(v)];
      }
      std::vector<bool> missing_got(static_cast<std::size_t>(kDomain), false);
      for (const Range& m : s.Missing(R(a, b))) {
        for (std::int64_t v = 0; v < kDomain; ++v) {
          if (m.Contains(v)) missing_got[static_cast<std::size_t>(v)] = true;
        }
      }
      ASSERT_EQ(missing_got, missing_model) << "step " << step;
    }
    ASSERT_TRUE(s.Validate());
  }
}

}  // namespace
}  // namespace aidx
