// Adaptive merging: oracle-differential correctness, convergence behaviour,
// and conservation invariants across run sizes (parameterized).
#include "core/adaptive_merging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/scan.h"
#include "util/rng.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Index = AdaptiveMergingIndex<std::int64_t>;

std::vector<std::int64_t> RandomValues(std::size_t n, std::int64_t domain,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(domain));
  return v;
}

TEST(AdaptiveMergingTest, BuildCreatesSortedRuns) {
  const auto base = RandomValues(1000, 500, 1);
  Index idx(base, {.run_size = 100});
  EXPECT_EQ(idx.num_runs(), 10u);
  EXPECT_TRUE(idx.Validate());
  EXPECT_FALSE(idx.fully_merged());
}

TEST(AdaptiveMergingTest, FirstQueryCorrect) {
  const auto base = RandomValues(1000, 500, 2);
  Index idx(base, {.run_size = 128});
  const auto p = Pred::Between(100, 200);
  EXPECT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p));
  EXPECT_TRUE(idx.Validate());
  EXPECT_GT(idx.stats().values_merged, 0u);
}

TEST(AdaptiveMergingTest, RepeatQueryTouchesNoRuns) {
  const auto base = RandomValues(1000, 500, 3);
  Index idx(base, {.run_size = 128});
  const auto p = Pred::Between(100, 200);
  const std::size_t first = idx.Count(p);
  const std::size_t merged_after_first = idx.stats().values_merged;
  const std::size_t merge_queries_after_first = idx.stats().merge_queries;
  EXPECT_EQ(idx.Count(p), first);
  EXPECT_EQ(idx.Count(Pred::Between(120, 180)),
            ScanCount<std::int64_t>(base, Pred::Between(120, 180)));
  // Sub-ranges of a merged range require no further merging.
  EXPECT_EQ(idx.stats().values_merged, merged_after_first);
  EXPECT_EQ(idx.stats().merge_queries, merge_queries_after_first);
}

TEST(AdaptiveMergingTest, PartialOverlapMergesOnlyGap) {
  const auto base = RandomValues(2000, 1000, 4);
  Index idx(base, {.run_size = 256});
  ASSERT_EQ(idx.Count(Pred::HalfOpen(100, 200)),
            ScanCount<std::int64_t>(base, Pred::HalfOpen(100, 200)));
  const std::size_t merged_first = idx.stats().values_merged;
  // Overlapping query: only [200, 300) should move now.
  ASSERT_EQ(idx.Count(Pred::HalfOpen(150, 300)),
            ScanCount<std::int64_t>(base, Pred::HalfOpen(150, 300)));
  const std::size_t merged_second = idx.stats().values_merged - merged_first;
  EXPECT_EQ(merged_second,
            ScanCount<std::int64_t>(base, Pred::HalfOpen(200, 300)));
  EXPECT_TRUE(idx.Validate());
}

TEST(AdaptiveMergingTest, FullDomainQueryMergesEverything) {
  const auto base = RandomValues(1500, 300, 5);
  Index idx(base, {.run_size = 100});
  EXPECT_EQ(idx.Count(Pred::All()), base.size());
  EXPECT_TRUE(idx.fully_merged());
  EXPECT_EQ(idx.stats().runs_exhausted, idx.num_runs());
  EXPECT_TRUE(idx.Validate());
  // Still correct afterwards.
  const auto p = Pred::Between(50, 150);
  EXPECT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p));
}

TEST(AdaptiveMergingTest, SumAndMaterializeMatchOracle) {
  const auto base = RandomValues(3000, 700, 6);
  Index idx(base, {.run_size = 512});
  const auto p = Pred::Between(100, 400);
  EXPECT_DOUBLE_EQ(static_cast<double>(idx.Sum(p)),
                   static_cast<double>(ScanSum<std::int64_t>(base, p)));
  std::vector<std::int64_t> values;
  std::vector<row_id_t> rids;
  idx.Materialize(p, &values, &rids);
  ASSERT_EQ(values.size(), rids.size());
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  // Row ids must point back at matching base positions.
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], base[rids[i]]);
  }
  std::vector<std::int64_t> expect;
  ScanValues<std::int64_t>(base, p, &expect);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(values, expect);
}

TEST(AdaptiveMergingTest, DuplicatesAcrossRunBoundaries) {
  std::vector<std::int64_t> base(900, 42);
  for (std::size_t i = 0; i < 300; ++i) base[i * 3] = 7;
  Index idx(base, {.run_size = 64});
  EXPECT_EQ(idx.Count(Pred::Between(42, 42)), 600u);
  EXPECT_EQ(idx.Count(Pred::Between(7, 7)), 300u);
  EXPECT_EQ(idx.Count(Pred::All()), 900u);
  EXPECT_TRUE(idx.fully_merged());
  EXPECT_TRUE(idx.Validate());
}

TEST(AdaptiveMergingTest, EmptyColumnAndEmptyPredicate) {
  Index idx(std::span<const std::int64_t>{}, {.run_size = 16});
  EXPECT_EQ(idx.num_runs(), 0u);
  EXPECT_EQ(idx.Count(Pred::Between(1, 5)), 0u);
  const auto base = RandomValues(100, 50, 7);
  Index idx2(base, {.run_size = 16});
  EXPECT_EQ(idx2.Count(Pred::Between(9, 3)), 0u);
  EXPECT_EQ(idx2.stats().values_merged, 0u);
}

TEST(AdaptiveMergingTest, WithoutRowIds) {
  const auto base = RandomValues(1000, 200, 8);
  Index idx(base, {.run_size = 128, .with_row_ids = false});
  const auto p = Pred::Between(50, 120);
  EXPECT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p));
  EXPECT_TRUE(idx.Validate());
}

class AdaptiveMergingRunSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdaptiveMergingRunSizeTest, OracleDifferentialSweep) {
  const std::size_t run_size = GetParam();
  const auto base = RandomValues(5000, 2000, 100 + run_size);
  Index idx(base, {.run_size = run_size});
  Rng rng(9);
  for (int q = 0; q < 300; ++q) {
    const std::int64_t a = rng.NextInRange(-5, 2005);
    const std::int64_t w = rng.NextInRange(0, 200);
    Pred p;
    switch (rng.NextBounded(5)) {
      case 0: p = Pred::Between(a, a + w); break;
      case 1: p = Pred::HalfOpen(a, a + w); break;
      case 2: p = Pred{a, BoundKind::kExclusive, a + w, BoundKind::kExclusive}; break;
      case 3: p = Pred::AtLeast(a); break;
      default: p = Pred::AtMost(a); break;
    }
    ASSERT_EQ(idx.Count(p), ScanCount<std::int64_t>(base, p))
        << "q" << q << " " << p.ToString();
  }
  EXPECT_TRUE(idx.Validate());
}

INSTANTIATE_TEST_SUITE_P(RunSizes, AdaptiveMergingRunSizeTest,
                         ::testing::Values(1, 7, 64, 500, 5000, 20000),
                         [](const auto& info) {
                           return "run" + std::to_string(info.param);
                         });

TEST(AdaptiveMergingTest, ConvergesToTreeOnlyQueries) {
  const auto base = RandomValues(20000, 10000, 10);
  Index idx(base, {.run_size = 2048});
  Rng rng(11);
  for (int q = 0; q < 400; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(10000));
    idx.Count(Pred::Between(a, a + 100));
  }
  // After many random queries most of the domain has merged; fresh queries
  // over merged ranges must not trigger merge work.
  const std::size_t merge_queries_before = idx.stats().merge_queries;
  const std::size_t count = idx.Count(Pred::Between(4000, 4005));
  EXPECT_EQ(count, ScanCount<std::int64_t>(base, Pred::Between(4000, 4005)));
  // (The specific range may or may not be merged; run a few to find one.)
  std::size_t no_merge_queries = 0;
  for (int q = 0; q < 50; ++q) {
    const auto a = static_cast<std::int64_t>(rng.NextBounded(9000));
    const std::size_t before = idx.stats().merge_queries;
    idx.Count(Pred::Between(a, a + 10));
    if (idx.stats().merge_queries == before) ++no_merge_queries;
  }
  EXPECT_GT(no_merge_queries, 25u) << "expected most queries to hit merged ranges";
  (void)merge_queries_before;
}

}  // namespace
}  // namespace aidx
