#include "core/cracker_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace aidx {
namespace {

using I64Cut = Cut<std::int64_t>;
using Index = CrackerIndex<std::int64_t>;

TEST(CrackerIndexTest, FreshIndexIsOnePiece) {
  Index idx(100);
  EXPECT_EQ(idx.num_cuts(), 0u);
  EXPECT_EQ(idx.num_pieces(), 1u);
  const auto look = idx.Lookup({50, CutKind::kLess});
  EXPECT_FALSE(look.exact);
  EXPECT_EQ(look.piece.begin, 0u);
  EXPECT_EQ(look.piece.end, 100u);
  EXPECT_FALSE(look.piece.lower.has_value());
  EXPECT_FALSE(look.piece.upper.has_value());
}

TEST(CrackerIndexTest, AddCutThenExactLookup) {
  Index idx(100);
  idx.AddCut({50, CutKind::kLess}, 42);
  const auto look = idx.Lookup({50, CutKind::kLess});
  EXPECT_TRUE(look.exact);
  EXPECT_EQ(look.position, 42u);
  EXPECT_EQ(idx.num_pieces(), 2u);
}

TEST(CrackerIndexTest, LookupIdentifiesEnclosingPiece) {
  Index idx(100);
  idx.AddCut({30, CutKind::kLess}, 25);
  idx.AddCut({70, CutKind::kLess}, 80);
  const auto mid = idx.Lookup({50, CutKind::kLess});
  EXPECT_FALSE(mid.exact);
  EXPECT_EQ(mid.piece.begin, 25u);
  EXPECT_EQ(mid.piece.end, 80u);
  ASSERT_TRUE(mid.piece.lower.has_value());
  EXPECT_EQ(*mid.piece.lower, (I64Cut{30, CutKind::kLess}));
  ASSERT_TRUE(mid.piece.upper.has_value());
  EXPECT_EQ(*mid.piece.upper, (I64Cut{70, CutKind::kLess}));

  const auto left = idx.Lookup({10, CutKind::kLess});
  EXPECT_EQ(left.piece.begin, 0u);
  EXPECT_EQ(left.piece.end, 25u);

  const auto right = idx.Lookup({90, CutKind::kLessEq});
  EXPECT_EQ(right.piece.begin, 80u);
  EXPECT_EQ(right.piece.end, 100u);
}

TEST(CrackerIndexTest, LessAndLessEqCutsCoexist) {
  Index idx(100);
  idx.AddCut({50, CutKind::kLess}, 40);
  idx.AddCut({50, CutKind::kLessEq}, 45);  // 5 values equal to 50
  EXPECT_TRUE(idx.Lookup({50, CutKind::kLess}).exact);
  EXPECT_TRUE(idx.Lookup({50, CutKind::kLessEq}).exact);
  EXPECT_EQ(idx.Lookup({50, CutKind::kLess}).position, 40u);
  EXPECT_EQ(idx.Lookup({50, CutKind::kLessEq}).position, 45u);
  EXPECT_TRUE(idx.Validate());
}

TEST(CrackerIndexTest, PieceForValueRespectsCutKinds) {
  Index idx(100);
  idx.AddCut({50, CutKind::kLess}, 40);    // [0,40) < 50, [40,..) >= 50
  idx.AddCut({50, CutKind::kLessEq}, 45);  // [0,45) <= 50, [45,..) > 50
  // Value 49 must land before position 40.
  auto piece = idx.PieceForValue(49);
  EXPECT_EQ(piece.end, 40u);
  // Value 50 must land in [40, 45).
  piece = idx.PieceForValue(50);
  EXPECT_EQ(piece.begin, 40u);
  EXPECT_EQ(piece.end, 45u);
  // Value 51 lands after 45.
  piece = idx.PieceForValue(51);
  EXPECT_EQ(piece.begin, 45u);
  EXPECT_EQ(piece.end, 100u);
}

TEST(CrackerIndexTest, VisitPiecesCoversWholeArray) {
  Index idx(100);
  idx.AddCut({30, CutKind::kLess}, 25);
  idx.AddCut({70, CutKind::kLessEq}, 80);
  std::vector<PieceInfo<std::int64_t>> pieces;
  idx.VisitPieces([&](const PieceInfo<std::int64_t>& p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].begin, 0u);
  EXPECT_EQ(pieces[0].end, 25u);
  EXPECT_FALSE(pieces[0].lower.has_value());
  EXPECT_EQ(pieces[1].begin, 25u);
  EXPECT_EQ(pieces[1].end, 80u);
  EXPECT_EQ(pieces[2].begin, 80u);
  EXPECT_EQ(pieces[2].end, 100u);
  EXPECT_FALSE(pieces[2].upper.has_value());
}

TEST(CrackerIndexTest, VisitCutsFromShiftsPositions) {
  Index idx(100);
  idx.AddCut({10, CutKind::kLess}, 10);
  idx.AddCut({20, CutKind::kLess}, 20);
  idx.AddCut({30, CutKind::kLess}, 30);
  // Shift all cuts at/after (20, kLess) by +5 (ripple-insert bookkeeping).
  idx.VisitCutsFrom({20, CutKind::kLess},
                    [](const I64Cut&, std::size_t& pos) { pos += 5; });
  EXPECT_EQ(idx.Lookup({10, CutKind::kLess}).position, 10u);
  EXPECT_EQ(idx.Lookup({20, CutKind::kLess}).position, 25u);
  EXPECT_EQ(idx.Lookup({30, CutKind::kLess}).position, 35u);
}

TEST(CrackerIndexTest, EraseCutMergesPieces) {
  Index idx(100);
  idx.AddCut({30, CutKind::kLess}, 25);
  idx.AddCut({70, CutKind::kLess}, 80);
  EXPECT_TRUE(idx.EraseCut({30, CutKind::kLess}));
  EXPECT_FALSE(idx.EraseCut({30, CutKind::kLess}));
  EXPECT_EQ(idx.num_pieces(), 2u);
  const auto look = idx.Lookup({50, CutKind::kLess});
  EXPECT_EQ(look.piece.begin, 0u);
  EXPECT_EQ(look.piece.end, 80u);
}

TEST(CrackerIndexTest, ValidateCatchesNonMonotonePositions) {
  Index idx(100);
  idx.AddCut({30, CutKind::kLess}, 60);
  idx.AddCut({70, CutKind::kLess}, 40);  // position regressed: invalid
  EXPECT_FALSE(idx.Validate());
}

TEST(CrackerIndexTest, ColumnSizeGrowth) {
  Index idx(100);
  idx.AddCut({50, CutKind::kLess}, 40);
  idx.set_column_size(110);
  const auto look = idx.Lookup({90, CutKind::kLess});
  EXPECT_EQ(look.piece.end, 110u);
}

TEST(CrackerIndexTest, ZeroWidthPieces) {
  Index idx(10);
  idx.AddCut({5, CutKind::kLess}, 4);
  idx.AddCut({5, CutKind::kLessEq}, 4);  // no values equal 5
  const auto look = idx.Lookup({5, CutKind::kLessEq});
  EXPECT_TRUE(look.exact);
  EXPECT_EQ(look.position, 4u);
  EXPECT_TRUE(idx.Validate());
}

TEST(CrackerIndexTest, EmptyColumn) {
  Index idx(0);
  const auto look = idx.Lookup({5, CutKind::kLess});
  EXPECT_FALSE(look.exact);
  EXPECT_EQ(look.piece.begin, 0u);
  EXPECT_EQ(look.piece.end, 0u);
}

}  // namespace
}  // namespace aidx
