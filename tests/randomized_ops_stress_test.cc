// Property/fuzz harness for the striped write path (docs/CONCURRENCY.md
// §5): seeded random operation streams against a std::multiset oracle.
//
//  - single-threaded: after EVERY operation the column must agree with the
//    multiset on Count/Sum over random ranges and on Delete hit/miss;
//  - multi-threaded: 8 threads interleave inserts, deletes, and range
//    queries freely; per-thread value namespaces make the final multiset
//    deterministic, so after joining, a full materialization must equal
//    the union of the per-thread logs — for any interleaving the scheduler
//    produced;
//  - the same interleavings run again with background merges enabled, so
//    the mode machine's Normal -> PrepareToMerge -> Merging -> Merged
//    cycle races real traffic under TSan;
//  - multi-column arm: row-atomic DML on a 3-column Database against a
//    row-store oracle, across strategies and merge policies, sequentially
//    and with 8 threads interleaving through the documented external
//    serialization (the parallel-crack paths still fan out internally,
//    so TSan sees real intra-query concurrency under DML).
//
// Each property is TEST_P over several seeds; a failure message carries
// the seed, so any counterexample replays deterministically.
//
// Runs under ThreadSanitizer via the `concurrency` ctest label
// (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = PartitionedCrackerColumn<std::int64_t>;

constexpr std::int64_t kDomain = 1000;

std::vector<std::int64_t> RandomValues(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  return v;
}

Pred RandomPredicate(Rng* rng) {
  const auto a = rng->NextInRange(-5, kDomain + 5);
  const auto width = rng->NextInRange(0, kDomain / 4);
  const auto kind = [&]() -> BoundKind {
    switch (rng->NextBounded(3)) {
      case 0: return BoundKind::kInclusive;
      case 1: return BoundKind::kExclusive;
      default: return BoundKind::kUnbounded;
    }
  };
  return Pred{a, kind(), a + width, kind()};
}

PartitionedCrackerOptions StressOptions(std::size_t background_threshold = 0) {
  PartitionedCrackerOptions options;
  options.num_partitions = 4;
  options.latch_mode = LatchMode::kStripedPiece;
  options.write_mode = WriteMode::kStripedWrite;
  options.background_merge_threshold = background_threshold;
  options.background_merge_chunk = 64;  // small chunks: more mode cycles
  return options;
}

class RandomizedOpsStress : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedOpsStress,
                         ::testing::Values(0xA11CEull, 0xB0Bull, 0xC0FFEEull,
                                           0xD15EA5Eull));

// Sequential property: the column is observationally a std::multiset.
TEST_P(RandomizedOpsStress, SequentialMultisetOracle) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(3000, seed);
  std::multiset<std::int64_t> oracle(base.begin(), base.end());
  Column col(base, StressOptions());
  Rng rng(seed ^ 0x5EED);
  for (int op = 0; op < 1000; ++op) {
    switch (rng.NextBounded(5)) {
      case 0: {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        col.Insert(v);
        oracle.insert(v);
        break;
      }
      case 1: {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const auto it = oracle.find(v);
        const bool expect = it != oracle.end();
        ASSERT_EQ(col.Delete(v), expect)
            << "seed " << seed << " op " << op << " value " << v;
        if (expect) oracle.erase(it);
        break;
      }
      case 2: {
        const Pred p = RandomPredicate(&rng);
        std::size_t expect = 0;
        for (const auto v : oracle) expect += p.Matches(v) ? 1 : 0;
        ASSERT_EQ(col.Count(p), expect)
            << "seed " << seed << " op " << op << " " << p.ToString();
        break;
      }
      case 3: {
        const Pred p = RandomPredicate(&rng);
        long double expect = 0;
        for (const auto v : oracle) {
          if (p.Matches(v)) expect += static_cast<long double>(v);
        }
        ASSERT_EQ(static_cast<double>(col.Sum(p)),
                  static_cast<double>(expect))
            << "seed " << seed << " op " << op << " " << p.ToString();
        break;
      }
      default: {
        ASSERT_EQ(col.size(), oracle.size()) << "seed " << seed;
        break;
      }
    }
  }
  EXPECT_EQ(col.Count(Pred::All()), oracle.size()) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

// One multi-threaded round: `threads` workers run `ops` operations each
// against `col`; returns the expected final multiset. Thread t inserts
// only values ≡ t (mod threads) above the base domain and deletes only
// its own inserts, so the union of survivor logs is exact for any
// interleaving while deletes still contend on shared pieces.
std::vector<std::int64_t> RunInterleavedOps(Column* col,
                                            std::vector<std::int64_t> base,
                                            std::uint64_t seed,
                                            std::size_t threads, int ops) {
  std::vector<std::vector<std::int64_t>> surviving(threads);
  std::atomic<int> delete_misses{0};
  std::atomic<int> oracle_failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed + 17 * t);
      std::vector<std::int64_t>& mine = surviving[t];
      for (int op = 0; op < ops; ++op) {
        const auto dice = rng.NextBounded(10);
        if (dice < 4) {
          const auto v = static_cast<std::int64_t>(
              kDomain + rng.NextBounded(kDomain) * threads + t);
          col->Insert(v);
          mine.push_back(v);
        } else if (dice < 6 && !mine.empty()) {
          const std::size_t pick = rng.NextBounded(mine.size());
          if (!col->Delete(mine[pick])) delete_misses.fetch_add(1);
          mine[pick] = mine.back();
          mine.pop_back();
        } else if (dice < 9) {
          // The base never changes, so base-domain counts have a fixed
          // floor and ceiling even while other threads write above it.
          const Pred p = RandomPredicate(&rng);
          const std::size_t expect =
              ScanCount<std::int64_t>(std::span<const std::int64_t>(base), p);
          if (col->Count(p) < expect) oracle_failures.fetch_add(1);
        } else {
          std::vector<std::int64_t> out;
          col->MaterializeValues(Pred::Between(0, kDomain - 1), &out);
          if (out.size() != base.size()) oracle_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(delete_misses.load(), 0) << "seed " << seed;
  EXPECT_EQ(oracle_failures.load(), 0) << "seed " << seed;
  std::vector<std::int64_t> expect = std::move(base);
  for (const auto& mine : surviving) {
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::sort(expect.begin(), expect.end());
  return expect;
}

TEST_P(RandomizedOpsStress, InterleavedOpsConvergeToLogUnion) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(8000, seed ^ 0xF00D);
  Column col(base, StressOptions());
  const auto expect = RunInterleavedOps(&col, base, seed, 8, 250);
  std::vector<std::int64_t> got;
  col.MaterializeValues(Pred::All(), &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed;
  EXPECT_EQ(col.size(), expect.size()) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

TEST_P(RandomizedOpsStress, InterleavedOpsWithBackgroundMerges) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(8000, seed ^ 0xFEED);
  ThreadPool pool(3);
  // A low threshold keeps merge tasks cycling through the mode machine
  // for the whole run, racing the writers and readers below.
  Column col(base, StressOptions(/*background_threshold=*/16), &pool);
  const auto expect = RunInterleavedOps(&col, base, seed, 8, 250);
  col.WaitForBackgroundMerges();
  std::vector<std::int64_t> got;
  col.MaterializeValues(Pred::All(), &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

// ---------------------------------------------------------------------------
// Multi-column row-atomic DML (docs/UPDATES.md §5).
// ---------------------------------------------------------------------------

using Row = std::array<std::int64_t, 3>;  // columns a, b, c
const char* const kDmlColumns[] = {"a", "b", "c"};

StrategyConfig WithPolicy(StrategyConfig config, MergePolicy policy) {
  config.merge_policy = policy;
  return config;
}

// The strategy mix every multi-column property cycles through: the three
// merge policies under plain cracking, plus the latched parallel path.
const StrategyConfig kDmlConfigs[] = {
    WithPolicy(StrategyConfig::Crack(), MergePolicy::kComplete),
    WithPolicy(StrategyConfig::Crack(), MergePolicy::kGradual),
    WithPolicy(StrategyConfig::Crack(), MergePolicy::kRipple),
    StrategyConfig::ParallelCrack(4, 2),
};

void BuildDmlTable(Database* db, const std::vector<Row>& rows) {
  ASSERT_TRUE(db->CreateTable("t").ok());
  for (std::size_t c = 0; c < 3; ++c) {
    std::vector<std::int64_t> values(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) values[i] = rows[i][c];
    ASSERT_TRUE(db->AddColumn("t", kDmlColumns[c], std::move(values)).ok());
  }
}

// Sequential property: a 3-column Database under interleaved row inserts,
// first-match deletes, and range counts is observationally the row oracle,
// whichever strategy (and merge policy) answers each query.
TEST_P(RandomizedOpsStress, MultiColumnRowOracle) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xD31);
  std::vector<Row> oracle(2000);
  for (auto& row : oracle) {
    for (auto& v : row) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  }
  Database db;
  BuildDmlTable(&db, oracle);
  for (int op = 0; op < 400; ++op) {
    switch (rng.NextBounded(4)) {
      case 0: {
        Row row;
        for (auto& v : row) {
          v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        }
        ASSERT_TRUE(db.Insert("t", {row[0], row[1], row[2]}).ok())
            << "seed " << seed << " op " << op;
        oracle.push_back(row);
        break;
      }
      case 1: {
        const std::size_t col = rng.NextBounded(3);
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const auto it =
            std::find_if(oracle.begin(), oracle.end(),
                         [&](const Row& row) { return row[col] == v; });
        auto deleted = db.Delete("t", kDmlColumns[col], v);
        ASSERT_TRUE(deleted.ok()) << "seed " << seed << " op " << op;
        ASSERT_EQ(*deleted, it != oracle.end())
            << "seed " << seed << " op " << op;
        if (it != oracle.end()) oracle.erase(it);
        break;
      }
      default: {
        const std::size_t col = rng.NextBounded(3);
        const Pred p = RandomPredicate(&rng);
        const StrategyConfig& config =
            kDmlConfigs[rng.NextBounded(std::size(kDmlConfigs))];
        std::size_t expect = 0;
        for (const auto& row : oracle) expect += p.Matches(row[col]) ? 1 : 0;
        auto count = db.Count("t", kDmlColumns[col], p, config);
        ASSERT_TRUE(count.ok()) << "seed " << seed << " op " << op;
        ASSERT_EQ(*count, expect)
            << "seed " << seed << " op " << op << " " << config.DisplayName()
            << " col " << kDmlColumns[col] << " " << p.ToString();
        break;
      }
    }
  }
}

// Threaded arm: 8 threads interleave row-atomic DML and range queries on a
// shared Database through the documented external serialization (the
// facade is not thread-safe; docs/CONCURRENCY.md). Parallel-crack queries
// still fan out worker threads inside each serialized call, so TSan races
// the intra-query concurrency against a mutating table. Thread t inserts
// only keys ≡ t (mod threads) above the base domain and deletes only its
// own keys, so the final table equals the union of survivor logs for any
// interleaving.
TEST_P(RandomizedOpsStress, MultiColumnMutexSerializedInterleavings) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xD32);
  std::vector<Row> base(2000);
  for (auto& row : base) {
    for (auto& v : row) v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  }
  Database db;
  BuildDmlTable(&db, base);
  std::mutex db_mutex;
  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<Row>> surviving(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng thread_rng(seed + 31 * t);
      std::vector<Row>& mine = surviving[t];
      std::int64_t next_key = 0;  // unique per thread: first-match deletes
                                  // by key remove exactly the logged row
      for (int op = 0; op < 120; ++op) {
        const auto dice = thread_rng.NextBounded(10);
        if (dice < 4) {
          const auto key = static_cast<std::int64_t>(
              kDomain + (next_key++) * static_cast<std::int64_t>(kThreads) +
              static_cast<std::int64_t>(t));
          const Row row = {key,
                           static_cast<std::int64_t>(
                               thread_rng.NextBounded(kDomain)),
                           static_cast<std::int64_t>(
                               thread_rng.NextBounded(kDomain))};
          std::lock_guard<std::mutex> lock(db_mutex);
          if (!db.Insert("t", {row[0], row[1], row[2]}).ok()) {
            failures.fetch_add(1);
          } else {
            mine.push_back(row);
          }
        } else if (dice < 6 && !mine.empty()) {
          const std::size_t pick = thread_rng.NextBounded(mine.size());
          const auto key = mine[pick][0];
          std::lock_guard<std::mutex> lock(db_mutex);
          auto deleted = db.Delete("t", "a", key);
          if (!deleted.ok() || !*deleted) failures.fetch_add(1);
          mine[pick] = mine.back();
          mine.pop_back();
        } else {
          // Base-domain counts have a fixed floor: the base rows never
          // change while other threads write above the domain.
          const std::size_t col = thread_rng.NextBounded(3);
          const Pred p = RandomPredicate(&thread_rng);
          std::size_t floor = 0;
          for (const auto& row : base) floor += p.Matches(row[col]) ? 1 : 0;
          const StrategyConfig& config =
              kDmlConfigs[thread_rng.NextBounded(std::size(kDmlConfigs))];
          std::lock_guard<std::mutex> lock(db_mutex);
          auto count = db.Count("t", kDmlColumns[col], p, config);
          if (!count.ok() || *count < floor) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  ASSERT_EQ(failures.load(), 0) << "seed " << seed;
  // Union-of-logs oracle: the final table is the base plus every survivor.
  std::vector<Row> expect = base;
  for (const auto& mine : surviving) {
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::sort(expect.begin(), expect.end());
  // Materialize all three columns row-aligned through sideways maps.
  auto r = db.SelectProject("t", "a", Pred::All(), {"b", "c"});
  ASSERT_TRUE(r.ok()) << "seed " << seed;
  ASSERT_EQ(r->num_rows, expect.size()) << "seed " << seed;
  // SelectProject does not return the head column; check it via Count and
  // compare the projected (b, c) pairs as bags.
  auto head_count = db.Count("t", "a", Pred::All(), kDmlConfigs[0]);
  ASSERT_TRUE(head_count.ok());
  ASSERT_EQ(*head_count, expect.size()) << "seed " << seed;
  std::vector<std::array<std::int64_t, 2>> got_pairs(r->num_rows);
  std::vector<std::array<std::int64_t, 2>> expect_pairs(expect.size());
  for (std::size_t i = 0; i < r->num_rows; ++i) {
    got_pairs[i] = {r->columns[0][i], r->columns[1][i]};
  }
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect_pairs[i] = {expect[i][1], expect[i][2]};
  }
  std::sort(got_pairs.begin(), got_pairs.end());
  std::sort(expect_pairs.begin(), expect_pairs.end());
  EXPECT_EQ(got_pairs, expect_pairs) << "seed " << seed;
}

}  // namespace
}  // namespace aidx
