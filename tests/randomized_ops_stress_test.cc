// Property/fuzz harness for the striped write path (docs/CONCURRENCY.md
// §5): seeded random operation streams against a std::multiset oracle.
//
//  - single-threaded: after EVERY operation the column must agree with the
//    multiset on Count/Sum over random ranges and on Delete hit/miss;
//  - multi-threaded: 8 threads interleave inserts, deletes, and range
//    queries freely; per-thread value namespaces make the final multiset
//    deterministic, so after joining, a full materialization must equal
//    the union of the per-thread logs — for any interleaving the scheduler
//    produced;
//  - the same interleavings run again with background merges enabled, so
//    the mode machine's Normal -> PrepareToMerge -> Merging -> Merged
//    cycle races real traffic under TSan.
//
// Each property is TEST_P over several seeds; a failure message carries
// the seed, so any counterexample replays deterministically.
//
// Runs under ThreadSanitizer via the `concurrency` ctest label
// (scripts/check.sh --tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "index/scan.h"
#include "parallel/partitioned_cracker_column.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {
namespace {

using Pred = RangePredicate<std::int64_t>;
using Column = PartitionedCrackerColumn<std::int64_t>;

constexpr std::int64_t kDomain = 1000;

std::vector<std::int64_t> RandomValues(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(rng.NextBounded(kDomain));
  return v;
}

Pred RandomPredicate(Rng* rng) {
  const auto a = rng->NextInRange(-5, kDomain + 5);
  const auto width = rng->NextInRange(0, kDomain / 4);
  const auto kind = [&]() -> BoundKind {
    switch (rng->NextBounded(3)) {
      case 0: return BoundKind::kInclusive;
      case 1: return BoundKind::kExclusive;
      default: return BoundKind::kUnbounded;
    }
  };
  return Pred{a, kind(), a + width, kind()};
}

PartitionedCrackerOptions StressOptions(std::size_t background_threshold = 0) {
  PartitionedCrackerOptions options;
  options.num_partitions = 4;
  options.latch_mode = LatchMode::kStripedPiece;
  options.write_mode = WriteMode::kStripedWrite;
  options.background_merge_threshold = background_threshold;
  options.background_merge_chunk = 64;  // small chunks: more mode cycles
  return options;
}

class RandomizedOpsStress : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedOpsStress,
                         ::testing::Values(0xA11CEull, 0xB0Bull, 0xC0FFEEull,
                                           0xD15EA5Eull));

// Sequential property: the column is observationally a std::multiset.
TEST_P(RandomizedOpsStress, SequentialMultisetOracle) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(3000, seed);
  std::multiset<std::int64_t> oracle(base.begin(), base.end());
  Column col(base, StressOptions());
  Rng rng(seed ^ 0x5EED);
  for (int op = 0; op < 1000; ++op) {
    switch (rng.NextBounded(5)) {
      case 0: {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        col.Insert(v);
        oracle.insert(v);
        break;
      }
      case 1: {
        const auto v = static_cast<std::int64_t>(rng.NextBounded(kDomain));
        const auto it = oracle.find(v);
        const bool expect = it != oracle.end();
        ASSERT_EQ(col.Delete(v), expect)
            << "seed " << seed << " op " << op << " value " << v;
        if (expect) oracle.erase(it);
        break;
      }
      case 2: {
        const Pred p = RandomPredicate(&rng);
        std::size_t expect = 0;
        for (const auto v : oracle) expect += p.Matches(v) ? 1 : 0;
        ASSERT_EQ(col.Count(p), expect)
            << "seed " << seed << " op " << op << " " << p.ToString();
        break;
      }
      case 3: {
        const Pred p = RandomPredicate(&rng);
        long double expect = 0;
        for (const auto v : oracle) {
          if (p.Matches(v)) expect += static_cast<long double>(v);
        }
        ASSERT_EQ(static_cast<double>(col.Sum(p)),
                  static_cast<double>(expect))
            << "seed " << seed << " op " << op << " " << p.ToString();
        break;
      }
      default: {
        ASSERT_EQ(col.size(), oracle.size()) << "seed " << seed;
        break;
      }
    }
  }
  EXPECT_EQ(col.Count(Pred::All()), oracle.size()) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

// One multi-threaded round: `threads` workers run `ops` operations each
// against `col`; returns the expected final multiset. Thread t inserts
// only values ≡ t (mod threads) above the base domain and deletes only
// its own inserts, so the union of survivor logs is exact for any
// interleaving while deletes still contend on shared pieces.
std::vector<std::int64_t> RunInterleavedOps(Column* col,
                                            std::vector<std::int64_t> base,
                                            std::uint64_t seed,
                                            std::size_t threads, int ops) {
  std::vector<std::vector<std::int64_t>> surviving(threads);
  std::atomic<int> delete_misses{0};
  std::atomic<int> oracle_failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed + 17 * t);
      std::vector<std::int64_t>& mine = surviving[t];
      for (int op = 0; op < ops; ++op) {
        const auto dice = rng.NextBounded(10);
        if (dice < 4) {
          const auto v = static_cast<std::int64_t>(
              kDomain + rng.NextBounded(kDomain) * threads + t);
          col->Insert(v);
          mine.push_back(v);
        } else if (dice < 6 && !mine.empty()) {
          const std::size_t pick = rng.NextBounded(mine.size());
          if (!col->Delete(mine[pick])) delete_misses.fetch_add(1);
          mine[pick] = mine.back();
          mine.pop_back();
        } else if (dice < 9) {
          // The base never changes, so base-domain counts have a fixed
          // floor and ceiling even while other threads write above it.
          const Pred p = RandomPredicate(&rng);
          const std::size_t expect =
              ScanCount<std::int64_t>(std::span<const std::int64_t>(base), p);
          if (col->Count(p) < expect) oracle_failures.fetch_add(1);
        } else {
          std::vector<std::int64_t> out;
          col->MaterializeValues(Pred::Between(0, kDomain - 1), &out);
          if (out.size() != base.size()) oracle_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(delete_misses.load(), 0) << "seed " << seed;
  EXPECT_EQ(oracle_failures.load(), 0) << "seed " << seed;
  std::vector<std::int64_t> expect = std::move(base);
  for (const auto& mine : surviving) {
    expect.insert(expect.end(), mine.begin(), mine.end());
  }
  std::sort(expect.begin(), expect.end());
  return expect;
}

TEST_P(RandomizedOpsStress, InterleavedOpsConvergeToLogUnion) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(8000, seed ^ 0xF00D);
  Column col(base, StressOptions());
  const auto expect = RunInterleavedOps(&col, base, seed, 8, 250);
  std::vector<std::int64_t> got;
  col.MaterializeValues(Pred::All(), &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed;
  EXPECT_EQ(col.size(), expect.size()) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

TEST_P(RandomizedOpsStress, InterleavedOpsWithBackgroundMerges) {
  const std::uint64_t seed = GetParam();
  const auto base = RandomValues(8000, seed ^ 0xFEED);
  ThreadPool pool(3);
  // A low threshold keeps merge tasks cycling through the mode machine
  // for the whole run, racing the writers and readers below.
  Column col(base, StressOptions(/*background_threshold=*/16), &pool);
  const auto expect = RunInterleavedOps(&col, base, seed, 8, 250);
  col.WaitForBackgroundMerges();
  std::vector<std::int64_t> got;
  col.MaterializeValues(Pred::All(), &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed;
  EXPECT_TRUE(col.ValidatePieces()) << "seed " << seed;
}

}  // namespace
}  // namespace aidx
