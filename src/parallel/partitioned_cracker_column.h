// PartitionedCrackerColumn: parallel adaptive indexing by range partitioning.
//
// The design follows the two multi-core follow-ups to the EDBT 2012
// tutorial (see docs/CONCURRENCY.md for the full model):
//
//  - Alvarez et al., "Main Memory Adaptive Indexing for Multi-core
//    Systems": range-partition the base column into K partitions by value
//    and crack each partition independently — cracks in one partition never
//    move tuples in another, so disjoint partitions need no coordination.
//  - Graefe et al., "Concurrency Control for Adaptive Indexing": every
//    adaptive query is also a writer, so latch at the granularity of the
//    structure actually reorganized. They latch individual pieces; we take
//    the documented simplification of one latch per *partition* (the
//    partition is our unit of reorganization), which keeps the protocol
//    two-line simple while still letting queries over disjoint partitions
//    crack fully concurrently.
//
// Ownership: a PartitionedCrackerColumn owns its K shards (each an
// independent CrackerColumn plus one latch) and its splitter table; it
// *borrows* an optional ThreadPool for intra-query fan-out and never owns
// it — one pool typically serves many columns. The base span is copied at
// construction (same contract as CrackerColumn).
//
// Thread safety: Count, Sum, Materialize*, Insert, Delete, InsertBatch,
// DeleteBatch, AggregatedStats, AggregatedUpdateStats, and ValidatePieces
// are safe to call from any number of threads concurrently; each takes the
// latches of only the partitions the predicate (or the written value) maps
// to. The batch write paths group the batch by owning partition first and
// take each touched partition's latch once per batch (ascending order, one
// at a time), not once per tuple.
// Select (which returns raw per-partition position ranges) is the
// exception: positions are only stable while no other thread cracks the
// same partition, so it is for externally synchronized use — tests,
// single-threaded tools. The latch order is strictly ascending partition
// index and at most one latch is held at a time, so deadlock is impossible.
//
// Writes extend the latch protocol without new rules: a write routes to
// the single partition owning its value (the splitter table is immutable,
// so routing needs no latch), queues the update in that partition's
// UpdatableCrackerColumn under its latch, and the queued tuple merges
// adaptively when a later query touches its range — also under that
// latch. Fresh row ids come from one atomic counter so they stay globally
// unique across partitions; the live tuple count is likewise an atomic,
// maintained outside any latch (docs/CONCURRENCY.md §3).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "storage/predicate.h"
#include "storage/types.h"
#include "update/updatable_column.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {

/// Tuning knobs for a partitioned cracker column.
struct PartitionedCrackerOptions {
  /// Requested partition count K. The effective count can be lower when the
  /// data has fewer distinct values than K (duplicate splitters collapse).
  std::size_t num_partitions = 8;
  /// Applied to every per-partition CrackerColumn; the stochastic seed is
  /// perturbed per partition so partitions do not pick identical pivots.
  CrackerColumnOptions column_options = {};
  /// Splitters are equi-depth quantiles of a sample this large.
  std::size_t splitter_sample_size = 1024;
  std::uint64_t splitter_seed = 0xA24BAED4963EE407ULL;
  /// Update-merge policy applied by every partition's update pipeline.
  MergePolicy merge_policy = MergePolicy::kRipple;
  std::size_t gradual_budget = 64;
};

/// One partition's share of a fanned-out Select.
struct PartitionSelect {
  std::size_t partition = 0;
  CrackSelect sel = {};
};

/// Per-partition results of PartitionedCrackerColumn::Select, in ascending
/// partition order. Positions are local to each partition's cracked array.
struct ParallelSelect {
  std::vector<PartitionSelect> partitions;
};

template <ColumnValue T>
class PartitionedCrackerColumn {
 public:
  /// Copies and scatters `base` into K value-range partitions. Row ids (when
  /// enabled in the options) are global base-column offsets, so projections
  /// compose with the rest of the system unchanged. `pool` is borrowed for
  /// intra-query fan-out; nullptr runs partition work inline.
  explicit PartitionedCrackerColumn(std::span<const T> base,
                                    PartitionedCrackerOptions options = {},
                                    ThreadPool* pool = nullptr)
      : options_(options), pool_(pool), total_size_(base.size()) {
    AIDX_CHECK(options_.num_partitions > 0);
    splitters_ = PickSplitters(base);
    const std::size_t k = splitters_.size() + 1;
    std::vector<std::vector<T>> values(k);
    std::vector<std::vector<row_id_t>> row_ids(k);
    const bool with_rids = options_.column_options.with_row_ids;
    for (auto& v : values) v.reserve(base.size() / k + 1);
    if (with_rids) {
      for (auto& r : row_ids) r.reserve(base.size() / k + 1);
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::size_t p = PartitionOf(base[i]);
      values[p].push_back(base[i]);
      if (with_rids) row_ids[p].push_back(static_cast<row_id_t>(i));
    }
    shards_.reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      CrackerColumnOptions per_shard = options_.column_options;
      per_shard.stochastic_seed += p;  // decorrelate stochastic pivots
      shards_.push_back(std::make_unique<Shard>(std::move(values[p]),
                                                std::move(row_ids[p]), per_shard,
                                                options_));
    }
    next_rid_.store(static_cast<row_id_t>(base.size()), std::memory_order_relaxed);
    live_size_.store(base.size(), std::memory_order_relaxed);
  }

  // Atomic members rule out the defaulted moves; shards are unique_ptrs,
  // so moving transfers them (and the latches inside) untouched. Callers
  // must not move a column while other threads use it, as everywhere.
  AIDX_DISALLOW_COPY_AND_ASSIGN(PartitionedCrackerColumn);
  PartitionedCrackerColumn(PartitionedCrackerColumn&& other) noexcept
      : options_(std::move(other.options_)),
        pool_(other.pool_),
        total_size_(other.total_size_),
        splitters_(std::move(other.splitters_)),
        shards_(std::move(other.shards_)),
        next_rid_(other.next_rid_.load(std::memory_order_relaxed)),
        live_size_(other.live_size_.load(std::memory_order_relaxed)) {}
  PartitionedCrackerColumn& operator=(PartitionedCrackerColumn&& other) noexcept {
    if (this != &other) {
      options_ = std::move(other.options_);
      pool_ = other.pool_;
      total_size_ = other.total_size_;
      splitters_ = std::move(other.splitters_);
      shards_ = std::move(other.shards_);
      next_rid_.store(other.next_rid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      live_size_.store(other.live_size_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    return *this;
  }

  /// Queues an insert in the partition owning `value` (under its latch)
  /// and returns the globally unique row id assigned to the fresh tuple.
  /// The tuple merges into the cracked array when a later query needs its
  /// range — the same adaptive bargain as the single-threaded pipeline.
  /// Thread-safe.
  row_id_t Insert(T value) {
    const row_id_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = *shards_[PartitionOf(value)];
    {
      const std::lock_guard<std::mutex> guard(shard.latch);
      shard.column.InsertWithRid(value, rid);
    }
    live_size_.fetch_add(1, std::memory_order_relaxed);
    return rid;
  }

  /// Queues inserts for a batch of values, grouped by owning partition so
  /// each partition latch is taken once per batch instead of once per
  /// tuple. Row ids for the whole batch are reserved with one atomic bump
  /// and assigned in batch order, so the result is indistinguishable from
  /// the equivalent Insert loop. Latches are taken one at a time in
  /// ascending partition order — the standard latch protocol, so batch
  /// writers compose with everything else. Thread-safe.
  void InsertBatch(std::span<const T> batch) {
    if (batch.empty()) return;
    const row_id_t first_rid =
        next_rid_.fetch_add(static_cast<row_id_t>(batch.size()),
                            std::memory_order_relaxed);
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      for (const std::size_t i : groups[p]) {
        shard.column.InsertWithRid(batch[i],
                                   first_rid + static_cast<row_id_t>(i));
      }
    }
    live_size_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  /// Deletes one live tuple equal to `value` from its owning partition
  /// (under that partition's latch); false when absent. Thread-safe.
  bool Delete(T value) {
    Shard& shard = *shards_[PartitionOf(value)];
    bool deleted = false;
    {
      const std::lock_guard<std::mutex> guard(shard.latch);
      deleted = shard.column.DeleteValue(value);
    }
    if (deleted) live_size_.fetch_sub(1, std::memory_order_relaxed);
    return deleted;
  }

  /// Deletes one live tuple per batch entry (multiset semantics, same as a
  /// Delete loop) with one latch acquisition per touched partition.
  /// Returns how many tuples were actually deleted. Thread-safe.
  std::size_t DeleteBatch(std::span<const T> batch) {
    if (batch.empty()) return 0;
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    std::size_t deleted = 0;
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      for (const std::size_t i : groups[p]) {
        deleted += shard.column.DeleteValue(batch[i]) ? 1 : 0;
      }
    }
    live_size_.fetch_sub(deleted, std::memory_order_relaxed);
    return deleted;
  }

  /// Rows matching `pred` across all partitions (cracks as a side effect).
  /// Thread-safe.
  std::size_t Count(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {  // common narrow-predicate case: no fan-out state
      Shard& shard = *shards_[first];
      const std::lock_guard<std::mutex> guard(shard.latch);
      return shard.column.Count(pred);
    }
    std::vector<std::size_t> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      partial[slot] = shard.column.Count(pred);
    });
    std::size_t total = 0;
    for (const std::size_t c : partial) total += c;
    return total;
  }

  /// SUM of matching values across all partitions (cracks as a side
  /// effect). Thread-safe.
  long double Sum(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {
      Shard& shard = *shards_[first];
      const std::lock_guard<std::mutex> guard(shard.latch);
      return shard.column.Sum(pred);
    }
    std::vector<long double> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      partial[slot] = shard.column.Sum(pred);
    });
    long double total = 0;
    for (const long double s : partial) total += s;
    return total;
  }

  /// Appends matching values to `out`, grouped by ascending partition
  /// (order within the result is unspecified, as for CrackerColumn whose
  /// storage order is crack-dependent). Thread-safe: each partition is
  /// selected and materialized under its latch, so concurrent cracks
  /// cannot invalidate the positions in between.
  void MaterializeValues(const RangePredicate<T>& pred, std::vector<T>* out) {
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<T>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      shard.column.MergePendingFor(pred);
      const CrackSelect sel = shard.column.Select(pred);
      shard.column.MaterializeValues(sel, pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Appends the (global) row ids of matching values to `out`; same
  /// grouping and thread-safety as MaterializeValues.
  void MaterializeRowIds(const RangePredicate<T>& pred,
                         std::vector<row_id_t>* out) {
    AIDX_CHECK(options_.column_options.with_row_ids)
        << "column built without row ids";
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<row_id_t>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      shard.column.MergePendingFor(pred);
      const CrackSelect sel = shard.column.Select(pred);
      shard.column.MaterializeRowIds(sel, pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Fans the predicate out across the overlapping partitions and returns
  /// the per-partition CrackSelect results. NOT safe under concurrent
  /// queries: the returned positions are stable only until the next crack
  /// of the same partition (see file comment). Prefer Count/Sum/
  /// Materialize*, which resolve positions under the latch.
  ParallelSelect Select(const RangePredicate<T>& pred) {
    ParallelSelect out;
    if (pred.DefinitelyEmpty()) return out;
    const auto [first, last] = OverlapRange(pred);
    out.partitions.resize(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      shard.column.MergePendingFor(pred);
      out.partitions[slot] = {p, shard.column.Select(pred)};
    });
    return out;
  }

  /// Sum of all partitions' CrackerStats. Thread-safe (takes each latch).
  CrackerStats AggregatedStats() const {
    CrackerStats total;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> guard(shard->latch);
      const CrackerStats& s = shard->column.stats();
      total.num_selects += s.num_selects;
      total.num_crack_in_two += s.num_crack_in_two;
      total.num_crack_in_three += s.num_crack_in_three;
      total.num_stochastic_cracks += s.num_stochastic_cracks;
      total.values_touched += s.values_touched;
    }
    return total;
  }

  /// Sum of all partitions' update-pipeline counters. Thread-safe.
  UpdateStats AggregatedUpdateStats() const {
    UpdateStats total;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> guard(shard->latch);
      const UpdateStats& s = shard->column.update_stats();
      total.inserts_queued += s.inserts_queued;
      total.deletes_queued += s.deletes_queued;
      total.deletes_cancelled += s.deletes_cancelled;
      total.inserts_merged += s.inserts_merged;
      total.deletes_merged += s.deletes_merged;
      total.ripple_element_moves += s.ripple_element_moves;
    }
    return total;
  }

  /// Current live tuple count (base minus deletes plus inserts, including
  /// still-pending ones). Thread-safe.
  std::size_t size() const { return live_size_.load(std::memory_order_relaxed); }
  std::size_t num_partitions() const { return shards_.size(); }
  /// Partition p holds values v with splitters()[p-1] <= v < splitters()[p]
  /// (unbounded at the extremes). Immutable after construction.
  std::span<const T> splitters() const { return splitters_; }
  const PartitionedCrackerOptions& options() const { return options_; }

  /// Read access to one partition's column, for tests and tools. The
  /// reference is unsynchronized: callers must ensure no concurrent
  /// queries while holding it.
  const CrackerColumn<T>& partition(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return shards_[p]->column;
  }

  /// Full invariant sweep: every partition validates its own pieces, live
  /// sizes add up, and every partition's values respect the splitter
  /// bounds. O(n); tests only. Thread-safe, but the total-size check is
  /// meaningful only when no writer is concurrently in flight.
  bool ValidatePieces() const {
    std::size_t live_seen = 0;
    for (std::size_t p = 0; p < shards_.size(); ++p) {
      const std::lock_guard<std::mutex> guard(shards_[p]->latch);
      const UpdatableCrackerColumn<T>& column = shards_[p]->column;
      if (!column.Validate()) return false;
      live_seen += column.live_size();
      for (const T v : column.values()) {
        if (p > 0 && v < splitters_[p - 1]) return false;
        if (p < splitters_.size() && !(v < splitters_[p])) return false;
      }
    }
    return live_seen == size();
  }

 private:
  struct Shard {
    Shard(std::vector<T> values, std::vector<row_id_t> row_ids,
          const CrackerColumnOptions& opts, const PartitionedCrackerOptions& parent)
        : column(std::move(values), std::move(row_ids),
                 typename UpdatableCrackerColumn<T>::Options{
                     .policy = parent.merge_policy,
                     .gradual_budget = parent.gradual_budget,
                     .crack = opts},
                 /*first_fresh_rid=*/0) {}
    mutable std::mutex latch;  // guards `column`, including its stats
    UpdatableCrackerColumn<T> column;
  };

  /// Equi-depth splitters from a value sample; sorted and distinct, so the
  /// effective partition count is splitters.size() + 1 <= num_partitions.
  std::vector<T> PickSplitters(std::span<const T> base) {
    const std::size_t k = options_.num_partitions;
    if (k <= 1 || base.size() < 2) return {};
    std::vector<T> sample;
    if (base.size() <= options_.splitter_sample_size) {
      sample.assign(base.begin(), base.end());
    } else {
      Rng rng(options_.splitter_seed);
      sample.reserve(options_.splitter_sample_size);
      for (std::size_t i = 0; i < options_.splitter_sample_size; ++i) {
        sample.push_back(base[rng.NextBounded(base.size())]);
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<T> splitters;
    splitters.reserve(k - 1);
    for (std::size_t s = 1; s < k; ++s) {
      const T candidate = sample[s * sample.size() / k];
      // Skipping candidates equal to the sample minimum avoids a
      // permanently empty partition 0; with a full sample this also caps
      // the partition count at the number of distinct values.
      if (candidate == sample.front()) continue;
      if (splitters.empty() || splitters.back() < candidate) {
        splitters.push_back(candidate);
      }
    }
    return splitters;
  }

  /// Buckets batch positions by owning partition (the splitter table is
  /// immutable, so routing needs no latch).
  std::vector<std::vector<std::size_t>> GroupByPartition(
      std::span<const T> batch) const {
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[PartitionOf(batch[i])].push_back(i);
    }
    return groups;
  }

  /// Index of the partition that stores value v.
  std::size_t PartitionOf(T v) const {
    // Number of splitters <= v (partition p starts at splitter p-1).
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), v) -
        splitters_.begin());
  }

  /// [first, last] partition indices the predicate can match. Routing is
  /// exact for realized bound kinds: an exclusive upper bound equal to a
  /// splitter stops at the partition below it.
  std::pair<std::size_t, std::size_t> OverlapRange(
      const RangePredicate<T>& pred) const {
    std::size_t first = 0;
    std::size_t last = shards_.size() - 1;
    if (pred.low_kind != BoundKind::kUnbounded) first = PartitionOf(pred.low);
    if (pred.high_kind == BoundKind::kInclusive) {
      last = PartitionOf(pred.high);
    } else if (pred.high_kind == BoundKind::kExclusive) {
      // Values < high live below the first splitter >= high.
      last = static_cast<std::size_t>(
          std::lower_bound(splitters_.begin(), splitters_.end(), pred.high) -
          splitters_.begin());
    }
    // low <= high after the DefinitelyEmpty early-out, hence first <= last.
    AIDX_DCHECK(first <= last);
    return {first, last};
  }

  /// Runs fn(partition, slot) for every partition in [first, last], on the
  /// borrowed pool when one is present and the fan-out is wider than one.
  template <typename Fn>
  void ForEachOverlapping(std::size_t first, std::size_t last, Fn&& fn) {
    const std::size_t count = last - first + 1;
    if (pool_ != nullptr && count > 1) {
      pool_->ParallelFor(count,
                         [&](std::size_t slot) { fn(first + slot, slot); });
    } else {
      for (std::size_t slot = 0; slot < count; ++slot) fn(first + slot, slot);
    }
  }

  PartitionedCrackerOptions options_;
  ThreadPool* pool_;  // borrowed; may be null
  std::size_t total_size_;    // initial (base) size; live count is atomic below
  std::vector<T> splitters_;  // immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<row_id_t> next_rid_{0};   // globally unique fresh row ids
  std::atomic<std::size_t> live_size_{0};
};

}  // namespace aidx
