// PartitionedCrackerColumn: parallel adaptive indexing by range partitioning.
//
// The design follows the two multi-core follow-ups to the EDBT 2012
// tutorial (see docs/CONCURRENCY.md for the full model):
//
//  - Alvarez et al., "Main Memory Adaptive Indexing for Multi-core
//    Systems": range-partition the base column into K partitions by value
//    and crack each partition independently — cracks in one partition never
//    move tuples in another, so disjoint partitions need no coordination.
//  - Graefe et al., "Concurrency Control for Adaptive Indexing": every
//    adaptive query is also a writer, so latch at the granularity of the
//    structure actually reorganized. They latch individual pieces; we take
//    the documented simplification of one latch per *partition* (the
//    partition is our unit of reorganization), which keeps the protocol
//    two-line simple while still letting queries over disjoint partitions
//    crack fully concurrently.
//
// Ownership: a PartitionedCrackerColumn owns its K shards (each an
// independent CrackerColumn plus one latch) and its splitter table; it
// *borrows* an optional ThreadPool for intra-query fan-out and never owns
// it — one pool typically serves many columns. The base span is copied at
// construction (same contract as CrackerColumn).
//
// Thread safety: Count, Sum, Materialize*, AggregatedStats, and
// ValidatePieces are safe to call from any number of threads concurrently;
// each takes the latches of only the partitions the predicate overlaps.
// Select (which returns raw per-partition position ranges) is the
// exception: positions are only stable while no other thread cracks the
// same partition, so it is for externally synchronized use — tests,
// single-threaded tools. The latch order is strictly ascending partition
// index and at most one latch is held at a time, so deadlock is impossible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/cracker_column.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {

/// Tuning knobs for a partitioned cracker column.
struct PartitionedCrackerOptions {
  /// Requested partition count K. The effective count can be lower when the
  /// data has fewer distinct values than K (duplicate splitters collapse).
  std::size_t num_partitions = 8;
  /// Applied to every per-partition CrackerColumn; the stochastic seed is
  /// perturbed per partition so partitions do not pick identical pivots.
  CrackerColumnOptions column_options = {};
  /// Splitters are equi-depth quantiles of a sample this large.
  std::size_t splitter_sample_size = 1024;
  std::uint64_t splitter_seed = 0xA24BAED4963EE407ULL;
};

/// One partition's share of a fanned-out Select.
struct PartitionSelect {
  std::size_t partition = 0;
  CrackSelect sel = {};
};

/// Per-partition results of PartitionedCrackerColumn::Select, in ascending
/// partition order. Positions are local to each partition's cracked array.
struct ParallelSelect {
  std::vector<PartitionSelect> partitions;
};

template <ColumnValue T>
class PartitionedCrackerColumn {
 public:
  /// Copies and scatters `base` into K value-range partitions. Row ids (when
  /// enabled in the options) are global base-column offsets, so projections
  /// compose with the rest of the system unchanged. `pool` is borrowed for
  /// intra-query fan-out; nullptr runs partition work inline.
  explicit PartitionedCrackerColumn(std::span<const T> base,
                                    PartitionedCrackerOptions options = {},
                                    ThreadPool* pool = nullptr)
      : options_(options), pool_(pool), total_size_(base.size()) {
    AIDX_CHECK(options_.num_partitions > 0);
    splitters_ = PickSplitters(base);
    const std::size_t k = splitters_.size() + 1;
    std::vector<std::vector<T>> values(k);
    std::vector<std::vector<row_id_t>> row_ids(k);
    const bool with_rids = options_.column_options.with_row_ids;
    for (auto& v : values) v.reserve(base.size() / k + 1);
    if (with_rids) {
      for (auto& r : row_ids) r.reserve(base.size() / k + 1);
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::size_t p = PartitionOf(base[i]);
      values[p].push_back(base[i]);
      if (with_rids) row_ids[p].push_back(static_cast<row_id_t>(i));
    }
    shards_.reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      CrackerColumnOptions per_shard = options_.column_options;
      per_shard.stochastic_seed += p;  // decorrelate stochastic pivots
      shards_.push_back(std::make_unique<Shard>(std::move(values[p]),
                                                std::move(row_ids[p]), per_shard));
    }
  }

  AIDX_DEFAULT_MOVE_ONLY(PartitionedCrackerColumn);

  /// Rows matching `pred` across all partitions (cracks as a side effect).
  /// Thread-safe.
  std::size_t Count(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {  // common narrow-predicate case: no fan-out state
      Shard& shard = *shards_[first];
      const std::lock_guard<std::mutex> guard(shard.latch);
      return shard.column.Count(pred);
    }
    std::vector<std::size_t> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      partial[slot] = shard.column.Count(pred);
    });
    std::size_t total = 0;
    for (const std::size_t c : partial) total += c;
    return total;
  }

  /// SUM of matching values across all partitions (cracks as a side
  /// effect). Thread-safe.
  long double Sum(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {
      Shard& shard = *shards_[first];
      const std::lock_guard<std::mutex> guard(shard.latch);
      return shard.column.Sum(pred);
    }
    std::vector<long double> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      partial[slot] = shard.column.Sum(pred);
    });
    long double total = 0;
    for (const long double s : partial) total += s;
    return total;
  }

  /// Appends matching values to `out`, grouped by ascending partition
  /// (order within the result is unspecified, as for CrackerColumn whose
  /// storage order is crack-dependent). Thread-safe: each partition is
  /// selected and materialized under its latch, so concurrent cracks
  /// cannot invalidate the positions in between.
  void MaterializeValues(const RangePredicate<T>& pred, std::vector<T>* out) {
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<T>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      const CrackSelect sel = shard.column.Select(pred);
      shard.column.MaterializeValues(sel, pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Appends the (global) row ids of matching values to `out`; same
  /// grouping and thread-safety as MaterializeValues.
  void MaterializeRowIds(const RangePredicate<T>& pred,
                         std::vector<row_id_t>* out) {
    AIDX_CHECK(options_.column_options.with_row_ids)
        << "column built without row ids";
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<row_id_t>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      const CrackSelect sel = shard.column.Select(pred);
      shard.column.MaterializeRowIds(sel, pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Fans the predicate out across the overlapping partitions and returns
  /// the per-partition CrackSelect results. NOT safe under concurrent
  /// queries: the returned positions are stable only until the next crack
  /// of the same partition (see file comment). Prefer Count/Sum/
  /// Materialize*, which resolve positions under the latch.
  ParallelSelect Select(const RangePredicate<T>& pred) {
    ParallelSelect out;
    if (pred.DefinitelyEmpty()) return out;
    const auto [first, last] = OverlapRange(pred);
    out.partitions.resize(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      const std::lock_guard<std::mutex> guard(shard.latch);
      out.partitions[slot] = {p, shard.column.Select(pred)};
    });
    return out;
  }

  /// Sum of all partitions' CrackerStats. Thread-safe (takes each latch).
  CrackerStats AggregatedStats() const {
    CrackerStats total;
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> guard(shard->latch);
      const CrackerStats& s = shard->column.stats();
      total.num_selects += s.num_selects;
      total.num_crack_in_two += s.num_crack_in_two;
      total.num_crack_in_three += s.num_crack_in_three;
      total.num_stochastic_cracks += s.num_stochastic_cracks;
      total.values_touched += s.values_touched;
    }
    return total;
  }

  std::size_t size() const { return total_size_; }
  std::size_t num_partitions() const { return shards_.size(); }
  /// Partition p holds values v with splitters()[p-1] <= v < splitters()[p]
  /// (unbounded at the extremes). Immutable after construction.
  std::span<const T> splitters() const { return splitters_; }
  const PartitionedCrackerOptions& options() const { return options_; }

  /// Read access to one partition's column, for tests and tools. The
  /// reference is unsynchronized: callers must ensure no concurrent
  /// queries while holding it.
  const CrackerColumn<T>& partition(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return shards_[p]->column;
  }

  /// Full invariant sweep: every partition validates its own pieces, sizes
  /// add up, and every partition's values respect the splitter bounds.
  /// O(n); tests only. Thread-safe.
  bool ValidatePieces() const {
    std::size_t seen = 0;
    for (std::size_t p = 0; p < shards_.size(); ++p) {
      const std::lock_guard<std::mutex> guard(shards_[p]->latch);
      const CrackerColumn<T>& column = shards_[p]->column;
      if (!column.ValidatePieces()) return false;
      seen += column.size();
      for (const T v : column.values()) {
        if (p > 0 && v < splitters_[p - 1]) return false;
        if (p < splitters_.size() && !(v < splitters_[p])) return false;
      }
    }
    return seen == total_size_;
  }

 private:
  struct Shard {
    Shard(std::vector<T> values, std::vector<row_id_t> row_ids,
          const CrackerColumnOptions& opts)
        : column(std::move(values), std::move(row_ids), opts) {}
    mutable std::mutex latch;  // guards `column`, including its stats
    CrackerColumn<T> column;
  };

  /// Equi-depth splitters from a value sample; sorted and distinct, so the
  /// effective partition count is splitters.size() + 1 <= num_partitions.
  std::vector<T> PickSplitters(std::span<const T> base) {
    const std::size_t k = options_.num_partitions;
    if (k <= 1 || base.size() < 2) return {};
    std::vector<T> sample;
    if (base.size() <= options_.splitter_sample_size) {
      sample.assign(base.begin(), base.end());
    } else {
      Rng rng(options_.splitter_seed);
      sample.reserve(options_.splitter_sample_size);
      for (std::size_t i = 0; i < options_.splitter_sample_size; ++i) {
        sample.push_back(base[rng.NextBounded(base.size())]);
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<T> splitters;
    splitters.reserve(k - 1);
    for (std::size_t s = 1; s < k; ++s) {
      const T candidate = sample[s * sample.size() / k];
      // Skipping candidates equal to the sample minimum avoids a
      // permanently empty partition 0; with a full sample this also caps
      // the partition count at the number of distinct values.
      if (candidate == sample.front()) continue;
      if (splitters.empty() || splitters.back() < candidate) {
        splitters.push_back(candidate);
      }
    }
    return splitters;
  }

  /// Index of the partition that stores value v.
  std::size_t PartitionOf(T v) const {
    // Number of splitters <= v (partition p starts at splitter p-1).
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), v) -
        splitters_.begin());
  }

  /// [first, last] partition indices the predicate can match. Routing is
  /// exact for realized bound kinds: an exclusive upper bound equal to a
  /// splitter stops at the partition below it.
  std::pair<std::size_t, std::size_t> OverlapRange(
      const RangePredicate<T>& pred) const {
    std::size_t first = 0;
    std::size_t last = shards_.size() - 1;
    if (pred.low_kind != BoundKind::kUnbounded) first = PartitionOf(pred.low);
    if (pred.high_kind == BoundKind::kInclusive) {
      last = PartitionOf(pred.high);
    } else if (pred.high_kind == BoundKind::kExclusive) {
      // Values < high live below the first splitter >= high.
      last = static_cast<std::size_t>(
          std::lower_bound(splitters_.begin(), splitters_.end(), pred.high) -
          splitters_.begin());
    }
    // low <= high after the DefinitelyEmpty early-out, hence first <= last.
    AIDX_DCHECK(first <= last);
    return {first, last};
  }

  /// Runs fn(partition, slot) for every partition in [first, last], on the
  /// borrowed pool when one is present and the fan-out is wider than one.
  template <typename Fn>
  void ForEachOverlapping(std::size_t first, std::size_t last, Fn&& fn) {
    const std::size_t count = last - first + 1;
    if (pool_ != nullptr && count > 1) {
      pool_->ParallelFor(count,
                         [&](std::size_t slot) { fn(first + slot, slot); });
    } else {
      for (std::size_t slot = 0; slot < count; ++slot) fn(first + slot, slot);
    }
  }

  PartitionedCrackerOptions options_;
  ThreadPool* pool_;  // borrowed; may be null
  std::size_t total_size_;
  std::vector<T> splitters_;  // immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aidx
