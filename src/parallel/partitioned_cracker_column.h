// PartitionedCrackerColumn: parallel adaptive indexing by range partitioning.
//
// The design follows the two multi-core follow-ups to the EDBT 2012
// tutorial (see docs/CONCURRENCY.md for the full model):
//
//  - Alvarez et al., "Main Memory Adaptive Indexing for Multi-core
//    Systems": range-partition the base column into K partitions by value
//    and crack each partition independently — cracks in one partition never
//    move tuples in another, so disjoint partitions need no coordination.
//  - Graefe et al., "Concurrency Control for Adaptive Indexing": every
//    adaptive query is also a writer, so latch at the granularity of the
//    structure actually reorganized — individual pieces, coordinated
//    through a short-duration latch on the cracker index.
//
// Two latch protocols are implemented, selected by LatchMode:
//
//  - kPartitionMutex: one mutex per partition (the PR-2 baseline). Queries
//    over disjoint partitions crack concurrently; queries into the same
//    partition serialize wholesale. Kept as the differential-testing and
//    benchmarking oracle for the striped mode.
//  - kStripedPiece (default): the Graefe-style piece protocol. Each
//    partition carries a fixed table of reader-writer stripe latches over
//    *position blocks* (a piece's stripe set is the hash of every block its
//    position range overlaps), a reader-writer `structural` latch, and a
//    reader-writer latch on the cracker index. A select takes shared
//    latches on what it only reads and exclusive stripe latches on the
//    (<= 2, plus stochastic pre-cracks) pieces it cracks, so two selects
//    into the same partition overlap whenever they crack disjoint pieces.
//    The full protocol, its acquisition order, and the correctness
//    argument live in docs/CONCURRENCY.md §4.
//
// Ownership: a PartitionedCrackerColumn owns its K shards (each an
// independent UpdatableCrackerColumn plus its latches) and its splitter
// table; it *borrows* an optional ThreadPool for intra-query fan-out and
// never owns it — one pool typically serves many columns. The base span is
// copied at construction (same contract as CrackerColumn).
//
// Thread safety: Count, Sum, Materialize*, Insert, Delete, InsertBatch,
// DeleteBatch, AggregatedStats, AggregatedUpdateStats, and ValidatePieces
// are safe to call from any number of threads concurrently under both
// latch modes. Select (which returns raw per-partition position ranges) is
// the exception: positions are only stable while no other thread cracks
// the same partition, so it is for externally synchronized use — tests,
// single-threaded tools.
//
// Writes route to the single partition owning their value (the splitter
// table is immutable, so routing needs no latch). Under kPartitionMutex —
// or kStripedPiece with WriteMode::kCoarseWrite — they queue in that
// partition's UpdatableCrackerColumn under whole-partition exclusion.
// Under the default striped write mode they instead take `structural`
// shared, route to the owning *piece* under that piece's exclusive stripe
// latches (with the same lookup -> latch -> re-validate retry loop the
// read path uses on piece subdivision), and land in a per-shard table of
// mutex-guarded write buckets keyed by value hash; a later exclusive hold
// drains the buckets into the shard's pending stores. Queries whose range
// overlaps buffered or pending tuples answer exactly from the shared path
// by overlaying the matching pending tuples, or fall back to the coarse
// merge path (docs/CONCURRENCY.md §4).
//
// A per-shard background-merge mode machine (Normal -> PrepareToMerge ->
// Merging -> Merged, modeled on the mode-switching hybrid-index design in
// SNIPPETS.md) moves pending-update absorption onto the borrowed
// ThreadPool: when buffered writes cross background_merge_threshold, a
// task drains and ripple-merges them in short exclusive chunks while
// readers keep answering from the shared overlay path (docs/UPDATES.md).
//
// Fresh row ids come from one atomic counter so they stay globally unique
// across partitions; the live tuple count is likewise an atomic,
// maintained outside any latch (docs/CONCURRENCY.md §3).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/cut.h"
#include "index/scan.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "update/updatable_column.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aidx {

/// Intra-partition latch protocol of a PartitionedCrackerColumn.
enum class LatchMode : char {
  /// One mutex per partition (PR-2 baseline; differential oracle).
  kPartitionMutex,
  /// Piece-granularity striped reader-writer latches (docs/CONCURRENCY.md §4).
  kStripedPiece,
};

inline const char* LatchModeName(LatchMode mode) {
  switch (mode) {
    case LatchMode::kPartitionMutex:
      return "partition-mutex";
    case LatchMode::kStripedPiece:
      return "striped-piece";
  }
  return "?";
}

/// Write-path protocol under kStripedPiece (kPartitionMutex always writes
/// coarsely).
enum class WriteMode : char {
  /// Whole-partition exclusion per write (the PR-5 behavior; differential
  /// oracle axis for the striped write path).
  kCoarseWrite,
  /// Piece-routed writes under `structural` shared + exclusive stripe
  /// latches, buffered in per-shard write buckets (docs/CONCURRENCY.md §4).
  kStripedWrite,
};

inline const char* WriteModeName(WriteMode mode) {
  switch (mode) {
    case WriteMode::kCoarseWrite:
      return "coarse-write";
    case WriteMode::kStripedWrite:
      return "striped-write";
  }
  return "?";
}

/// Background-merge state of one shard (SNIPPETS.md mode machine): Normal
/// until a merge is requested, PrepareToMerge while the merger waits for
/// in-flight shared-path readers to drain, Merging while pending updates
/// fold in chunked exclusive holds, Merged for the symmetric exit grace
/// period, then Normal again. Readers are never blocked by any state —
/// they answer from the shared overlay path while the machine is off
/// Normal.
enum class ShardMergeMode : int {
  kNormal = 0,
  kPrepareToMerge,
  kMerging,
  kMerged,
};

inline const char* ShardMergeModeName(ShardMergeMode mode) {
  switch (mode) {
    case ShardMergeMode::kNormal:
      return "normal";
    case ShardMergeMode::kPrepareToMerge:
      return "prepare-to-merge";
    case ShardMergeMode::kMerging:
      return "merging";
    case ShardMergeMode::kMerged:
      return "merged";
  }
  return "?";
}

/// Striped read-path routing counters: how many per-shard reads answered
/// from the shared fast path (no pending overlap), the shared overlay path
/// (pending overlap folded into the answer without merging), or the coarse
/// exclusive path. kStripedPiece only; kPartitionMutex reads count as
/// coarse.
struct StripedReadPathStats {
  std::size_t fast_reads = 0;
  std::size_t overlay_reads = 0;
  std::size_t coarse_reads = 0;
};

/// Fault-handling counters of the background-merge mode machine: how many
/// merge submissions failed (pool refusal or injected fault), how many
/// merge steps failed, how many of those were retried with backoff, and
/// how many shards gave up and degraded to foreground merging. Probed by
/// the chaos harness (tests/fault_schedule_test.cc) and docs/ROBUSTNESS.md.
struct BackgroundMergeStats {
  std::size_t submit_failures = 0;
  std::size_t step_failures = 0;
  std::size_t step_retries = 0;
  std::size_t degrades = 0;
};

/// Tuning knobs for a partitioned cracker column.
struct PartitionedCrackerOptions {
  /// Requested partition count K. The effective count can be lower when the
  /// data has fewer distinct values than K (duplicate splitters collapse).
  std::size_t num_partitions = 8;
  /// Applied to every per-partition CrackerColumn; the stochastic seed is
  /// perturbed per partition so partitions do not pick identical pivots.
  CrackerColumnOptions column_options = {};
  /// Splitters are equi-depth quantiles of a sample this large.
  std::size_t splitter_sample_size = 1024;
  std::uint64_t splitter_seed = 0xA24BAED4963EE407ULL;
  /// Update-merge policy applied by every partition's update pipeline.
  MergePolicy merge_policy = MergePolicy::kRipple;
  std::size_t gradual_budget = 64;
  /// Intra-partition latch protocol.
  LatchMode latch_mode = LatchMode::kStripedPiece;
  /// Stripe-latch table size per partition under kStripedPiece, clamped to
  /// [1, 64]. More stripes = fewer false conflicts between disjoint pieces,
  /// at a few hundred bytes per partition.
  std::size_t latch_stripes = 16;
  /// Write-path protocol under kStripedPiece (ignored in kPartitionMutex).
  WriteMode write_mode = WriteMode::kStripedWrite;
  /// Grow each shard's *active* stripe count with its realized cut count
  /// (starting small, doubling up to latch_stripes) instead of hashing into
  /// the full table from the first query. Latch-table memory is allocated
  /// at the cap either way; this only tunes the block -> stripe mapping.
  bool adaptive_stripes = true;
  /// Buffered writes per shard that trigger a background merge on the
  /// borrowed pool (0 disables the mode machine; writes then merge on the
  /// next coarse-path query, the PR-5 behavior).
  std::size_t background_merge_threshold = 0;
  /// Pending tuples folded per exclusive hold by a background merge; the
  /// latch is released (and readers admitted) between chunks.
  std::size_t background_merge_chunk = 128;
};

/// One partition's share of a fanned-out Select.
struct PartitionSelect {
  std::size_t partition = 0;
  CrackSelect sel = {};
};

/// Per-partition results of PartitionedCrackerColumn::Select, in ascending
/// partition order. Positions are local to each partition's cracked array.
struct ParallelSelect {
  std::vector<PartitionSelect> partitions;
};

template <ColumnValue T>
class PartitionedCrackerColumn {
 public:
  /// Copies and scatters `base` into K value-range partitions. Row ids (when
  /// enabled in the options) are global base-column offsets, so projections
  /// compose with the rest of the system unchanged. `pool` is borrowed for
  /// intra-query fan-out; nullptr runs partition work inline.
  explicit PartitionedCrackerColumn(std::span<const T> base,
                                    PartitionedCrackerOptions options = {},
                                    ThreadPool* pool = nullptr)
      : options_(options), pool_(pool), total_size_(base.size()) {
    AIDX_CHECK(options_.num_partitions > 0);
    splitters_ = PickSplitters(base);
    const std::size_t k = splitters_.size() + 1;
    std::vector<std::vector<T>> values(k);
    std::vector<std::vector<row_id_t>> row_ids(k);
    const bool with_rids = options_.column_options.with_row_ids;
    for (auto& v : values) v.reserve(base.size() / k + 1);
    if (with_rids) {
      for (auto& r : row_ids) r.reserve(base.size() / k + 1);
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::size_t p = PartitionOf(base[i]);
      values[p].push_back(base[i]);
      if (with_rids) row_ids[p].push_back(static_cast<row_id_t>(i));
    }
    shards_.reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      CrackerColumnOptions per_shard = options_.column_options;
      per_shard.stochastic_seed += p;  // decorrelate stochastic pivots
      shards_.push_back(std::make_unique<Shard>(std::move(values[p]),
                                                std::move(row_ids[p]), per_shard,
                                                options_, p));
    }
    next_rid_.store(static_cast<row_id_t>(base.size()), std::memory_order_relaxed);
    live_size_.store(base.size(), std::memory_order_relaxed);
  }

  /// Stops accepting background merges and waits for in-flight ones —
  /// their tasks capture `this`, so the column must outlive them. Tasks
  /// observe `shutting_down_` at chunk boundaries and bail early; tasks the
  /// pool drops unstarted release their completion ticket when the closure
  /// is destroyed, so this wait terminates under every shutdown order.
  ~PartitionedCrackerColumn() {
    shutting_down_.store(true, std::memory_order_release);
    WaitForBackgroundMerges();
  }

  // Atomic members rule out the defaulted moves; shards are unique_ptrs,
  // so moving transfers them (and the latches inside) untouched. Callers
  // must not move a column while other threads use it, as everywhere —
  // background merge tasks count as users, so moves first drain them (they
  // capture the old `this`).
  AIDX_DISALLOW_COPY_AND_ASSIGN(PartitionedCrackerColumn);
  PartitionedCrackerColumn(PartitionedCrackerColumn&& other) noexcept
      : options_((other.WaitForBackgroundMerges(), std::move(other.options_))),
        pool_(other.pool_),
        total_size_(other.total_size_),
        splitters_(std::move(other.splitters_)),
        shards_(std::move(other.shards_)),
        next_rid_(other.next_rid_.load(std::memory_order_relaxed)),
        live_size_(other.live_size_.load(std::memory_order_relaxed)) {}
  PartitionedCrackerColumn& operator=(PartitionedCrackerColumn&& other) noexcept {
    if (this != &other) {
      WaitForBackgroundMerges();
      other.WaitForBackgroundMerges();
      options_ = std::move(other.options_);
      pool_ = other.pool_;
      total_size_ = other.total_size_;
      splitters_ = std::move(other.splitters_);
      shards_ = std::move(other.shards_);
      next_rid_.store(other.next_rid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      live_size_.store(other.live_size_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    return *this;
  }

  /// Queues an insert in the partition owning `value` and returns the
  /// globally unique row id assigned to the fresh tuple. Striped write
  /// mode routes to the owning piece under `structural` shared plus that
  /// piece's exclusive stripes and buffers in a write bucket; otherwise the
  /// insert queues under whole-partition exclusion. Either way the tuple
  /// merges into the cracked array when a later query needs its range —
  /// the same adaptive bargain as the single-threaded pipeline.
  /// Thread-safe.
  row_id_t Insert(T value) {
    const row_id_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = *shards_[PartitionOf(value)];
    if (UseStripedWrites()) {
      {
        const std::shared_lock<std::shared_mutex> structural(shard.structural);
        StripedEnqueueInsertLocked(shard, value, rid);
      }
      MaybeTriggerBackgroundMerge(shard);
    } else {
      WithShardExclusive(shard,
                         [&] { shard.column.InsertWithRid(value, rid); });
    }
    live_size_.fetch_add(1, std::memory_order_relaxed);
    return rid;
  }

  /// Queues inserts for a batch of values, grouped by owning partition so
  /// each partition latch is taken once per batch instead of once per
  /// tuple. Row ids for the whole batch are reserved with one atomic bump
  /// and assigned in batch order, so the result is indistinguishable from
  /// the equivalent Insert loop. Latches are taken one at a time in
  /// ascending partition order — the standard latch protocol, so batch
  /// writers compose with everything else. Thread-safe.
  void InsertBatch(std::span<const T> batch) {
    if (batch.empty()) return;
    const row_id_t first_rid =
        next_rid_.fetch_add(static_cast<row_id_t>(batch.size()),
                            std::memory_order_relaxed);
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      if (UseStripedWrites()) {
        {
          const std::shared_lock<std::shared_mutex> structural(shard.structural);
          for (const std::size_t i : groups[p]) {
            StripedEnqueueInsertLocked(shard, batch[i],
                                       first_rid + static_cast<row_id_t>(i));
          }
        }
        MaybeTriggerBackgroundMerge(shard);
      } else {
        WithShardExclusive(shard, [&] {
          for (const std::size_t i : groups[p]) {
            shard.column.InsertWithRid(batch[i],
                                       first_rid + static_cast<row_id_t>(i));
          }
        });
      }
    }
    live_size_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  /// Deletes one live tuple equal to `value` from its owning partition;
  /// false when absent. Striped write mode runs the existence probe (a
  /// point resolve, which cracks — a delete is a query here too) under
  /// `structural` shared and buffers the surviving delete in a write
  /// bucket; otherwise the whole operation runs under whole-partition
  /// exclusion. Thread-safe.
  bool Delete(T value) {
    Shard& shard = *shards_[PartitionOf(value)];
    bool deleted;
    if (UseStripedWrites()) {
      {
        const std::shared_lock<std::shared_mutex> structural(shard.structural);
        deleted = StripedDeleteLocked(shard, value);
      }
      MaybeTriggerBackgroundMerge(shard);
    } else {
      deleted = WithShardExclusive(
          shard, [&] { return shard.column.DeleteValue(value); });
    }
    if (deleted) live_size_.fetch_sub(1, std::memory_order_relaxed);
    return deleted;
  }

  /// Deletes one live tuple per batch entry (multiset semantics, same as a
  /// Delete loop) with one latch acquisition per touched partition.
  /// Returns how many tuples were actually deleted. Thread-safe.
  std::size_t DeleteBatch(std::span<const T> batch) {
    if (batch.empty()) return 0;
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    std::size_t deleted = 0;
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      if (UseStripedWrites()) {
        {
          const std::shared_lock<std::shared_mutex> structural(shard.structural);
          for (const std::size_t i : groups[p]) {
            deleted += StripedDeleteLocked(shard, batch[i]) ? 1 : 0;
          }
        }
        MaybeTriggerBackgroundMerge(shard);
      } else {
        WithShardExclusive(shard, [&] {
          for (const std::size_t i : groups[p]) {
            deleted += shard.column.DeleteValue(batch[i]) ? 1 : 0;
          }
        });
      }
    }
    live_size_.fetch_sub(deleted, std::memory_order_relaxed);
    return deleted;
  }

  /// Rows matching `pred` across all partitions (cracks as a side effect).
  /// Thread-safe.
  std::size_t Count(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {  // common narrow-predicate case: no fan-out state
      return CountShard(*shards_[first], pred);
    }
    std::vector<std::size_t> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      partial[slot] = CountShard(*shards_[p], pred);
    });
    std::size_t total = 0;
    for (const std::size_t c : partial) total += c;
    return total;
  }

  /// SUM of matching values across all partitions (cracks as a side
  /// effect). Thread-safe.
  long double Sum(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {
      return SumShard(*shards_[first], pred);
    }
    std::vector<long double> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      partial[slot] = SumShard(*shards_[p], pred);
    });
    long double total = 0;
    for (const long double s : partial) total += s;
    return total;
  }

  /// Deadline/cancellation-aware Count: the context gates each shard of
  /// the fan-out, so an expiring query stops investing after the shard it
  /// is in. Cracks already realized in visited shards are kept — they are
  /// ordinary incremental indexing investment, and the column stays
  /// ValidatePieces-clean. Thread-safe.
  Result<std::size_t> Count(const RangePredicate<T>& pred,
                            const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    if (pred.DefinitelyEmpty()) return std::size_t{0};
    const auto [first, last] = OverlapRange(pred);
    if (first == last) return CountShard(*shards_[first], pred);
    std::atomic<bool> expired{false};
    std::vector<std::size_t> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      if (expired.load(std::memory_order_relaxed)) return;
      if (!ctx.Check().ok()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      partial[slot] = CountShard(*shards_[p], pred);
    });
    AIDX_RETURN_NOT_OK(ctx.Check());
    std::size_t total = 0;
    for (const std::size_t c : partial) total += c;
    return total;
  }

  /// Deadline/cancellation-aware Sum; same per-shard gating as the Count
  /// overload. Thread-safe.
  Result<long double> Sum(const RangePredicate<T>& pred,
                          const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    if (pred.DefinitelyEmpty()) return static_cast<long double>(0);
    const auto [first, last] = OverlapRange(pred);
    if (first == last) return SumShard(*shards_[first], pred);
    std::atomic<bool> expired{false};
    std::vector<long double> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      if (expired.load(std::memory_order_relaxed)) return;
      if (!ctx.Check().ok()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      partial[slot] = SumShard(*shards_[p], pred);
    });
    AIDX_RETURN_NOT_OK(ctx.Check());
    long double total = 0;
    for (const long double s : partial) total += s;
    return total;
  }

  /// Appends matching values to `out`, grouped by ascending partition
  /// (order within the result is unspecified, as for CrackerColumn whose
  /// storage order is crack-dependent). Thread-safe: each partition's
  /// positions are resolved and consumed under that partition's latches,
  /// so concurrent cracks cannot invalidate them in between.
  void MaterializeValues(const RangePredicate<T>& pred, std::vector<T>* out) {
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<T>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      MaterializeShardValues(*shards_[p], pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Appends the (global) row ids of matching values to `out`; same
  /// grouping and thread-safety as MaterializeValues.
  void MaterializeRowIds(const RangePredicate<T>& pred,
                         std::vector<row_id_t>* out) {
    AIDX_CHECK(options_.column_options.with_row_ids)
        << "column built without row ids";
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<row_id_t>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      MaterializeShardRowIds(*shards_[p], pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Fans the predicate out across the overlapping partitions and returns
  /// the per-partition CrackSelect results. NOT safe under concurrent
  /// queries: the returned positions are stable only until the next crack
  /// of the same partition (see file comment). Prefer Count/Sum/
  /// Materialize*, which resolve positions under the latches.
  ParallelSelect Select(const RangePredicate<T>& pred) {
    ParallelSelect out;
    if (pred.DefinitelyEmpty()) return out;
    const auto [first, last] = OverlapRange(pred);
    out.partitions.resize(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      WithShardExclusive(shard, [&] {
        DrainStripedPending(shard);
        shard.column.MergePendingFor(pred);
        out.partitions[slot] = {p, shard.column.Select(pred)};
      });
    });
    return out;
  }

  /// Sum of all partitions' CrackerStats, including the work performed by
  /// the striped fast path. Thread-safe (whole-partition exclusion per
  /// shard).
  CrackerStats AggregatedStats() const {
    CrackerStats total;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        const CrackerStats& s = shard->column.stats();
        total.num_selects += s.num_selects;
        total.num_crack_in_two += s.num_crack_in_two;
        total.num_crack_in_three += s.num_crack_in_three;
        total.num_stochastic_cracks += s.num_stochastic_cracks;
        total.values_touched += s.values_touched;
      });
      const StripedShardStats& f = shard->striped_stats;
      total.num_selects += f.num_selects.load(std::memory_order_relaxed);
      total.num_crack_in_two += f.num_crack_in_two.load(std::memory_order_relaxed);
      total.num_crack_in_three +=
          f.num_crack_in_three.load(std::memory_order_relaxed);
      total.num_stochastic_cracks +=
          f.num_stochastic_cracks.load(std::memory_order_relaxed);
      total.values_touched += f.values_touched.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Piece serialization (parallel/piece_transfer.h): visits every
  /// realized cut across partitions — partitions in value order, cuts
  /// ascending within each, so the walk is globally ascending — under
  /// whole-partition exclusion. `fn(const Cut<T>&)` per cut. Thread-safe.
  template <typename Fn>
  void VisitRealizedCuts(Fn&& fn) const {
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        shard->column.index().VisitCuts(
            [&](const Cut<T>& cut, const std::size_t&) { fn(cut); });
      });
    }
  }

  /// Realized piece count summed over partitions (a fresh partition is one
  /// piece). Thread-safe.
  std::size_t aggregated_num_pieces() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard,
                         [&] { total += shard->column.index().num_pieces(); });
    }
    return total;
  }

  /// Sum of all partitions' update-pipeline counters, including writes
  /// still buffered in the striped write buckets (queue-side counters live
  /// in shard atomics; merge-side counters live in the inner columns, and
  /// adopting a bucket tuple into a pending store never re-counts it).
  /// Thread-safe.
  UpdateStats AggregatedUpdateStats() const {
    UpdateStats total;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        const UpdateStats& s = shard->column.update_stats();
        total.inserts_queued += s.inserts_queued;
        total.deletes_queued += s.deletes_queued;
        total.deletes_cancelled += s.deletes_cancelled;
        total.inserts_merged += s.inserts_merged;
        total.deletes_merged += s.deletes_merged;
        total.ripple_element_moves += s.ripple_element_moves;
      });
      total.inserts_queued +=
          shard->striped_inserts_queued.load(std::memory_order_relaxed);
      total.deletes_queued +=
          shard->striped_deletes_queued.load(std::memory_order_relaxed);
      total.deletes_cancelled +=
          shard->striped_deletes_cancelled.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Sum of all partitions' striped read-path routing counters. Thread-safe
  /// (relaxed counter sums).
  StripedReadPathStats AggregatedReadPathStats() const {
    StripedReadPathStats total;
    for (const auto& shard : shards_) {
      total.fast_reads +=
          shard->fast_reads.load(std::memory_order_relaxed);
      total.overlay_reads +=
          shard->overlay_reads.load(std::memory_order_relaxed);
      total.coarse_reads +=
          shard->coarse_reads.load(std::memory_order_relaxed);
    }
    return total;
  }

  // -- Background-merge mode machine (docs/UPDATES.md) ---------------------

  /// Asks the borrowed pool to absorb partition `p`'s buffered and pending
  /// updates off the query path. Returns false (and changes nothing) when
  /// the machine cannot run: no pool / no pool workers / kPartitionMutex /
  /// shutting down / the shard is already off Normal. Thread-safe; the
  /// write path calls this automatically once buffered writes cross
  /// background_merge_threshold.
  bool RequestBackgroundMerge(std::size_t p) {
    AIDX_CHECK(p < shards_.size());
    if (pool_ == nullptr || pool_->num_threads() == 0) return false;
    if (options_.latch_mode != LatchMode::kStripedPiece) return false;
    if (shutting_down_.load(std::memory_order_acquire)) return false;
    Shard& shard = *shards_[p];
    if (shard.degraded.load(std::memory_order_acquire)) return false;
    if (AIDX_PREDICT_FALSE(
            !failpoints::parallel_bg_submit.Inject().ok())) {
      return NoteSubmitFailure(shard);
    }
    int expected = static_cast<int>(ShardMergeMode::kNormal);
    if (!shard.mode.compare_exchange_strong(
            expected, static_cast<int>(ShardMergeMode::kPrepareToMerge),
            std::memory_order_acq_rel)) {
      return false;  // a merge is already in flight for this shard
    }
    background_tasks_.fetch_add(1, std::memory_order_acq_rel);
    // The ticket's destructor releases the task slot AND repairs the mode
    // machine: a closure the pool drops unstarted at shutdown never runs
    // RunBackgroundMerge, so without the CAS the shard would wedge in
    // PrepareToMerge forever. A ticket destroyed after a completed run
    // finds the mode past PrepareToMerge and the CAS is a no-op.
    auto ticket = std::shared_ptr<void>(
        static_cast<void*>(nullptr), [this, p](void*) {
          int prepared = static_cast<int>(ShardMergeMode::kPrepareToMerge);
          shards_[p]->mode.compare_exchange_strong(
              prepared, static_cast<int>(ShardMergeMode::kNormal),
              std::memory_order_acq_rel);
          background_tasks_.fetch_sub(1, std::memory_order_acq_rel);
        });
    if (!pool_->TrySubmit([this, p, ticket] { RunBackgroundMerge(p); })) {
      shard.mode.store(static_cast<int>(ShardMergeMode::kNormal),
                       std::memory_order_release);
      return NoteSubmitFailure(shard);
    }
    shard.consecutive_submit_failures.store(0, std::memory_order_relaxed);
    return true;
  }

  /// Blocks until no background merge task is queued or running. Callers
  /// that assert on post-merge state (tests, FlushPending) use this to make
  /// the machine quiescent.
  void WaitForBackgroundMerges() const {
    while (background_tasks_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  /// Foreground drain: waits out background merges, then folds every
  /// buffered and pending update of every partition. Afterwards all
  /// pending stores are empty and queries take the fast path until the
  /// next write. Thread-safe.
  void FlushPending() {
    WaitForBackgroundMerges();
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        MaybeGrowStripes(*shard);
        DrainStripedPending(*shard);
        shard->column.MergePendingFor(RangePredicate<T>::All());
      });
      // A full foreground drain is a clean slate: give previously degraded
      // shards another shot at background merging.
      shard->degraded.store(false, std::memory_order_release);
      shard->consecutive_submit_failures.store(0, std::memory_order_relaxed);
    }
  }

  /// Partition p's current mode-machine state. Thread-safe (atomic load);
  /// the state can change the moment this returns.
  ShardMergeMode shard_mode(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return static_cast<ShardMergeMode>(
        shards_[p]->mode.load(std::memory_order_acquire));
  }

  /// True when partition p has given up on background merging (after
  /// exhausting merge-step retries or repeated submission failures) and
  /// parks its buffered writes for foreground absorption: the next
  /// threshold-crossing writer, coarse-path query, or FlushPending merges
  /// them inline. No write is ever dropped. FlushPending resets the flag.
  /// Thread-safe.
  bool shard_degraded(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return shards_[p]->degraded.load(std::memory_order_acquire);
  }

  /// Fault counters of the mode machine (submission failures, merge-step
  /// failures, backoff retries, foreground degrades). Thread-safe.
  BackgroundMergeStats background_merge_stats() const {
    BackgroundMergeStats s;
    s.submit_failures = bg_submit_failures_.load(std::memory_order_relaxed);
    s.step_failures = bg_step_failures_.load(std::memory_order_relaxed);
    s.step_retries = bg_step_retries_.load(std::memory_order_relaxed);
    s.degrades = bg_degrades_.load(std::memory_order_relaxed);
    return s;
  }

  /// Updates not yet folded into any cracked array: striped write-bucket
  /// tuples plus the per-partition pending stores. Thread-safe, but exact
  /// only when no writer or merger is concurrently in flight.
  std::size_t pending_update_count() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        total += shard->column.num_pending_inserts() +
                 shard->column.num_pending_deletes();
      });
      total += shard->buffered_writes.load(std::memory_order_acquire);
    }
    return total;
  }
  // ------------------------------------------------------------------------

  /// Current live tuple count (base minus deletes plus inserts, including
  /// still-pending ones). Thread-safe.
  std::size_t size() const { return live_size_.load(std::memory_order_relaxed); }
  std::size_t num_partitions() const { return shards_.size(); }
  /// Stripe-latch table capacity per partition (1 in kPartitionMutex mode;
  /// the clamped latch_stripes option otherwise).
  std::size_t latch_stripes() const { return shards_.front()->stripes.size(); }
  /// Partition p's *active* stripe count — how many of the allocated
  /// stripes the block hash currently maps to. Starts small and doubles
  /// with realized cuts under adaptive_stripes; pinned at the capacity
  /// otherwise. Thread-safe.
  std::size_t active_stripes(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    const std::shared_lock<std::shared_mutex> guard(shards_[p]->structural);
    return shards_[p]->active_stripes;
  }
  /// Partition p holds values v with splitters()[p-1] <= v < splitters()[p]
  /// (unbounded at the extremes). Immutable after construction.
  std::span<const T> splitters() const { return splitters_; }
  const PartitionedCrackerOptions& options() const { return options_; }

  /// Read access to one partition's column, for tests and tools. The
  /// reference is unsynchronized: callers must ensure no concurrent
  /// queries while holding it.
  const CrackerColumn<T>& partition(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return shards_[p]->column;
  }

  /// Full invariant sweep: every partition validates its own pieces, live
  /// sizes add up, and every partition's values respect the splitter
  /// bounds. O(n); tests only. Thread-safe, but the total-size check is
  /// meaningful only when no writer is concurrently in flight.
  bool ValidatePieces() const {
    std::size_t live_seen = 0;
    bool ok = true;
    for (std::size_t p = 0; p < shards_.size(); ++p) {
      WithShardExclusive(*shards_[p], [&] {
        Shard& shard = *shards_[p];
        const UpdatableCrackerColumn<T>& column = shard.column;
        if (!column.Validate()) {
          ok = false;
          return;
        }
        std::size_t shard_live = column.live_size();
        for (WriteBucket& bucket : shard.write_buckets) {
          const std::lock_guard<std::mutex> bl(bucket.mu);
          // Buffered deletes claim tuples that are still physically live
          // (in the array or a pending store), so this never underflows.
          shard_live += bucket.inserts.size();
          shard_live -= bucket.deletes.size();
          for (const StripedPendingTuple& t : bucket.inserts) {
            if (PartitionOf(t.value) != p) ok = false;
          }
          for (const StripedPendingTuple& t : bucket.deletes) {
            if (PartitionOf(t.value) != p) ok = false;
          }
        }
        live_seen += shard_live;
        for (const T v : column.values()) {
          if (p > 0 && v < splitters_[p - 1]) ok = false;
          if (p < splitters_.size() && !(v < splitters_[p])) ok = false;
        }
      });
      if (!ok) return false;
    }
    return live_seen == size();
  }

 private:
  /// Upper bound on the stripe table (stripe sets travel as 64-bit masks).
  static constexpr std::size_t kMaxLatchStripes = 64;
  /// Positions are hashed to stripes in blocks of 2^kStripeBlockShift, so
  /// pieces smaller than a block still get distinct stripes once they land
  /// in distinct blocks, while a huge early piece simply covers every
  /// stripe (equivalent to whole-partition exclusion — which it is).
  static constexpr std::size_t kStripeBlockShift = 8;
  /// Initial active stripe count under adaptive_stripes: a nearly uncracked
  /// shard has few pieces, so a few wide stripes conflict no more than many
  /// narrow ones and cost fewer latch acquisitions per piece.
  static constexpr std::size_t kInitialActiveStripes = 4;
  /// Per-shard slots for the free-status registry (threads hash into one).
  static constexpr std::size_t kFreeStatusSlots = 32;
  /// Hard ceiling on chunked exclusive holds per background merge run, so
  /// sustained writer pressure hands the remainder to the next trigger
  /// instead of pinning a pool worker forever.
  static constexpr std::size_t kMaxBackgroundRounds = 1 << 16;
  /// Consecutive merge-step (or submission) failures tolerated before a
  /// shard degrades to foreground merging (docs/ROBUSTNESS.md ladder).
  static constexpr int kBackgroundMergeMaxRetries = 3;
  /// Capped exponential backoff between merge-step retries. Short on
  /// purpose: a failing merge holds nothing, and readers keep answering
  /// from the overlay path while it sleeps.
  static constexpr std::uint64_t kBackgroundRetryBaseMicros = 200;
  static constexpr std::uint64_t kBackgroundRetryCapMicros = 2000;

  /// A buffered striped-path write (rid is kPendingNoRid for deletes).
  struct StripedPendingTuple {
    T value;
    row_id_t rid;
  };

  /// One mutex-guarded segment of a shard's striped write buffer. Writes
  /// hash to a bucket by *value*, so the bucket a tuple lands in is stable
  /// across piece subdivision and same-value insert/delete pairs always
  /// meet (and cancel) in the same bucket. Bucket mutexes are leaves of
  /// the latch order: acquired under `structural` (any polarity), possibly
  /// under stripe latches, and nothing is acquired while one is held.
  struct WriteBucket {
    mutable std::mutex mu;
    std::vector<StripedPendingTuple> inserts;
    std::vector<StripedPendingTuple> deletes;
  };

  /// Fast-path work counters (kStripedPiece). Relaxed atomics: bumped under
  /// shared latches, aggregated into CrackerStats by AggregatedStats.
  struct StripedShardStats {
    std::atomic<std::size_t> num_selects{0};
    std::atomic<std::size_t> num_crack_in_two{0};
    std::atomic<std::size_t> num_crack_in_three{0};
    std::atomic<std::size_t> num_stochastic_cracks{0};
    std::atomic<std::size_t> values_touched{0};
  };

  struct Shard {
    Shard(std::vector<T> values, std::vector<row_id_t> row_ids,
          const CrackerColumnOptions& opts, const PartitionedCrackerOptions& parent,
          std::size_t self_index)
        : stripes(parent.latch_mode == LatchMode::kStripedPiece
                      ? std::clamp<std::size_t>(parent.latch_stripes, 1,
                                                kMaxLatchStripes)
                      : 1),
          write_buckets(stripes.size()),
          active_stripes(parent.latch_mode == LatchMode::kStripedPiece &&
                                 parent.adaptive_stripes
                             ? std::min(kInitialActiveStripes, stripes.size())
                             : stripes.size()),
          index(self_index),
          // Same seed as the inner column's stochastic rng: single-threaded
          // pure-query runs then pick identical pivots in both latch modes,
          // which is what pins the differential stat-parity tests.
          rng(opts.stochastic_seed),
          column(std::move(values), std::move(row_ids),
                 typename UpdatableCrackerColumn<T>::Options{
                     .policy = parent.merge_policy,
                     .gradual_budget = parent.gradual_budget,
                     .crack = opts},
                 /*first_fresh_rid=*/0) {}

    // kPartitionMutex: the whole protocol — this latch guards `column`,
    // including its stats and pending stores.
    mutable std::mutex latch;

    // kStripedPiece (docs/CONCURRENCY.md §4). Latch order: structural ->
    // stripes (ascending) -> {index_latch | write-bucket mu | rng_latch},
    // the three leaves (nothing is acquired while holding any of them).
    //
    // `structural`: shared by every query that relies on realized cut
    // positions staying put and the arrays staying the same size, and by
    // striped writes (which mutate only the write buckets); exclusive by
    // everything that breaks those invariants — pending-update merges,
    // bucket drains, stripe-count growth, and the wholesale slow path.
    mutable std::shared_mutex structural;
    // One reader-writer latch per stripe; a piece holds the stripes its
    // position blocks hash to — shared to read values, exclusive to
    // permute them (reads) or to serialize piece-routed writes.
    mutable std::vector<std::shared_mutex> stripes;
    // Guards the cracker index: shared for lookups, exclusive to register
    // cuts.
    mutable std::shared_mutex index_latch;
    mutable std::mutex rng_latch;  // stochastic pivots on the fast path
    StripedShardStats striped_stats;

    // -- Striped write path --------------------------------------------------
    mutable std::vector<WriteBucket> write_buckets;
    // Total tuples across this shard's buckets; a cheap zero probe for the
    // read path and the background-merge trigger.
    std::atomic<std::size_t> buffered_writes{0};
    // Conservative value bounds over every buffered tuple (inserts and
    // queued deletes): widened before the buffered_writes bump at enqueue
    // (the bump's release publishes them), reset only when the buckets
    // drain under exclusion. Reads whose predicate misses [min, max]
    // dismiss the whole buffer with two relaxed loads instead of walking
    // every bucket mutex.
    std::atomic<T> buffered_min{std::numeric_limits<T>::max()};
    std::atomic<T> buffered_max{std::numeric_limits<T>::lowest()};
    // Queue-side update counters for buffered writes (the merge-side
    // counters accrue in `column` when the tuples are adopted and merged).
    std::atomic<std::size_t> striped_inserts_queued{0};
    std::atomic<std::size_t> striped_deletes_queued{0};
    std::atomic<std::size_t> striped_deletes_cancelled{0};
    // Read-path routing counters (docs/CONCURRENCY.md §4).
    std::atomic<std::size_t> fast_reads{0};
    std::atomic<std::size_t> overlay_reads{0};
    std::atomic<std::size_t> coarse_reads{0};

    // -- Background-merge mode machine (docs/UPDATES.md) ---------------------
    std::atomic<int> mode{static_cast<int>(ShardMergeMode::kNormal)};
    // Set when background merging gave up on this shard (retries exhausted
    // or repeated submission failures): buffered writes then merge in the
    // foreground instead. Reset by FlushPending.
    std::atomic<bool> degraded{false};
    std::atomic<int> consecutive_submit_failures{0};
    // Shared-path readers bump their slot while inside `structural` shared;
    // the merger's grace waits observe every slot at zero once before and
    // after the Merging window (advisory pacing — correctness comes from
    // the latches; see docs/CONCURRENCY.md §4).
    mutable std::array<std::atomic<int>, kFreeStatusSlots> free_status{};

    // -- Adaptive striping ---------------------------------------------------
    // Guarded by `structural` (read shared, written exclusive). Growth only
    // happens under structural exclusive, when no thread can hold a stripe
    // latch, so the block -> stripe mapping never changes under a holder.
    std::size_t active_stripes;
    // Relaxed mirror of the index's cut count, bumped at striped-path cut
    // registration and re-synced on every exclusive hold; lets the shared
    // path decide cheaply whether growth is worth attempting.
    std::atomic<std::size_t> realized_cuts{0};

    const std::size_t index;  // own partition number (for merge requests)
    Rng rng;
    UpdatableCrackerColumn<T> column;
  };

  /// RAII slot registration in a shard's free-status table: constructed by
  /// every shared-path read while it holds `structural` shared.
  class FreeStatusGuard {
   public:
    explicit FreeStatusGuard(const Shard& shard)
        : slot_(&shard.free_status[SlotOfThisThread()]) {
      slot_->fetch_add(1, std::memory_order_acq_rel);
    }
    ~FreeStatusGuard() { slot_->fetch_sub(1, std::memory_order_release); }
    AIDX_DISALLOW_COPY_AND_ASSIGN(FreeStatusGuard);

   private:
    static std::size_t SlotOfThisThread() {
      // Hashing a thread::id is not free; every shared-path read takes a
      // guard, so the slot is computed once per thread.
      static const thread_local std::size_t slot =
          std::hash<std::thread::id>{}(std::this_thread::get_id()) %
          kFreeStatusSlots;
      return slot;
    }
    std::atomic<int>* slot_;
  };

  /// True when `pred` can match some value in [lo, hi] — the buffered-write
  /// bounds filter. Exact interval arithmetic, conservative only through
  /// its inputs (the bounds never shrink on cancellation).
  static bool PredicateTouchesRange(const RangePredicate<T>& pred, T lo, T hi) {
    if (lo > hi) return false;  // empty bounds: nothing buffered since reset
    if (pred.low_kind != BoundKind::kUnbounded &&
        (pred.low > hi ||
         (pred.low_kind == BoundKind::kExclusive && pred.low >= hi))) {
      return false;
    }
    if (pred.high_kind != BoundKind::kUnbounded &&
        (pred.high < lo ||
         (pred.high_kind == BoundKind::kExclusive && pred.high <= lo))) {
      return false;
    }
    return true;
  }

  /// Widens a shard's buffered-value bounds to cover `value`. Called before
  /// the buffered_writes bump whose release ordering publishes the widened
  /// bounds to any reader that observes the new count.
  static void WidenBufferedBounds(Shard& shard, T value) {
    T lo = shard.buffered_min.load(std::memory_order_relaxed);
    while (value < lo && !shard.buffered_min.compare_exchange_weak(
                             lo, value, std::memory_order_relaxed)) {
    }
    T hi = shard.buffered_max.load(std::memory_order_relaxed);
    while (value > hi && !shard.buffered_max.compare_exchange_weak(
                             hi, value, std::memory_order_relaxed)) {
    }
  }

  /// RAII over one ordered acquisition of a stripe mask. Bits are acquired
  /// in ascending stripe order — with at most one mask held per thread this
  /// makes stripe deadlock impossible (docs/CONCURRENCY.md §4).
  class StripeLockSet {
   public:
    StripeLockSet(std::vector<std::shared_mutex>* stripes, std::uint64_t mask,
                  bool exclusive)
        : stripes_(stripes), mask_(mask), exclusive_(exclusive) {
      for (std::size_t i = 0; i < stripes_->size(); ++i) {
        if (((mask_ >> i) & 1) == 0) continue;
        if (exclusive_) {
          (*stripes_)[i].lock();
        } else {
          (*stripes_)[i].lock_shared();
        }
      }
    }
    ~StripeLockSet() {
      for (std::size_t i = stripes_->size(); i-- > 0;) {
        if (((mask_ >> i) & 1) == 0) continue;
        if (exclusive_) {
          (*stripes_)[i].unlock();
        } else {
          (*stripes_)[i].unlock_shared();
        }
      }
    }
    AIDX_DISALLOW_COPY_AND_ASSIGN(StripeLockSet);

   private:
    std::vector<std::shared_mutex>* stripes_;
    std::uint64_t mask_;
    bool exclusive_;
  };

  /// A resolved striped select: core positions plus up to two sub-threshold
  /// edge pieces still requiring predicate filtering (CrackSelect's shape,
  /// shard-local).
  struct StripedRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::array<PositionRange, 2> edges{};
    int num_edges = 0;
  };

  /// Blocks hash into the *active* stripe prefix, not the full table. The
  /// active count only changes under `structural` exclusive — when nobody
  /// holds a stripe latch — so every latch set acquired under one
  /// `structural` shared hold uses one consistent mapping (callers hold
  /// `structural` whenever they call this).
  std::size_t StripeOf(const Shard& shard, std::size_t block) const {
    return static_cast<std::size_t>((block * 0x9E3779B97F4A7C15ULL) %
                                    shard.active_stripes);
  }

  /// Stripe mask covering the position range [begin, end): the hash of
  /// every overlapped block, or all active stripes when the range spans at
  /// least one block per stripe.
  std::uint64_t StripeMask(const Shard& shard, std::size_t begin,
                           std::size_t end) const {
    if (begin >= end) return 0;
    const std::size_t n = shard.active_stripes;
    const std::size_t first = begin >> kStripeBlockShift;
    const std::size_t last = (end - 1) >> kStripeBlockShift;
    if (last - first + 1 >= n) {
      return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    }
    std::uint64_t mask = 0;
    for (std::size_t b = first; b <= last; ++b) {
      mask |= std::uint64_t{1} << StripeOf(shard, b);
    }
    return mask;
  }

  /// Runs fn under whole-partition exclusion: the partition mutex in
  /// kPartitionMutex mode, the structural latch (exclusive) in
  /// kStripedPiece mode. Writes, merges, stats aggregation, and the raw
  /// Select path use this.
  template <typename Fn>
  decltype(auto) WithShardExclusive(const Shard& shard, Fn&& fn) const {
    if (options_.latch_mode == LatchMode::kPartitionMutex) {
      const std::lock_guard<std::mutex> guard(shard.latch);
      return fn();
    }
    const std::unique_lock<std::shared_mutex> guard(shard.structural);
    return fn();
  }

  /// Pred-matching pending updates visible to one shared-path read: the
  /// shard's internal pending stores (stable under `structural` shared)
  /// plus its write buckets, snapshotted under their mutexes. Every delete
  /// is value-addressed (the partitioned write surface has no rid deletes)
  /// and claims exactly one live matching tuple, so overlaying a snapshot
  /// onto the cracked-array result is exact.
  struct PendingOverlay {
    std::vector<StripedPendingTuple> inserts;
    std::vector<T> deletes;
  };

  /// True when some buffered or pending update matches `pred` — the gate
  /// between the shared fast path and the overlay/coarse paths. Caller
  /// holds `structural` shared; bucket scans take the bucket mutexes.
  bool PendingOverlaps(const Shard& shard, const RangePredicate<T>& pred) const {
    if (shard.column.NeedsMergeFor(pred)) return true;
    if (shard.buffered_writes.load(std::memory_order_acquire) == 0) {
      return false;
    }
    // Range filter before any bucket mutex: the bounds were published by
    // the buffered_writes bump we just observed, and they only widen
    // between drains, so a miss here is definitive.
    if (!PredicateTouchesRange(
            pred, shard.buffered_min.load(std::memory_order_relaxed),
            shard.buffered_max.load(std::memory_order_relaxed))) {
      return false;
    }
    for (const WriteBucket& bucket : shard.write_buckets) {
      const std::lock_guard<std::mutex> bl(bucket.mu);
      for (const StripedPendingTuple& t : bucket.inserts) {
        if (pred.Matches(t.value)) return true;
      }
      for (const StripedPendingTuple& t : bucket.deletes) {
        if (pred.Matches(t.value)) return true;
      }
    }
    return false;
  }

  /// Snapshot of every pred-matching pending update. Caller holds
  /// `structural` shared; the snapshot is the read's linearization point
  /// (writes landing later order after the query).
  PendingOverlay CollectMatchingPending(const Shard& shard,
                                        const RangePredicate<T>& pred) const {
    PendingOverlay out;
    shard.column.ForEachPendingInsert([&](T v, row_id_t rid) {
      if (pred.Matches(v)) out.inserts.push_back({v, rid});
    });
    shard.column.ForEachPendingDelete([&](T v, row_id_t) {
      if (pred.Matches(v)) out.deletes.push_back(v);
    });
    for (const WriteBucket& bucket : shard.write_buckets) {
      const std::lock_guard<std::mutex> bl(bucket.mu);
      for (const StripedPendingTuple& t : bucket.inserts) {
        if (pred.Matches(t.value)) out.inserts.push_back(t);
      }
      for (const StripedPendingTuple& t : bucket.deletes) {
        if (pred.Matches(t.value)) out.deletes.push_back(t.value);
      }
    }
    return out;
  }

  /// The striped read protocol's one skeleton, shared by Count/Sum/
  /// Materialize*. kPartitionMutex: whole-partition exclusion + `coarse`.
  /// kStripedPiece, under `structural` shared:
  ///
  ///  - no pending update matches `pred` (PendingOverlaps): run
  ///    `fast(resolved range)` under the shared stripe masks of the edges —
  ///    plus the core when `core_needs_values` (Count's core is
  ///    membership-only: bounded by realized cuts, which concurrent cracks
  ///    never move, so it needs no value reads and no stripes);
  ///  - pending updates match but the shard is mid-background-merge (mode
  ///    off Normal) or background merging is enabled: stay on the shared
  ///    path and run `overlay(range, snapshot)` — the answer folds the
  ///    matching pending tuples without physically merging, so readers are
  ///    never blocked by the mode machine (requesting a merge on the way);
  ///  - otherwise fall back to `coarse` under `structural` exclusive, which
  ///    first drains the write buckets so the inner column's policy merge
  ///    sees every buffered update.
  ///
  /// All three callables must return the same type; Materialize callers
  /// return a dummy value. After a shared-path read, opportunistically
  /// grows the active stripe count when realized cuts have outrun it.
  template <typename FastFn, typename OverlayFn, typename CoarseFn>
  auto StripedReadOrCoarse(Shard& shard, const RangePredicate<T>& pred,
                           bool core_needs_values, FastFn&& fast,
                           OverlayFn&& overlay, CoarseFn&& coarse) {
    if (options_.latch_mode == LatchMode::kPartitionMutex) {
      const std::lock_guard<std::mutex> guard(shard.latch);
      return coarse();
    }
    using Result = decltype(coarse());
    Result result{};
    bool answered = false;
    bool grow_hint = false;
    {
      const std::shared_lock<std::shared_mutex> structural(shard.structural);
      const FreeStatusGuard busy(shard);
      const bool overlaps = PendingOverlaps(shard, pred);
      const auto mode = static_cast<ShardMergeMode>(
          shard.mode.load(std::memory_order_acquire));
      const bool background_capable =
          pool_ != nullptr && pool_->num_threads() > 0 &&
          options_.background_merge_threshold > 0;
      if (!overlaps || mode != ShardMergeMode::kNormal || background_capable) {
        PendingOverlay pending;
        if (overlaps) {
          if (mode == ShardMergeMode::kNormal) {
            RequestBackgroundMerge(shard.index);
          }
          shard.overlay_reads.fetch_add(1, std::memory_order_relaxed);
          pending = CollectMatchingPending(shard, pred);
        } else {
          shard.fast_reads.fetch_add(1, std::memory_order_relaxed);
        }
        const StripedRange r = StripedResolve(shard, pred);
        std::uint64_t mask =
            core_needs_values ? StripeMask(shard, r.begin, r.end) : 0;
        for (int i = 0; i < r.num_edges; ++i) {
          mask |= StripeMask(shard, r.edges[i].begin, r.edges[i].end);
        }
        const StripeLockSet lock(&shard.stripes, mask, /*exclusive=*/false);
        result = overlaps ? overlay(r, pending) : fast(r);
        answered = true;
        grow_hint = StripeGrowthDue(shard);
      }
    }
    if (answered) {
      if (grow_hint) TryGrowStripes(shard);
      return result;
    }
    const std::unique_lock<std::shared_mutex> structural(shard.structural);
    shard.coarse_reads.fetch_add(1, std::memory_order_relaxed);
    MaybeGrowStripes(shard);
    DrainStripedPending(shard);
    return coarse();
  }

  std::size_t CountShard(Shard& shard, const RangePredicate<T>& pred) {
    const auto fast = [&](const StripedRange& r) {
      std::size_t count = r.end - r.begin;
      for (int i = 0; i < r.num_edges; ++i) {
        count += ScanCount<T>(ShardValuesIn(shard, r.edges[i]), pred);
      }
      return count;
    };
    return StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/false, fast,
        [&](const StripedRange& r, const PendingOverlay& pending) {
          // Every matching pending delete claims one live matching tuple
          // that is still counted (in the array or as a pending insert),
          // so the subtraction never underflows.
          return fast(r) + pending.inserts.size() - pending.deletes.size();
        },
        [&] { return shard.column.Count(pred); });
  }

  long double SumShard(Shard& shard, const RangePredicate<T>& pred) {
    const auto fast = [&](const StripedRange& r) {
      const std::span<const T> values = shard.column.values();
      long double sum = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) sum += values[i];
      for (int i = 0; i < r.num_edges; ++i) {
        sum += ScanSum<T>(ShardValuesIn(shard, r.edges[i]), pred);
      }
      return sum;
    };
    return StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true, fast,
        [&](const StripedRange& r, const PendingOverlay& pending) {
          long double sum = fast(r);
          for (const StripedPendingTuple& t : pending.inserts) sum += t.value;
          for (const T v : pending.deletes) sum -= v;
          return sum;
        },
        [&] { return shard.column.Sum(pred); });
  }

  void MaterializeShardValues(Shard& shard, const RangePredicate<T>& pred,
                              std::vector<T>* out) {
    const auto fast = [&](const StripedRange& r) {
      const std::span<const T> values = shard.column.values();
      out->insert(out->end(),
                  values.begin() + static_cast<std::ptrdiff_t>(r.begin),
                  values.begin() + static_cast<std::ptrdiff_t>(r.end));
      for (int i = 0; i < r.num_edges; ++i) {
        ScanValues<T>(ShardValuesIn(shard, r.edges[i]), pred, out);
      }
      return true;  // Materialize results travel via `out`
    };
    StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true, fast,
        [&](const StripedRange& r, const PendingOverlay& pending) {
          const std::size_t start = out->size();
          fast(r);
          for (const StripedPendingTuple& t : pending.inserts) {
            out->push_back(t.value);
          }
          // Each matching delete claims one occurrence of its value; which
          // physical tuple it claims is unobservable in a value result.
          for (const T v : pending.deletes) {
            for (std::size_t i = out->size(); i-- > start;) {
              if ((*out)[i] == v) {
                (*out)[i] = out->back();
                out->pop_back();
                break;
              }
            }
          }
          return true;
        },
        [&] {
          shard.column.MergePendingFor(pred);
          const CrackSelect sel = shard.column.Select(pred);
          shard.column.MaterializeValues(sel, pred, out);
          return true;
        });
  }

  void MaterializeShardRowIds(Shard& shard, const RangePredicate<T>& pred,
                              std::vector<row_id_t>* out) {
    StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true,
        [&](const StripedRange& r) {
          const std::span<const T> values = shard.column.values();
          const std::span<const row_id_t> rids = shard.column.row_ids();
          out->insert(out->end(),
                      rids.begin() + static_cast<std::ptrdiff_t>(r.begin),
                      rids.begin() + static_cast<std::ptrdiff_t>(r.end));
          for (int i = 0; i < r.num_edges; ++i) {
            for (std::size_t p = r.edges[i].begin; p < r.edges[i].end; ++p) {
              if (pred.Matches(values[p])) out->push_back(rids[p]);
            }
          }
          return true;
        },
        [&](const StripedRange& r, const PendingOverlay& pending) {
          // Row ids force value-aware claiming: walk the array, letting
          // each matching pending delete swallow one tuple of its value
          // (an arbitrary occurrence — multiset semantics), then append
          // the surviving pending-insert rids.
          const std::span<const T> values = shard.column.values();
          const std::span<const row_id_t> rids = shard.column.row_ids();
          std::vector<T> deletes = pending.deletes;
          const auto claims = [&](T v) {
            for (std::size_t j = 0; j < deletes.size(); ++j) {
              if (deletes[j] == v) {
                deletes[j] = deletes.back();
                deletes.pop_back();
                return true;
              }
            }
            return false;
          };
          for (std::size_t p = r.begin; p < r.end; ++p) {
            if (!deletes.empty() && claims(values[p])) continue;
            out->push_back(rids[p]);
          }
          for (int i = 0; i < r.num_edges; ++i) {
            for (std::size_t p = r.edges[i].begin; p < r.edges[i].end; ++p) {
              if (!pred.Matches(values[p])) continue;
              if (!deletes.empty() && claims(values[p])) continue;
              out->push_back(rids[p]);
            }
          }
          for (const StripedPendingTuple& t : pending.inserts) {
            if (!deletes.empty() && claims(t.value)) continue;
            out->push_back(t.rid);
          }
          return true;
        },
        [&] {
          shard.column.MergePendingFor(pred);
          const CrackSelect sel = shard.column.Select(pred);
          shard.column.MaterializeRowIds(sel, pred, out);
          return true;
        });
  }

  std::span<const T> ShardValuesIn(const Shard& shard, PositionRange r) const {
    return shard.column.values().subspan(r.begin, r.end - r.begin);
  }

  // -- The striped fast path (docs/CONCURRENCY.md §4) ----------------------
  // Caller holds `structural` shared and has established that no pending
  // update needs merging for this predicate. Mirrors CrackerColumn::Select
  // decision-for-decision (crack-in-three fast path, stochastic pre-cracks,
  // sub-threshold edges) so that single-threaded runs produce bit-identical
  // piece structures and stats in both latch modes.

  StripedRange StripedResolve(Shard& shard, const RangePredicate<T>& pred) {
    shard.striped_stats.num_selects.fetch_add(1, std::memory_order_relaxed);
    StripedRange out;
    const PredicateCuts<T> cuts = CutsForPredicate(pred);
    if (cuts.has_lower && cuts.has_upper && !(cuts.lower == cuts.upper) &&
        StripedTryCrackInThree(shard, cuts.lower, cuts.upper, &out)) {
      return out;
    }
    std::size_t begin = 0;
    std::size_t end = shard.column.size();  // stable: structural held shared
    if (cuts.has_lower) {
      begin = StripedResolveCut(shard, cuts.lower, /*is_lower=*/true, &out);
    }
    if (cuts.has_upper) {
      end = StripedResolveCut(shard, cuts.upper, /*is_lower=*/false, &out);
    }
    if (end < begin) end = begin;
    out.begin = begin;
    out.end = end;
    if (out.num_edges == 2 && out.edges[0] == out.edges[1]) out.num_edges = 1;
    return out;
  }

  /// Crack-in-three fast path: both cuts unrealized in one crackable piece.
  /// Attempted once — if another thread races the piece between the lookup
  /// and the stripe acquisition, fall back to one-cut-at-a-time resolution
  /// (which handles every state). Returns true when it resolved the core.
  bool StripedTryCrackInThree(Shard& shard, const Cut<T>& lo_cut,
                              const Cut<T>& hi_cut, StripedRange* out) {
    const CrackerColumnOptions& copts = shard.column.options();
    PieceInfo<T> piece;
    {
      const std::shared_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      // Oversized pieces skip this path so stochastic pre-cracking can
      // subdivide them per bound; sub-threshold pieces become edges.
      const bool too_big_for_three =
          copts.stochastic_threshold != 0 &&
          lo.piece.end - lo.piece.begin > copts.stochastic_threshold;
      const bool below_threshold =
          copts.min_piece_size > 0 &&
          lo.piece.end - lo.piece.begin <= copts.min_piece_size;
      if (lo.exact || hi.exact || lo.piece.begin != hi.piece.begin ||
          lo.piece.end != hi.piece.end || too_big_for_three ||
          below_threshold) {
        return false;
      }
      piece = lo.piece;
    }
    if (piece.begin == piece.end) {
      // Empty piece: both cuts realize at its boundary without moving any
      // values — still one crack-in-three, exactly like the coarse
      // ResolveBothInPiece (single-threaded stat parity depends on it).
      // No stripe covers an empty range, so validation and registration
      // share one exclusive index hold.
      const std::unique_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      if (lo.exact || hi.exact || lo.piece.begin != piece.begin ||
          lo.piece.end != piece.end || hi.piece.begin != piece.begin ||
          hi.piece.end != piece.end) {
        return false;
      }
      shard.column.RegisterCut(lo_cut, piece.begin);
      shard.column.RegisterCut(hi_cut, piece.begin);
      shard.realized_cuts.fetch_add(2, std::memory_order_relaxed);
      shard.striped_stats.num_crack_in_three.fetch_add(
          1, std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(
          CrackInThreeValuesTouched(0), std::memory_order_relaxed);
      out->begin = piece.begin;
      out->end = piece.begin;
      return true;
    }
    const StripeLockSet lock(&shard.stripes,
                             StripeMask(shard, piece.begin, piece.end),
                             /*exclusive=*/true);
    {
      // Re-validate under the stripes: a racing thread may have cracked the
      // piece (or realized either cut) in the window. Positions cannot
      // shift while `structural` is held shared, so boundary equality
      // identifies the piece.
      const std::shared_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      if (lo.exact || hi.exact || lo.piece.begin != piece.begin ||
          lo.piece.end != piece.end || hi.piece.begin != piece.begin ||
          hi.piece.end != piece.end) {
        return false;
      }
    }
    const ThreeWaySplit split =
        shard.column.CrackPieceInThreeAt(piece, lo_cut, hi_cut);
    const std::size_t lower_pos = piece.begin + split.lower_end;
    const std::size_t upper_pos = piece.begin + split.middle_end;
    {
      const std::unique_lock<std::shared_mutex> il(shard.index_latch);
      shard.column.RegisterCut(lo_cut, lower_pos);
      shard.column.RegisterCut(hi_cut, upper_pos);
    }
    shard.realized_cuts.fetch_add(2, std::memory_order_relaxed);
    shard.striped_stats.num_crack_in_three.fetch_add(1,
                                                     std::memory_order_relaxed);
    shard.striped_stats.values_touched.fetch_add(
        CrackInThreeValuesTouched(piece.end - piece.begin),
        std::memory_order_relaxed);
    out->begin = lower_pos;
    out->end = upper_pos;
    return true;
  }

  /// Realizes `cut`, cracking its enclosing piece under that piece's
  /// exclusive stripes; returns the cut position. Sub-threshold pieces are
  /// recorded as edges instead (coarse-path semantics). The
  /// lookup -> latch -> re-validate loop terminates because a mismatch can
  /// only mean the piece was subdivided: the candidate piece strictly
  /// shrinks every retry.
  std::size_t StripedResolveCut(Shard& shard, const Cut<T>& cut, bool is_lower,
                                StripedRange* out) {
    const CrackerColumnOptions& copts = shard.column.options();
    for (;;) {
      PieceInfo<T> piece;
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        piece = look.piece;
      }
      if (copts.min_piece_size > 0 &&
          piece.end - piece.begin <= copts.min_piece_size) {
        // Sub-threshold pieces are never cracked (by anyone): record the
        // whole piece as an edge to filter and exclude it from the core.
        AddStripedEdge(out, {piece.begin, piece.end});
        return is_lower ? piece.end : piece.begin;
      }
      if (piece.begin == piece.end) {
        // Empty piece: the cut realizes at its boundary without moving any
        // values. No stripe covers an empty range, so the validation and
        // the registration must share one exclusive index hold.
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        if (look.piece.begin != piece.begin || look.piece.end != piece.end) {
          continue;
        }
        shard.column.RegisterCut(cut, piece.begin);
        shard.realized_cuts.fetch_add(1, std::memory_order_relaxed);
        shard.striped_stats.num_crack_in_two.fetch_add(
            1, std::memory_order_relaxed);
        return piece.begin;
      }
      const StripeLockSet lock(&shard.stripes,
                               StripeMask(shard, piece.begin, piece.end),
                               /*exclusive=*/true);
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        if (look.piece.begin != piece.begin || look.piece.end != piece.end) {
          continue;  // subdivided meanwhile: retry against the smaller piece
        }
      }
      // The piece is validated and exclusively held: no other thread can
      // permute it or register a cut inside it until the stripes drop.
      MaybeStochasticPreCrackStriped(shard, cut, &piece);
      const std::size_t split = shard.column.CrackPieceAt(piece, cut);
      {
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        shard.column.RegisterCut(cut, split);
      }
      shard.realized_cuts.fetch_add(1, std::memory_order_relaxed);
      shard.striped_stats.num_crack_in_two.fetch_add(1,
                                                     std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(piece.end - piece.begin,
                                                   std::memory_order_relaxed);
      return split;
    }
  }

  /// Stochastic pre-cracks under the striped protocol: subdivides an
  /// oversized piece at random data-driven pivots before the exact crack.
  /// The caller's exclusive stripes cover the original piece and therefore
  /// every sub-piece this loop carves, so each RegisterCut is safe under
  /// the same ownership argument as the exact crack. Narrows `piece` to the
  /// half still containing the target cut.
  void MaybeStochasticPreCrackStriped(Shard& shard, const Cut<T>& target,
                                      PieceInfo<T>* piece) {
    const CrackerColumnOptions& copts = shard.column.options();
    if (copts.stochastic_threshold == 0) return;
    while (piece->end - piece->begin > copts.stochastic_threshold) {
      const std::size_t span_size = piece->end - piece->begin;
      std::size_t offset;
      {
        const std::lock_guard<std::mutex> rl(shard.rng_latch);
        offset = shard.rng.NextBounded(span_size);
      }
      const T pivot = shard.column.values()[piece->begin + offset];
      const Cut<T> random_cut{pivot, CutKind::kLess};
      bool stop = false;
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        stop = shard.column.index().Lookup(random_cut).exact ||
               random_cut == target;
      }
      if (stop) break;
      const std::size_t split = shard.column.CrackPieceAt(*piece, random_cut);
      {
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        shard.column.RegisterCut(random_cut, split);
      }
      shard.realized_cuts.fetch_add(1, std::memory_order_relaxed);
      shard.striped_stats.num_stochastic_cracks.fetch_add(
          1, std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(span_size,
                                                   std::memory_order_relaxed);
      // All-duplicates (or extreme-pivot) pieces make no progress; stop.
      const bool no_progress = split == piece->begin || split == piece->end;
      if (random_cut < target) {
        piece->begin = split;
        piece->lower = random_cut;
      } else {
        piece->end = split;
        piece->upper = random_cut;
      }
      if (no_progress) break;
    }
  }

  static void AddStripedEdge(StripedRange* out, PositionRange edge) {
    if (edge.empty()) return;
    AIDX_CHECK(out->num_edges < 2);
    out->edges[static_cast<std::size_t>(out->num_edges)] = edge;
    ++out->num_edges;
  }
  // ------------------------------------------------------------------------

  // -- The striped write path (docs/CONCURRENCY.md §4) ---------------------

  bool UseStripedWrites() const {
    return options_.latch_mode == LatchMode::kStripedPiece &&
           options_.write_mode == WriteMode::kStripedWrite;
  }

  WriteBucket& BucketFor(const Shard& shard, T value) const {
    return shard.write_buckets[std::hash<T>{}(value) %
                               shard.write_buckets.size()];
  }

  void AppendBucketInsert(Shard& shard, T value, row_id_t rid) {
    WriteBucket& bucket = BucketFor(shard, value);
    const std::lock_guard<std::mutex> bl(bucket.mu);
    bucket.inserts.push_back({value, rid});
    WidenBufferedBounds(shard, value);
    shard.buffered_writes.fetch_add(1, std::memory_order_acq_rel);
    shard.striped_inserts_queued.fetch_add(1, std::memory_order_relaxed);
  }

  /// Buffers an insert under the owning piece's exclusive stripes, with
  /// the same lookup -> latch shape as the read path. Unlike reads no
  /// re-validate retry is needed: a concurrent crack only shrinks the
  /// owning piece (pieces never grow under `structural` shared), so the
  /// new owning piece's blocks stay inside the looked-up range and the
  /// mask latched here still covers it exclusively. Caller holds
  /// `structural` shared.
  void StripedEnqueueInsertLocked(Shard& shard, T value, row_id_t rid) {
    PieceInfo<T> piece;
    {
      const std::shared_lock<std::shared_mutex> il(shard.index_latch);
      piece = shard.column.index().PieceForValue(value);
    }
    const std::uint64_t mask = StripeMask(shard, piece.begin, piece.end);
    if (mask == 0) {
      // Empty piece: no stripe covers it and no crack can subdivide it,
      // so the bucket mutex alone orders the append.
      AppendBucketInsert(shard, value, rid);
      return;
    }
    const StripeLockSet lock(&shard.stripes, mask, /*exclusive=*/true);
    AppendBucketInsert(shard, value, rid);
  }

  /// Buffers a delete of one live tuple equal to `value`, or cancels a
  /// buffered insert of it. The existence probe is a striped point
  /// resolve (it cracks and counts a select, mirroring the coarse
  /// DeleteValue which probes through Select) plus the pending stores:
  /// live occurrences not yet claimed by earlier deletes must outnumber
  /// zero for the delete to queue. Exact under concurrency: the array and
  /// internal stores are stable under `structural` shared (held by the
  /// caller), and same-value deletes serialize on the value's bucket
  /// mutex, where claims are re-counted.
  bool StripedDeleteLocked(Shard& shard, T value) {
    {
      WriteBucket& bucket = BucketFor(shard, value);
      const std::lock_guard<std::mutex> bl(bucket.mu);
      if (CancelBucketInsertLocked(shard, bucket, value)) return true;
    }
    const auto point = RangePredicate<T>::Between(value, value);
    const StripedRange r = StripedResolve(shard, point);
    std::size_t live = 0;
    {
      std::uint64_t mask = StripeMask(shard, r.begin, r.end);
      for (int i = 0; i < r.num_edges; ++i) {
        mask |= StripeMask(shard, r.edges[i].begin, r.edges[i].end);
      }
      const StripeLockSet lock(&shard.stripes, mask, /*exclusive=*/false);
      live = r.end - r.begin;  // the point core holds only `value` tuples
      for (int i = 0; i < r.num_edges; ++i) {
        live += shard.column.CountEqualIn(r.edges[i], value);
      }
    }
    std::size_t pending_ins = 0;
    std::size_t pending_del = 0;
    shard.column.ForEachPendingInsert(
        [&](T v, row_id_t) { pending_ins += v == value ? 1 : 0; });
    shard.column.ForEachPendingDelete(
        [&](T v, row_id_t) { pending_del += v == value ? 1 : 0; });
    WriteBucket& bucket = BucketFor(shard, value);
    const std::lock_guard<std::mutex> bl(bucket.mu);
    // An insert of this value may have landed since the first check.
    if (CancelBucketInsertLocked(shard, bucket, value)) return true;
    std::size_t bucket_del = 0;
    for (const StripedPendingTuple& t : bucket.deletes) {
      bucket_del += t.value == value ? 1 : 0;
    }
    if (live + pending_ins <= pending_del + bucket_del) return false;
    bucket.deletes.push_back({value, kPendingNoRid});
    WidenBufferedBounds(shard, value);
    shard.buffered_writes.fetch_add(1, std::memory_order_acq_rel);
    shard.striped_deletes_queued.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Swap-removes one buffered insert of `value`; caller holds bucket.mu.
  bool CancelBucketInsertLocked(Shard& shard, WriteBucket& bucket, T value) {
    for (std::size_t i = 0; i < bucket.inserts.size(); ++i) {
      if (bucket.inserts[i].value != value) continue;
      bucket.inserts[i] = bucket.inserts.back();
      bucket.inserts.pop_back();
      shard.buffered_writes.fetch_sub(1, std::memory_order_acq_rel);
      shard.striped_deletes_cancelled.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Moves every buffered write into the inner column's pending stores.
  /// Caller holds whole-partition exclusion. Deletes adopt first, across
  /// all buckets: a buffered delete claims a tuple that existed before it
  /// was queued, never an insert buffered after it (same-value pairs in
  /// one bucket already cancelled at enqueue time, and same values always
  /// share a bucket).
  void DrainStripedPending(Shard& shard) const {
    if (shard.buffered_writes.load(std::memory_order_acquire) == 0) return;
    std::size_t drained = 0;
    for (WriteBucket& bucket : shard.write_buckets) {
      const std::lock_guard<std::mutex> bl(bucket.mu);
      for (const StripedPendingTuple& t : bucket.deletes) {
        shard.column.AdoptPendingDeleteValue(t.value);
      }
      drained += bucket.deletes.size();
      bucket.deletes.clear();
    }
    for (WriteBucket& bucket : shard.write_buckets) {
      const std::lock_guard<std::mutex> bl(bucket.mu);
      for (const StripedPendingTuple& t : bucket.inserts) {
        shard.column.AdoptPendingInsert(t.value, t.rid);
      }
      drained += bucket.inserts.size();
      bucket.inserts.clear();
    }
    // Exclusion also keeps striped writers out, so the bounds reset cannot
    // race a concurrent widen.
    shard.buffered_min.store(std::numeric_limits<T>::max(),
                             std::memory_order_relaxed);
    shard.buffered_max.store(std::numeric_limits<T>::lowest(),
                             std::memory_order_relaxed);
    shard.buffered_writes.fetch_sub(drained, std::memory_order_acq_rel);
  }
  // ------------------------------------------------------------------------

  // -- Adaptive stripe growth ----------------------------------------------

  /// Doubles the active stripe count while realized cuts have outrun it
  /// (2 cuts per active stripe), up to the allocated capacity. Caller
  /// holds whole-partition exclusion, so no thread can hold a stripe latch
  /// and the block -> stripe remap is safe.
  void MaybeGrowStripes(Shard& shard) const {
    if (options_.latch_mode != LatchMode::kStripedPiece ||
        !options_.adaptive_stripes) {
      return;
    }
    const std::size_t cuts = shard.column.index().num_cuts();
    shard.realized_cuts.store(cuts, std::memory_order_relaxed);
    const std::size_t cap = shard.stripes.size();
    std::size_t active = shard.active_stripes;
    while (active < cap && cuts >= 2 * active) active *= 2;
    shard.active_stripes = std::min(active, cap);
  }

  /// Cheap growth check for the shared path (no index latch: reads the
  /// relaxed cut mirror). Caller holds `structural` shared, which pins
  /// active_stripes.
  bool StripeGrowthDue(const Shard& shard) const {
    return options_.adaptive_stripes &&
           shard.active_stripes < shard.stripes.size() &&
           shard.realized_cuts.load(std::memory_order_relaxed) >=
               2 * shard.active_stripes;
  }

  /// Opportunistic growth after a shared-path read: grow only if the
  /// exclusive latch is free right now — never wait for it on the read
  /// path (a later coarse hold or drain will grow instead).
  void TryGrowStripes(Shard& shard) const {
    const std::unique_lock<std::shared_mutex> structural(shard.structural,
                                                         std::try_to_lock);
    if (!structural.owns_lock()) return;
    MaybeGrowStripes(shard);
  }
  // ------------------------------------------------------------------------

  // -- Background-merge mode machine (docs/UPDATES.md) ---------------------

  void MaybeTriggerBackgroundMerge(Shard& shard) {
    if (options_.background_merge_threshold == 0 || pool_ == nullptr) return;
    if (shard.buffered_writes.load(std::memory_order_relaxed) <
        options_.background_merge_threshold) {
      return;
    }
    if (shard.degraded.load(std::memory_order_acquire)) {
      // Degraded ladder rung: the writer that crossed the threshold pays
      // for the merge inline. Slower than background absorption, but no
      // buffered write is ever dropped and the buffer stays bounded.
      ForegroundMerge(shard);
      return;
    }
    if (shard.mode.load(std::memory_order_relaxed) !=
        static_cast<int>(ShardMergeMode::kNormal)) {
      return;
    }
    RequestBackgroundMerge(shard.index);
  }

  /// Foreground fallback for degraded shards: drain the write buckets and
  /// fold every pending update under whole-partition exclusion — the same
  /// path the coarse read takes, so correctness is shared with it.
  void ForegroundMerge(Shard& shard) {
    const std::unique_lock<std::shared_mutex> structural(shard.structural);
    MaybeGrowStripes(shard);
    DrainStripedPending(shard);
    shard.column.MergePendingFor(RangePredicate<T>::All());
  }

  /// Accounting for a failed background-merge submission (injected fault
  /// or pool refusal). Enough consecutive failures park the shard in
  /// foreground mode so callers stop hammering a broken pool. Always
  /// returns false (the request did not run).
  bool NoteSubmitFailure(Shard& shard) {
    bg_submit_failures_.fetch_add(1, std::memory_order_relaxed);
    const int failures = shard.consecutive_submit_failures.fetch_add(
                             1, std::memory_order_acq_rel) +
                         1;
    if (failures > kBackgroundMergeMaxRetries) {
      if (!shard.degraded.exchange(true, std::memory_order_acq_rel)) {
        bg_degrades_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return false;
  }

  /// Bounded grace wait: observe every free-status slot at zero once, so
  /// shared-path readers that were in flight when the mode flipped have
  /// (very likely) drained. Advisory pacing from the SNIPPETS.md design —
  /// correctness never depends on it, only latches guarantee exclusion.
  void WaitForFreeStatus(const Shard& shard) const {
    for (std::size_t slot = 0; slot < kFreeStatusSlots; ++slot) {
      for (int spin = 0; spin < 1024; ++spin) {
        if (shard.free_status[slot].load(std::memory_order_acquire) == 0) {
          break;
        }
        std::this_thread::yield();
      }
    }
  }

  /// The pool-side merge task: PrepareToMerge (grace wait) -> Merging
  /// (drain + ripple-merge in chunked exclusive holds, yielding between
  /// chunks so readers and writers interleave) -> Merged (grace wait) ->
  /// Normal. Readers observing any non-Normal state answer from the shared
  /// overlay path, so they are never blocked behind the merge.
  void RunBackgroundMerge(std::size_t p) {
    Shard& shard = *shards_[p];
    if (!shutting_down_.load(std::memory_order_acquire)) {
      WaitForFreeStatus(shard);
    }
    shard.mode.store(static_cast<int>(ShardMergeMode::kMerging),
                     std::memory_order_release);
    // Merge-step faults (failpoints::parallel_bg_merge_step, or any future
    // real failure source routed through it) retry with capped exponential
    // backoff; a run that exhausts its retries parks the shard in
    // foreground mode. Either way every buffered write stays queued — a
    // failed step mutates nothing — and readers keep answering from the
    // overlay path throughout.
    int failures = 0;
    std::uint64_t backoff_us = kBackgroundRetryBaseMicros;
    bool give_up = false;
    for (std::size_t round = 0; round < kMaxBackgroundRounds; ++round) {
      if (shutting_down_.load(std::memory_order_acquire)) break;
      const Status step = failpoints::parallel_bg_merge_step.Inject();
      if (AIDX_PREDICT_FALSE(!step.ok())) {
        bg_step_failures_.fetch_add(1, std::memory_order_relaxed);
        if (++failures > kBackgroundMergeMaxRetries) {
          give_up = true;
          break;
        }
        bg_step_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us = std::min(backoff_us * 2, kBackgroundRetryCapMicros);
        continue;
      }
      failures = 0;
      backoff_us = kBackgroundRetryBaseMicros;
      bool done;
      {
        const std::unique_lock<std::shared_mutex> structural(shard.structural);
        MaybeGrowStripes(shard);
        DrainStripedPending(shard);
        shard.column.MergePendingBudget(options_.background_merge_chunk);
        done = !shard.column.has_pending() &&
               shard.buffered_writes.load(std::memory_order_acquire) == 0;
      }
      if (done) break;
      std::this_thread::yield();
    }
    if (give_up) {
      if (!shard.degraded.exchange(true, std::memory_order_acq_rel)) {
        bg_degrades_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    shard.mode.store(static_cast<int>(ShardMergeMode::kMerged),
                     std::memory_order_release);
    if (!shutting_down_.load(std::memory_order_acquire)) {
      WaitForFreeStatus(shard);
    }
    shard.mode.store(static_cast<int>(ShardMergeMode::kNormal),
                     std::memory_order_release);
  }
  // ------------------------------------------------------------------------

  /// Equi-depth splitters from a value sample; sorted and distinct, so the
  /// effective partition count is splitters.size() + 1 <= num_partitions.
  std::vector<T> PickSplitters(std::span<const T> base) {
    const std::size_t k = options_.num_partitions;
    if (k <= 1 || base.size() < 2) return {};
    std::vector<T> sample;
    if (base.size() <= options_.splitter_sample_size) {
      sample.assign(base.begin(), base.end());
    } else {
      Rng rng(options_.splitter_seed);
      sample.reserve(options_.splitter_sample_size);
      for (std::size_t i = 0; i < options_.splitter_sample_size; ++i) {
        sample.push_back(base[rng.NextBounded(base.size())]);
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<T> splitters;
    splitters.reserve(k - 1);
    for (std::size_t s = 1; s < k; ++s) {
      const T candidate = sample[s * sample.size() / k];
      // Skipping candidates equal to the sample minimum avoids a
      // permanently empty partition 0; with a full sample this also caps
      // the partition count at the number of distinct values.
      if (candidate == sample.front()) continue;
      if (splitters.empty() || splitters.back() < candidate) {
        splitters.push_back(candidate);
      }
    }
    return splitters;
  }

  /// Buckets batch positions by owning partition (the splitter table is
  /// immutable, so routing needs no latch).
  std::vector<std::vector<std::size_t>> GroupByPartition(
      std::span<const T> batch) const {
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[PartitionOf(batch[i])].push_back(i);
    }
    return groups;
  }

  /// Index of the partition that stores value v.
  std::size_t PartitionOf(T v) const {
    // Number of splitters <= v (partition p starts at splitter p-1).
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), v) -
        splitters_.begin());
  }

  /// [first, last] partition indices the predicate can match. Routing is
  /// exact for realized bound kinds: an exclusive upper bound equal to a
  /// splitter stops at the partition below it.
  std::pair<std::size_t, std::size_t> OverlapRange(
      const RangePredicate<T>& pred) const {
    std::size_t first = 0;
    std::size_t last = shards_.size() - 1;
    if (pred.low_kind != BoundKind::kUnbounded) first = PartitionOf(pred.low);
    if (pred.high_kind == BoundKind::kInclusive) {
      last = PartitionOf(pred.high);
    } else if (pred.high_kind == BoundKind::kExclusive) {
      // Values < high live below the first splitter >= high.
      last = static_cast<std::size_t>(
          std::lower_bound(splitters_.begin(), splitters_.end(), pred.high) -
          splitters_.begin());
    }
    // low <= high after the DefinitelyEmpty early-out, hence first <= last.
    AIDX_DCHECK(first <= last);
    return {first, last};
  }

  /// Runs fn(partition, slot) for every partition in [first, last], on the
  /// borrowed pool when one is present and the fan-out is wider than one.
  template <typename Fn>
  void ForEachOverlapping(std::size_t first, std::size_t last, Fn&& fn) {
    const std::size_t count = last - first + 1;
    if (pool_ != nullptr && count > 1) {
      pool_->ParallelFor(count,
                         [&](std::size_t slot) { fn(first + slot, slot); });
    } else {
      for (std::size_t slot = 0; slot < count; ++slot) fn(first + slot, slot);
    }
  }

  PartitionedCrackerOptions options_;
  ThreadPool* pool_;  // borrowed; may be null
  std::size_t total_size_;    // initial (base) size; live count is atomic below
  std::vector<T> splitters_;  // immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<row_id_t> next_rid_{0};   // globally unique fresh row ids
  std::atomic<std::size_t> live_size_{0};
  /// In-flight background merge tasks (ticket-counted: a ticket is released
  /// even when the pool drops the closure unstarted at shutdown).
  mutable std::atomic<int> background_tasks_{0};
  std::atomic<bool> shutting_down_{false};
  // Mode-machine fault counters (see background_merge_stats()).
  std::atomic<std::size_t> bg_submit_failures_{0};
  std::atomic<std::size_t> bg_step_failures_{0};
  std::atomic<std::size_t> bg_step_retries_{0};
  std::atomic<std::size_t> bg_degrades_{0};
};

}  // namespace aidx
