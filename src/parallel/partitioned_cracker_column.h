// PartitionedCrackerColumn: parallel adaptive indexing by range partitioning.
//
// The design follows the two multi-core follow-ups to the EDBT 2012
// tutorial (see docs/CONCURRENCY.md for the full model):
//
//  - Alvarez et al., "Main Memory Adaptive Indexing for Multi-core
//    Systems": range-partition the base column into K partitions by value
//    and crack each partition independently — cracks in one partition never
//    move tuples in another, so disjoint partitions need no coordination.
//  - Graefe et al., "Concurrency Control for Adaptive Indexing": every
//    adaptive query is also a writer, so latch at the granularity of the
//    structure actually reorganized — individual pieces, coordinated
//    through a short-duration latch on the cracker index.
//
// Two latch protocols are implemented, selected by LatchMode:
//
//  - kPartitionMutex: one mutex per partition (the PR-2 baseline). Queries
//    over disjoint partitions crack concurrently; queries into the same
//    partition serialize wholesale. Kept as the differential-testing and
//    benchmarking oracle for the striped mode.
//  - kStripedPiece (default): the Graefe-style piece protocol. Each
//    partition carries a fixed table of reader-writer stripe latches over
//    *position blocks* (a piece's stripe set is the hash of every block its
//    position range overlaps), a reader-writer `structural` latch, and a
//    reader-writer latch on the cracker index. A select takes shared
//    latches on what it only reads and exclusive stripe latches on the
//    (<= 2, plus stochastic pre-cracks) pieces it cracks, so two selects
//    into the same partition overlap whenever they crack disjoint pieces.
//    The full protocol, its acquisition order, and the correctness
//    argument live in docs/CONCURRENCY.md §4.
//
// Ownership: a PartitionedCrackerColumn owns its K shards (each an
// independent UpdatableCrackerColumn plus its latches) and its splitter
// table; it *borrows* an optional ThreadPool for intra-query fan-out and
// never owns it — one pool typically serves many columns. The base span is
// copied at construction (same contract as CrackerColumn).
//
// Thread safety: Count, Sum, Materialize*, Insert, Delete, InsertBatch,
// DeleteBatch, AggregatedStats, AggregatedUpdateStats, and ValidatePieces
// are safe to call from any number of threads concurrently under both
// latch modes. Select (which returns raw per-partition position ranges) is
// the exception: positions are only stable while no other thread cracks
// the same partition, so it is for externally synchronized use — tests,
// single-threaded tools.
//
// Writes route to the single partition owning their value (the splitter
// table is immutable, so routing needs no latch) and queue in that
// partition's UpdatableCrackerColumn under whole-partition exclusion (the
// partition mutex, or the structural latch held exclusively); the queued
// tuple merges adaptively when a later query touches its range. Fresh row
// ids come from one atomic counter so they stay globally unique across
// partitions; the live tuple count is likewise an atomic, maintained
// outside any latch (docs/CONCURRENCY.md §3).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/cut.h"
#include "index/scan.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "update/updatable_column.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aidx {

/// Intra-partition latch protocol of a PartitionedCrackerColumn.
enum class LatchMode : char {
  /// One mutex per partition (PR-2 baseline; differential oracle).
  kPartitionMutex,
  /// Piece-granularity striped reader-writer latches (docs/CONCURRENCY.md §4).
  kStripedPiece,
};

inline const char* LatchModeName(LatchMode mode) {
  switch (mode) {
    case LatchMode::kPartitionMutex:
      return "partition-mutex";
    case LatchMode::kStripedPiece:
      return "striped-piece";
  }
  return "?";
}

/// Tuning knobs for a partitioned cracker column.
struct PartitionedCrackerOptions {
  /// Requested partition count K. The effective count can be lower when the
  /// data has fewer distinct values than K (duplicate splitters collapse).
  std::size_t num_partitions = 8;
  /// Applied to every per-partition CrackerColumn; the stochastic seed is
  /// perturbed per partition so partitions do not pick identical pivots.
  CrackerColumnOptions column_options = {};
  /// Splitters are equi-depth quantiles of a sample this large.
  std::size_t splitter_sample_size = 1024;
  std::uint64_t splitter_seed = 0xA24BAED4963EE407ULL;
  /// Update-merge policy applied by every partition's update pipeline.
  MergePolicy merge_policy = MergePolicy::kRipple;
  std::size_t gradual_budget = 64;
  /// Intra-partition latch protocol.
  LatchMode latch_mode = LatchMode::kStripedPiece;
  /// Stripe-latch table size per partition under kStripedPiece, clamped to
  /// [1, 64]. More stripes = fewer false conflicts between disjoint pieces,
  /// at a few hundred bytes per partition.
  std::size_t latch_stripes = 16;
};

/// One partition's share of a fanned-out Select.
struct PartitionSelect {
  std::size_t partition = 0;
  CrackSelect sel = {};
};

/// Per-partition results of PartitionedCrackerColumn::Select, in ascending
/// partition order. Positions are local to each partition's cracked array.
struct ParallelSelect {
  std::vector<PartitionSelect> partitions;
};

template <ColumnValue T>
class PartitionedCrackerColumn {
 public:
  /// Copies and scatters `base` into K value-range partitions. Row ids (when
  /// enabled in the options) are global base-column offsets, so projections
  /// compose with the rest of the system unchanged. `pool` is borrowed for
  /// intra-query fan-out; nullptr runs partition work inline.
  explicit PartitionedCrackerColumn(std::span<const T> base,
                                    PartitionedCrackerOptions options = {},
                                    ThreadPool* pool = nullptr)
      : options_(options), pool_(pool), total_size_(base.size()) {
    AIDX_CHECK(options_.num_partitions > 0);
    splitters_ = PickSplitters(base);
    const std::size_t k = splitters_.size() + 1;
    std::vector<std::vector<T>> values(k);
    std::vector<std::vector<row_id_t>> row_ids(k);
    const bool with_rids = options_.column_options.with_row_ids;
    for (auto& v : values) v.reserve(base.size() / k + 1);
    if (with_rids) {
      for (auto& r : row_ids) r.reserve(base.size() / k + 1);
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
      const std::size_t p = PartitionOf(base[i]);
      values[p].push_back(base[i]);
      if (with_rids) row_ids[p].push_back(static_cast<row_id_t>(i));
    }
    shards_.reserve(k);
    for (std::size_t p = 0; p < k; ++p) {
      CrackerColumnOptions per_shard = options_.column_options;
      per_shard.stochastic_seed += p;  // decorrelate stochastic pivots
      shards_.push_back(std::make_unique<Shard>(std::move(values[p]),
                                                std::move(row_ids[p]), per_shard,
                                                options_));
    }
    next_rid_.store(static_cast<row_id_t>(base.size()), std::memory_order_relaxed);
    live_size_.store(base.size(), std::memory_order_relaxed);
  }

  // Atomic members rule out the defaulted moves; shards are unique_ptrs,
  // so moving transfers them (and the latches inside) untouched. Callers
  // must not move a column while other threads use it, as everywhere.
  AIDX_DISALLOW_COPY_AND_ASSIGN(PartitionedCrackerColumn);
  PartitionedCrackerColumn(PartitionedCrackerColumn&& other) noexcept
      : options_(std::move(other.options_)),
        pool_(other.pool_),
        total_size_(other.total_size_),
        splitters_(std::move(other.splitters_)),
        shards_(std::move(other.shards_)),
        next_rid_(other.next_rid_.load(std::memory_order_relaxed)),
        live_size_(other.live_size_.load(std::memory_order_relaxed)) {}
  PartitionedCrackerColumn& operator=(PartitionedCrackerColumn&& other) noexcept {
    if (this != &other) {
      options_ = std::move(other.options_);
      pool_ = other.pool_;
      total_size_ = other.total_size_;
      splitters_ = std::move(other.splitters_);
      shards_ = std::move(other.shards_);
      next_rid_.store(other.next_rid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      live_size_.store(other.live_size_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    return *this;
  }

  /// Queues an insert in the partition owning `value` (under whole-partition
  /// exclusion) and returns the globally unique row id assigned to the
  /// fresh tuple. The tuple merges into the cracked array when a later
  /// query needs its range — the same adaptive bargain as the
  /// single-threaded pipeline. Thread-safe.
  row_id_t Insert(T value) {
    const row_id_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
    Shard& shard = *shards_[PartitionOf(value)];
    WithShardExclusive(shard,
                       [&] { shard.column.InsertWithRid(value, rid); });
    live_size_.fetch_add(1, std::memory_order_relaxed);
    return rid;
  }

  /// Queues inserts for a batch of values, grouped by owning partition so
  /// each partition latch is taken once per batch instead of once per
  /// tuple. Row ids for the whole batch are reserved with one atomic bump
  /// and assigned in batch order, so the result is indistinguishable from
  /// the equivalent Insert loop. Latches are taken one at a time in
  /// ascending partition order — the standard latch protocol, so batch
  /// writers compose with everything else. Thread-safe.
  void InsertBatch(std::span<const T> batch) {
    if (batch.empty()) return;
    const row_id_t first_rid =
        next_rid_.fetch_add(static_cast<row_id_t>(batch.size()),
                            std::memory_order_relaxed);
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      WithShardExclusive(shard, [&] {
        for (const std::size_t i : groups[p]) {
          shard.column.InsertWithRid(batch[i],
                                     first_rid + static_cast<row_id_t>(i));
        }
      });
    }
    live_size_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  /// Deletes one live tuple equal to `value` from its owning partition
  /// (under whole-partition exclusion; the existence probe cracks, which
  /// is structural work); false when absent. Thread-safe.
  bool Delete(T value) {
    Shard& shard = *shards_[PartitionOf(value)];
    const bool deleted =
        WithShardExclusive(shard, [&] { return shard.column.DeleteValue(value); });
    if (deleted) live_size_.fetch_sub(1, std::memory_order_relaxed);
    return deleted;
  }

  /// Deletes one live tuple per batch entry (multiset semantics, same as a
  /// Delete loop) with one latch acquisition per touched partition.
  /// Returns how many tuples were actually deleted. Thread-safe.
  std::size_t DeleteBatch(std::span<const T> batch) {
    if (batch.empty()) return 0;
    const std::vector<std::vector<std::size_t>> groups = GroupByPartition(batch);
    std::size_t deleted = 0;
    for (std::size_t p = 0; p < groups.size(); ++p) {
      if (groups[p].empty()) continue;
      Shard& shard = *shards_[p];
      WithShardExclusive(shard, [&] {
        for (const std::size_t i : groups[p]) {
          deleted += shard.column.DeleteValue(batch[i]) ? 1 : 0;
        }
      });
    }
    live_size_.fetch_sub(deleted, std::memory_order_relaxed);
    return deleted;
  }

  /// Rows matching `pred` across all partitions (cracks as a side effect).
  /// Thread-safe.
  std::size_t Count(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {  // common narrow-predicate case: no fan-out state
      return CountShard(*shards_[first], pred);
    }
    std::vector<std::size_t> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      partial[slot] = CountShard(*shards_[p], pred);
    });
    std::size_t total = 0;
    for (const std::size_t c : partial) total += c;
    return total;
  }

  /// SUM of matching values across all partitions (cracks as a side
  /// effect). Thread-safe.
  long double Sum(const RangePredicate<T>& pred) {
    if (pred.DefinitelyEmpty()) return 0;
    const auto [first, last] = OverlapRange(pred);
    if (first == last) {
      return SumShard(*shards_[first], pred);
    }
    std::vector<long double> partial(last - first + 1, 0);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      partial[slot] = SumShard(*shards_[p], pred);
    });
    long double total = 0;
    for (const long double s : partial) total += s;
    return total;
  }

  /// Appends matching values to `out`, grouped by ascending partition
  /// (order within the result is unspecified, as for CrackerColumn whose
  /// storage order is crack-dependent). Thread-safe: each partition's
  /// positions are resolved and consumed under that partition's latches,
  /// so concurrent cracks cannot invalidate them in between.
  void MaterializeValues(const RangePredicate<T>& pred, std::vector<T>* out) {
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<T>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      MaterializeShardValues(*shards_[p], pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Appends the (global) row ids of matching values to `out`; same
  /// grouping and thread-safety as MaterializeValues.
  void MaterializeRowIds(const RangePredicate<T>& pred,
                         std::vector<row_id_t>* out) {
    AIDX_CHECK(options_.column_options.with_row_ids)
        << "column built without row ids";
    if (pred.DefinitelyEmpty()) return;
    const auto [first, last] = OverlapRange(pred);
    std::vector<std::vector<row_id_t>> partial(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      MaterializeShardRowIds(*shards_[p], pred, &partial[slot]);
    });
    for (const auto& chunk : partial) {
      out->insert(out->end(), chunk.begin(), chunk.end());
    }
  }

  /// Fans the predicate out across the overlapping partitions and returns
  /// the per-partition CrackSelect results. NOT safe under concurrent
  /// queries: the returned positions are stable only until the next crack
  /// of the same partition (see file comment). Prefer Count/Sum/
  /// Materialize*, which resolve positions under the latches.
  ParallelSelect Select(const RangePredicate<T>& pred) {
    ParallelSelect out;
    if (pred.DefinitelyEmpty()) return out;
    const auto [first, last] = OverlapRange(pred);
    out.partitions.resize(last - first + 1);
    ForEachOverlapping(first, last, [&](std::size_t p, std::size_t slot) {
      Shard& shard = *shards_[p];
      WithShardExclusive(shard, [&] {
        shard.column.MergePendingFor(pred);
        out.partitions[slot] = {p, shard.column.Select(pred)};
      });
    });
    return out;
  }

  /// Sum of all partitions' CrackerStats, including the work performed by
  /// the striped fast path. Thread-safe (whole-partition exclusion per
  /// shard).
  CrackerStats AggregatedStats() const {
    CrackerStats total;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        const CrackerStats& s = shard->column.stats();
        total.num_selects += s.num_selects;
        total.num_crack_in_two += s.num_crack_in_two;
        total.num_crack_in_three += s.num_crack_in_three;
        total.num_stochastic_cracks += s.num_stochastic_cracks;
        total.values_touched += s.values_touched;
      });
      const StripedShardStats& f = shard->striped_stats;
      total.num_selects += f.num_selects.load(std::memory_order_relaxed);
      total.num_crack_in_two += f.num_crack_in_two.load(std::memory_order_relaxed);
      total.num_crack_in_three +=
          f.num_crack_in_three.load(std::memory_order_relaxed);
      total.num_stochastic_cracks +=
          f.num_stochastic_cracks.load(std::memory_order_relaxed);
      total.values_touched += f.values_touched.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Sum of all partitions' update-pipeline counters. Thread-safe.
  UpdateStats AggregatedUpdateStats() const {
    UpdateStats total;
    for (const auto& shard : shards_) {
      WithShardExclusive(*shard, [&] {
        const UpdateStats& s = shard->column.update_stats();
        total.inserts_queued += s.inserts_queued;
        total.deletes_queued += s.deletes_queued;
        total.deletes_cancelled += s.deletes_cancelled;
        total.inserts_merged += s.inserts_merged;
        total.deletes_merged += s.deletes_merged;
        total.ripple_element_moves += s.ripple_element_moves;
      });
    }
    return total;
  }

  /// Current live tuple count (base minus deletes plus inserts, including
  /// still-pending ones). Thread-safe.
  std::size_t size() const { return live_size_.load(std::memory_order_relaxed); }
  std::size_t num_partitions() const { return shards_.size(); }
  /// Effective stripe-latch table size per partition (1 in kPartitionMutex
  /// mode; the clamped latch_stripes option otherwise).
  std::size_t latch_stripes() const { return shards_.front()->stripes.size(); }
  /// Partition p holds values v with splitters()[p-1] <= v < splitters()[p]
  /// (unbounded at the extremes). Immutable after construction.
  std::span<const T> splitters() const { return splitters_; }
  const PartitionedCrackerOptions& options() const { return options_; }

  /// Read access to one partition's column, for tests and tools. The
  /// reference is unsynchronized: callers must ensure no concurrent
  /// queries while holding it.
  const CrackerColumn<T>& partition(std::size_t p) const {
    AIDX_CHECK(p < shards_.size());
    return shards_[p]->column;
  }

  /// Full invariant sweep: every partition validates its own pieces, live
  /// sizes add up, and every partition's values respect the splitter
  /// bounds. O(n); tests only. Thread-safe, but the total-size check is
  /// meaningful only when no writer is concurrently in flight.
  bool ValidatePieces() const {
    std::size_t live_seen = 0;
    bool ok = true;
    for (std::size_t p = 0; p < shards_.size(); ++p) {
      WithShardExclusive(*shards_[p], [&] {
        const UpdatableCrackerColumn<T>& column = shards_[p]->column;
        if (!column.Validate()) {
          ok = false;
          return;
        }
        live_seen += column.live_size();
        for (const T v : column.values()) {
          if (p > 0 && v < splitters_[p - 1]) ok = false;
          if (p < splitters_.size() && !(v < splitters_[p])) ok = false;
        }
      });
      if (!ok) return false;
    }
    return live_seen == size();
  }

 private:
  /// Upper bound on the stripe table (stripe sets travel as 64-bit masks).
  static constexpr std::size_t kMaxLatchStripes = 64;
  /// Positions are hashed to stripes in blocks of 2^kStripeBlockShift, so
  /// pieces smaller than a block still get distinct stripes once they land
  /// in distinct blocks, while a huge early piece simply covers every
  /// stripe (equivalent to whole-partition exclusion — which it is).
  static constexpr std::size_t kStripeBlockShift = 8;

  /// Fast-path work counters (kStripedPiece). Relaxed atomics: bumped under
  /// shared latches, aggregated into CrackerStats by AggregatedStats.
  struct StripedShardStats {
    std::atomic<std::size_t> num_selects{0};
    std::atomic<std::size_t> num_crack_in_two{0};
    std::atomic<std::size_t> num_crack_in_three{0};
    std::atomic<std::size_t> num_stochastic_cracks{0};
    std::atomic<std::size_t> values_touched{0};
  };

  struct Shard {
    Shard(std::vector<T> values, std::vector<row_id_t> row_ids,
          const CrackerColumnOptions& opts, const PartitionedCrackerOptions& parent)
        : stripes(parent.latch_mode == LatchMode::kStripedPiece
                      ? std::clamp<std::size_t>(parent.latch_stripes, 1,
                                                kMaxLatchStripes)
                      : 1),
          // Same seed as the inner column's stochastic rng: single-threaded
          // pure-query runs then pick identical pivots in both latch modes,
          // which is what pins the differential stat-parity tests.
          rng(opts.stochastic_seed),
          column(std::move(values), std::move(row_ids),
                 typename UpdatableCrackerColumn<T>::Options{
                     .policy = parent.merge_policy,
                     .gradual_budget = parent.gradual_budget,
                     .crack = opts},
                 /*first_fresh_rid=*/0) {}

    // kPartitionMutex: the whole protocol — this latch guards `column`,
    // including its stats and pending stores.
    mutable std::mutex latch;

    // kStripedPiece (docs/CONCURRENCY.md §4). Latch order: structural ->
    // stripes (ascending) -> index_latch; rng_latch is a leaf.
    //
    // `structural`: shared by every query that relies on realized cut
    // positions staying put and the arrays staying the same size; exclusive
    // by everything that breaks that — pending-update merges, writes (which
    // mutate the pending stores), and the wholesale slow path.
    mutable std::shared_mutex structural;
    // One reader-writer latch per stripe; a piece holds the stripes its
    // position blocks hash to — shared to read values, exclusive to
    // permute them.
    mutable std::vector<std::shared_mutex> stripes;
    // Guards the cracker index: shared for lookups, exclusive to register
    // cuts. Maximum level in the latch order: nothing is acquired while
    // holding it.
    mutable std::shared_mutex index_latch;
    mutable std::mutex rng_latch;  // stochastic pivots on the fast path
    StripedShardStats striped_stats;
    Rng rng;
    UpdatableCrackerColumn<T> column;
  };

  /// RAII over one ordered acquisition of a stripe mask. Bits are acquired
  /// in ascending stripe order — with at most one mask held per thread this
  /// makes stripe deadlock impossible (docs/CONCURRENCY.md §4).
  class StripeLockSet {
   public:
    StripeLockSet(std::vector<std::shared_mutex>* stripes, std::uint64_t mask,
                  bool exclusive)
        : stripes_(stripes), mask_(mask), exclusive_(exclusive) {
      for (std::size_t i = 0; i < stripes_->size(); ++i) {
        if (((mask_ >> i) & 1) == 0) continue;
        if (exclusive_) {
          (*stripes_)[i].lock();
        } else {
          (*stripes_)[i].lock_shared();
        }
      }
    }
    ~StripeLockSet() {
      for (std::size_t i = stripes_->size(); i-- > 0;) {
        if (((mask_ >> i) & 1) == 0) continue;
        if (exclusive_) {
          (*stripes_)[i].unlock();
        } else {
          (*stripes_)[i].unlock_shared();
        }
      }
    }
    AIDX_DISALLOW_COPY_AND_ASSIGN(StripeLockSet);

   private:
    std::vector<std::shared_mutex>* stripes_;
    std::uint64_t mask_;
    bool exclusive_;
  };

  /// A resolved striped select: core positions plus up to two sub-threshold
  /// edge pieces still requiring predicate filtering (CrackSelect's shape,
  /// shard-local).
  struct StripedRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::array<PositionRange, 2> edges{};
    int num_edges = 0;
  };

  std::size_t StripeOf(const Shard& shard, std::size_t block) const {
    return static_cast<std::size_t>((block * 0x9E3779B97F4A7C15ULL) %
                                    shard.stripes.size());
  }

  /// Stripe mask covering the position range [begin, end): the hash of
  /// every overlapped block, or all stripes when the range spans at least
  /// one block per stripe.
  std::uint64_t StripeMask(const Shard& shard, std::size_t begin,
                           std::size_t end) const {
    if (begin >= end) return 0;
    const std::size_t n = shard.stripes.size();
    const std::size_t first = begin >> kStripeBlockShift;
    const std::size_t last = (end - 1) >> kStripeBlockShift;
    if (last - first + 1 >= n) {
      return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    }
    std::uint64_t mask = 0;
    for (std::size_t b = first; b <= last; ++b) {
      mask |= std::uint64_t{1} << StripeOf(shard, b);
    }
    return mask;
  }

  /// Runs fn under whole-partition exclusion: the partition mutex in
  /// kPartitionMutex mode, the structural latch (exclusive) in
  /// kStripedPiece mode. Writes, merges, stats aggregation, and the raw
  /// Select path use this.
  template <typename Fn>
  decltype(auto) WithShardExclusive(const Shard& shard, Fn&& fn) const {
    if (options_.latch_mode == LatchMode::kPartitionMutex) {
      const std::lock_guard<std::mutex> guard(shard.latch);
      return fn();
    }
    const std::unique_lock<std::shared_mutex> guard(shard.structural);
    return fn();
  }

  /// The striped read protocol's one skeleton, shared by Count/Sum/
  /// Materialize*: whole-partition exclusion + `coarse` in kPartitionMutex
  /// mode; otherwise gate on NeedsMergeFor under `structural` shared
  /// (pending stores only change under `structural` exclusive, so the probe
  /// is race-free), run `fast(resolved range)` under the shared stripe
  /// masks of the edges — plus the core when `core_needs_values` (Count's
  /// core is membership-only: bounded by realized cuts, which concurrent
  /// cracks never move, so it needs no value reads and no stripes) — or
  /// fall back to `coarse` under `structural` exclusive when pending
  /// updates must fold into this predicate's range first.
  template <typename FastFn, typename CoarseFn>
  auto StripedReadOrCoarse(Shard& shard, const RangePredicate<T>& pred,
                           bool core_needs_values, FastFn&& fast,
                           CoarseFn&& coarse) {
    if (options_.latch_mode == LatchMode::kPartitionMutex) {
      const std::lock_guard<std::mutex> guard(shard.latch);
      return coarse();
    }
    {
      const std::shared_lock<std::shared_mutex> structural(shard.structural);
      if (!shard.column.NeedsMergeFor(pred)) {
        const StripedRange r = StripedResolve(shard, pred);
        std::uint64_t mask =
            core_needs_values ? StripeMask(shard, r.begin, r.end) : 0;
        for (int i = 0; i < r.num_edges; ++i) {
          mask |= StripeMask(shard, r.edges[i].begin, r.edges[i].end);
        }
        const StripeLockSet lock(&shard.stripes, mask, /*exclusive=*/false);
        return fast(r);
      }
    }
    const std::unique_lock<std::shared_mutex> structural(shard.structural);
    return coarse();
  }

  std::size_t CountShard(Shard& shard, const RangePredicate<T>& pred) {
    return StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/false,
        [&](const StripedRange& r) {
          std::size_t count = r.end - r.begin;
          for (int i = 0; i < r.num_edges; ++i) {
            count += ScanCount<T>(ShardValuesIn(shard, r.edges[i]), pred);
          }
          return count;
        },
        [&] { return shard.column.Count(pred); });
  }

  long double SumShard(Shard& shard, const RangePredicate<T>& pred) {
    return StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true,
        [&](const StripedRange& r) {
          const std::span<const T> values = shard.column.values();
          long double sum = 0;
          for (std::size_t i = r.begin; i < r.end; ++i) sum += values[i];
          for (int i = 0; i < r.num_edges; ++i) {
            sum += ScanSum<T>(ShardValuesIn(shard, r.edges[i]), pred);
          }
          return sum;
        },
        [&] { return shard.column.Sum(pred); });
  }

  void MaterializeShardValues(Shard& shard, const RangePredicate<T>& pred,
                              std::vector<T>* out) {
    StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true,
        [&](const StripedRange& r) {
          const std::span<const T> values = shard.column.values();
          out->insert(out->end(),
                      values.begin() + static_cast<std::ptrdiff_t>(r.begin),
                      values.begin() + static_cast<std::ptrdiff_t>(r.end));
          for (int i = 0; i < r.num_edges; ++i) {
            ScanValues<T>(ShardValuesIn(shard, r.edges[i]), pred, out);
          }
        },
        [&] {
          shard.column.MergePendingFor(pred);
          const CrackSelect sel = shard.column.Select(pred);
          shard.column.MaterializeValues(sel, pred, out);
        });
  }

  void MaterializeShardRowIds(Shard& shard, const RangePredicate<T>& pred,
                              std::vector<row_id_t>* out) {
    StripedReadOrCoarse(
        shard, pred, /*core_needs_values=*/true,
        [&](const StripedRange& r) {
          const std::span<const T> values = shard.column.values();
          const std::span<const row_id_t> rids = shard.column.row_ids();
          out->insert(out->end(),
                      rids.begin() + static_cast<std::ptrdiff_t>(r.begin),
                      rids.begin() + static_cast<std::ptrdiff_t>(r.end));
          for (int i = 0; i < r.num_edges; ++i) {
            for (std::size_t p = r.edges[i].begin; p < r.edges[i].end; ++p) {
              if (pred.Matches(values[p])) out->push_back(rids[p]);
            }
          }
        },
        [&] {
          shard.column.MergePendingFor(pred);
          const CrackSelect sel = shard.column.Select(pred);
          shard.column.MaterializeRowIds(sel, pred, out);
        });
  }

  std::span<const T> ShardValuesIn(const Shard& shard, PositionRange r) const {
    return shard.column.values().subspan(r.begin, r.end - r.begin);
  }

  // -- The striped fast path (docs/CONCURRENCY.md §4) ----------------------
  // Caller holds `structural` shared and has established that no pending
  // update needs merging for this predicate. Mirrors CrackerColumn::Select
  // decision-for-decision (crack-in-three fast path, stochastic pre-cracks,
  // sub-threshold edges) so that single-threaded runs produce bit-identical
  // piece structures and stats in both latch modes.

  StripedRange StripedResolve(Shard& shard, const RangePredicate<T>& pred) {
    shard.striped_stats.num_selects.fetch_add(1, std::memory_order_relaxed);
    StripedRange out;
    const PredicateCuts<T> cuts = CutsForPredicate(pred);
    if (cuts.has_lower && cuts.has_upper && !(cuts.lower == cuts.upper) &&
        StripedTryCrackInThree(shard, cuts.lower, cuts.upper, &out)) {
      return out;
    }
    std::size_t begin = 0;
    std::size_t end = shard.column.size();  // stable: structural held shared
    if (cuts.has_lower) {
      begin = StripedResolveCut(shard, cuts.lower, /*is_lower=*/true, &out);
    }
    if (cuts.has_upper) {
      end = StripedResolveCut(shard, cuts.upper, /*is_lower=*/false, &out);
    }
    if (end < begin) end = begin;
    out.begin = begin;
    out.end = end;
    if (out.num_edges == 2 && out.edges[0] == out.edges[1]) out.num_edges = 1;
    return out;
  }

  /// Crack-in-three fast path: both cuts unrealized in one crackable piece.
  /// Attempted once — if another thread races the piece between the lookup
  /// and the stripe acquisition, fall back to one-cut-at-a-time resolution
  /// (which handles every state). Returns true when it resolved the core.
  bool StripedTryCrackInThree(Shard& shard, const Cut<T>& lo_cut,
                              const Cut<T>& hi_cut, StripedRange* out) {
    const CrackerColumnOptions& copts = shard.column.options();
    PieceInfo<T> piece;
    {
      const std::shared_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      // Oversized pieces skip this path so stochastic pre-cracking can
      // subdivide them per bound; sub-threshold pieces become edges.
      const bool too_big_for_three =
          copts.stochastic_threshold != 0 &&
          lo.piece.end - lo.piece.begin > copts.stochastic_threshold;
      const bool below_threshold =
          copts.min_piece_size > 0 &&
          lo.piece.end - lo.piece.begin <= copts.min_piece_size;
      if (lo.exact || hi.exact || lo.piece.begin != hi.piece.begin ||
          lo.piece.end != hi.piece.end || too_big_for_three ||
          below_threshold) {
        return false;
      }
      piece = lo.piece;
    }
    if (piece.begin == piece.end) {
      // Empty piece: both cuts realize at its boundary without moving any
      // values — still one crack-in-three, exactly like the coarse
      // ResolveBothInPiece (single-threaded stat parity depends on it).
      // No stripe covers an empty range, so validation and registration
      // share one exclusive index hold.
      const std::unique_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      if (lo.exact || hi.exact || lo.piece.begin != piece.begin ||
          lo.piece.end != piece.end || hi.piece.begin != piece.begin ||
          hi.piece.end != piece.end) {
        return false;
      }
      shard.column.RegisterCut(lo_cut, piece.begin);
      shard.column.RegisterCut(hi_cut, piece.begin);
      shard.striped_stats.num_crack_in_three.fetch_add(
          1, std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(
          CrackInThreeValuesTouched(0, 0, copts.kernel),
          std::memory_order_relaxed);
      out->begin = piece.begin;
      out->end = piece.begin;
      return true;
    }
    const StripeLockSet lock(&shard.stripes,
                             StripeMask(shard, piece.begin, piece.end),
                             /*exclusive=*/true);
    {
      // Re-validate under the stripes: a racing thread may have cracked the
      // piece (or realized either cut) in the window. Positions cannot
      // shift while `structural` is held shared, so boundary equality
      // identifies the piece.
      const std::shared_lock<std::shared_mutex> il(shard.index_latch);
      const CutLookup<T> lo = shard.column.index().Lookup(lo_cut);
      const CutLookup<T> hi = shard.column.index().Lookup(hi_cut);
      if (lo.exact || hi.exact || lo.piece.begin != piece.begin ||
          lo.piece.end != piece.end || hi.piece.begin != piece.begin ||
          hi.piece.end != piece.end) {
        return false;
      }
    }
    const ThreeWaySplit split =
        shard.column.CrackPieceInThreeAt(piece, lo_cut, hi_cut);
    const std::size_t lower_pos = piece.begin + split.lower_end;
    const std::size_t upper_pos = piece.begin + split.middle_end;
    {
      const std::unique_lock<std::shared_mutex> il(shard.index_latch);
      shard.column.RegisterCut(lo_cut, lower_pos);
      shard.column.RegisterCut(hi_cut, upper_pos);
    }
    shard.striped_stats.num_crack_in_three.fetch_add(1,
                                                     std::memory_order_relaxed);
    shard.striped_stats.values_touched.fetch_add(
        CrackInThreeValuesTouched(piece.end - piece.begin, split.lower_end,
                                  copts.kernel),
        std::memory_order_relaxed);
    out->begin = lower_pos;
    out->end = upper_pos;
    return true;
  }

  /// Realizes `cut`, cracking its enclosing piece under that piece's
  /// exclusive stripes; returns the cut position. Sub-threshold pieces are
  /// recorded as edges instead (coarse-path semantics). The
  /// lookup -> latch -> re-validate loop terminates because a mismatch can
  /// only mean the piece was subdivided: the candidate piece strictly
  /// shrinks every retry.
  std::size_t StripedResolveCut(Shard& shard, const Cut<T>& cut, bool is_lower,
                                StripedRange* out) {
    const CrackerColumnOptions& copts = shard.column.options();
    for (;;) {
      PieceInfo<T> piece;
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        piece = look.piece;
      }
      if (copts.min_piece_size > 0 &&
          piece.end - piece.begin <= copts.min_piece_size) {
        // Sub-threshold pieces are never cracked (by anyone): record the
        // whole piece as an edge to filter and exclude it from the core.
        AddStripedEdge(out, {piece.begin, piece.end});
        return is_lower ? piece.end : piece.begin;
      }
      if (piece.begin == piece.end) {
        // Empty piece: the cut realizes at its boundary without moving any
        // values. No stripe covers an empty range, so the validation and
        // the registration must share one exclusive index hold.
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        if (look.piece.begin != piece.begin || look.piece.end != piece.end) {
          continue;
        }
        shard.column.RegisterCut(cut, piece.begin);
        shard.striped_stats.num_crack_in_two.fetch_add(
            1, std::memory_order_relaxed);
        return piece.begin;
      }
      const StripeLockSet lock(&shard.stripes,
                               StripeMask(shard, piece.begin, piece.end),
                               /*exclusive=*/true);
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        const CutLookup<T> look = shard.column.index().Lookup(cut);
        if (look.exact) return look.position;
        if (look.piece.begin != piece.begin || look.piece.end != piece.end) {
          continue;  // subdivided meanwhile: retry against the smaller piece
        }
      }
      // The piece is validated and exclusively held: no other thread can
      // permute it or register a cut inside it until the stripes drop.
      MaybeStochasticPreCrackStriped(shard, cut, &piece);
      const std::size_t split = shard.column.CrackPieceAt(piece, cut);
      {
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        shard.column.RegisterCut(cut, split);
      }
      shard.striped_stats.num_crack_in_two.fetch_add(1,
                                                     std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(piece.end - piece.begin,
                                                   std::memory_order_relaxed);
      return split;
    }
  }

  /// Stochastic pre-cracks under the striped protocol: subdivides an
  /// oversized piece at random data-driven pivots before the exact crack.
  /// The caller's exclusive stripes cover the original piece and therefore
  /// every sub-piece this loop carves, so each RegisterCut is safe under
  /// the same ownership argument as the exact crack. Narrows `piece` to the
  /// half still containing the target cut.
  void MaybeStochasticPreCrackStriped(Shard& shard, const Cut<T>& target,
                                      PieceInfo<T>* piece) {
    const CrackerColumnOptions& copts = shard.column.options();
    if (copts.stochastic_threshold == 0) return;
    while (piece->end - piece->begin > copts.stochastic_threshold) {
      const std::size_t span_size = piece->end - piece->begin;
      std::size_t offset;
      {
        const std::lock_guard<std::mutex> rl(shard.rng_latch);
        offset = shard.rng.NextBounded(span_size);
      }
      const T pivot = shard.column.values()[piece->begin + offset];
      const Cut<T> random_cut{pivot, CutKind::kLess};
      bool stop = false;
      {
        const std::shared_lock<std::shared_mutex> il(shard.index_latch);
        stop = shard.column.index().Lookup(random_cut).exact ||
               random_cut == target;
      }
      if (stop) break;
      const std::size_t split = shard.column.CrackPieceAt(*piece, random_cut);
      {
        const std::unique_lock<std::shared_mutex> il(shard.index_latch);
        shard.column.RegisterCut(random_cut, split);
      }
      shard.striped_stats.num_stochastic_cracks.fetch_add(
          1, std::memory_order_relaxed);
      shard.striped_stats.values_touched.fetch_add(span_size,
                                                   std::memory_order_relaxed);
      // All-duplicates (or extreme-pivot) pieces make no progress; stop.
      const bool no_progress = split == piece->begin || split == piece->end;
      if (random_cut < target) {
        piece->begin = split;
        piece->lower = random_cut;
      } else {
        piece->end = split;
        piece->upper = random_cut;
      }
      if (no_progress) break;
    }
  }

  static void AddStripedEdge(StripedRange* out, PositionRange edge) {
    if (edge.empty()) return;
    AIDX_CHECK(out->num_edges < 2);
    out->edges[static_cast<std::size_t>(out->num_edges)] = edge;
    ++out->num_edges;
  }
  // ------------------------------------------------------------------------

  /// Equi-depth splitters from a value sample; sorted and distinct, so the
  /// effective partition count is splitters.size() + 1 <= num_partitions.
  std::vector<T> PickSplitters(std::span<const T> base) {
    const std::size_t k = options_.num_partitions;
    if (k <= 1 || base.size() < 2) return {};
    std::vector<T> sample;
    if (base.size() <= options_.splitter_sample_size) {
      sample.assign(base.begin(), base.end());
    } else {
      Rng rng(options_.splitter_seed);
      sample.reserve(options_.splitter_sample_size);
      for (std::size_t i = 0; i < options_.splitter_sample_size; ++i) {
        sample.push_back(base[rng.NextBounded(base.size())]);
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<T> splitters;
    splitters.reserve(k - 1);
    for (std::size_t s = 1; s < k; ++s) {
      const T candidate = sample[s * sample.size() / k];
      // Skipping candidates equal to the sample minimum avoids a
      // permanently empty partition 0; with a full sample this also caps
      // the partition count at the number of distinct values.
      if (candidate == sample.front()) continue;
      if (splitters.empty() || splitters.back() < candidate) {
        splitters.push_back(candidate);
      }
    }
    return splitters;
  }

  /// Buckets batch positions by owning partition (the splitter table is
  /// immutable, so routing needs no latch).
  std::vector<std::vector<std::size_t>> GroupByPartition(
      std::span<const T> batch) const {
    std::vector<std::vector<std::size_t>> groups(shards_.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[PartitionOf(batch[i])].push_back(i);
    }
    return groups;
  }

  /// Index of the partition that stores value v.
  std::size_t PartitionOf(T v) const {
    // Number of splitters <= v (partition p starts at splitter p-1).
    return static_cast<std::size_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), v) -
        splitters_.begin());
  }

  /// [first, last] partition indices the predicate can match. Routing is
  /// exact for realized bound kinds: an exclusive upper bound equal to a
  /// splitter stops at the partition below it.
  std::pair<std::size_t, std::size_t> OverlapRange(
      const RangePredicate<T>& pred) const {
    std::size_t first = 0;
    std::size_t last = shards_.size() - 1;
    if (pred.low_kind != BoundKind::kUnbounded) first = PartitionOf(pred.low);
    if (pred.high_kind == BoundKind::kInclusive) {
      last = PartitionOf(pred.high);
    } else if (pred.high_kind == BoundKind::kExclusive) {
      // Values < high live below the first splitter >= high.
      last = static_cast<std::size_t>(
          std::lower_bound(splitters_.begin(), splitters_.end(), pred.high) -
          splitters_.begin());
    }
    // low <= high after the DefinitelyEmpty early-out, hence first <= last.
    AIDX_DCHECK(first <= last);
    return {first, last};
  }

  /// Runs fn(partition, slot) for every partition in [first, last], on the
  /// borrowed pool when one is present and the fan-out is wider than one.
  template <typename Fn>
  void ForEachOverlapping(std::size_t first, std::size_t last, Fn&& fn) {
    const std::size_t count = last - first + 1;
    if (pool_ != nullptr && count > 1) {
      pool_->ParallelFor(count,
                         [&](std::size_t slot) { fn(first + slot, slot); });
    } else {
      for (std::size_t slot = 0; slot < count; ++slot) fn(first + slot, slot);
    }
  }

  PartitionedCrackerOptions options_;
  ThreadPool* pool_;  // borrowed; may be null
  std::size_t total_size_;    // initial (base) size; live count is atomic below
  std::vector<T> splitters_;  // immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<row_id_t> next_rid_{0};   // globally unique fresh row ids
  std::atomic<std::size_t> live_size_{0};
};

}  // namespace aidx
