// Piece serialization for shard migration (src/dist/): the wire-shaped
// representation of a cracked column's index investment over one key
// range, and the helpers that export it from a live cracker index and
// replay it into another.
//
// A rebalance does not ship physical arrays — pieces are position ranges
// into a shard-local array, and positions mean nothing on another node.
// What survives the move is the *partition knowledge*: the realized cut
// values (with their kinds, core/cut.h) inside the migrated key range.
// Export collects those cuts; replay re-realizes each one on the target
// with the single bounding query that installs exactly that cut, so a
// later query bounded at a carried value finds its boundary already cut
// and performs zero new cracks (the EDBT'12 invariant that cracked
// investment is never thrown away, extended across a shard move).
//
// Replay cost is one crack per carried cut, confined to the piece being
// split — the same work the original queries paid, re-paid once at
// install time instead of drip-paid by the target's future queries.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cracker_index.h"
#include "core/cut.h"
#include "storage/predicate.h"
#include "storage/types.h"

namespace aidx {

/// One realized cut, detached from any array: the value and which side of
/// an equal value the boundary falls on. Plain data, ready for a future
/// socket codec.
template <ColumnValue T>
struct SerializedCut {
  T value{};
  CutKind kind = CutKind::kLess;

  friend bool operator==(const SerializedCut&, const SerializedCut&) = default;
};

/// The index investment of one column over one key range: every realized
/// cut whose value lies in [lo, hi], ascending, plus the piece count the
/// range spanned at export time (a carried-over figure for stats and the
/// rebalance bench, not needed for replay).
template <ColumnValue T>
struct PieceBundle {
  std::vector<SerializedCut<T>> cuts;
  std::size_t source_pieces = 0;

  bool empty() const { return cuts.empty(); }
};

/// Exports the cuts of `index` with values in [lo, hi] into `out->cuts`
/// (appending, ascending — VisitCuts walks in order) and counts the pieces
/// the range spans. The index is not modified.
template <ColumnValue T>
void ExportCutsInRange(const CrackerIndex<T>& index, T lo, T hi,
                       PieceBundle<T>* out) {
  index.VisitCuts([&](const Cut<T>& cut, const std::size_t&) {
    if (cut.value < lo || cut.value > hi) return;
    out->cuts.push_back({cut.value, cut.kind});
    ++out->source_pieces;
  });
  if (out->source_pieces > 0) ++out->source_pieces;  // k interior cuts span k+1 pieces
}

/// The predicate whose lower bound realizes exactly `cut` when queried
/// (core/cut.h: x >= v installs (v, kLess); x > v installs (v, kLessEq)).
/// Replaying a bundle is Count(RealizingPredicate(cut)) per cut: each call
/// cracks the one piece containing the cut value and registers the
/// boundary, leaving every other piece untouched.
template <ColumnValue T>
RangePredicate<T> RealizingPredicate(const SerializedCut<T>& cut) {
  return cut.kind == CutKind::kLess ? RangePredicate<T>::AtLeast(cut.value)
                                    : RangePredicate<T>::GreaterThan(cut.value);
}

}  // namespace aidx
