#include "dist/shard_router.h"

#include <algorithm>

#include "util/failpoint.h"

namespace aidx {

namespace {

/// SplitMix64 finalizer — cheap, well-mixed, and stable across runs (the
/// ring layout is part of the differential harness's determinism).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Whether [lo, hi) (a half-open interval, extremes flagged unbounded)
/// intersects `pred`. Conservative: ties toward "intersects".
bool IntervalIntersects(bool lo_bounded, std::int64_t lo, bool hi_bounded,
                        std::int64_t hi,
                        const RangePredicate<std::int64_t>& pred) {
  // Predicate entirely below the interval: pred.high < lo.
  if (lo_bounded && pred.high_kind != BoundKind::kUnbounded) {
    if (pred.high < lo) return false;
    if (pred.high == lo && pred.high_kind == BoundKind::kExclusive) return false;
  }
  // Predicate entirely above the interval: pred.low >= hi (hi exclusive).
  if (hi_bounded && pred.low_kind != BoundKind::kUnbounded) {
    if (pred.low >= hi) return false;
  }
  return true;
}

}  // namespace

ShardRouter::ShardRouter(std::size_t num_shards, std::size_t vnodes_per_shard)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  if (vnodes_per_shard == 0) vnodes_per_shard = 1;
  ring_.reserve(num_shards_ * vnodes_per_shard);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    for (std::size_t r = 0; r < vnodes_per_shard; ++r) {
      const std::uint64_t point =
          Mix64((static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(r));
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

Status ShardRouter::RegisterTable(std::string table, TableRoutingSpec spec) {
  if (table.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (spec.key_column.empty()) {
    return Status::InvalidArgument("routing key column must be non-empty for table '" +
                                   table + "'");
  }
  if (spec.kind == RoutingKind::kRange) {
    if (spec.range_boundaries.size() != num_shards_ - 1) {
      return Status::InvalidArgument(
          "range routing for table '" + table + "' needs " +
          std::to_string(num_shards_ - 1) + " boundaries, got " +
          std::to_string(spec.range_boundaries.size()));
    }
    for (std::size_t i = 1; i < spec.range_boundaries.size(); ++i) {
      if (spec.range_boundaries[i] <= spec.range_boundaries[i - 1]) {
        return Status::InvalidArgument(
            "range boundaries for table '" + table + "' must be strictly ascending");
      }
    }
  } else if (!spec.range_boundaries.empty()) {
    return Status::InvalidArgument("hash routing for table '" + table +
                                   "' takes no range boundaries");
  }
  if (tables_.contains(table)) {
    return Status::AlreadyExists("table '" + table + "' already registered");
  }
  tables_.emplace(std::move(table), TableEntry{std::move(spec), {}});
  return Status::OK();
}

const ShardRouter::TableEntry* ShardRouter::Find(std::string_view table) const {
  const auto it = tables_.find(std::string(table));
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const TableRoutingSpec*> ShardRouter::Spec(std::string_view table) const {
  const TableEntry* entry = Find(table);
  if (entry == nullptr) {
    return Status::NotFound("table '" + std::string(table) + "' is not registered");
  }
  return &entry->spec;
}

std::size_t ShardRouter::RingShardOf(std::int64_t key) const {
  const std::uint64_t h = Mix64(static_cast<std::uint64_t>(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& point, std::uint64_t hash) {
        return point.first < hash;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::size_t ShardRouter::RangeShardOf(const std::vector<std::int64_t>& boundaries,
                                      std::int64_t key) {
  // Shard i owns [boundaries[i-1], boundaries[i]); first value >= key+1...
  // i.e. the count of boundaries <= key.
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), key);
  return static_cast<std::size_t>(it - boundaries.begin());
}

Result<std::size_t> ShardRouter::ShardOf(std::string_view table,
                                         std::int64_t key) const {
  AIDX_RETURN_NOT_OK(failpoints::dist_route.Inject(table));
  const TableEntry* entry = Find(table);
  if (entry == nullptr) {
    return Status::NotFound("table '" + std::string(table) + "' is not registered");
  }
  // Latest matching override wins — it is the most recent rebalance's
  // routing decision for this key.
  for (auto it = entry->overrides.rbegin(); it != entry->overrides.rend(); ++it) {
    if (key >= it->lo && key < it->hi) return it->shard;
  }
  if (entry->spec.kind == RoutingKind::kRange) {
    return RangeShardOf(entry->spec.range_boundaries, key);
  }
  return RingShardOf(key);
}

Result<std::vector<std::size_t>> ShardRouter::ShardsFor(
    std::string_view table, const RangePredicate<std::int64_t>& pred) const {
  const TableEntry* entry = Find(table);
  if (entry == nullptr) {
    return Status::NotFound("table '" + std::string(table) + "' is not registered");
  }
  std::vector<bool> include(num_shards_, false);
  if (pred.DefinitelyEmpty()) return std::vector<std::size_t>{};
  if (entry->spec.kind == RoutingKind::kHash) {
    // A hash ring gives ranges no locality: every shard may hold a match.
    include.assign(num_shards_, true);
  } else {
    const auto& b = entry->spec.range_boundaries;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const bool lo_bounded = s > 0;
      const bool hi_bounded = s < b.size();
      const std::int64_t lo = lo_bounded ? b[s - 1] : 0;
      const std::int64_t hi = hi_bounded ? b[s] : 0;
      if (IntervalIntersects(lo_bounded, lo, hi_bounded, hi, pred)) {
        include[s] = true;
      }
    }
    // Rows may sit wherever a past override routed them — every override
    // target whose range intersects the predicate stays in the superset.
    for (const RoutingOverride& o : entry->overrides) {
      if (IntervalIntersects(true, o.lo, true, o.hi, pred)) include[o.shard] = true;
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (include[s]) out.push_back(s);
  }
  return out;
}

Status ShardRouter::AddOverride(std::string_view table, std::int64_t lo,
                                std::int64_t hi, std::size_t shard) {
  const auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(table) + "' is not registered");
  }
  if (lo >= hi) return Status::InvalidArgument("override range [lo, hi) must be non-empty");
  if (shard >= num_shards_) {
    return Status::InvalidArgument("override shard " + std::to_string(shard) +
                                   " out of range; " + std::to_string(num_shards_) +
                                   " shards");
  }
  it->second.overrides.push_back(RoutingOverride{lo, hi, shard});
  return Status::OK();
}

std::size_t ShardRouter::num_overrides(std::string_view table) const {
  const TableEntry* entry = Find(table);
  return entry == nullptr ? 0 : entry->overrides.size();
}

}  // namespace aidx
