#include "dist/sharded_database.h"

#include <algorithm>
#include <utility>

#include "storage/table.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace aidx {

namespace {

std::string ScatterScope(std::string_view table, std::size_t shard) {
  std::string scope(table);
  scope.push_back(kFailpointScopeSep);
  scope += "shard" + std::to_string(shard);
  return scope;
}

std::string PieceScope(std::string_view table, std::size_t chunk) {
  std::string scope(table);
  scope.push_back(kFailpointScopeSep);
  scope += "piece" + std::to_string(chunk);
  return scope;
}

/// Rows extracted per dist.migrate_piece evaluation during rebalance.
constexpr std::size_t kMigrateChunkRows = 4096;

/// Bounded retries for the evacuation DeleteWhere once the target has
/// absorbed the rows — the only failure source there is probabilistic
/// fault injection, and giving up would leave the range duplicated.
constexpr int kEvacuateRetries = 64;

}  // namespace

ShardedDatabase::ShardedDatabase(const ShardedDatabaseOptions& options)
    : router_(options.num_shards == 0 ? 1 : options.num_shards,
              options.vnodes_per_shard),
      scatter_pool_(options.scatter_pool) {
  const std::size_t n = router_.num_shards();
  DatabaseOptions node = options.node_options;
  node.thread_pool = options.scatter_pool;
  shards_.reserve(n);
  shard_mu_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Database>(node));
    shard_mu_.push_back(std::make_unique<std::mutex>());
  }
}

Status ShardedDatabase::CreateTable(std::string name, TableRoutingSpec spec) {
  std::unique_lock lock(topology_mu_);
  AIDX_RETURN_NOT_OK(router_.RegisterTable(name, std::move(spec)));
  for (auto& shard : shards_) {
    AIDX_RETURN_NOT_OK(shard->CreateTable(name));
  }
  return Status::OK();
}

Status ShardedDatabase::AddColumn(std::string_view table, std::string column) {
  std::unique_lock lock(topology_mu_);
  AIDX_RETURN_NOT_OK(router_.Spec(table).status());
  // Validate phase: the column may only be added while the table is empty
  // on every shard — routed rows have no cross-shard position alignment a
  // bulk column of values could attach to.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    AIDX_ASSIGN_OR_RETURN(Table * t, shards_[s]->catalog().GetTable(table));
    if (t->num_rows() != 0) {
      return Status::InvalidArgument(
          "cannot add column '" + column + "' to non-empty sharded table '" +
          std::string(table) + "' (shard " + std::to_string(s) + " has rows)");
    }
  }
  for (auto& shard : shards_) {
    AIDX_RETURN_NOT_OK(shard->AddColumn(table, column, {}));
  }
  return Status::OK();
}

Result<std::size_t> ShardedDatabase::KeyColumnIndex(
    std::string_view table, std::string_view key_column) const {
  AIDX_ASSIGN_OR_RETURN(Table * t, shards_[0]->catalog().GetTable(table));
  const auto& names = t->column_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == key_column) return i;
  }
  return Status::NotFound("routing key column '" + std::string(key_column) +
                          "' not in table '" + std::string(table) + "'");
}

Status ShardedDatabase::Insert(std::string_view table,
                               std::span<const std::int64_t> row) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(const TableRoutingSpec* spec, router_.Spec(table));
  AIDX_ASSIGN_OR_RETURN(std::size_t key_idx,
                        KeyColumnIndex(table, spec->key_column));
  if (key_idx >= row.size()) {
    return Status::InvalidArgument("row has " + std::to_string(row.size()) +
                                   " values; key column is at position " +
                                   std::to_string(key_idx));
  }
  AIDX_ASSIGN_OR_RETURN(std::size_t s, router_.ShardOf(table, row[key_idx]));
  std::lock_guard<std::mutex> shard_lock(*shard_mu_[s]);
  return shards_[s]->Insert(table, row);
}

Status ShardedDatabase::InsertBatch(std::string_view table,
                                    std::span<const std::int64_t> rows) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(const TableRoutingSpec* spec, router_.Spec(table));
  AIDX_ASSIGN_OR_RETURN(std::size_t key_idx,
                        KeyColumnIndex(table, spec->key_column));
  AIDX_ASSIGN_OR_RETURN(Table * t, shards_[0]->catalog().GetTable(table));
  const std::size_t ncols = t->num_columns();
  if (ncols == 0) {
    return Status::InvalidArgument("table '" + std::string(table) + "' has no columns");
  }
  if (rows.size() % ncols != 0) {
    return Status::InvalidArgument(
        "batch size " + std::to_string(rows.size()) + " is not a multiple of " +
        std::to_string(ncols) + " columns");
  }
  // Validate phase: route every row before any shard mutates, so an
  // injected dist.route error aborts with nothing applied anywhere.
  const std::size_t nrows = rows.size() / ncols;
  std::vector<std::vector<std::int64_t>> per_shard(shards_.size());
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::int64_t key = rows[r * ncols + key_idx];
    AIDX_ASSIGN_OR_RETURN(std::size_t s, router_.ShardOf(table, key));
    auto& bucket = per_shard[s];
    bucket.insert(bucket.end(), rows.begin() + static_cast<std::ptrdiff_t>(r * ncols),
                  rows.begin() + static_cast<std::ptrdiff_t>((r + 1) * ncols));
  }
  // Apply phase: atomic per shard (each node's validate-then-apply), not
  // across shards — see the file comment in sharded_database.h.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    std::lock_guard<std::mutex> shard_lock(*shard_mu_[s]);
    AIDX_RETURN_NOT_OK(shards_[s]->InsertBatch(table, per_shard[s]));
  }
  return Status::OK();
}

Result<bool> ShardedDatabase::Delete(std::string_view table,
                                     std::string_view column,
                                     std::int64_t value) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(const TableRoutingSpec* spec, router_.Spec(table));
  std::vector<std::size_t> targets;
  if (column == spec->key_column) {
    AIDX_ASSIGN_OR_RETURN(
        targets,
        router_.ShardsFor(table, RangePredicate<std::int64_t>::Between(value, value)));
  } else {
    // Deleting by a non-routing column: the key is unknown, probe everyone.
    for (std::size_t s = 0; s < shards_.size(); ++s) targets.push_back(s);
  }
  for (std::size_t s : targets) {
    std::lock_guard<std::mutex> shard_lock(*shard_mu_[s]);
    AIDX_ASSIGN_OR_RETURN(bool removed, shards_[s]->Delete(table, column, value));
    if (removed) return true;
  }
  return false;
}

Result<std::vector<std::size_t>> ShardedDatabase::TargetsFor(
    std::string_view table, std::string_view column,
    const RangePredicate<std::int64_t>& pred) const {
  AIDX_ASSIGN_OR_RETURN(const TableRoutingSpec* spec, router_.Spec(table));
  if (column == spec->key_column) return router_.ShardsFor(table, pred);
  std::vector<std::size_t> all(shards_.size());
  for (std::size_t s = 0; s < all.size(); ++s) all[s] = s;
  return all;
}

template <typename Fn>
Status ShardedDatabase::Scatter(std::string_view table,
                                const std::vector<std::size_t>& targets,
                                const QueryRequest& req, Fn&& fn) {
  // One token per scatter, chained to the caller's: the first failing leg
  // cancels its siblings at their next piece check without being able to
  // cancel the caller's query as a whole.
  const QueryContext base = req.context ? *req.context : QueryContext();
  auto scatter_token = CancellationToken::Chained(base.token());
  QueryContext leg_ctx = base;
  leg_ctx.SetToken(scatter_token);
  std::vector<Status> statuses(targets.size(), Status::OK());
  const auto run_leg = [&](std::size_t ti) {
    const std::size_t s = targets[ti];
    Status st = failpoints::dist_scatter.Inject(ScatterScope(table, s));
    if (st.ok()) {
      QueryRequest leg = req;
      leg.context = leg_ctx;
      std::lock_guard<std::mutex> shard_lock(*shard_mu_[s]);
      st = fn(ti, s, leg);
    }
    if (!st.ok()) {
      statuses[ti] = std::move(st);
      scatter_token->Cancel();
    }
  };
  if (scatter_pool_ != nullptr && targets.size() > 1) {
    scatter_pool_->ParallelFor(targets.size(), run_leg);
  } else {
    for (std::size_t ti = 0; ti < targets.size(); ++ti) run_leg(ti);
  }
  // Report the root cause: a leg's own error beats the Cancelled its
  // siblings unwound with.
  Status first = Status::OK();
  for (Status& st : statuses) {
    if (st.ok()) continue;
    if (first.ok() || (first.code() == StatusCode::kCancelled &&
                       st.code() != StatusCode::kCancelled)) {
      first = std::move(st);
    }
  }
  return first;
}

Result<std::size_t> ShardedDatabase::Count(const QueryRequest& req) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(std::vector<std::size_t> targets,
                        TargetsFor(req.table, req.column, req.predicate));
  if (targets.empty()) return static_cast<std::size_t>(0);
  std::vector<std::size_t> counts(targets.size(), 0);
  AIDX_RETURN_NOT_OK(Scatter(
      req.table, targets, req,
      [&](std::size_t ti, std::size_t s, const QueryRequest& leg) -> Status {
        AIDX_ASSIGN_OR_RETURN(counts[ti], shards_[s]->Count(leg));
        return Status::OK();
      }));
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  return total;
}

Result<double> ShardedDatabase::Sum(const QueryRequest& req) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(std::vector<std::size_t> targets,
                        TargetsFor(req.table, req.column, req.predicate));
  if (targets.empty()) return 0.0;
  std::vector<double> sums(targets.size(), 0.0);
  AIDX_RETURN_NOT_OK(Scatter(
      req.table, targets, req,
      [&](std::size_t ti, std::size_t s, const QueryRequest& leg) -> Status {
        AIDX_ASSIGN_OR_RETURN(sums[ti], shards_[s]->Sum(leg));
        return Status::OK();
      }));
  double total = 0.0;
  for (double x : sums) total += x;
  return total;
}

Result<ProjectionResult<std::int64_t>> ShardedDatabase::SelectProject(
    const QueryRequest& req) {
  std::shared_lock lock(topology_mu_);
  AIDX_ASSIGN_OR_RETURN(std::vector<std::size_t> targets,
                        TargetsFor(req.table, req.column, req.predicate));
  // An empty superset still needs a correctly shaped (named, zero-row)
  // result; let shard 0 produce it through the ordinary path.
  if (targets.empty()) targets.push_back(0);
  std::vector<ProjectionResult<std::int64_t>> legs(targets.size());
  AIDX_RETURN_NOT_OK(Scatter(
      req.table, targets, req,
      [&](std::size_t ti, std::size_t s, const QueryRequest& leg) -> Status {
        AIDX_ASSIGN_OR_RETURN(legs[ti], shards_[s]->SelectProject(leg));
        return Status::OK();
      }));
  ProjectionResult<std::int64_t> merged;
  merged.column_names = legs[0].column_names;
  merged.columns.resize(merged.column_names.size());
  for (const auto& leg : legs) {
    AIDX_DCHECK(leg.column_names == merged.column_names);
    merged.num_rows += leg.num_rows;
    for (std::size_t c = 0; c < leg.columns.size(); ++c) {
      merged.columns[c].insert(merged.columns[c].end(), leg.columns[c].begin(),
                               leg.columns[c].end());
    }
  }
  return merged;
}

Result<RebalanceReport> ShardedDatabase::Rebalance(std::string_view table,
                                                   std::size_t from,
                                                   std::size_t to,
                                                   std::int64_t lo,
                                                   std::int64_t hi) {
  std::unique_lock lock(topology_mu_);
  if (from >= shards_.size() || to >= shards_.size()) {
    return Status::InvalidArgument("shard out of range; " +
                                   std::to_string(shards_.size()) + " shards");
  }
  if (from == to) {
    return Status::InvalidArgument("rebalance source and target must differ");
  }
  if (lo >= hi) {
    return Status::InvalidArgument("rebalance range [lo, hi) must be non-empty");
  }
  AIDX_ASSIGN_OR_RETURN(const TableRoutingSpec* spec, router_.Spec(table));
  const std::string key_column = spec->key_column;
  AIDX_RETURN_NOT_OK(KeyColumnIndex(table, key_column).status());
  Database& src = *shards_[from];
  Database& tgt = *shards_[to];

  // -- Validate / extract phase: nothing mutates until it completes. ------
  AIDX_ASSIGN_OR_RETURN(Table * t, src.catalog().GetTable(table));
  AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* key_col,
                        t->GetTypedColumn<std::int64_t>(key_column));
  const auto& names = t->column_names();
  std::vector<const TypedColumn<std::int64_t>*> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* c,
                          t->GetTypedColumn<std::int64_t>(name));
    cols.push_back(c);
  }
  const std::span<const std::int64_t> keys = key_col->Values();
  std::vector<std::size_t> victims;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    if (keys[r] >= lo && keys[r] < hi) victims.push_back(r);
  }
  // The migrated rows, row-major in column order, ready for InsertBatch.
  std::vector<std::int64_t> moved;
  moved.reserve(victims.size() * cols.size());
  for (std::size_t r : victims) {
    for (const auto* c : cols) moved.push_back(c->Get(r));
  }
  // The carried index investment: every cached path's realized cuts in
  // [lo, hi] (the cut at hi bounds the migrated range on the target).
  AIDX_ASSIGN_OR_RETURN(std::vector<ColumnCutExport> exports,
                        src.ExportColumnCuts(table, key_column, lo, hi));
  // dist.migrate_piece fires once per extracted chunk, all before either
  // shard mutates — an injected error is a clean abort.
  const std::size_t chunks = (victims.size() + kMigrateChunkRows - 1) / kMigrateChunkRows;
  for (std::size_t i = 0; i < chunks || i == 0; ++i) {
    AIDX_RETURN_NOT_OK(failpoints::dist_migrate_piece.Inject(PieceScope(table, i)));
    if (chunks == 0) break;
  }

  // -- Apply phase. -------------------------------------------------------
  RebalanceReport report;
  report.rows_moved = victims.size();
  report.bundles = exports.size();
  for (const auto& e : exports) report.cuts_carried += e.bundle.cuts.size();
  if (!victims.empty()) {
    // Target first: a failure here (the engine's own validate phase) is a
    // clean abort with both shards untouched.
    AIDX_RETURN_NOT_OK(tgt.InsertBatch(table, moved));
    // Source evacuation. The target already holds the rows, so giving up
    // now would leave the range duplicated; the only failure source is
    // probabilistic fault injection, so retry within a bound and report
    // the torn state honestly if it somehow persists.
    Status evacuated = Status::OK();
    for (int attempt = 0; attempt < kEvacuateRetries; ++attempt) {
      Result<std::size_t> removed = src.DeleteWhere(
          table, key_column, RangePredicate<std::int64_t>::HalfOpen(lo, hi));
      evacuated = removed.status();
      if (evacuated.ok()) break;
    }
    if (!evacuated.ok()) {
      return Status::Internal(
          "rebalance torn: target holds migrated rows but source evacuation "
          "kept failing: " + std::string(evacuated.message()));
    }
  }
  AIDX_RETURN_NOT_OK(router_.AddOverride(table, lo, hi, to));
  AIDX_RETURN_NOT_OK(tgt.ReplayColumnCuts(table, key_column, exports));
  return report;
}

std::vector<ShardStats> ShardedDatabase::Stats() const {
  std::shared_lock lock(topology_mu_);
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> shard_lock(*shard_mu_[s]);
    const DatabaseStats db = shards_[s]->Stats();
    const ResourceGovernor& gov = shards_[s]->resource_governor();
    ShardStats stats;
    stats.shard = s;
    stats.rows = db.rows;
    stats.cached_paths = db.cached_paths;
    stats.cracked_pieces = db.cracked_pieces;
    stats.pending_update_bytes = db.pending_update_bytes;
    stats.crack = db.crack;
    stats.under_pressure = gov.UnderPressure();
    stats.admission_denials = gov.admission_denials();
    stats.sheds = gov.sheds();
    out.push_back(stats);
  }
  return out;
}

}  // namespace aidx
