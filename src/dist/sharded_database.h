// ShardedDatabase: N in-process Database nodes behind one routable query
// API (docs/DISTRIBUTION.md).
//
// The facade owns the shards, a ShardRouter mapping routing-key values to
// them, and (optionally borrowing) a scatter pool. Queries take the
// QueryRequest form verbatim — the same struct a single node serves — and
// are scattered to the router's shard superset, gathered, and merged:
// Count sums, Sum sums, SelectProject concatenates per-shard projections
// in shard order. DML routes by the table's declared key column.
//
// Consistency model: one topology-wide reader/writer lock. Every query
// and DML call holds it shared; Rebalance (and schema changes) hold it
// exclusive. A per-shard mutex then serializes concurrent operations on
// each node (Database is not thread-safe). Consequence: reads never
// observe a rebalance's intermediate state — a scatter sees the topology
// either wholly before or wholly after a migration, which is what the
// differential harness's mid-rebalance exactness checks rely on.
//
// Deadlines and cancellation: a request's QueryContext is re-derived per
// scatter — every leg shares one fresh token *chained* to the caller's
// (util/query_context.h), so the first failing leg cancels its siblings
// at their next piece-granularity check while the caller's own token is
// never touched. Deadlines propagate unchanged: a shard leg that blows
// the budget surfaces DeadlineExceeded for the whole scatter.
//
// Cross-shard atomicity: per-shard only. A multi-row InsertBatch is
// routed, split, and applied shard by shard; each sub-batch is row-atomic
// on its node (the engine's validate-then-apply contract), but a fault
// injected mid-sequence leaves earlier shards applied. Single-row DML is
// atomic, full stop — the fault-schedule differential harness sticks to
// it (tests/sharded_db_test.cc).
//
// Rebalance(table, from, to, [lo, hi)) migrates a key range *with its
// index investment*: rows are extracted, the source's cached access paths
// export their realized cuts in range (PieceBundle serialization,
// parallel/piece_transfer.h), the source evacuates via one bulk
// DeleteWhere, the target absorbs the rows and replays the cuts — so a
// query bounded at a carried cut value performs zero new cracks on the
// target. Failpoints `dist.migrate_piece` fire per extracted row chunk in
// the validate phase, before either shard mutates.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dist/shard_router.h"
#include "exec/engine.h"
#include "util/result.h"
#include "util/status.h"
#include "util/writer_priority_mutex.h"

namespace aidx {

class ThreadPool;

struct ShardedDatabaseOptions {
  std::size_t num_shards = 4;
  /// Per-node engine options. `node_options.thread_pool` is overwritten
  /// with `scatter_pool` so the nodes and the scatter share one pool.
  DatabaseOptions node_options;
  /// Borrowed; may be null (scatter then runs inline on the caller).
  ThreadPool* scatter_pool = nullptr;
  /// Consistent-hash ring resolution (vnodes per shard).
  std::size_t vnodes_per_shard = 64;
};

/// Per-shard health gauges (Stats()); one entry per shard, in shard order.
struct ShardStats {
  std::size_t shard = 0;
  std::size_t rows = 0;
  std::size_t cached_paths = 0;
  std::size_t cracked_pieces = 0;
  std::size_t pending_update_bytes = 0;
  /// Cumulative crack work (num_crack_in_two etc.) on this node.
  CrackerStats crack;
  /// Degradation gauges from the node's resource governor (PR 9).
  bool under_pressure = false;
  std::size_t admission_denials = 0;
  std::size_t sheds = 0;
};

/// What a Rebalance moved.
struct RebalanceReport {
  std::size_t rows_moved = 0;
  /// Serialized cuts re-realized on the target, summed over configs.
  std::size_t cuts_carried = 0;
  /// Distinct (strategy config) bundles carried.
  std::size_t bundles = 0;
};

class ShardedDatabase {
 public:
  explicit ShardedDatabase(const ShardedDatabaseOptions& options = {});

  std::size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }

  // -- Schema ---------------------------------------------------------------

  /// Creates `name` on every shard and registers its routing. The spec's
  /// key column need not exist yet; it must by the first row.
  Status CreateTable(std::string name, TableRoutingSpec spec);

  /// Adds an (empty) int64 column on every shard. Allowed only while the
  /// table is empty everywhere — rows arrive routed, so there is no
  /// meaningful cross-shard alignment for a bulk column of values.
  Status AddColumn(std::string_view table, std::string column);

  // -- DML (routed) ---------------------------------------------------------

  /// Appends one row (column_names() order), routed by its key-column
  /// value. Row-atomic on the owning shard.
  Status Insert(std::string_view table, std::span<const std::int64_t> row);
  Status Insert(std::string_view table, std::initializer_list<std::int64_t> row) {
    return Insert(table, std::span<const std::int64_t>(row.begin(), row.size()));
  }

  /// Row-major batch, split by routing and applied per shard. Validation
  /// (width, routing, `dist.route`) covers the whole batch before any
  /// shard mutates; the apply phase is atomic per shard, not across them.
  Status InsertBatch(std::string_view table, std::span<const std::int64_t> rows);

  /// Deletes at most one row whose `column` equals `value`, probing the
  /// candidate shards in shard order. ok(false) when none matched.
  Result<bool> Delete(std::string_view table, std::string_view column,
                      std::int64_t value);

  // -- Queries (scatter/gather) ---------------------------------------------

  /// COUNT(*) summed over the shard superset for `req.predicate`.
  Result<std::size_t> Count(const QueryRequest& req);
  /// SUM(column) over the superset.
  Result<double> Sum(const QueryRequest& req);
  /// Projection gathered in shard order (row order across shards is
  /// routing-dependent; compare as multisets).
  Result<ProjectionResult<std::int64_t>> SelectProject(const QueryRequest& req);

  // -- Operations -----------------------------------------------------------

  /// Moves every row of `table` with key in [lo, hi) from shard `from` to
  /// shard `to`, carrying cracked-piece boundaries (see file comment).
  /// Registers a routing override so future inserts in the range land on
  /// `to`. Exclusive: blocks all queries and DML for the duration.
  Result<RebalanceReport> Rebalance(std::string_view table, std::size_t from,
                                    std::size_t to, std::int64_t lo,
                                    std::int64_t hi);

  /// Per-shard gauges, in shard order.
  std::vector<ShardStats> Stats() const;

  /// Direct node access for tests; bypasses all locking.
  Database& shard(std::size_t i) { return *shards_[i]; }

 private:
  struct ScatterLeg {
    std::size_t shard;
    Status status;
  };

  /// Resolves the routing key's column index from shard 0's catalog (all
  /// shards share one schema).
  Result<std::size_t> KeyColumnIndex(std::string_view table,
                                     std::string_view key_column) const;

  /// The shard superset for a query whose predicate is over `column`:
  /// router pruning applies only when `column` IS the routing key — a
  /// predicate over any other column says nothing about key placement, so
  /// every shard is a candidate.
  Result<std::vector<std::size_t>> TargetsFor(
      std::string_view table, std::string_view column,
      const RangePredicate<std::int64_t>& pred) const;

  /// Runs `fn(shard)` for every shard in `targets` — on the scatter pool
  /// when one is configured and the fan-out warrants it, inline otherwise.
  /// Each invocation holds that shard's mutex. Returns the first (lowest
  /// shard index) non-OK status; a shared chained token cancels sibling
  /// legs once any leg fails.
  template <typename Fn>
  Status Scatter(std::string_view table, const std::vector<std::size_t>& targets,
                 const QueryRequest& req, Fn&& fn);

  ShardRouter router_;
  ThreadPool* scatter_pool_;  // borrowed; may be null
  // unique_ptr: Database is move-only but the vector must not relocate
  // nodes while shard mutexes point at them.
  std::vector<std::unique_ptr<Database>> shards_;
  // Topology lock: queries/DML shared, Rebalance and schema exclusive.
  // Writer-priority (util/writer_priority_mutex.h): a pending rebalance
  // briefly queues new readers instead of starving behind them.
  mutable WriterPriorityMutex topology_mu_;
  // One per shard; serializes concurrent shared-mode callers on a node.
  mutable std::vector<std::unique_ptr<std::mutex>> shard_mu_;
};

}  // namespace aidx
