// ShardRouter: maps routing-key values to shards, per table.
//
// Two routing disciplines, selectable when a table is registered:
//
//  - kHash: consistent hashing over a vnode ring (~64 virtual points per
//    shard by default). Point lookups (inserts, key deletes) land on one
//    shard; range reads scatter to every shard, because a hash ring gives
//    ranges no locality.
//  - kRange: num_shards-1 ascending boundary values partition the key
//    domain into contiguous intervals; shard i owns [b[i-1], b[i]) with
//    the extremes unbounded. Range reads prune to the shards whose
//    interval intersects the predicate.
//
// Rebalance layers *overrides* on top of either discipline: a
// (lo, hi) -> shard entry routes subsequent inserts for keys in [lo, hi)
// to the migration target, the latest matching entry winning. Overrides
// are append-only — older entries stay in the list so ShardsFor can still
// name every shard a historical routing decision may have parked rows on.
// ShardsFor therefore returns a *superset* of the shards holding matching
// rows; it never excludes a shard that might hold one (the invariant the
// scatter layer's exactness rests on).
//
// Thread-safety: none internally. ShardedDatabase guards the router with
// its topology lock — reads under shared, registration and overrides
// under exclusive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/predicate.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

enum class RoutingKind : char { kHash, kRange };

inline std::string_view RoutingKindName(RoutingKind kind) {
  return kind == RoutingKind::kHash ? "hash" : "range";
}

/// Per-table routing declaration, given at table registration.
struct TableRoutingSpec {
  /// The column whose value routes a row. Must exist in the table's schema
  /// by the time rows arrive.
  std::string key_column;
  RoutingKind kind = RoutingKind::kHash;
  /// kRange only: exactly num_shards-1 strictly ascending boundaries.
  std::vector<std::int64_t> range_boundaries;
};

/// One rebalance's routing residue: keys in [lo, hi) route to `shard`.
struct RoutingOverride {
  std::int64_t lo = 0;  // inclusive
  std::int64_t hi = 0;  // exclusive
  std::size_t shard = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_shards, std::size_t vnodes_per_shard = 64);

  std::size_t num_shards() const { return num_shards_; }

  /// Registers a table. Validates the spec (kRange boundary count and
  /// ordering); AlreadyExists on duplicate names.
  Status RegisterTable(std::string table, TableRoutingSpec spec);

  Result<const TableRoutingSpec*> Spec(std::string_view table) const;

  /// The shard a row with routing key `key` should be *written* to.
  /// Fires the `dist.route` failpoint (scope: table name) before any
  /// routing state is read, so an injected error aborts the operation
  /// with no shard touched.
  Result<std::size_t> ShardOf(std::string_view table, std::int64_t key) const;

  /// Every shard that may hold a row matching `pred` — a superset, never
  /// an underestimate. kHash tables scatter to all shards; kRange tables
  /// prune by boundary interval; override targets whose range intersects
  /// `pred` are always included.
  Result<std::vector<std::size_t>> ShardsFor(
      std::string_view table, const RangePredicate<std::int64_t>& pred) const;

  /// Records a rebalance's residue: future inserts of keys in [lo, hi)
  /// route to `shard`. Latest entry wins for ShardOf; all entries
  /// contribute to ShardsFor.
  Status AddOverride(std::string_view table, std::int64_t lo, std::int64_t hi,
                     std::size_t shard);

  /// Override count for a table (tests; 0 if the table is unknown).
  std::size_t num_overrides(std::string_view table) const;

 private:
  struct TableEntry {
    TableRoutingSpec spec;
    std::vector<RoutingOverride> overrides;  // append-only; later wins
  };

  const TableEntry* Find(std::string_view table) const;
  std::size_t RingShardOf(std::int64_t key) const;
  /// Boundary-interval owner under kRange routing.
  static std::size_t RangeShardOf(const std::vector<std::int64_t>& boundaries,
                                  std::int64_t key);

  std::size_t num_shards_;
  /// Sorted (hash point, shard) pairs — the consistent-hash ring shared by
  /// every kHash table.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::unordered_map<std::string, TableEntry> tables_;
};

}  // namespace aidx
