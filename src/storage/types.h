// Type vocabulary of the column-store substrate.
//
// The substrate stores fixed-width dense arrays only — the column-store
// property database cracking relies on (tutorial §2, "Column-Stores").
#pragma once

#include <cstdint>
#include <string_view>

namespace aidx {

/// Row identifier within a table (MonetDB's "oid"). 32 bits bounds tables to
/// ~4.29 billion rows, which comfortably covers the experiment scale while
/// halving the footprint of oid arrays.
using row_id_t = std::uint32_t;

/// Physical types supported by the substrate.
enum class DataType : char {
  kInt32,
  kInt64,
  kFloat64,
};

std::string_view DataTypeToString(DataType type);

/// Maps a physical C++ type to its DataType tag.
template <typename T>
struct TypeTraits;

template <>
struct TypeTraits<std::int32_t> {
  static constexpr DataType kType = DataType::kInt32;
  static constexpr std::string_view kName = "int32";
};
template <>
struct TypeTraits<std::int64_t> {
  static constexpr DataType kType = DataType::kInt64;
  static constexpr std::string_view kName = "int64";
};
template <>
struct TypeTraits<double> {
  static constexpr DataType kType = DataType::kFloat64;
  static constexpr std::string_view kName = "float64";
};

/// The concept satisfied by all value types the kernel can crack and index.
template <typename T>
concept ColumnValue = requires { TypeTraits<T>::kType; };

}  // namespace aidx
