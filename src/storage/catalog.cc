#include "storage/catalog.h"

#include <algorithm>

namespace aidx {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  if (table == nullptr) return Status::InvalidArgument("cannot add null table");
  if (table->name().empty()) return Status::InvalidArgument("table name must be non-empty");
  if (tables_.contains(table->name())) {
    return Status::AlreadyExists("table '" + table->name() + "' already exists");
  }
  std::string key = table->name();
  tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

Result<Table*> Catalog::CreateTable(std::string name) {
  auto table = std::make_unique<Table>(std::move(name));
  Table* raw = table.get();
  AIDX_RETURN_NOT_OK(AddTable(std::move(table)));
  return raw;
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  const auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  const auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace aidx
