// Catalog: the namespace of tables owned by a Database instance.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// Owns tables and resolves them by name.
///
/// Pointer stability is part of the contract: a Table* returned by
/// CreateTable/GetTable stays valid until that table is dropped (tables are
/// heap-allocated; rehashing or moving the catalog never relocates them).
/// Table-backed sideways crackers and other cached structures hold these
/// pointers across queries and DML.
class Catalog {
 public:
  Catalog() = default;
  AIDX_DEFAULT_MOVE_ONLY(Catalog);

  /// Registers a table; fails if the name is taken.
  Status AddTable(std::unique_ptr<Table> table);

  /// Creates an empty table and returns it for population.
  Result<Table*> CreateTable(std::string name);

  Result<Table*> GetTable(std::string_view name) const;

  /// Drops a table; fails when absent.
  Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;
  std::size_t size() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace aidx
