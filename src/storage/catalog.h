// Catalog: the namespace of tables owned by a Database instance.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// Owns tables and resolves them by name.
class Catalog {
 public:
  Catalog() = default;
  AIDX_DEFAULT_MOVE_ONLY(Catalog);

  /// Registers a table; fails if the name is taken.
  Status AddTable(std::unique_ptr<Table> table);

  /// Creates an empty table and returns it for population.
  Result<Table*> CreateTable(std::string name);

  Result<Table*> GetTable(std::string_view name) const;

  /// Drops a table; fails when absent.
  Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;
  std::size_t size() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace aidx
