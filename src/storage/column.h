// Columns: fixed-width dense arrays, the storage unit of the substrate.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

template <ColumnValue T>
class TypedColumn;

/// Type-erased handle to a column. Concrete storage lives in TypedColumn<T>.
class Column {
 public:
  virtual ~Column() = default;

  virtual DataType type() const = 0;
  virtual std::size_t size() const = 0;
  virtual const std::string& name() const = 0;

  /// Bytes of value payload held by this column.
  virtual std::size_t MemoryUsageBytes() const = 0;

  /// Erases the value at `pos`, preserving the order of the rest. Type-
  /// erased so Table::EraseRow can remove one row across heterogeneous
  /// columns in lock step (row-atomic DML).
  virtual void EraseRow(std::size_t pos) = 0;

  /// Erases the values at `sorted_positions` (strictly ascending, in
  /// range), order-preserving. The default loops EraseRow back to front;
  /// TypedColumn overrides with a single compaction pass — the bulk
  /// primitive shard rebalance uses to evacuate a key range in O(n)
  /// instead of O(rows_moved * n).
  virtual void EraseRows(std::span<const std::size_t> sorted_positions) {
    for (std::size_t i = sorted_positions.size(); i > 0; --i) {
      EraseRow(sorted_positions[i - 1]);
    }
  }

  /// Down-casts to the typed column; returns an error on a type mismatch.
  template <ColumnValue T>
  Result<TypedColumn<T>*> As() {
    if (type() != TypeTraits<T>::kType) {
      return Status::InvalidArgument("column '" + name() + "' is " +
                                     std::string(DataTypeToString(type())) +
                                     ", requested " + std::string(TypeTraits<T>::kName));
    }
    return static_cast<TypedColumn<T>*>(this);
  }
  template <ColumnValue T>
  Result<const TypedColumn<T>*> As() const {
    if (type() != TypeTraits<T>::kType) {
      return Status::InvalidArgument("column '" + name() + "' is " +
                                     std::string(DataTypeToString(type())) +
                                     ", requested " + std::string(TypeTraits<T>::kName));
    }
    return static_cast<const TypedColumn<T>*>(this);
  }
};

/// Concrete column: a dense std::vector<T> plus a name.
template <ColumnValue T>
class TypedColumn final : public Column {
 public:
  explicit TypedColumn(std::string name) : name_(std::move(name)) {}
  TypedColumn(std::string name, std::vector<T> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  AIDX_DEFAULT_MOVE_ONLY(TypedColumn);

  DataType type() const override { return TypeTraits<T>::kType; }
  std::size_t size() const override { return values_.size(); }
  const std::string& name() const override { return name_; }
  std::size_t MemoryUsageBytes() const override { return values_.capacity() * sizeof(T); }

  void Reserve(std::size_t n) { values_.reserve(n); }
  void Append(T value) { values_.push_back(value); }
  void AppendMany(std::span<const T> values) {
    values_.insert(values_.end(), values.begin(), values.end());
  }
  void EraseRow(std::size_t pos) override {
    AIDX_DCHECK(pos < values_.size());
    values_.erase(values_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  void EraseRows(std::span<const std::size_t> sorted_positions) override {
    if (sorted_positions.empty()) return;
    std::size_t write = sorted_positions.front();
    std::size_t next_victim = 0;
    for (std::size_t read = write; read < values_.size(); ++read) {
      if (next_victim < sorted_positions.size() &&
          read == sorted_positions[next_victim]) {
        AIDX_DCHECK(read < values_.size());
        ++next_victim;
        continue;
      }
      values_[write++] = values_[read];
    }
    values_.resize(write);
  }

  /// Unchecked element access (hot paths); bounds are the caller's contract.
  T Get(std::size_t i) const {
    AIDX_DCHECK(i < values_.size());
    return values_[i];
  }

  std::span<const T> Values() const { return values_; }
  /// Mutable view; used by bulk loaders and the update pipeline.
  std::vector<T>& MutableValues() { return values_; }

 private:
  std::string name_;
  std::vector<T> values_;
};

/// Convenience factory: wraps a vector into a heap-allocated typed column.
template <ColumnValue T>
std::unique_ptr<TypedColumn<T>> MakeColumn(std::string name, std::vector<T> values) {
  return std::make_unique<TypedColumn<T>>(std::move(name), std::move(values));
}

}  // namespace aidx
