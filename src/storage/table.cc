#include "storage/table.h"

namespace aidx {

Status Table::AddColumn(std::unique_ptr<Column> column) {
  if (column == nullptr) {
    return Status::InvalidArgument("cannot add null column to table '" + name_ + "'");
  }
  const std::string& col_name = column->name();
  if (col_name.empty()) {
    return Status::InvalidArgument("column name must be non-empty");
  }
  if (columns_.contains(col_name)) {
    return Status::AlreadyExists("column '" + col_name + "' already exists in table '" +
                                 name_ + "'");
  }
  if (!columns_.empty() && column->size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + col_name + "' has " + std::to_string(column->size()) +
        " rows; table '" + name_ + "' has " + std::to_string(num_rows()));
  }
  order_.push_back(col_name);
  columns_.emplace(col_name, std::move(column));
  return Status::OK();
}

Result<Column*> Table::GetColumn(std::string_view column_name) const {
  const auto it = columns_.find(std::string(column_name));
  if (it == columns_.end()) {
    return Status::NotFound("no column '" + std::string(column_name) + "' in table '" +
                            name_ + "'");
  }
  return it->second.get();
}

std::size_t Table::MemoryUsageBytes() const {
  std::size_t total = 0;
  for (const auto& [_, col] : columns_) total += col->MemoryUsageBytes();
  return total;
}

}  // namespace aidx
