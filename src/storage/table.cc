#include "storage/table.h"

#include "util/failpoint.h"
#include "util/logging.h"

namespace aidx {

Status Table::AddColumn(std::unique_ptr<Column> column) {
  // Entry gate, before any validation state is read: an injected failure
  // leaves the table untouched (schema changes are validate-then-mutate).
  AIDX_RETURN_NOT_OK(failpoints::storage_add_column.Inject());
  if (column == nullptr) {
    return Status::InvalidArgument("cannot add null column to table '" + name_ + "'");
  }
  const std::string& col_name = column->name();
  if (col_name.empty()) {
    return Status::InvalidArgument("column name must be non-empty");
  }
  if (columns_.contains(col_name)) {
    return Status::AlreadyExists("column '" + col_name + "' already exists in table '" +
                                 name_ + "'");
  }
  if (!columns_.empty() && column->size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + col_name + "' has " + std::to_string(column->size()) +
        " rows; table '" + name_ + "' has " + std::to_string(num_rows()));
  }
  const bool first_column = columns_.empty();
  order_.push_back(col_name);
  columns_.emplace(col_name, std::move(column));
  // The first column defines the row count; identity assigned before it
  // existed (an empty table) is stale, so let it re-initialize on demand.
  if (first_column) {
    row_ids_.clear();
    row_ids_initialized_ = false;
  }
  return Status::OK();
}

void Table::EnsureRowIds() {
  if (row_ids_initialized_) return;
  const std::size_t n = num_rows();
  row_ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) row_ids_[i] = static_cast<row_id_t>(i);
  if (next_row_id_ < n) next_row_id_ = static_cast<row_id_t>(n);
  row_ids_initialized_ = true;
}

std::span<const row_id_t> Table::row_ids() {
  EnsureRowIds();
  return row_ids_;
}

row_id_t Table::AllocateRowId() {
  EnsureRowIds();
  return next_row_id_++;
}

void Table::CommitAppendedRow(row_id_t rid) {
  // Delay-only point: commit sits inside the cannot-fail apply phase of
  // row-atomic DML, so errors have nowhere to surface — but a delay here
  // widens races for the concurrency harnesses.
  (void)failpoints::storage_commit_row.Inject();
  AIDX_DCHECK(row_ids_initialized_);
  AIDX_DCHECK(row_ids_.size() + 1 == num_rows())
      << "CommitAppendedRow before every column appended the row";
  row_ids_.push_back(rid);
}

Status Table::EraseRow(std::size_t pos) {
  if (pos >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(pos) + " out of range; table '" +
                              name_ + "' has " + std::to_string(num_rows()) + " rows");
  }
  EnsureRowIds();
  for (auto& [_, col] : columns_) col->EraseRow(pos);
  row_ids_.erase(row_ids_.begin() + static_cast<std::ptrdiff_t>(pos));
  return Status::OK();
}

Status Table::EraseRows(std::span<const std::size_t> sorted_positions) {
  if (sorted_positions.empty()) return Status::OK();
  for (std::size_t i = 0; i < sorted_positions.size(); ++i) {
    if (sorted_positions[i] >= num_rows()) {
      return Status::OutOfRange("row " + std::to_string(sorted_positions[i]) +
                                " out of range; table '" + name_ + "' has " +
                                std::to_string(num_rows()) + " rows");
    }
    if (i > 0 && sorted_positions[i] <= sorted_positions[i - 1]) {
      return Status::InvalidArgument(
          "EraseRows positions must be strictly ascending");
    }
  }
  EnsureRowIds();
  for (auto& [_, col] : columns_) col->EraseRows(sorted_positions);
  std::size_t write = sorted_positions.front();
  std::size_t next_victim = 0;
  for (std::size_t read = write; read < row_ids_.size(); ++read) {
    if (next_victim < sorted_positions.size() &&
        read == sorted_positions[next_victim]) {
      ++next_victim;
      continue;
    }
    row_ids_[write++] = row_ids_[read];
  }
  row_ids_.resize(write);
  return Status::OK();
}

Result<Column*> Table::GetColumn(std::string_view column_name) const {
  const auto it = columns_.find(std::string(column_name));
  if (it == columns_.end()) {
    return Status::NotFound("no column '" + std::string(column_name) + "' in table '" +
                            name_ + "'");
  }
  return it->second.get();
}

std::size_t Table::MemoryUsageBytes() const {
  std::size_t total = 0;
  for (const auto& [_, col] : columns_) total += col->MemoryUsageBytes();
  return total;
}

}  // namespace aidx
