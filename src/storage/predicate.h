// Range predicates: the selection vocabulary shared by all access paths.
//
// Every adaptive-indexing operator in this library answers predicates of the
// form  low (<|<=) x (<|<=) high , possibly unbounded on either side — the
// query class all the surveyed cracking work evaluates.
#pragma once

#include <limits>
#include <sstream>
#include <string>

#include "storage/types.h"

namespace aidx {

/// How a range endpoint participates in the predicate.
enum class BoundKind : char {
  kInclusive,
  kExclusive,
  kUnbounded,
};

/// A one-dimensional range predicate over a column of T.
template <ColumnValue T>
struct RangePredicate {
  T low{};
  BoundKind low_kind = BoundKind::kUnbounded;
  T high{};
  BoundKind high_kind = BoundKind::kUnbounded;

  /// low <= x <= high
  static RangePredicate Between(T low, T high) {
    return {low, BoundKind::kInclusive, high, BoundKind::kInclusive};
  }
  /// low <= x < high  (the convention of the cracking papers' examples)
  static RangePredicate HalfOpen(T low, T high) {
    return {low, BoundKind::kInclusive, high, BoundKind::kExclusive};
  }
  /// x < high
  static RangePredicate LessThan(T high) {
    return {T{}, BoundKind::kUnbounded, high, BoundKind::kExclusive};
  }
  /// x <= high
  static RangePredicate AtMost(T high) {
    return {T{}, BoundKind::kUnbounded, high, BoundKind::kInclusive};
  }
  /// x > low
  static RangePredicate GreaterThan(T low) {
    return {low, BoundKind::kExclusive, T{}, BoundKind::kUnbounded};
  }
  /// x >= low
  static RangePredicate AtLeast(T low) {
    return {low, BoundKind::kInclusive, T{}, BoundKind::kUnbounded};
  }
  /// Matches every value.
  static RangePredicate All() { return {}; }

  bool Matches(T v) const {
    switch (low_kind) {
      case BoundKind::kInclusive:
        if (v < low) return false;
        break;
      case BoundKind::kExclusive:
        if (v <= low) return false;
        break;
      case BoundKind::kUnbounded:
        break;
    }
    switch (high_kind) {
      case BoundKind::kInclusive:
        if (v > high) return false;
        break;
      case BoundKind::kExclusive:
        if (v >= high) return false;
        break;
      case BoundKind::kUnbounded:
        break;
    }
    return true;
  }

  /// True when no value can satisfy the predicate (conservative syntactic
  /// check; used for early-outs, not required for correctness).
  bool DefinitelyEmpty() const {
    if (low_kind == BoundKind::kUnbounded || high_kind == BoundKind::kUnbounded) {
      return false;
    }
    if (low > high) return true;
    if (low == high) {
      return low_kind == BoundKind::kExclusive || high_kind == BoundKind::kExclusive;
    }
    return false;
  }

  std::string ToString() const {
    std::ostringstream os;
    switch (low_kind) {
      case BoundKind::kInclusive:
        os << low << " <= ";
        break;
      case BoundKind::kExclusive:
        os << low << " < ";
        break;
      case BoundKind::kUnbounded:
        break;
    }
    os << "x";
    switch (high_kind) {
      case BoundKind::kInclusive:
        os << " <= " << high;
        break;
      case BoundKind::kExclusive:
        os << " < " << high;
        break;
      case BoundKind::kUnbounded:
        break;
    }
    return os.str();
  }
};

/// A contiguous run of positions [begin, end) in some array.
struct PositionRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  bool operator==(const PositionRange&) const = default;
};

}  // namespace aidx
