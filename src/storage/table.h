// Tables: named collections of equal-length columns.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// A table is a bag of equal-length columns addressed by name, plus one row
/// identity per position. Positions shift as rows are erased; row ids are
/// stable for a row's lifetime and unique for the table's — they are what
/// lets cached structures (sideways cracker maps) address tuples across
/// base reorganizations. The table allocates ids; the Database facade is
/// the single writer that keeps columns, ids, and cached structures in a
/// row-atomic lock step (docs/UPDATES.md §5).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  AIDX_DEFAULT_MOVE_ONLY(Table);

  const std::string& name() const { return name_; }
  std::size_t num_columns() const { return columns_.size(); }
  /// Number of rows; 0 for a table with no columns.
  std::size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.begin()->second->size();
  }

  /// Adds a column; fails if the name exists or the length disagrees with
  /// the table's current row count (unless the table is empty).
  Status AddColumn(std::unique_ptr<Column> column);

  /// Typed helper: builds and adds a column from a vector in one step.
  template <ColumnValue T>
  Status AddColumn(std::string column_name, std::vector<T> values) {
    return AddColumn(MakeColumn<T>(std::move(column_name), std::move(values)));
  }

  /// Looks a column up by name.
  Result<Column*> GetColumn(std::string_view column_name) const;

  /// Typed lookup combining GetColumn and Column::As<T>.
  template <ColumnValue T>
  Result<const TypedColumn<T>*> GetTypedColumn(std::string_view column_name) const {
    AIDX_ASSIGN_OR_RETURN(Column * col, GetColumn(column_name));
    return static_cast<const Column*>(col)->As<T>();
  }

  /// Column names in insertion order.
  const std::vector<std::string>& column_names() const { return order_; }

  /// Row ids by position (lazily initialized to 0..num_rows-1 the first
  /// time row identity is needed). Invalidated by the next DML call.
  std::span<const row_id_t> row_ids();

  /// Hands out the next fresh row id (one allocation per row, shared by
  /// every column and cached structure of that row).
  row_id_t AllocateRowId();

  /// Records the id of a row whose values have just been appended to every
  /// column. Call exactly once per row, after the appends.
  void CommitAppendedRow(row_id_t rid);

  /// Erases the row at `pos` from every column (order-preserving) and
  /// retires its id.
  Status EraseRow(std::size_t pos);

  /// Erases the rows at `sorted_positions` (strictly ascending) from every
  /// column in one compaction pass each, retiring their ids — the bulk
  /// form shard rebalance uses to evacuate a migrated key range.
  Status EraseRows(std::span<const std::size_t> sorted_positions);

  /// Total payload bytes across columns.
  std::size_t MemoryUsageBytes() const;

 private:
  void EnsureRowIds();

  std::string name_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, std::unique_ptr<Column>> columns_;
  std::vector<row_id_t> row_ids_;
  row_id_t next_row_id_ = 0;
  bool row_ids_initialized_ = false;
};

}  // namespace aidx
