#include "storage/types.h"

namespace aidx {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
  }
  return "unknown";
}

}  // namespace aidx
