// Bulk operators used for tuple reconstruction baselines and examples.
//
// These are the column-store "late materialization" primitives sideways
// cracking competes against: a select yields row ids, and every projected
// column is fetched with a gather (one random access per row).
#pragma once

#include <span>
#include <vector>

#include "storage/types.h"
#include "util/logging.h"

namespace aidx {

/// out[i] = values[row_ids[i]] — the positional fetch of late
/// materialization (random access per element).
template <ColumnValue T>
void Gather(std::span<const T> values, std::span<const row_id_t> row_ids,
            std::vector<T>* out) {
  out->reserve(out->size() + row_ids.size());
  for (const row_id_t rid : row_ids) {
    AIDX_DCHECK(rid < values.size());
    out->push_back(values[rid]);
  }
}

/// Sum of gathered values without materializing them.
template <ColumnValue T>
long double GatherSum(std::span<const T> values, std::span<const row_id_t> row_ids) {
  long double sum = 0;
  for (const row_id_t rid : row_ids) {
    AIDX_DCHECK(rid < values.size());
    sum += static_cast<long double>(values[rid]);
  }
  return sum;
}

/// Applies a permutation to a whole column: out[i] = values[perm[i]].
/// Used to build the offline-clustered baseline (all columns re-ordered by
/// the selection attribute up front).
template <ColumnValue T>
std::vector<T> ApplyPermutation(std::span<const T> values,
                                std::span<const row_id_t> perm) {
  AIDX_CHECK(values.size() == perm.size());
  std::vector<T> out(values.size());
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = values[perm[i]];
  return out;
}

}  // namespace aidx
