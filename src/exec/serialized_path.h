// SerializedAccessPath: coarse-latched sharing of an adaptive structure.
//
// Concurrency control for adaptive indexing is one of the tutorial's *open
// research topics* (§2, "Open Topics"): every query is also a write, so
// classic shared-read locking does not apply. This wrapper provides the
// baseline any real solution must beat — one exclusive latch serializing
// all queries — making any AccessPath safe to share across threads without
// changing its adaptive behaviour. DESIGN.md §6 records the finer-grained
// schemes (piece-level latching, lock-free cracking) as out of scope.
#pragma once

#include <memory>
#include <mutex>
#include <utility>

#include "exec/access_path.h"

namespace aidx {

template <ColumnValue T>
class SerializedAccessPath final : public AccessPath<T> {
 public:
  explicit SerializedAccessPath(std::unique_ptr<AccessPath<T>> inner)
      : inner_(std::move(inner)) {
    AIDX_CHECK(inner_ != nullptr);
  }

  std::string name() const override { return inner_->name() + "+latch"; }

  std::size_t Count(const RangePredicate<T>& pred) override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->Count(pred);
  }

  long double Sum(const RangePredicate<T>& pred) override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->Sum(pred);
  }

  row_id_t Insert(T value) override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->Insert(value);
  }

  bool Delete(T value) override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->Delete(value);
  }

  void InsertBatch(std::span<const T> values) override {
    const std::lock_guard<std::mutex> guard(latch_);
    inner_->InsertBatch(values);
  }

  std::size_t DeleteBatch(std::span<const T> values) override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->DeleteBatch(values);
  }

  UpdateStats update_stats() const override {
    const std::lock_guard<std::mutex> guard(latch_);
    return inner_->update_stats();
  }

 private:
  std::unique_ptr<AccessPath<T>> inner_;
  mutable std::mutex latch_;
};

/// Wraps a freshly built strategy in the serializing latch.
template <ColumnValue T>
std::unique_ptr<AccessPath<T>> MakeSerializedAccessPath(std::span<const T> base,
                                                        const StrategyConfig& config) {
  return std::make_unique<SerializedAccessPath<T>>(MakeAccessPath<T>(base, config));
}

}  // namespace aidx
