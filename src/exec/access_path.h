// Access paths: the uniform query *and update* interface over every
// indexing strategy this library reproduces. The benchmark harness, the
// engine facade, and the examples all talk to AccessPath so that
// strategies are swappable — the role the query optimizer plays in a full
// kernel (DESIGN.md §6).
//
// Construction is lazy: the underlying structure is built inside the first
// operation (query or write), so "the first query pays initialization" —
// the cost model every surveyed paper uses — holds by construction.
//
// Every strategy answers Insert/Delete with multiset semantics (Delete
// removes one arbitrary tuple equal to the value); how writes reach the
// physical structure is strategy-specific and documented per path class
// and in docs/UPDATES.md. A path snapshots the borrowed base span the
// first time it materializes its structure (or, for the scan path, on the
// first write); callers that mutate the underlying storage afterwards —
// the Database facade does — must route every write through the path
// *before* touching the base storage.
//
// A path serves exactly one column; it knows nothing about rows. Row
// atomicity across a multi-column table — every column's paths observing a
// row's values together or not at all — is the Database facade's contract
// (docs/UPDATES.md §5), built by fanning one validated row out to each
// column's paths before the base mutates.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive_merging.h"
#include "core/cracker_column.h"
#include "core/hybrid.h"
#include "core/organizer.h"
#include "index/btree.h"
#include "index/scan.h"
#include "index/sorted_index.h"
#include "parallel/partitioned_cracker_column.h"
#include "parallel/piece_transfer.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "update/updatable_column.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace aidx {

/// The strategy families the tutorial covers.
enum class StrategyKind : char {
  kFullScan,         // no index, ever
  kFullSort,         // offline indexing: sort everything on first query
  kBPlusTree,        // offline indexing: bulk-load a B+ tree on first query
  kCrack,            // database cracking (CIDR'07)
  kStochasticCrack,  // cracking + random pre-cracks (convergence extension)
  kAdaptiveMerge,    // adaptive merging (EDBT'10)
  kHybrid,           // hybrid family (PVLDB'11): initial/final modes below
  kParallelCrack,    // partitioned cracking with per-partition latches
};

/// A fully specified strategy: the kind plus its tuning knobs.
struct StrategyConfig {
  StrategyKind kind = StrategyKind::kCrack;
  // Cracking knobs.
  std::size_t min_piece_size = 0;
  std::size_t stochastic_threshold = 1 << 14;
  std::uint64_t seed = 0x9E3779B9ULL;
  // Adaptive merging / hybrid knobs.
  std::size_t run_size = 1 << 18;        // merge runs / hybrid partitions
  OrganizeMode hybrid_initial = OrganizeMode::kCrack;
  OrganizeMode hybrid_final = OrganizeMode::kCrack;
  int radix_bits = 6;
  // Parallel cracking knobs (kParallelCrack): value-range partition count
  // and the total threads fanning one query out (1 = no pool, run inline).
  std::size_t num_partitions = 8;
  std::size_t num_threads = 4;
  // Update-pipeline knobs (crack / stochastic / parallel-crack paths):
  // when pending updates fold into the cracked array (SIGMOD'07), and the
  // extra tuples merged per query under MergePolicy::kGradual.
  MergePolicy merge_policy = MergePolicy::kRipple;
  std::size_t gradual_budget = 64;
  // Carry row ids (needed only when results must project other columns).
  bool with_row_ids = false;
  // Partitioning kernel for every crack the strategy performs (crack /
  // stochastic / hybrid / parallel-crack; core/crack_ops.h). One switch
  // flips the innermost loops under all cracked structures. The kAuto
  // default resolves to the host-calibrated kernel at the dispatch point
  // (core/kernel_autotune.h); pin a concrete kernel for differentials.
  CrackKernel crack_kernel = CrackKernel::kAuto;
  // Piece size below which non-branchy kernels fall back to the branchy
  // sweep; 0 defers to the calibrated process default.
  std::size_t predication_min_piece = 0;
  // kParallelCrack intra-partition latch protocol: piece-granularity
  // striped rwlatches (default) or the one-mutex-per-partition baseline
  // kept for differential testing, plus the per-partition stripe-table
  // size (clamped to [1, 64]; docs/CONCURRENCY.md §4).
  LatchMode latch_mode = LatchMode::kStripedPiece;
  std::size_t latch_stripes = 16;
  // kParallelCrack write path: piece-routed striped buffering (default)
  // or the coarse shard-exclusive baseline, whether the stripe table
  // grows with realized cuts, and the buffered-write count that triggers
  // a background merge on the shared pool (0 = foreground-only;
  // docs/UPDATES.md).
  WriteMode write_mode = WriteMode::kStripedWrite;
  bool adaptive_stripes = true;
  std::size_t background_merge_threshold = 0;

  /// Structural equality over every knob — the Database path cache keys on
  /// this, so two configs collide only when they are truly identical.
  friend bool operator==(const StrategyConfig&, const StrategyConfig&) = default;

  static StrategyConfig FullScan() { return {.kind = StrategyKind::kFullScan}; }
  static StrategyConfig FullSort() { return {.kind = StrategyKind::kFullSort}; }
  static StrategyConfig BTree() { return {.kind = StrategyKind::kBPlusTree}; }
  static StrategyConfig Crack() { return {.kind = StrategyKind::kCrack}; }
  static StrategyConfig StochasticCrack(std::size_t threshold = 1 << 14) {
    return {.kind = StrategyKind::kStochasticCrack, .stochastic_threshold = threshold};
  }
  static StrategyConfig AdaptiveMerge(std::size_t run_size = 1 << 18) {
    return {.kind = StrategyKind::kAdaptiveMerge, .run_size = run_size};
  }
  static StrategyConfig Hybrid(OrganizeMode initial, OrganizeMode final_mode,
                               std::size_t partition_size = 1 << 18) {
    return {.kind = StrategyKind::kHybrid,
            .run_size = partition_size,
            .hybrid_initial = initial,
            .hybrid_final = final_mode};
  }
  static StrategyConfig ParallelCrack(std::size_t partitions = 8,
                                      std::size_t threads = 4,
                                      LatchMode latch = LatchMode::kStripedPiece,
                                      std::size_t stripes = 16) {
    return {.kind = StrategyKind::kParallelCrack,
            .num_partitions = partitions,
            .num_threads = threads,
            .latch_mode = latch,
            .latch_stripes = stripes};
  }

  /// Short display name used in figures and reports ("crack", "HCS", ...).
  /// Kernel-variant strategies carry a "+pred"/"+vec" suffix so figures —
  /// and anything keyed on the name — can never alias kernel variants
  /// (the Database cache keys on the full config regardless).
  std::string DisplayName() const {
    // Non-branchy kernels change the physical behaviour of every strategy
    // that cracks; the pure offline/scan strategies never do, and neither
    // does a sort-only hybrid (HSS) — its segments never invoke a kernel.
    const bool cracks =
        kind == StrategyKind::kCrack || kind == StrategyKind::kStochasticCrack ||
        kind == StrategyKind::kParallelCrack ||
        (kind == StrategyKind::kHybrid && (hybrid_initial != OrganizeMode::kSort ||
                                           hybrid_final != OrganizeMode::kSort));
    std::string kernel_suffix = cracks ? CrackKernelSuffix(crack_kernel) : "";
    if (cracks && predication_min_piece > 0) {
      kernel_suffix += "+mp" + std::to_string(predication_min_piece);
    }
    switch (kind) {
      case StrategyKind::kFullScan:
        return "scan";
      case StrategyKind::kFullSort:
        return "sort";
      case StrategyKind::kBPlusTree:
        return "btree";
      case StrategyKind::kCrack:
        return (min_piece_size > 0 ? "crack(p" + std::to_string(min_piece_size) + ")"
                                   : "crack") +
               kernel_suffix;
      case StrategyKind::kStochasticCrack:
        return "stochastic" + kernel_suffix;
      case StrategyKind::kAdaptiveMerge:
        return "merge";
      case StrategyKind::kHybrid:
        return std::string("H") + OrganizeModeLetter(hybrid_initial) +
               OrganizeModeLetter(hybrid_final) + kernel_suffix;
      case StrategyKind::kParallelCrack: {
        // Shape-changing knobs stay in the name for figures and reports
        // (the Database cache keys on the full config, not this string).
        // Comma-free: the name lands unquoted in CSV headers
        // (workload/report.cc). Latch-protocol knobs appear only off their
        // defaults, so the striped default keeps the historical name.
        std::string name = "pcrack(" + std::to_string(num_partitions) + "x" +
                           std::to_string(num_threads);
        if (latch_mode == LatchMode::kPartitionMutex) {
          name += "-mtx";
        } else if (latch_stripes != 16) {
          name += "-s" + std::to_string(latch_stripes);
        }
        if (write_mode == WriteMode::kCoarseWrite) name += "-wc";
        if (!adaptive_stripes) name += "-fs";
        if (background_merge_threshold > 0) {
          name += "-bg" + std::to_string(background_merge_threshold);
        }
        if (min_piece_size > 0) name += "-p" + std::to_string(min_piece_size);
        return name + ")" + kernel_suffix;
      }
    }
    return "?";
  }
};

/// Uniform adaptive query + update interface. Count and Sum *may
/// reorganize data* — that is the point of adaptive indexing — and under
/// most strategies they also fold in pending updates the predicate must
/// observe. Paths are single-threaded unless noted; kParallelCrack's path
/// is internally synchronized and may be shared across query threads
/// (docs/CONCURRENCY.md).
template <ColumnValue T>
class AccessPath {
 public:
  virtual ~AccessPath() = default;
  virtual std::string name() const = 0;
  virtual std::size_t Count(const RangePredicate<T>& pred) = 0;
  virtual long double Sum(const RangePredicate<T>& pred) = 0;

  /// Deadline/cancellation-aware variants (docs/ROBUSTNESS.md). The
  /// default checks the context once at entry — coarse granularity, honest
  /// for the offline/scan strategies whose work is a single indivisible
  /// pass. Crack-based paths override these with piece-granularity checks.
  /// A query that finishes its work returns the answer even if the clock
  /// ran out meanwhile: expiry prevents *starting* more work, it never
  /// discards work already done.
  virtual Result<std::size_t> Count(const RangePredicate<T>& pred,
                                    const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    return Count(pred);
  }
  virtual Result<long double> Sum(const RangePredicate<T>& pred,
                                  const QueryContext& ctx) {
    AIDX_RETURN_NOT_OK(ctx.Check());
    return Sum(pred);
  }

  /// Accepts one fresh tuple and returns the row id assigned to it. When
  /// (and how) the value reaches the physical structure is the strategy's
  /// merge policy; a later Count/Sum observes it in every case.
  virtual row_id_t Insert(T value) = 0;

  /// Deletes one tuple equal to `value` (multiset semantics: an arbitrary
  /// matching occurrence). Returns false when no live tuple matches.
  virtual bool Delete(T value) = 0;

  /// Batch variants; the defaults loop the scalar forms, and structures
  /// with cheaper bulk moves override them.
  virtual void InsertBatch(std::span<const T> values) {
    for (const T v : values) Insert(v);
  }
  /// Returns how many tuples were actually deleted.
  virtual std::size_t DeleteBatch(std::span<const T> values) {
    std::size_t deleted = 0;
    for (const T v : values) deleted += Delete(v) ? 1 : 0;
    return deleted;
  }

  /// Probe for the update pipeline's counters (queued/merged/cancelled
  /// totals); strategies without a deferred pipeline report their eagerly
  /// applied writes in the same vocabulary.
  virtual UpdateStats update_stats() const = 0;

  /// Approximate bytes of deferred-update state this path holds — pending
  /// stores, delta buffers, pending merge runs, write buckets. Feeds the
  /// ResourceGovernor's kPendingUpdates gauge; a heuristic tuple-count
  /// estimate, not an allocator audit. Paths that apply writes eagerly
  /// report 0.
  virtual std::size_t approx_pending_bytes() const { return 0; }

  // -- Crack introspection + shard migration (src/dist/) -------------------
  //
  // The defaults are honest no-ops: strategies without a cracker index
  // have no piece structure to report or carry, and a rebalance over them
  // migrates rows only (the structure rebuilds adaptively on the target).
  // The crack-family paths override all four.

  /// Cumulative crack-work counters (cracker index mutations); zeroes for
  /// strategies that never crack. The rebalance differential pins "zero
  /// new cracks at carried boundaries" on these.
  virtual CrackerStats crack_stats() const { return {}; }

  /// Realized pieces in the underlying cracked structure; 0 when none has
  /// materialized (or the strategy has no pieces).
  virtual std::size_t num_cracked_pieces() const { return 0; }

  /// Appends every realized cut with value in [lo, hi] to `out`
  /// (parallel/piece_transfer.h) — the serialized index investment a
  /// rebalance carries alongside the rows.
  virtual void ExportCuts(T lo, T hi, PieceBundle<T>* out) const {
    (void)lo;
    (void)hi;
    (void)out;
  }

  /// Re-realizes carried cuts on this path (one bounding query per cut,
  /// cracking only the piece that contains it). Returns how many cuts were
  /// replayed; 0 for strategies with nothing to replay.
  virtual std::size_t ReplayCuts(std::span<const SerializedCut<T>> cuts) {
    (void)cuts;
    return 0;
  }
};

namespace internal {

// No index to maintain, so writes are applied immediately: the first
// write copies the borrowed base into owned storage (after which the base
// span is never read again), inserts append, deletes swap-remove — the
// degenerate case of append+tombstone where the tombstone is applied on
// the spot.
template <ColumnValue T>
class ScanPath final : public AccessPath<T> {
 public:
  explicit ScanPath(std::span<const T> base)
      : base_(base), next_rid_(static_cast<row_id_t>(base.size())) {}
  std::string name() const override { return "scan"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return ScanCount<T>(Data(), pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return ScanSum<T>(Data(), pred);
  }
  row_id_t Insert(T value) override {
    EnsureOwned();
    owned_->push_back(value);
    ++stats_.inserts_queued;
    ++stats_.inserts_merged;
    return next_rid_++;
  }
  bool Delete(T value) override {
    // Probe before copying: a miss on a still-borrowed base must not pay
    // the copy-on-write.
    const auto data = Data();
    if (std::find(data.begin(), data.end(), value) == data.end()) return false;
    EnsureOwned();
    const auto it = std::find(owned_->begin(), owned_->end(), value);
    *it = owned_->back();
    owned_->pop_back();
    ++stats_.deletes_queued;
    ++stats_.deletes_merged;
    return true;
  }
  UpdateStats update_stats() const override { return stats_; }

 private:
  std::span<const T> Data() const {
    return owned_ ? std::span<const T>(*owned_) : base_;
  }
  void EnsureOwned() {
    if (!owned_) owned_.emplace(base_.begin(), base_.end());
  }
  std::span<const T> base_;
  std::optional<std::vector<T>> owned_;  // copy-on-first-write
  UpdateStats stats_;
  row_id_t next_rid_;
};

// Inserts gather in a delta buffer that the next query sorts and folds
// into the sorted array with one inplace_merge pass; deletes cancel a
// buffered insert or erase from the sorted array directly.
template <ColumnValue T>
class FullSortPath final : public AccessPath<T> {
 public:
  explicit FullSortPath(std::span<const T> base)
      : base_(base), next_rid_(static_cast<row_id_t>(base.size())) {}
  std::string name() const override { return "sort"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    MergeDelta();
    return Index().CountRange(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    MergeDelta();
    return Index().SumRange(pred);
  }
  row_id_t Insert(T value) override {
    Index();  // materialize while the base span is still valid
    delta_.push_back(value);
    ++stats_.inserts_queued;
    return next_rid_++;
  }
  bool Delete(T value) override {
    FullSortIndex<T>& index = Index();
    for (std::size_t i = 0; i < delta_.size(); ++i) {
      if (delta_[i] == value) {
        delta_[i] = delta_.back();
        delta_.pop_back();
        ++stats_.deletes_cancelled;
        return true;
      }
    }
    if (!index.EraseOne(value)) return false;
    ++stats_.deletes_queued;
    ++stats_.deletes_merged;
    return true;
  }
  UpdateStats update_stats() const override { return stats_; }
  std::size_t approx_pending_bytes() const override {
    return delta_.size() * sizeof(T);
  }

 private:
  FullSortIndex<T>& Index() {
    if (!index_) index_.emplace(base_);
    return *index_;
  }
  void MergeDelta() {
    if (delta_.empty()) return;
    std::sort(delta_.begin(), delta_.end());
    Index().MergeSortedDelta(delta_);
    stats_.inserts_merged += delta_.size();
    delta_.clear();
  }
  std::span<const T> base_;
  std::optional<FullSortIndex<T>> index_;
  std::vector<T> delta_;  // unsorted until the merging query
  UpdateStats stats_;
  row_id_t next_rid_;
};

// Same delta-buffer scheme as FullSortPath; the merging query bulk-inserts
// the sorted delta, and deletes erase from leaves without rebalancing.
template <ColumnValue T>
class BTreePath final : public AccessPath<T> {
 public:
  explicit BTreePath(std::span<const T> base)
      : base_(base), next_rid_(static_cast<row_id_t>(base.size())) {}
  std::string name() const override { return "btree"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    MergeDelta();
    return Tree().CountRange(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    MergeDelta();
    return Tree().SumRange(pred);
  }
  row_id_t Insert(T value) override {
    Tree();  // materialize while the base span is still valid
    delta_.push_back(value);
    ++stats_.inserts_queued;
    return next_rid_++;
  }
  bool Delete(T value) override {
    BPlusTree<T>& tree = Tree();
    for (std::size_t i = 0; i < delta_.size(); ++i) {
      if (delta_[i] == value) {
        delta_[i] = delta_.back();
        delta_.pop_back();
        ++stats_.deletes_cancelled;
        return true;
      }
    }
    if (!tree.EraseOne(value)) return false;
    ++stats_.deletes_queued;
    ++stats_.deletes_merged;
    return true;
  }
  UpdateStats update_stats() const override { return stats_; }
  std::size_t approx_pending_bytes() const override {
    return delta_.size() * sizeof(T);
  }

 private:
  BPlusTree<T>& Tree() {
    if (!tree_) {
      tree_.emplace();
      FullSortIndex<T> sorted(base_);  // sort, then bulk-load
      tree_->BulkLoadSorted(sorted.values());
    }
    return *tree_;
  }
  void MergeDelta() {
    if (delta_.empty()) return;
    std::sort(delta_.begin(), delta_.end());
    Tree().InsertSortedBatch(delta_);
    stats_.inserts_merged += delta_.size();
    delta_.clear();
  }
  std::span<const T> base_;
  std::optional<BPlusTree<T>> tree_;
  std::vector<T> delta_;  // unsorted until the merging query
  UpdateStats stats_;
  row_id_t next_rid_;
};

// The crack and stochastic-crack strategies delegate every write to the
// SIGMOD'07 update pipeline: inserts and deletes queue in pending stores
// and ripple into the cracked array when a query touches their range,
// under the merge policy (MCI/MGI/MRI) selected in the config.
template <ColumnValue T>
class CrackPath final : public AccessPath<T> {
 public:
  CrackPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Column().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Column().Sum(pred);
  }
  // Piece-granularity deadline/cancellation: the context reaches the crack
  // loops inside UpdatableCrackerColumn.
  Result<std::size_t> Count(const RangePredicate<T>& pred,
                            const QueryContext& ctx) override {
    return Column().Count(pred, ctx);
  }
  Result<long double> Sum(const RangePredicate<T>& pred,
                          const QueryContext& ctx) override {
    return Column().Sum(pred, ctx);
  }
  row_id_t Insert(T value) override { return Column().Insert(value); }
  bool Delete(T value) override { return Column().DeleteValue(value); }
  UpdateStats update_stats() const override {
    return column_ ? column_->update_stats() : UpdateStats{};
  }
  std::size_t approx_pending_bytes() const override {
    if (!column_) return 0;
    return (column_->num_pending_inserts() + column_->num_pending_deletes()) *
           (sizeof(T) + sizeof(row_id_t));
  }
  CrackerStats crack_stats() const override {
    return column_ ? column_->stats() : CrackerStats{};
  }
  std::size_t num_cracked_pieces() const override {
    return column_ ? column_->index().num_pieces() : 0;
  }
  void ExportCuts(T lo, T hi, PieceBundle<T>* out) const override {
    if (!column_) return;  // never materialized: no investment to carry
    ExportCutsInRange(column_->index(), lo, hi, out);
  }
  std::size_t ReplayCuts(std::span<const SerializedCut<T>> cuts) override {
    for (const SerializedCut<T>& cut : cuts) {
      Column().Count(RealizingPredicate(cut));
    }
    return cuts.size();
  }

 private:
  UpdatableCrackerColumn<T>& Column() {
    if (!column_) {
      CrackerColumnOptions options;
      options.with_row_ids = config_.with_row_ids;
      options.min_piece_size = config_.min_piece_size;
      options.kernel = config_.crack_kernel;
      options.predication_min_piece = config_.predication_min_piece;
      if (config_.kind == StrategyKind::kStochasticCrack) {
        options.stochastic_threshold = config_.stochastic_threshold;
        options.stochastic_seed = config_.seed;
      }
      column_.emplace(base_,
                      typename UpdatableCrackerColumn<T>::Options{
                          .policy = config_.merge_policy,
                          .gradual_budget = config_.gradual_budget,
                          .crack = options});
    }
    return *column_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<UpdatableCrackerColumn<T>> column_;
};

// Inserts become a fresh pending run absorbed by the next query — the
// paper's natural fit — and deletes force the value's range to merge,
// then erase from the final B+ tree.
template <ColumnValue T>
class AdaptiveMergePath final : public AccessPath<T> {
 public:
  AdaptiveMergePath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return "merge"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Index().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Index().Sum(pred);
  }
  row_id_t Insert(T value) override { return Index().Insert(value); }
  bool Delete(T value) override { return Index().Delete(value); }
  UpdateStats update_stats() const override {
    UpdateStats out;
    if (!index_) return out;
    const AdaptiveMergingStats& s = index_->stats();
    out.inserts_queued = s.inserts_queued;
    out.inserts_merged = s.inserts_absorbed;
    out.deletes_cancelled = s.inserts_cancelled;
    out.deletes_queued = s.values_deleted;
    out.deletes_merged = s.values_deleted;
    return out;
  }
  std::size_t approx_pending_bytes() const override {
    if (!index_) return 0;
    return index_->num_pending_inserts() * (sizeof(T) + sizeof(row_id_t));
  }

 private:
  AdaptiveMergingIndex<T>& Index() {
    if (!index_) {
      index_.emplace(base_,
                     typename AdaptiveMergingIndex<T>::Options{
                         .run_size = config_.run_size,
                         .with_row_ids = config_.with_row_ids});
    }
    return *index_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<AdaptiveMergingIndex<T>> index_;
};

// Inserts become a fresh initial partition absorbed by the next query
// (already-merged key ranges land in their covering final segment
// directly); deletes force the value's range to migrate, then erase from
// the covering final segment.
template <ColumnValue T>
class HybridPath final : public AccessPath<T> {
 public:
  HybridPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Index().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Index().Sum(pred);
  }
  row_id_t Insert(T value) override { return Index().Insert(value); }
  bool Delete(T value) override { return Index().Delete(value); }
  UpdateStats update_stats() const override {
    UpdateStats out;
    if (!index_) return out;
    const HybridStats& s = index_->stats();
    out.inserts_queued = s.inserts_queued;
    out.inserts_merged = s.inserts_absorbed;
    out.deletes_cancelled = s.inserts_cancelled;
    out.deletes_queued = s.values_deleted;
    out.deletes_merged = s.values_deleted;
    return out;
  }
  std::size_t approx_pending_bytes() const override {
    if (!index_) return 0;
    return index_->num_pending_inserts() * (sizeof(T) + sizeof(row_id_t));
  }

 private:
  HybridIndex<T>& Index() {
    if (!index_) {
      index_.emplace(base_, typename HybridIndex<T>::Options{
                                .partition_size = config_.run_size,
                                .initial_mode = config_.hybrid_initial,
                                .final_mode = config_.hybrid_final,
                                .radix_bits = config_.radix_bits,
                                .with_row_ids = config_.with_row_ids,
                                .kernel = config_.crack_kernel,
                                .predication_min_piece =
                                    config_.predication_min_piece});
    }
    return *index_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<HybridIndex<T>> index_;
};

// Partitioned parallel cracking. Unlike the other paths this one is safe
// to share across threads: the column latches at piece granularity
// (striped rwlatches; or per partition under the kPartitionMutex
// fallback — config.latch_mode), and the lazy construction itself is
// guarded. The path owns the intra-query ThreadPool (num_threads - 1
// workers; the querying thread participates as the last). Writes route to
// the partition owning the value and queue under whole-partition
// exclusion (docs/CONCURRENCY.md §3–§4), so concurrent writers to
// disjoint partitions proceed fully in parallel.
template <ColumnValue T>
class ParallelCrackPath final : public AccessPath<T> {
 public:
  ParallelCrackPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Column().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Column().Sum(pred);
  }
  // Shard-granularity deadline/cancellation: the fan-out checks the
  // context before each shard's resolve (docs/ROBUSTNESS.md).
  Result<std::size_t> Count(const RangePredicate<T>& pred,
                            const QueryContext& ctx) override {
    return Column().Count(pred, ctx);
  }
  Result<long double> Sum(const RangePredicate<T>& pred,
                          const QueryContext& ctx) override {
    return Column().Sum(pred, ctx);
  }
  row_id_t Insert(T value) override { return Column().Insert(value); }
  bool Delete(T value) override { return Column().Delete(value); }
  void InsertBatch(std::span<const T> values) override {
    Column().InsertBatch(values);
  }
  std::size_t DeleteBatch(std::span<const T> values) override {
    return Column().DeleteBatch(values);
  }
  UpdateStats update_stats() const override {
    // Forces construction when probed first (thread-safe via call_once);
    // aggregation itself latches per partition.
    return const_cast<ParallelCrackPath*>(this)->Column().AggregatedUpdateStats();
  }
  std::size_t approx_pending_bytes() const override {
    return const_cast<ParallelCrackPath*>(this)->Column().pending_update_count() *
           (sizeof(T) + sizeof(row_id_t));
  }
  CrackerStats crack_stats() const override {
    return const_cast<ParallelCrackPath*>(this)->Column().AggregatedStats();
  }
  std::size_t num_cracked_pieces() const override {
    return const_cast<ParallelCrackPath*>(this)->Column().aggregated_num_pieces();
  }
  void ExportCuts(T lo, T hi, PieceBundle<T>* out) const override {
    const std::size_t before = out->cuts.size();
    const_cast<ParallelCrackPath*>(this)->Column().VisitRealizedCuts(
        [&](const Cut<T>& cut) {
          if (cut.value < lo || cut.value > hi) return;
          out->cuts.push_back({cut.value, cut.kind});
        });
    if (out->cuts.size() > before) {
      out->source_pieces += out->cuts.size() - before + 1;
    }
  }
  std::size_t ReplayCuts(std::span<const SerializedCut<T>> cuts) override {
    for (const SerializedCut<T>& cut : cuts) {
      Column().Count(RealizingPredicate(cut));
    }
    return cuts.size();
  }

 private:
  PartitionedCrackerColumn<T>& Column() {
    std::call_once(init_, [this] {
      if (config_.num_threads > 1) {
        pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
      }
      PartitionedCrackerOptions options;
      options.num_partitions = config_.num_partitions;
      options.column_options.with_row_ids = config_.with_row_ids;
      options.column_options.min_piece_size = config_.min_piece_size;
      options.column_options.kernel = config_.crack_kernel;
      options.column_options.predication_min_piece =
          config_.predication_min_piece;
      options.splitter_seed = config_.seed;
      options.merge_policy = config_.merge_policy;
      options.gradual_budget = config_.gradual_budget;
      options.latch_mode = config_.latch_mode;
      options.latch_stripes = config_.latch_stripes;
      options.write_mode = config_.write_mode;
      options.adaptive_stripes = config_.adaptive_stripes;
      options.background_merge_threshold = config_.background_merge_threshold;
      column_.emplace(base_, options, pool_.get());
    });
    return *column_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::once_flag init_;
  std::unique_ptr<ThreadPool> pool_;  // must outlive column_
  std::optional<PartitionedCrackerColumn<T>> column_;
};

}  // namespace internal

/// Builds an access path over a borrowed base column. The base span must
/// outlive the access path.
template <ColumnValue T>
std::unique_ptr<AccessPath<T>> MakeAccessPath(std::span<const T> base,
                                              const StrategyConfig& config) {
  switch (config.kind) {
    case StrategyKind::kFullScan:
      return std::make_unique<internal::ScanPath<T>>(base);
    case StrategyKind::kFullSort:
      return std::make_unique<internal::FullSortPath<T>>(base);
    case StrategyKind::kBPlusTree:
      return std::make_unique<internal::BTreePath<T>>(base);
    case StrategyKind::kCrack:
    case StrategyKind::kStochasticCrack:
      return std::make_unique<internal::CrackPath<T>>(base, config);
    case StrategyKind::kAdaptiveMerge:
      return std::make_unique<internal::AdaptiveMergePath<T>>(base, config);
    case StrategyKind::kHybrid:
      return std::make_unique<internal::HybridPath<T>>(base, config);
    case StrategyKind::kParallelCrack:
      return std::make_unique<internal::ParallelCrackPath<T>>(base, config);
  }
  AIDX_LOG(Fatal) << "unknown strategy kind";
  return nullptr;
}

}  // namespace aidx
