// Access paths: the uniform query interface over every indexing strategy
// this library reproduces. The benchmark harness, the engine facade, and
// the examples all talk to AccessPath so that strategies are swappable —
// the role the query optimizer plays in a full kernel (DESIGN.md §6).
//
// Construction is lazy: the underlying structure is built inside the first
// query, so "the first query pays initialization" — the cost model every
// surveyed paper uses — holds by construction.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "core/adaptive_merging.h"
#include "core/cracker_column.h"
#include "core/hybrid.h"
#include "core/organizer.h"
#include "index/btree.h"
#include "index/scan.h"
#include "index/sorted_index.h"
#include "parallel/partitioned_cracker_column.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/thread_pool.h"

namespace aidx {

/// The strategy families the tutorial covers.
enum class StrategyKind : char {
  kFullScan,         // no index, ever
  kFullSort,         // offline indexing: sort everything on first query
  kBPlusTree,        // offline indexing: bulk-load a B+ tree on first query
  kCrack,            // database cracking (CIDR'07)
  kStochasticCrack,  // cracking + random pre-cracks (convergence extension)
  kAdaptiveMerge,    // adaptive merging (EDBT'10)
  kHybrid,           // hybrid family (PVLDB'11): initial/final modes below
  kParallelCrack,    // partitioned cracking with per-partition latches
};

/// A fully specified strategy: the kind plus its tuning knobs.
struct StrategyConfig {
  StrategyKind kind = StrategyKind::kCrack;
  // Cracking knobs.
  std::size_t min_piece_size = 0;
  std::size_t stochastic_threshold = 1 << 14;
  std::uint64_t seed = 0x9E3779B9ULL;
  // Adaptive merging / hybrid knobs.
  std::size_t run_size = 1 << 18;        // merge runs / hybrid partitions
  OrganizeMode hybrid_initial = OrganizeMode::kCrack;
  OrganizeMode hybrid_final = OrganizeMode::kCrack;
  int radix_bits = 6;
  // Parallel cracking knobs (kParallelCrack): value-range partition count
  // and the total threads fanning one query out (1 = no pool, run inline).
  std::size_t num_partitions = 8;
  std::size_t num_threads = 4;
  // Carry row ids (needed only when results must project other columns).
  bool with_row_ids = false;

  static StrategyConfig FullScan() { return {.kind = StrategyKind::kFullScan}; }
  static StrategyConfig FullSort() { return {.kind = StrategyKind::kFullSort}; }
  static StrategyConfig BTree() { return {.kind = StrategyKind::kBPlusTree}; }
  static StrategyConfig Crack() { return {.kind = StrategyKind::kCrack}; }
  static StrategyConfig StochasticCrack(std::size_t threshold = 1 << 14) {
    return {.kind = StrategyKind::kStochasticCrack, .stochastic_threshold = threshold};
  }
  static StrategyConfig AdaptiveMerge(std::size_t run_size = 1 << 18) {
    return {.kind = StrategyKind::kAdaptiveMerge, .run_size = run_size};
  }
  static StrategyConfig Hybrid(OrganizeMode initial, OrganizeMode final_mode,
                               std::size_t partition_size = 1 << 18) {
    return {.kind = StrategyKind::kHybrid,
            .run_size = partition_size,
            .hybrid_initial = initial,
            .hybrid_final = final_mode};
  }
  static StrategyConfig ParallelCrack(std::size_t partitions = 8,
                                      std::size_t threads = 4) {
    return {.kind = StrategyKind::kParallelCrack,
            .num_partitions = partitions,
            .num_threads = threads};
  }

  /// Short display name used in figures and reports ("crack", "HCS", ...).
  std::string DisplayName() const {
    switch (kind) {
      case StrategyKind::kFullScan:
        return "scan";
      case StrategyKind::kFullSort:
        return "sort";
      case StrategyKind::kBPlusTree:
        return "btree";
      case StrategyKind::kCrack:
        return min_piece_size > 0 ? "crack(p" + std::to_string(min_piece_size) + ")"
                                  : "crack";
      case StrategyKind::kStochasticCrack:
        return "stochastic";
      case StrategyKind::kAdaptiveMerge:
        return "merge";
      case StrategyKind::kHybrid:
        return std::string("H") + OrganizeModeLetter(hybrid_initial) +
               OrganizeModeLetter(hybrid_final);
      case StrategyKind::kParallelCrack:
        // Shape-changing knobs are part of the name so Database's per-name
        // cache keeps differently shaped parallel paths apart (the seed,
        // as for every strategy, is not — see the engine.h cache caveat).
        // Comma-free: the name lands unquoted in CSV headers
        // (workload/report.cc).
        return "pcrack(" + std::to_string(num_partitions) + "x" +
               std::to_string(num_threads) +
               (min_piece_size > 0 ? "-p" + std::to_string(min_piece_size) : "") +
               ")";
    }
    return "?";
  }
};

/// Uniform adaptive-query interface. Count and Sum *may reorganize data* —
/// that is the point of adaptive indexing. Paths are single-threaded
/// unless noted; kParallelCrack's path is internally synchronized and may
/// be shared across query threads (docs/CONCURRENCY.md).
template <ColumnValue T>
class AccessPath {
 public:
  virtual ~AccessPath() = default;
  virtual std::string name() const = 0;
  virtual std::size_t Count(const RangePredicate<T>& pred) = 0;
  virtual long double Sum(const RangePredicate<T>& pred) = 0;
};

namespace internal {

template <ColumnValue T>
class ScanPath final : public AccessPath<T> {
 public:
  explicit ScanPath(std::span<const T> base) : base_(base) {}
  std::string name() const override { return "scan"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return ScanCount<T>(base_, pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return ScanSum<T>(base_, pred);
  }

 private:
  std::span<const T> base_;
};

template <ColumnValue T>
class FullSortPath final : public AccessPath<T> {
 public:
  explicit FullSortPath(std::span<const T> base) : base_(base) {}
  std::string name() const override { return "sort"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Index().CountRange(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Index().SumRange(pred);
  }

 private:
  FullSortIndex<T>& Index() {
    if (!index_) index_.emplace(base_);
    return *index_;
  }
  std::span<const T> base_;
  std::optional<FullSortIndex<T>> index_;
};

template <ColumnValue T>
class BTreePath final : public AccessPath<T> {
 public:
  explicit BTreePath(std::span<const T> base) : base_(base) {}
  std::string name() const override { return "btree"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Tree().CountRange(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Tree().SumRange(pred);
  }

 private:
  BPlusTree<T>& Tree() {
    if (!tree_) {
      tree_.emplace();
      FullSortIndex<T> sorted(base_);  // sort, then bulk-load
      tree_->BulkLoadSorted(sorted.values());
    }
    return *tree_;
  }
  std::span<const T> base_;
  std::optional<BPlusTree<T>> tree_;
};

template <ColumnValue T>
class CrackPath final : public AccessPath<T> {
 public:
  CrackPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Column().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Column().Sum(pred);
  }

 private:
  CrackerColumn<T>& Column() {
    if (!column_) {
      CrackerColumnOptions options;
      options.with_row_ids = config_.with_row_ids;
      options.min_piece_size = config_.min_piece_size;
      if (config_.kind == StrategyKind::kStochasticCrack) {
        options.stochastic_threshold = config_.stochastic_threshold;
        options.stochastic_seed = config_.seed;
      }
      column_.emplace(base_, options);
    }
    return *column_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<CrackerColumn<T>> column_;
};

template <ColumnValue T>
class AdaptiveMergePath final : public AccessPath<T> {
 public:
  AdaptiveMergePath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return "merge"; }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Index().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Index().Sum(pred);
  }

 private:
  AdaptiveMergingIndex<T>& Index() {
    if (!index_) {
      index_.emplace(base_,
                     typename AdaptiveMergingIndex<T>::Options{
                         .run_size = config_.run_size,
                         .with_row_ids = config_.with_row_ids});
    }
    return *index_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<AdaptiveMergingIndex<T>> index_;
};

template <ColumnValue T>
class HybridPath final : public AccessPath<T> {
 public:
  HybridPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Index().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Index().Sum(pred);
  }

 private:
  HybridIndex<T>& Index() {
    if (!index_) {
      index_.emplace(base_, typename HybridIndex<T>::Options{
                                .partition_size = config_.run_size,
                                .initial_mode = config_.hybrid_initial,
                                .final_mode = config_.hybrid_final,
                                .radix_bits = config_.radix_bits,
                                .with_row_ids = config_.with_row_ids});
    }
    return *index_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::optional<HybridIndex<T>> index_;
};

// Partitioned parallel cracking. Unlike the other paths this one is safe
// to share across threads: the column latches per partition, and the lazy
// construction itself is guarded. The path owns the intra-query ThreadPool
// (num_threads - 1 workers; the querying thread participates as the last).
template <ColumnValue T>
class ParallelCrackPath final : public AccessPath<T> {
 public:
  ParallelCrackPath(std::span<const T> base, const StrategyConfig& config)
      : base_(base), config_(config) {}
  std::string name() const override { return config_.DisplayName(); }
  std::size_t Count(const RangePredicate<T>& pred) override {
    return Column().Count(pred);
  }
  long double Sum(const RangePredicate<T>& pred) override {
    return Column().Sum(pred);
  }

 private:
  PartitionedCrackerColumn<T>& Column() {
    std::call_once(init_, [this] {
      if (config_.num_threads > 1) {
        pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
      }
      PartitionedCrackerOptions options;
      options.num_partitions = config_.num_partitions;
      options.column_options.with_row_ids = config_.with_row_ids;
      options.column_options.min_piece_size = config_.min_piece_size;
      options.splitter_seed = config_.seed;
      column_.emplace(base_, options, pool_.get());
    });
    return *column_;
  }
  std::span<const T> base_;
  StrategyConfig config_;
  std::once_flag init_;
  std::unique_ptr<ThreadPool> pool_;  // must outlive column_
  std::optional<PartitionedCrackerColumn<T>> column_;
};

}  // namespace internal

/// Builds an access path over a borrowed base column. The base span must
/// outlive the access path.
template <ColumnValue T>
std::unique_ptr<AccessPath<T>> MakeAccessPath(std::span<const T> base,
                                              const StrategyConfig& config) {
  switch (config.kind) {
    case StrategyKind::kFullScan:
      return std::make_unique<internal::ScanPath<T>>(base);
    case StrategyKind::kFullSort:
      return std::make_unique<internal::FullSortPath<T>>(base);
    case StrategyKind::kBPlusTree:
      return std::make_unique<internal::BTreePath<T>>(base);
    case StrategyKind::kCrack:
    case StrategyKind::kStochasticCrack:
      return std::make_unique<internal::CrackPath<T>>(base, config);
    case StrategyKind::kAdaptiveMerge:
      return std::make_unique<internal::AdaptiveMergePath<T>>(base, config);
    case StrategyKind::kHybrid:
      return std::make_unique<internal::HybridPath<T>>(base, config);
    case StrategyKind::kParallelCrack:
      return std::make_unique<internal::ParallelCrackPath<T>>(base, config);
  }
  AIDX_LOG(Fatal) << "unknown strategy kind";
  return nullptr;
}

}  // namespace aidx
