#include "exec/engine.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "util/failpoint.h"

namespace aidx {

namespace internal {
namespace {

std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t PathKeyHash::operator()(const PathKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.table);
  h = HashCombine(h, std::hash<std::string>{}(key.column));
  const StrategyConfig& c = key.config;
  h = HashCombine(h, static_cast<std::size_t>(c.kind));
  h = HashCombine(h, c.min_piece_size);
  h = HashCombine(h, c.stochastic_threshold);
  h = HashCombine(h, static_cast<std::size_t>(c.seed));
  h = HashCombine(h, c.run_size);
  h = HashCombine(h, static_cast<std::size_t>(c.hybrid_initial));
  h = HashCombine(h, static_cast<std::size_t>(c.hybrid_final));
  h = HashCombine(h, static_cast<std::size_t>(c.radix_bits));
  h = HashCombine(h, c.num_partitions);
  h = HashCombine(h, c.num_threads);
  h = HashCombine(h, static_cast<std::size_t>(c.merge_policy));
  h = HashCombine(h, c.gradual_budget);
  h = HashCombine(h, static_cast<std::size_t>(c.with_row_ids));
  h = HashCombine(h, static_cast<std::size_t>(c.crack_kernel));
  h = HashCombine(h, c.predication_min_piece);
  h = HashCombine(h, static_cast<std::size_t>(c.latch_mode));
  h = HashCombine(h, c.latch_stripes);
  h = HashCombine(h, static_cast<std::size_t>(c.write_mode));
  h = HashCombine(h, static_cast<std::size_t>(c.adaptive_stripes));
  h = HashCombine(h, c.background_merge_threshold);
  return h;
}

}  // namespace internal

DatabaseOptions DatabaseOptions::FromEnv() {
  DatabaseOptions options;
  if (const char* env = std::getenv("AIDX_MEMORY_BUDGET")) {
    char* end = nullptr;
    const unsigned long long bytes = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      options.memory_budget = static_cast<std::size_t>(bytes);
    }
  }
  return options;
}

Database::Database(const DatabaseOptions& options)
    : thread_pool_(options.thread_pool) {
  governor_->set_budget_bytes(options.memory_budget);
}

Status Database::CreateTable(std::string name) {
  return catalog_.CreateTable(std::move(name)).status();
}

Status Database::AddColumn(std::string_view table, std::string column,
                           std::vector<std::int64_t> values) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_RETURN_NOT_OK(t->AddColumn<std::int64_t>(std::move(column), std::move(values)));
  // Schema change: cached sideways crackers registered their tails at
  // creation and would not know the new column; rebuild on next use.
  DropSideways(table);
  return Status::OK();
}

Result<std::span<const std::int64_t>> Database::ColumnSpan(
    std::string_view table, std::string_view column) const {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* col,
                        t->GetTypedColumn<std::int64_t>(column));
  return col->Values();
}

void Database::DropSideways(std::string_view table) {
  std::string prefix;
  prefix.reserve(table.size() + 1);
  prefix.append(table);
  prefix.push_back('.');
  for (auto it = sideways_.begin(); it != sideways_.end();) {
    if (it->first.starts_with(prefix)) {
      it = sideways_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<Table*> Database::PrepareRowDml(
    std::string_view table, std::vector<TypedColumn<std::int64_t>*>* cols) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  if (t->num_columns() == 0) {
    return Status::InvalidArgument("table '" + t->name() + "' has no columns");
  }
  cols->clear();
  cols->reserve(t->num_columns());
  for (const std::string& name : t->column_names()) {
    AIDX_ASSIGN_OR_RETURN(Column * raw, t->GetColumn(name));
    AIDX_ASSIGN_OR_RETURN(TypedColumn<std::int64_t> * typed,
                          raw->As<std::int64_t>());
    cols->push_back(typed);
  }
  // Validate-phase fault injection: one scoped evaluation per column, so a
  // policy can target "table\x1fcolumn" precisely. The scope string is
  // only built when the point is armed.
  if (AIDX_PREDICT_FALSE(failpoints::engine_dml_validate.armed())) {
    for (const std::string& name : t->column_names()) {
      std::string scope;
      scope.reserve(t->name().size() + 1 + name.size());
      scope.append(t->name());
      scope.push_back(kFailpointScopeSep);
      scope.append(name);
      AIDX_RETURN_NOT_OK(failpoints::engine_dml_validate.Inject(scope));
    }
  }
  return t;
}

void Database::LogSidewaysInsert(SidewaysCracker<std::int64_t>& cracker,
                                 std::string_view head,
                                 const std::vector<std::string>& names,
                                 std::span<const std::int64_t> row,
                                 row_id_t rid) {
  const auto index_of = [&](std::string_view name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    AIDX_CHECK(false) << "sideways column '" << name << "' missing from table";
    return std::size_t{0};
  };
  std::vector<std::int64_t> tails;
  tails.reserve(cracker.registered_tails().size());
  for (const std::string& tail_name : cracker.registered_tails()) {
    tails.push_back(row[index_of(tail_name)]);
  }
  cracker.ApplyInsert(rid, row[index_of(head)], std::move(tails));
}

Status Database::Insert(std::string_view table,
                        std::span<const std::int64_t> row) {
  std::vector<TypedColumn<std::int64_t>*> cols;
  AIDX_ASSIGN_OR_RETURN(Table * t, PrepareRowDml(table, &cols));
  if (row.size() != cols.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values; table '" + t->name() +
        "' has " + std::to_string(cols.size()) + " columns");
  }
  // Validate phase done — nothing below can fail (row-atomicity).
  const row_id_t rid = t->AllocateRowId();
  const std::vector<std::string>& names = t->column_names();
  // Paths first: ones that have not materialized yet snapshot the base
  // span now, while it is still untouched.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    ForEachPathOf(table, names[i],
                  [&](AccessPath<std::int64_t>& path) { path.Insert(row[i]); });
  }
  ForEachSidewaysOf(table, [&](std::string_view head,
                               SidewaysCracker<std::int64_t>& cracker) {
    LogSidewaysInsert(cracker, head, names, row, rid);
  });
  for (std::size_t i = 0; i < cols.size(); ++i) cols[i]->Append(row[i]);
  t->CommitAppendedRow(rid);
  return Status::OK();
}

Status Database::Insert(std::string_view table, std::string_view column,
                        std::int64_t value) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_RETURN_NOT_OK(t->GetColumn(column).status());
  if (t->num_columns() != 1) {
    return Status::InvalidArgument(
        "column-addressed insert into multi-column table '" + t->name() +
        "' would desynchronize rows; use the row overload");
  }
  return Insert(table, std::span<const std::int64_t>(&value, 1));
}

Status Database::InsertBatch(std::string_view table,
                             std::span<const std::int64_t> rows) {
  std::vector<TypedColumn<std::int64_t>*> cols;
  AIDX_ASSIGN_OR_RETURN(Table * t, PrepareRowDml(table, &cols));
  const std::size_t width = cols.size();
  if (rows.size() % width != 0) {
    return Status::InvalidArgument(
        "row-major batch of " + std::to_string(rows.size()) +
        " values is not a multiple of " + std::to_string(width) + " columns");
  }
  const std::size_t num_rows = rows.size() / width;
  if (num_rows == 0) return Status::OK();
  // Validate phase done — nothing below can fail (row-atomicity).
  const std::vector<std::string>& names = t->column_names();
  std::vector<std::int64_t> column_values(num_rows);
  for (std::size_t c = 0; c < width; ++c) {
    for (std::size_t r = 0; r < num_rows; ++r) {
      column_values[r] = rows[r * width + c];
    }
    ForEachPathOf(table, names[c], [&](AccessPath<std::int64_t>& path) {
      path.InsertBatch(column_values);
    });
  }
  for (std::size_t r = 0; r < num_rows; ++r) {
    const std::span<const std::int64_t> row = rows.subspan(r * width, width);
    const row_id_t rid = t->AllocateRowId();
    ForEachSidewaysOf(table, [&](std::string_view head,
                                 SidewaysCracker<std::int64_t>& cracker) {
      LogSidewaysInsert(cracker, head, names, row, rid);
    });
    for (std::size_t c = 0; c < width; ++c) cols[c]->Append(row[c]);
    t->CommitAppendedRow(rid);
  }
  return Status::OK();
}

Status Database::InsertBatch(std::string_view table, std::string_view column,
                             std::span<const std::int64_t> values) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_RETURN_NOT_OK(t->GetColumn(column).status());
  if (t->num_columns() != 1) {
    return Status::InvalidArgument(
        "column-addressed batch insert into multi-column table '" + t->name() +
        "' would desynchronize rows; use the row-major overload");
  }
  return InsertBatch(table, values);
}

Result<bool> Database::Delete(std::string_view table, std::string_view column,
                              std::int64_t value) {
  std::vector<TypedColumn<std::int64_t>*> cols;
  AIDX_ASSIGN_OR_RETURN(Table * t, PrepareRowDml(table, &cols));
  const std::vector<std::string>& names = t->column_names();
  std::size_t key_index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == column) {
      key_index = i;
      break;
    }
  }
  if (key_index == names.size()) {
    return t->GetColumn(column).status();  // NotFound with the usual message
  }
  const auto key_values = cols[key_index]->Values();
  const auto victim = std::find(key_values.begin(), key_values.end(), value);
  if (victim == key_values.end()) return false;  // no row matches: no-op
  const std::size_t pos =
      static_cast<std::size_t>(victim - key_values.begin());
  // Validate phase done — nothing below can fail (row-atomicity). Capture
  // the row before any structure mutates.
  std::vector<std::int64_t> row(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) row[i] = cols[i]->Values()[pos];
  const row_id_t rid = t->row_ids()[pos];
  for (std::size_t i = 0; i < cols.size(); ++i) {
    ForEachPathOf(table, names[i], [&](AccessPath<std::int64_t>& path) {
      const bool removed = path.Delete(row[i]);
      // Paths mirror the base multiset, so the tuple must exist there too.
      AIDX_DCHECK(removed);
      (void)removed;
    });
  }
  ForEachSidewaysOf(table, [&](std::string_view head,
                               SidewaysCracker<std::int64_t>& cracker) {
    std::size_t head_index = names.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == head) {
        head_index = i;
        break;
      }
    }
    AIDX_CHECK(head_index < names.size());
    cracker.ApplyDelete(rid, row[head_index]);
  });
  AIDX_CHECK_OK(t->EraseRow(pos));
  return true;
}

Result<std::size_t> Database::DeleteWhere(
    std::string_view table, std::string_view column,
    const RangePredicate<std::int64_t>& pred) {
  std::vector<TypedColumn<std::int64_t>*> cols;
  AIDX_ASSIGN_OR_RETURN(Table * t, PrepareRowDml(table, &cols));
  const std::vector<std::string>& names = t->column_names();
  std::size_t key_index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == column) {
      key_index = i;
      break;
    }
  }
  if (key_index == names.size()) {
    return t->GetColumn(column).status();  // NotFound with the usual message
  }
  const auto key_values = cols[key_index]->Values();
  std::vector<std::size_t> victims;
  for (std::size_t pos = 0; pos < key_values.size(); ++pos) {
    if (pred.Matches(key_values[pos])) victims.push_back(pos);
  }
  if (victims.empty()) return std::size_t{0};
  // Validate phase done — nothing below can fail (row-atomicity). Capture
  // the doomed rows before any structure mutates.
  std::vector<std::vector<std::int64_t>> rows(victims.size());
  std::vector<row_id_t> rids(victims.size());
  const auto row_id_span = t->row_ids();
  for (std::size_t v = 0; v < victims.size(); ++v) {
    rows[v].resize(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) {
      rows[v][i] = cols[i]->Values()[victims[v]];
    }
    rids[v] = row_id_span[victims[v]];
  }
  for (std::size_t v = 0; v < rows.size(); ++v) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      ForEachPathOf(table, names[i], [&](AccessPath<std::int64_t>& path) {
        const bool removed = path.Delete(rows[v][i]);
        AIDX_DCHECK(removed);
        (void)removed;
      });
    }
    ForEachSidewaysOf(table, [&](std::string_view head,
                                 SidewaysCracker<std::int64_t>& cracker) {
      std::size_t head_index = names.size();
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == head) {
          head_index = i;
          break;
        }
      }
      AIDX_CHECK(head_index < names.size());
      cracker.ApplyDelete(rids[v], rows[v][head_index]);
    });
  }
  AIDX_CHECK_OK(t->EraseRows(victims));
  return victims.size();
}

Result<AccessPath<std::int64_t>*> Database::PathFor(std::string_view table,
                                                    std::string_view column,
                                                    const StrategyConfig& config) {
  internal::PathKey key{std::string(table), std::string(column), config};
  const auto it = paths_.find(key);
  if (it != paths_.end()) return it->second.get();
  AIDX_ASSIGN_OR_RETURN(const auto span, ColumnSpan(table, column));
  auto path = MakeAccessPath<std::int64_t>(span, config);
  AccessPath<std::int64_t>* raw = path.get();
  paths_.emplace(std::move(key), std::move(path));
  return raw;
}

Result<std::size_t> Database::Count(const QueryRequest& req) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path,
                        PathFor(req.table, req.column, req.strategy));
  if (!req.context.has_value()) return path->Count(req.predicate);
  AIDX_ASSIGN_OR_RETURN(const std::size_t count,
                        path->Count(req.predicate, *req.context));
  SyncResourceGauges();
  return count;
}

Result<double> Database::Sum(const QueryRequest& req) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path,
                        PathFor(req.table, req.column, req.strategy));
  if (!req.context.has_value()) {
    return static_cast<double>(path->Sum(req.predicate));
  }
  AIDX_ASSIGN_OR_RETURN(const long double sum,
                        path->Sum(req.predicate, *req.context));
  SyncResourceGauges();
  return static_cast<double>(sum);
}

Result<SidewaysCracker<std::int64_t>*> Database::SidewaysFor(std::string_view table,
                                                             std::string_view head) {
  std::string key;
  key.reserve(table.size() + head.size() + 1);
  key.append(table);
  key.push_back('.');
  key.append(head);
  const auto it = sideways_.find(key);
  if (it != sideways_.end()) return it->second.get();

  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_RETURN_NOT_OK(t->GetTypedColumn<std::int64_t>(head).status());
  // Table-backed mode: spans are fetched per access and DML feeds the
  // cracker's operation log, so maps survive writes.
  auto cracker = std::make_unique<SidewaysCracker<std::int64_t>>(
      t, std::string(head));
  // Register every other int64 column of the table as a potential tail.
  for (const std::string& name : t->column_names()) {
    if (name == head) continue;
    AIDX_ASSIGN_OR_RETURN(Column * col, t->GetColumn(name));
    if (col->type() != DataType::kInt64) continue;
    AIDX_RETURN_NOT_OK(cracker->AddTailColumn(name));
  }
  SidewaysCracker<std::int64_t>* raw = cracker.get();
  sideways_.emplace(std::move(key), std::move(cracker));
  return raw;
}

Result<ProjectionResult<std::int64_t>> Database::SelectProject(
    const QueryRequest& req) {
  const std::string_view table = req.table;
  const std::string_view head = req.column;
  const RangePredicate<std::int64_t>& pred = req.predicate;
  const std::vector<std::string>& tails = req.tails;
  AIDX_ASSIGN_OR_RETURN(SidewaysCracker<std::int64_t> * cracker,
                        SidewaysFor(table, head));
  // Soft-budget admission over the map bytes this query would newly pin.
  // Denial degrades, never fails: first shed cold sideways state, then —
  // if the incoming maps still do not fit — answer at scan speed without
  // materializing anything (scan-plus-crack-later); investment resumes
  // once pressure clears.
  std::size_t incoming = 0;
  for (const std::string& tail : tails) {
    if (cracker->PeekMap(tail) == nullptr) incoming += cracker->per_map_bytes();
  }
  SyncResourceGauges();
  if (!governor_->Admit(incoming)) {
    std::string keep;
    keep.reserve(table.size() + head.size() + 1);
    keep.append(table);
    keep.push_back('.');
    keep.append(head);
    governor_->SetPressureCallback([this, &keep] { ShedSidewaysExcept(keep); });
    governor_->MaybeShed(incoming);
    governor_->SetPressureCallback(nullptr);
    SyncResourceGauges();
    if (!governor_->Admit(incoming)) {
      return ScanProject(table, head, pred, tails);
    }
  }
  auto result = cracker->SelectProject(pred, tails);
  SyncResourceGauges();
  return result;
}

Result<ProjectionResult<std::int64_t>> Database::ScanProject(
    std::string_view table, std::string_view head,
    const RangePredicate<std::int64_t>& pred,
    const std::vector<std::string>& tails) const {
  if (tails.empty()) {
    return Status::InvalidArgument("select-project needs at least one tail column");
  }
  AIDX_ASSIGN_OR_RETURN(const auto head_span, ColumnSpan(table, head));
  std::vector<std::span<const std::int64_t>> tail_spans;
  tail_spans.reserve(tails.size());
  for (const std::string& tail : tails) {
    AIDX_ASSIGN_OR_RETURN(const auto span, ColumnSpan(table, tail));
    tail_spans.push_back(span);
  }
  ProjectionResult<std::int64_t> out;
  out.column_names = tails;
  out.columns.resize(tails.size());
  for (std::size_t i = 0; i < head_span.size(); ++i) {
    if (!pred.Matches(head_span[i])) continue;
    for (std::size_t c = 0; c < tail_spans.size(); ++c) {
      out.columns[c].push_back(tail_spans[c][i]);
    }
    ++out.num_rows;
  }
  return out;
}

void Database::ShedSidewaysExcept(const std::string& keep) {
  for (auto it = sideways_.begin(); it != sideways_.end();) {
    if (it->first != keep) {
      it = sideways_.erase(it);
    } else {
      ++it;
    }
  }
}

void Database::SyncResourceGauges() {
  std::size_t sideways_bytes = 0;
  for (const auto& [key, cracker] : sideways_) {
    sideways_bytes += cracker->MemoryUsageBytes();
  }
  governor_->SetUsage(ResourceComponent::kSidewaysMaps, sideways_bytes);
  std::size_t pending_bytes = 0;
  for (const auto& [key, path] : paths_) {
    pending_bytes += path->approx_pending_bytes();
  }
  governor_->SetUsage(ResourceComponent::kPendingUpdates, pending_bytes);
}

Result<const SidewaysCracker<std::int64_t>*> Database::SidewaysState(
    std::string_view table, std::string_view head) const {
  std::string key;
  key.reserve(table.size() + head.size() + 1);
  key.append(table);
  key.push_back('.');
  key.append(head);
  const auto it = sideways_.find(key);
  if (it == sideways_.end()) {
    return Status::NotFound("no cached sideways cracker for '" + key + "'");
  }
  return static_cast<const SidewaysCracker<std::int64_t>*>(it->second.get());
}

void Database::ResetAdaptiveState() {
  paths_.clear();
  sideways_.clear();
}

DatabaseStats Database::Stats() const {
  DatabaseStats out;
  out.tables = catalog_.size();
  for (const std::string& name : catalog_.TableNames()) {
    const auto table = catalog_.GetTable(name);
    if (table.ok()) out.rows += (*table)->num_rows();
  }
  out.cached_paths = paths_.size();
  out.cached_sideways = sideways_.size();
  for (const auto& [key, path] : paths_) {
    out.cracked_pieces += path->num_cracked_pieces();
    out.pending_update_bytes += path->approx_pending_bytes();
    const CrackerStats s = path->crack_stats();
    out.crack.num_selects += s.num_selects;
    out.crack.num_crack_in_two += s.num_crack_in_two;
    out.crack.num_crack_in_three += s.num_crack_in_three;
    out.crack.num_stochastic_cracks += s.num_stochastic_cracks;
    out.crack.values_touched += s.values_touched;
  }
  return out;
}

Result<std::vector<ColumnCutExport>> Database::ExportColumnCuts(
    std::string_view table, std::string_view column, std::int64_t lo,
    std::int64_t hi) const {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_RETURN_NOT_OK(t->GetTypedColumn<std::int64_t>(column).status());
  std::vector<ColumnCutExport> out;
  for (const auto& [key, path] : paths_) {
    if (key.table != table || key.column != column) continue;
    ColumnCutExport entry;
    entry.config = key.config;
    path->ExportCuts(lo, hi, &entry.bundle);
    if (!entry.bundle.empty()) out.push_back(std::move(entry));
  }
  return out;
}

Status Database::ReplayColumnCuts(std::string_view table,
                                  std::string_view column,
                                  const std::vector<ColumnCutExport>& exports) {
  for (const ColumnCutExport& entry : exports) {
    AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path,
                          PathFor(table, column, entry.config));
    path->ReplayCuts(entry.bundle.cuts);
  }
  return Status::OK();
}

}  // namespace aidx
