#include "exec/engine.h"

#include <algorithm>
#include <functional>

namespace aidx {

namespace internal {
namespace {

std::size_t HashCombine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t PathKeyHash::operator()(const PathKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.table);
  h = HashCombine(h, std::hash<std::string>{}(key.column));
  const StrategyConfig& c = key.config;
  h = HashCombine(h, static_cast<std::size_t>(c.kind));
  h = HashCombine(h, c.min_piece_size);
  h = HashCombine(h, c.stochastic_threshold);
  h = HashCombine(h, static_cast<std::size_t>(c.seed));
  h = HashCombine(h, c.run_size);
  h = HashCombine(h, static_cast<std::size_t>(c.hybrid_initial));
  h = HashCombine(h, static_cast<std::size_t>(c.hybrid_final));
  h = HashCombine(h, static_cast<std::size_t>(c.radix_bits));
  h = HashCombine(h, c.num_partitions);
  h = HashCombine(h, c.num_threads);
  h = HashCombine(h, static_cast<std::size_t>(c.merge_policy));
  h = HashCombine(h, c.gradual_budget);
  h = HashCombine(h, static_cast<std::size_t>(c.with_row_ids));
  h = HashCombine(h, static_cast<std::size_t>(c.crack_kernel));
  h = HashCombine(h, static_cast<std::size_t>(c.latch_mode));
  h = HashCombine(h, c.latch_stripes);
  h = HashCombine(h, static_cast<std::size_t>(c.write_mode));
  h = HashCombine(h, static_cast<std::size_t>(c.adaptive_stripes));
  h = HashCombine(h, c.background_merge_threshold);
  return h;
}

}  // namespace internal

Status Database::CreateTable(std::string name) {
  return catalog_.CreateTable(std::move(name)).status();
}

Status Database::AddColumn(std::string_view table, std::string column,
                           std::vector<std::int64_t> values) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->AddColumn<std::int64_t>(std::move(column), std::move(values));
}

Result<std::span<const std::int64_t>> Database::ColumnSpan(
    std::string_view table, std::string_view column) const {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* col,
                        t->GetTypedColumn<std::int64_t>(column));
  return col->Values();
}

Result<TypedColumn<std::int64_t>*> Database::MutableColumn(std::string_view table,
                                                           std::string_view column) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_ASSIGN_OR_RETURN(Column * raw, t->GetColumn(column));
  return raw->As<std::int64_t>();
}

void Database::DropSideways(std::string_view table) {
  std::string prefix;
  prefix.reserve(table.size() + 1);
  prefix.append(table);
  prefix.push_back('.');
  for (auto it = sideways_.begin(); it != sideways_.end();) {
    if (it->first.starts_with(prefix)) {
      it = sideways_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Database::Insert(std::string_view table, std::string_view column,
                        std::int64_t value) {
  AIDX_ASSIGN_OR_RETURN(TypedColumn<std::int64_t> * col, MutableColumn(table, column));
  // Paths first: ones that have not materialized yet snapshot the base
  // span now, while it is still untouched.
  ForEachPathOf(table, column,
                [&](AccessPath<std::int64_t>& path) { path.Insert(value); });
  DropSideways(table);
  col->Append(value);
  return Status::OK();
}

Status Database::InsertBatch(std::string_view table, std::string_view column,
                             std::span<const std::int64_t> values) {
  AIDX_ASSIGN_OR_RETURN(TypedColumn<std::int64_t> * col, MutableColumn(table, column));
  ForEachPathOf(table, column,
                [&](AccessPath<std::int64_t>& path) { path.InsertBatch(values); });
  DropSideways(table);
  col->AppendMany(values);
  return Status::OK();
}

Result<bool> Database::Delete(std::string_view table, std::string_view column,
                              std::int64_t value) {
  AIDX_ASSIGN_OR_RETURN(TypedColumn<std::int64_t> * col, MutableColumn(table, column));
  auto& values = col->MutableValues();
  const auto victim = std::find(values.begin(), values.end(), value);
  if (victim == values.end()) return false;  // no tuple matches: no-op
  ForEachPathOf(table, column, [&](AccessPath<std::int64_t>& path) {
    const bool removed = path.Delete(value);
    // Paths mirror the base multiset, so the tuple must exist there too.
    AIDX_DCHECK(removed);
    (void)removed;
  });
  DropSideways(table);
  values.erase(victim);
  return true;
}

Result<AccessPath<std::int64_t>*> Database::PathFor(std::string_view table,
                                                    std::string_view column,
                                                    const StrategyConfig& config) {
  internal::PathKey key{std::string(table), std::string(column), config};
  const auto it = paths_.find(key);
  if (it != paths_.end()) return it->second.get();
  AIDX_ASSIGN_OR_RETURN(const auto span, ColumnSpan(table, column));
  auto path = MakeAccessPath<std::int64_t>(span, config);
  AccessPath<std::int64_t>* raw = path.get();
  paths_.emplace(std::move(key), std::move(path));
  return raw;
}

Result<std::size_t> Database::Count(std::string_view table, std::string_view column,
                                    const RangePredicate<std::int64_t>& pred,
                                    const StrategyConfig& config) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path, PathFor(table, column, config));
  return path->Count(pred);
}

Result<double> Database::Sum(std::string_view table, std::string_view column,
                             const RangePredicate<std::int64_t>& pred,
                             const StrategyConfig& config) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path, PathFor(table, column, config));
  return static_cast<double>(path->Sum(pred));
}

Result<SidewaysCracker<std::int64_t>*> Database::SidewaysFor(std::string_view table,
                                                             std::string_view head) {
  std::string key;
  key.reserve(table.size() + head.size() + 1);
  key.append(table);
  key.push_back('.');
  key.append(head);
  const auto it = sideways_.find(key);
  if (it != sideways_.end()) return it->second.get();

  AIDX_ASSIGN_OR_RETURN(const auto head_span, ColumnSpan(table, head));
  auto cracker = std::make_unique<SidewaysCracker<std::int64_t>>(head_span);
  // Register every other int64 column of the table as a potential tail.
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  for (const std::string& name : t->column_names()) {
    if (name == head) continue;
    AIDX_ASSIGN_OR_RETURN(Column * col, t->GetColumn(name));
    if (col->type() != DataType::kInt64) continue;
    AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* typed,
                          static_cast<const Column*>(col)->As<std::int64_t>());
    AIDX_RETURN_NOT_OK(cracker->AddTailColumn(name, typed->Values()));
  }
  SidewaysCracker<std::int64_t>* raw = cracker.get();
  sideways_.emplace(std::move(key), std::move(cracker));
  return raw;
}

Result<ProjectionResult<std::int64_t>> Database::SelectProject(
    std::string_view table, std::string_view head,
    const RangePredicate<std::int64_t>& pred, const std::vector<std::string>& tails) {
  AIDX_ASSIGN_OR_RETURN(SidewaysCracker<std::int64_t> * cracker,
                        SidewaysFor(table, head));
  return cracker->SelectProject(pred, tails);
}

void Database::ResetAdaptiveState() {
  paths_.clear();
  sideways_.clear();
}

}  // namespace aidx
