#include "exec/engine.h"

namespace aidx {

Status Database::CreateTable(std::string name) {
  return catalog_.CreateTable(std::move(name)).status();
}

Status Database::AddColumn(std::string_view table, std::string column,
                           std::vector<std::int64_t> values) {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->AddColumn<std::int64_t>(std::move(column), std::move(values));
}

Result<std::span<const std::int64_t>> Database::ColumnSpan(
    std::string_view table, std::string_view column) const {
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* col,
                        t->GetTypedColumn<std::int64_t>(column));
  return col->Values();
}

Result<AccessPath<std::int64_t>*> Database::PathFor(std::string_view table,
                                                    std::string_view column,
                                                    const StrategyConfig& config) {
  std::string key;
  key.reserve(table.size() + column.size() + 16);
  key.append(table);
  key.push_back('.');
  key.append(column);
  key.push_back('#');
  key.append(config.DisplayName());
  const auto it = paths_.find(key);
  if (it != paths_.end()) return it->second.get();
  AIDX_ASSIGN_OR_RETURN(const auto span, ColumnSpan(table, column));
  auto path = MakeAccessPath<std::int64_t>(span, config);
  AccessPath<std::int64_t>* raw = path.get();
  paths_.emplace(std::move(key), std::move(path));
  return raw;
}

Result<std::size_t> Database::Count(std::string_view table, std::string_view column,
                                    const RangePredicate<std::int64_t>& pred,
                                    const StrategyConfig& config) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path, PathFor(table, column, config));
  return path->Count(pred);
}

Result<double> Database::Sum(std::string_view table, std::string_view column,
                             const RangePredicate<std::int64_t>& pred,
                             const StrategyConfig& config) {
  AIDX_ASSIGN_OR_RETURN(AccessPath<std::int64_t> * path, PathFor(table, column, config));
  return static_cast<double>(path->Sum(pred));
}

Result<SidewaysCracker<std::int64_t>*> Database::SidewaysFor(std::string_view table,
                                                             std::string_view head) {
  std::string key;
  key.reserve(table.size() + head.size() + 1);
  key.append(table);
  key.push_back('.');
  key.append(head);
  const auto it = sideways_.find(key);
  if (it != sideways_.end()) return it->second.get();

  AIDX_ASSIGN_OR_RETURN(const auto head_span, ColumnSpan(table, head));
  auto cracker = std::make_unique<SidewaysCracker<std::int64_t>>(head_span);
  // Register every other int64 column of the table as a potential tail.
  AIDX_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  for (const std::string& name : t->column_names()) {
    if (name == head) continue;
    AIDX_ASSIGN_OR_RETURN(Column * col, t->GetColumn(name));
    if (col->type() != DataType::kInt64) continue;
    AIDX_ASSIGN_OR_RETURN(const TypedColumn<std::int64_t>* typed,
                          static_cast<const Column*>(col)->As<std::int64_t>());
    AIDX_RETURN_NOT_OK(cracker->AddTailColumn(name, typed->Values()));
  }
  SidewaysCracker<std::int64_t>* raw = cracker.get();
  sideways_.emplace(std::move(key), std::move(cracker));
  return raw;
}

Result<ProjectionResult<std::int64_t>> Database::SelectProject(
    std::string_view table, std::string_view head,
    const RangePredicate<std::int64_t>& pred, const std::vector<std::string>& tails) {
  AIDX_ASSIGN_OR_RETURN(SidewaysCracker<std::int64_t> * cracker,
                        SidewaysFor(table, head));
  return cracker->SelectProject(pred, tails);
}

void Database::ResetAdaptiveState() {
  paths_.clear();
  sideways_.clear();
}

}  // namespace aidx
