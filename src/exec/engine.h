// Database: the facade tying the substrate together — a catalog of tables,
// per-column adaptive access paths chosen by strategy, and sideways
// cracking for multi-column select-project queries.
//
// This plays the role the MonetDB integration plays in the surveyed papers:
// the component that routes query operators to adaptive structures
// (tutorial §2, "Auto-tuning Kernels").
//
// Ownership: a Database owns everything it serves — the catalog's base
// columns (moved in via AddColumn) and every cached adaptive structure.
// Access paths are created lazily on first use and cached under a
// *structural* (table, column, StrategyConfig) key — every knob
// participates, so two configs share an adaptive structure only when they
// are identical; knob sweeps need no ResetAdaptiveState between configs.
//
// DML is **row-atomic**: Insert/InsertBatch take whole rows (one value per
// column, column_names() order), Delete removes the first base row whose
// key column matches, and each row mutation applies to *all* of the
// table's columns, cached access paths, and sideways cracker maps, or to
// none of them. One row id is allocated per row (storage/table.h) and
// shared by every structure. The partial-failure contract: every fallible
// step — name resolution, type checks, row-width validation, the
// test-only DML fault hook — runs before the first byte moves, so a
// failed DML call leaves the table, its paths, and its sideways maps
// observably unchanged (no torn rows). The apply phase orders paths ->
// sideways log -> base, so paths that still borrow the base span snapshot
// it before it changes.
//
// Sideways cracker maps are NOT dropped on DML: crackers run in
// table-backed mode (sideways/sideways.h) and each row mutation is
// appended to their operation log, folded into live maps by ripple moves
// on the next touch — cracked investment survives writes. Only AddColumn
// (a schema change) still drops a table's cached sideways state.
//
// Single-column tables keep the historical column-addressed DML surface
// (Insert/InsertBatch with a column name); on a multi-column table those
// overloads return InvalidArgument instead of silently desynchronizing
// the table — use the row overloads.
//
// The type is move-only and not thread-safe: callers wanting concurrency
// wrap paths in SerializedAccessPath (exec/serialized_path.h), shard by
// column, or use StrategyKind::kParallelCrack, whose access path latches
// internally at partition granularity (docs/CONCURRENCY.md) — though the
// Database facade itself (catalog and path cache) must still be
// externally serialized.
//
// Usage:
//   Database db;
//   AIDX_CHECK_OK(db.CreateTable("sales"));
//   AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(amounts)));
//   AIDX_CHECK_OK(db.AddColumn("sales", "qty", std::move(qtys)));
//   auto n = db.Count("sales", "amount",
//                     RangePredicate<std::int64_t>::Between(lo, hi),
//                     StrategyConfig::Crack());   // cracks as a side effect
//   AIDX_CHECK_OK(db.Insert("sales", {42, 7}));  // row-atomic, all paths
//   AIDX_CHECK_OK(db.Delete("sales", "amount", 42).status());
// All entry points return Status/Result rather than throwing; errors are
// NotFound / AlreadyExists / InvalidArgument from util/status.h.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/access_path.h"
#include "sideways/sideways.h"
#include "storage/catalog.h"
#include "storage/predicate.h"
#include "util/query_context.h"
#include "util/resource_governor.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

namespace internal {

/// Structural path-cache key: the full strategy config participates, so
/// same-kind configs that differ in any knob get distinct cache entries.
struct PathKey {
  std::string table;
  std::string column;
  StrategyConfig config;

  friend bool operator==(const PathKey&, const PathKey&) = default;
};

struct PathKeyHash {
  std::size_t operator()(const PathKey& key) const;
};

}  // namespace internal

/// Engine facade over int64 columns (the experiment type; the underlying
/// templates support int32/float64 — see tests).
class Database {
 public:
  /// Test-only fault injection: called once per column during the validate
  /// phase of every DML call; a non-OK return aborts the call before any
  /// mutation (the partial-failure contract's executable witness).
  using DmlFaultHook =
      std::function<Status(std::string_view table, std::string_view column)>;

  /// Reads the AIDX_MEMORY_BUDGET env knob (bytes; soft sideways/pending
  /// budget) into the resource governor.
  Database();
  AIDX_DEFAULT_MOVE_ONLY(Database);

  /// Creates a table; fails on duplicates.
  Status CreateTable(std::string name);

  /// Adds an int64 column to a table. A schema change: the table's cached
  /// sideways state is dropped (rebuilt with the new column registered).
  Status AddColumn(std::string_view table, std::string column,
                   std::vector<std::int64_t> values);

  /// Appends one row (one value per column, column_names() order),
  /// row-atomically: every cached access path of every column absorbs its
  /// value, every cached sideways cracker logs the row, then the base
  /// columns grow — all under a single fresh row id.
  Status Insert(std::string_view table, std::span<const std::int64_t> row);
  Status Insert(std::string_view table, std::initializer_list<std::int64_t> row) {
    return Insert(table, std::span<const std::int64_t>(row.begin(), row.size()));
  }

  /// Column-addressed compatibility form: valid only on single-column
  /// tables (where it is the one-wide row insert); InvalidArgument on
  /// multi-column tables, which require the row overload.
  Status Insert(std::string_view table, std::string_view column,
                std::int64_t value);

  /// Batch row insert: `rows` is row-major, size a multiple of the column
  /// count. Same row-atomic contract as Insert; validation covers the
  /// whole batch before any row applies.
  Status InsertBatch(std::string_view table,
                     std::span<const std::int64_t> rows);

  /// Column-addressed compatibility form; single-column tables only.
  Status InsertBatch(std::string_view table, std::string_view column,
                     std::span<const std::int64_t> values);

  /// Deletes the first base row (lowest position) whose `column` value
  /// equals `value`, row-atomically across all columns, cached paths, and
  /// sideways maps. Returns ok(false) when no row matches — the table is
  /// untouched in that case.
  Result<bool> Delete(std::string_view table, std::string_view column,
                      std::int64_t value);

  /// Rows of `table`.`column` matching `pred`, answered through the access
  /// path of `config` (created lazily and cached per column+strategy, so
  /// repeated calls adapt the same structure).
  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config);

  /// SUM(column) over matching rows; same caching semantics as Count.
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config);

  /// Deadline/cancellation-aware Count: `ctx` is checked at query entry
  /// and at piece granularity inside the crack loops. An expired or
  /// cancelled query returns DeadlineExceeded / Cancelled with the index
  /// ValidatePieces-clean; cracks realized before expiry are KEPT (they
  /// are ordinary incremental indexing investment) and pending-update
  /// merges roll forward or park at a clean boundary, never mid-step.
  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config,
                            const QueryContext& ctx);

  /// Deadline/cancellation-aware Sum; same contract as the Count overload.
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config, const QueryContext& ctx);

  /// σ_pred(head) projecting `tails`, via sideways cracking (one cracker
  /// map per projected column, adaptively aligned, maintained
  /// incrementally under DML).
  Result<ProjectionResult<std::int64_t>> SelectProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails);

  /// Drops every cached adaptive structure (access paths and sideways
  /// maps); base tables are untouched.
  void ResetAdaptiveState();

  /// Installs (or clears, with nullptr) the DML fault hook. Tests only.
  /// Compatibility shim over the `engine.dml_validate` failpoint
  /// (util/failpoint.h): the hook is wrapped in a callback policy keyed by
  /// a "table\x1fcolumn" scope string, so it is process-global, not
  /// per-Database — exactly one hook is live at a time.
  void SetDmlFaultHook(DmlFaultHook hook);

  /// Soft memory budget (bytes) over auxiliary engine state — sideways
  /// maps and pending update stores. Under pressure the engine sheds cold
  /// sideways map state and falls back to scan-plus-crack-later for
  /// projections; it never fails a query. Also settable at construction
  /// via the AIDX_MEMORY_BUDGET env knob.
  void SetMemoryBudget(std::size_t bytes) { governor_->set_budget_bytes(bytes); }
  ResourceGovernor& resource_governor() { return *governor_; }
  const ResourceGovernor& resource_governor() const { return *governor_; }

  /// Read-only view of a cached sideways cracker (tests inspect map
  /// survival and stats through this); NotFound when no SelectProject has
  /// materialized one for (table, head).
  Result<const SidewaysCracker<std::int64_t>*> SidewaysState(
      std::string_view table, std::string_view head) const;

  const Catalog& catalog() const { return catalog_; }
  std::size_t num_cached_paths() const { return paths_.size(); }
  std::size_t num_cached_sideways() const { return sideways_.size(); }

 private:
  Result<std::span<const std::int64_t>> ColumnSpan(std::string_view table,
                                                   std::string_view column) const;
  Result<AccessPath<std::int64_t>*> PathFor(std::string_view table,
                                            std::string_view column,
                                            const StrategyConfig& config);
  Result<SidewaysCracker<std::int64_t>*> SidewaysFor(std::string_view table,
                                                     std::string_view head);
  /// The validate phase shared by every DML entry point: resolves the
  /// table and *all* its columns (type-checked), fires the fault hook.
  /// After it returns OK, the apply phase cannot fail.
  Result<Table*> PrepareRowDml(std::string_view table,
                               std::vector<TypedColumn<std::int64_t>*>* cols);
  /// Applies `write` to every cached access path of (table, column).
  template <typename Fn>
  void ForEachPathOf(std::string_view table, std::string_view column, Fn&& write) {
    for (auto& [key, path] : paths_) {
      if (key.table == table && key.column == column) write(*path);
    }
  }
  /// Visits every cached sideways cracker of `table` as (head_name, cracker).
  template <typename Fn>
  void ForEachSidewaysOf(std::string_view table, Fn&& fn) {
    std::string prefix;
    prefix.reserve(table.size() + 1);
    prefix.append(table);
    prefix.push_back('.');
    for (auto& [key, cracker] : sideways_) {
      if (key.starts_with(prefix)) {
        fn(std::string_view(key).substr(prefix.size()), *cracker);
      }
    }
  }
  /// Logs one appended row into `cracker` (head value + tails in the
  /// cracker's registration order).
  static void LogSidewaysInsert(SidewaysCracker<std::int64_t>& cracker,
                                std::string_view head,
                                const std::vector<std::string>& names,
                                std::span<const std::int64_t> row, row_id_t rid);
  /// Drops the table's cached sideways crackers (schema changes only).
  void DropSideways(std::string_view table);
  /// Pressure reaction: drops every cached sideways cracker except `keep`
  /// (maps are pure acceleration state and rebuild on demand).
  void ShedSidewaysExcept(const std::string& keep);
  /// Refreshes the governor's gauges from the live structures.
  void SyncResourceGauges();
  /// Scan-plus-crack-later projection: answers σ_pred(head) ⋉ tails by
  /// scanning the base columns, materializing no sideways map.
  Result<ProjectionResult<std::int64_t>> ScanProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails) const;

  Catalog catalog_;
  std::unordered_map<internal::PathKey, std::unique_ptr<AccessPath<std::int64_t>>,
                     internal::PathKeyHash>
      paths_;
  std::unordered_map<std::string, std::unique_ptr<SidewaysCracker<std::int64_t>>>
      sideways_;
  // unique_ptr: the governor holds a mutex (not movable) and the Database
  // keeps its defaulted moves.
  std::unique_ptr<ResourceGovernor> governor_ = std::make_unique<ResourceGovernor>();
};

}  // namespace aidx
