// Database: the facade tying the substrate together — a catalog of tables,
// per-column adaptive access paths chosen by strategy, and sideways
// cracking for multi-column select-project queries.
//
// This plays the role the MonetDB integration plays in the surveyed papers:
// the component that routes query operators to adaptive structures
// (tutorial §2, "Auto-tuning Kernels").
//
// Ownership: a Database owns everything it serves — the catalog's base
// columns (moved in via AddColumn) and every cached adaptive structure.
// Access paths are created lazily on first use and cached per
// (table, column, StrategyConfig::DisplayName()) key, so repeated queries
// through the same strategy adapt one shared structure. Note the key is
// the *display name*: knobs it omits (run_size, seed, radix_bits, ...) do
// not distinguish cache entries, so knob sweeps must call
// ResetAdaptiveState between configs or construct AccessPaths directly
// (as the benches do). Sideways crackers are cached
// per (table, head column) and borrow the catalog's column storage, which
// therefore must not be mutated while the Database lives. The type is
// move-only and not thread-safe: callers wanting concurrency wrap paths in
// SerializedAccessPath (exec/serialized_path.h), shard by column, or use
// StrategyKind::kParallelCrack, whose access path latches internally at
// partition granularity (docs/CONCURRENCY.md) — though the Database facade
// itself (catalog and path cache) must still be externally serialized.
//
// Usage:
//   Database db;
//   AIDX_CHECK_OK(db.CreateTable("sales"));
//   AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(values)));
//   auto n = db.Count("sales", "amount",
//                     RangePredicate<std::int64_t>::Between(lo, hi),
//                     StrategyConfig::Crack());   // cracks as a side effect
// All entry points return Status/Result rather than throwing; errors are
// NotFound / AlreadyExists / InvalidArgument from util/status.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/access_path.h"
#include "sideways/sideways.h"
#include "storage/catalog.h"
#include "storage/predicate.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

/// Engine facade over int64 columns (the experiment type; the underlying
/// templates support int32/float64 — see tests).
class Database {
 public:
  Database() = default;
  AIDX_DEFAULT_MOVE_ONLY(Database);

  /// Creates a table; fails on duplicates.
  Status CreateTable(std::string name);

  /// Adds an int64 column to a table.
  Status AddColumn(std::string_view table, std::string column,
                   std::vector<std::int64_t> values);

  /// Rows of `table`.`column` matching `pred`, answered through the access
  /// path of `config` (created lazily and cached per column+strategy, so
  /// repeated calls adapt the same structure).
  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config);

  /// SUM(column) over matching rows; same caching semantics as Count.
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config);

  /// σ_pred(head) projecting `tails`, via sideways cracking (one cracker
  /// map per projected column, adaptively aligned).
  Result<ProjectionResult<std::int64_t>> SelectProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails);

  /// Drops every cached adaptive structure (access paths and sideways
  /// maps); base tables are untouched.
  void ResetAdaptiveState();

  const Catalog& catalog() const { return catalog_; }
  std::size_t num_cached_paths() const { return paths_.size(); }

 private:
  Result<std::span<const std::int64_t>> ColumnSpan(std::string_view table,
                                                   std::string_view column) const;
  Result<AccessPath<std::int64_t>*> PathFor(std::string_view table,
                                            std::string_view column,
                                            const StrategyConfig& config);
  Result<SidewaysCracker<std::int64_t>*> SidewaysFor(std::string_view table,
                                                     std::string_view head);

  Catalog catalog_;
  std::unordered_map<std::string, std::unique_ptr<AccessPath<std::int64_t>>> paths_;
  std::unordered_map<std::string, std::unique_ptr<SidewaysCracker<std::int64_t>>>
      sideways_;
};

}  // namespace aidx
