// Database: the facade tying the substrate together — a catalog of tables,
// per-column adaptive access paths chosen by strategy, and sideways
// cracking for multi-column select-project queries.
//
// This plays the role the MonetDB integration plays in the surveyed papers:
// the component that routes query operators to adaptive structures
// (tutorial §2, "Auto-tuning Kernels").
//
// Ownership: a Database owns everything it serves — the catalog's base
// columns (moved in via AddColumn) and every cached adaptive structure.
// Access paths are created lazily on first use and cached under a
// *structural* (table, column, StrategyConfig) key — every knob
// participates, so two configs share an adaptive structure only when they
// are identical; knob sweeps need no ResetAdaptiveState between configs.
//
// DML: Insert/Delete/InsertBatch keep the base column and every cached
// access path of that column consistent — the write is applied to each
// cached path through the uniform AccessPath update interface (each
// strategy absorbing it under its own policy, docs/UPDATES.md) and then
// to the catalog's base storage, in that order, so paths that still
// borrow the base span snapshot it before it changes. Writes are
// column-level (this is a column-store substrate): deleting from one
// column of a multi-column table desynchronizes the table's row count,
// which SelectProject will then report as an error. Sideways crackers
// borrow the catalog's storage, so any write to a table drops that
// table's cached sideways state (rebuilt from the new base on the next
// SelectProject).
//
// The type is move-only and not thread-safe: callers wanting concurrency
// wrap paths in SerializedAccessPath (exec/serialized_path.h), shard by
// column, or use StrategyKind::kParallelCrack, whose access path latches
// internally at partition granularity (docs/CONCURRENCY.md) — though the
// Database facade itself (catalog and path cache) must still be
// externally serialized.
//
// Usage:
//   Database db;
//   AIDX_CHECK_OK(db.CreateTable("sales"));
//   AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(values)));
//   auto n = db.Count("sales", "amount",
//                     RangePredicate<std::int64_t>::Between(lo, hi),
//                     StrategyConfig::Crack());   // cracks as a side effect
//   AIDX_CHECK_OK(db.Insert("sales", "amount", 42));   // all paths observe it
// All entry points return Status/Result rather than throwing; errors are
// NotFound / AlreadyExists / InvalidArgument from util/status.h.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/access_path.h"
#include "sideways/sideways.h"
#include "storage/catalog.h"
#include "storage/predicate.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

namespace internal {

/// Structural path-cache key: the full strategy config participates, so
/// same-kind configs that differ in any knob get distinct cache entries.
struct PathKey {
  std::string table;
  std::string column;
  StrategyConfig config;

  friend bool operator==(const PathKey&, const PathKey&) = default;
};

struct PathKeyHash {
  std::size_t operator()(const PathKey& key) const;
};

}  // namespace internal

/// Engine facade over int64 columns (the experiment type; the underlying
/// templates support int32/float64 — see tests).
class Database {
 public:
  Database() = default;
  AIDX_DEFAULT_MOVE_ONLY(Database);

  /// Creates a table; fails on duplicates.
  Status CreateTable(std::string name);

  /// Adds an int64 column to a table.
  Status AddColumn(std::string_view table, std::string column,
                   std::vector<std::int64_t> values);

  /// Appends one fresh value to `table`.`column`: every cached access path
  /// of that column absorbs the insert under its own strategy, then the
  /// catalog's base column grows, so paths created later see it too.
  Status Insert(std::string_view table, std::string_view column,
                std::int64_t value);

  /// Batch insert with the same consistency contract as Insert.
  Status InsertBatch(std::string_view table, std::string_view column,
                     std::span<const std::int64_t> values);

  /// Deletes one tuple equal to `value` (multiset semantics) from the base
  /// column and every cached access path of that column. Returns ok(false)
  /// when no tuple matches — the column is untouched in that case.
  Result<bool> Delete(std::string_view table, std::string_view column,
                      std::int64_t value);

  /// Rows of `table`.`column` matching `pred`, answered through the access
  /// path of `config` (created lazily and cached per column+strategy, so
  /// repeated calls adapt the same structure).
  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config);

  /// SUM(column) over matching rows; same caching semantics as Count.
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config);

  /// σ_pred(head) projecting `tails`, via sideways cracking (one cracker
  /// map per projected column, adaptively aligned).
  Result<ProjectionResult<std::int64_t>> SelectProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails);

  /// Drops every cached adaptive structure (access paths and sideways
  /// maps); base tables are untouched.
  void ResetAdaptiveState();

  const Catalog& catalog() const { return catalog_; }
  std::size_t num_cached_paths() const { return paths_.size(); }

 private:
  Result<std::span<const std::int64_t>> ColumnSpan(std::string_view table,
                                                   std::string_view column) const;
  Result<AccessPath<std::int64_t>*> PathFor(std::string_view table,
                                            std::string_view column,
                                            const StrategyConfig& config);
  Result<SidewaysCracker<std::int64_t>*> SidewaysFor(std::string_view table,
                                                     std::string_view head);
  Result<TypedColumn<std::int64_t>*> MutableColumn(std::string_view table,
                                                   std::string_view column);
  /// Applies `write` to every cached access path of (table, column).
  template <typename Fn>
  void ForEachPathOf(std::string_view table, std::string_view column, Fn&& write) {
    for (auto& [key, path] : paths_) {
      if (key.table == table && key.column == column) write(*path);
    }
  }
  /// Drops the table's cached sideways crackers (they borrow base storage,
  /// which a write is about to change).
  void DropSideways(std::string_view table);

  Catalog catalog_;
  std::unordered_map<internal::PathKey, std::unique_ptr<AccessPath<std::int64_t>>,
                     internal::PathKeyHash>
      paths_;
  std::unordered_map<std::string, std::unique_ptr<SidewaysCracker<std::int64_t>>>
      sideways_;
};

}  // namespace aidx
