// Database: the facade tying the substrate together — a catalog of tables,
// per-column adaptive access paths chosen by strategy, and sideways
// cracking for multi-column select-project queries.
//
// This plays the role the MonetDB integration plays in the surveyed papers:
// the component that routes query operators to adaptive structures
// (tutorial §2, "Auto-tuning Kernels").
//
// Ownership: a Database owns everything it serves — the catalog's base
// columns (moved in via AddColumn) and every cached adaptive structure.
// Access paths are created lazily on first use and cached under a
// *structural* (table, column, StrategyConfig) key — every knob
// participates, so two configs share an adaptive structure only when they
// are identical; knob sweeps need no ResetAdaptiveState between configs.
//
// DML is **row-atomic**: Insert/InsertBatch take whole rows (one value per
// column, column_names() order), Delete removes the first base row whose
// key column matches, and each row mutation applies to *all* of the
// table's columns, cached access paths, and sideways cracker maps, or to
// none of them. One row id is allocated per row (storage/table.h) and
// shared by every structure. The partial-failure contract: every fallible
// step — name resolution, type checks, row-width validation, the
// `engine.dml_validate` failpoint (util/failpoint.h) — runs before the
// first byte moves, so a failed DML call leaves the table, its paths, and
// its sideways maps observably unchanged (no torn rows). The apply phase
// orders paths -> sideways log -> base, so paths that still borrow the
// base span snapshot it before it changes.
//
// Sideways cracker maps are NOT dropped on DML: crackers run in
// table-backed mode (sideways/sideways.h) and each row mutation is
// appended to their operation log, folded into live maps by ripple moves
// on the next touch — cracked investment survives writes. Only AddColumn
// (a schema change) still drops a table's cached sideways state.
//
// Single-column tables keep the historical column-addressed DML surface
// (Insert/InsertBatch with a column name); on a multi-column table those
// overloads return InvalidArgument instead of silently desynchronizing
// the table — use the row overloads.
//
// The type is move-only and not thread-safe: callers wanting concurrency
// wrap paths in SerializedAccessPath (exec/serialized_path.h), shard by
// column, or use StrategyKind::kParallelCrack, whose access path latches
// internally at partition granularity (docs/CONCURRENCY.md) — though the
// Database facade itself (catalog and path cache) must still be
// externally serialized.
//
// The query surface is a single QueryRequest struct — table, column,
// predicate, strategy, optional context, projection tails — with one
// entry per verb (Count / Sum / SelectProject). A request is the
// serializable unit the dist router (src/dist/) forwards to a shard
// verbatim, and what a future socket front-end would ship. The historical
// per-argument overloads remain as thin inline shims over the request
// form; they are deprecated in favor of it (docs/UPDATES.md).
//
// Usage:
//   Database db;                       // or Database(DatabaseOptions{...})
//   AIDX_CHECK_OK(db.CreateTable("sales"));
//   AIDX_CHECK_OK(db.AddColumn("sales", "amount", std::move(amounts)));
//   AIDX_CHECK_OK(db.AddColumn("sales", "qty", std::move(qtys)));
//   auto n = db.Count({.table = "sales",
//                      .column = "amount",
//                      .predicate = RangePredicate<std::int64_t>::Between(lo, hi),
//                      .strategy = StrategyConfig::Crack()});  // cracks
//   AIDX_CHECK_OK(db.Insert("sales", {42, 7}));  // row-atomic, all paths
//   AIDX_CHECK_OK(db.Delete("sales", "amount", 42).status());
// All entry points return Status/Result rather than throwing; errors are
// NotFound / AlreadyExists / InvalidArgument from util/status.h.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/access_path.h"
#include "sideways/sideways.h"
#include "storage/catalog.h"
#include "storage/predicate.h"
#include "util/query_context.h"
#include "util/resource_governor.h"
#include "util/result.h"
#include "util/status.h"

namespace aidx {

class ThreadPool;

namespace internal {

/// Structural path-cache key: the full strategy config participates, so
/// same-kind configs that differ in any knob get distinct cache entries.
struct PathKey {
  std::string table;
  std::string column;
  StrategyConfig config;

  friend bool operator==(const PathKey&, const PathKey&) = default;
};

struct PathKeyHash {
  std::size_t operator()(const PathKey& key) const;
};

}  // namespace internal

/// Construction-time configuration. Explicit options beat env sniffing:
/// a ShardedDatabase configures its N nodes deterministically from one
/// options value, and tests never depend on ambient environment state.
/// The environment remains the *default* source — Database() delegates to
/// FromEnv() — so existing env-driven workflows keep working.
struct DatabaseOptions {
  /// Soft budget (bytes) over auxiliary engine state — sideways maps and
  /// pending update stores (util/resource_governor.h). kUnlimited (the
  /// default) disables shedding.
  std::size_t memory_budget = ResourceGovernor::kUnlimited;
  /// Borrowed pool for engine-adjacent parallel work; may be null. The
  /// Database does not own or shut it down. The dist layer threads its
  /// scatter pool through here so every node shares one pool instead of
  /// spawning per-node workers.
  ThreadPool* thread_pool = nullptr;

  /// The historical defaults: AIDX_MEMORY_BUDGET (bytes) applied when set
  /// and parseable, everything else default-initialized.
  static DatabaseOptions FromEnv();
};

/// A fully specified query against one table and column — the
/// serializable unit of the query API. One request struct serves every
/// verb: Count/Sum read `table`/`column`/`predicate`/`strategy` (+
/// optional `context`); SelectProject reads `table`/`column` (the head) /
/// `predicate`/`tails`. The dist router forwards requests verbatim.
struct QueryRequest {
  std::string table;
  /// The aggregated column, or the selection head for SelectProject.
  std::string column;
  RangePredicate<std::int64_t> predicate = RangePredicate<std::int64_t>::All();
  /// Which adaptive structure answers (and adapts); ignored by
  /// SelectProject, whose sideways maps have their own machinery.
  StrategyConfig strategy;
  /// Deadline/cancellation; nullopt runs in the background context.
  std::optional<QueryContext> context;
  /// Projected columns (SelectProject only).
  std::vector<std::string> tails;
};

/// Aggregate engine gauges for health endpoints (dist ShardStats).
/// Rows/pieces/pending are live sums over the catalog and path cache;
/// crack counters are cumulative.
struct DatabaseStats {
  std::size_t tables = 0;
  std::size_t rows = 0;                 // summed over tables
  std::size_t cached_paths = 0;
  std::size_t cached_sideways = 0;
  std::size_t cracked_pieces = 0;       // summed over cached paths
  std::size_t pending_update_bytes = 0; // approx, summed over cached paths
  CrackerStats crack;                   // summed crack-work counters
};

/// One cached path's carried index investment over a key range: the
/// strategy it belongs to plus the serialized cuts (rebalance contract,
/// docs/DISTRIBUTION.md).
struct ColumnCutExport {
  StrategyConfig config;
  PieceBundle<std::int64_t> bundle;
};

/// Engine facade over int64 columns (the experiment type; the underlying
/// templates support int32/float64 — see tests).
class Database {
 public:
  /// Equivalent to Database(DatabaseOptions::FromEnv()).
  Database() : Database(DatabaseOptions::FromEnv()) {}
  explicit Database(const DatabaseOptions& options);
  AIDX_DEFAULT_MOVE_ONLY(Database);

  /// Creates a table; fails on duplicates.
  Status CreateTable(std::string name);

  /// Adds an int64 column to a table. A schema change: the table's cached
  /// sideways state is dropped (rebuilt with the new column registered).
  Status AddColumn(std::string_view table, std::string column,
                   std::vector<std::int64_t> values);

  /// Appends one row (one value per column, column_names() order),
  /// row-atomically: every cached access path of every column absorbs its
  /// value, every cached sideways cracker logs the row, then the base
  /// columns grow — all under a single fresh row id.
  Status Insert(std::string_view table, std::span<const std::int64_t> row);
  Status Insert(std::string_view table, std::initializer_list<std::int64_t> row) {
    return Insert(table, std::span<const std::int64_t>(row.begin(), row.size()));
  }

  /// Column-addressed compatibility form: valid only on single-column
  /// tables (where it is the one-wide row insert); InvalidArgument on
  /// multi-column tables, which require the row overload.
  Status Insert(std::string_view table, std::string_view column,
                std::int64_t value);

  /// Batch row insert: `rows` is row-major, size a multiple of the column
  /// count. Same row-atomic contract as Insert; validation covers the
  /// whole batch before any row applies.
  Status InsertBatch(std::string_view table,
                     std::span<const std::int64_t> rows);

  /// Column-addressed compatibility form; single-column tables only.
  Status InsertBatch(std::string_view table, std::string_view column,
                     std::span<const std::int64_t> values);

  /// Deletes the first base row (lowest position) whose `column` value
  /// equals `value`, row-atomically across all columns, cached paths, and
  /// sideways maps. Returns ok(false) when no row matches — the table is
  /// untouched in that case.
  Result<bool> Delete(std::string_view table, std::string_view column,
                      std::int64_t value);

  /// Deletes *every* base row whose `column` value matches `pred`,
  /// row-atomically (same validate-then-apply contract as Delete, one
  /// bulk compaction pass over the base). Returns the number of rows
  /// removed. The dist layer's rebalance uses this to evacuate a migrated
  /// key range from the source shard.
  Result<std::size_t> DeleteWhere(std::string_view table,
                                  std::string_view column,
                                  const RangePredicate<std::int64_t>& pred);

  /// COUNT(*) over rows matching `req` — answered through the access path
  /// of `req.strategy` (created lazily and cached per column+strategy, so
  /// repeated requests adapt the same structure). With `req.context`, the
  /// context is checked at query entry and at piece granularity inside the
  /// crack loops: an expired or cancelled query returns DeadlineExceeded /
  /// Cancelled with the index ValidatePieces-clean, and cracks realized
  /// before expiry are KEPT (ordinary incremental indexing investment) —
  /// pending-update merges roll forward or park at a clean boundary,
  /// never mid-step.
  Result<std::size_t> Count(const QueryRequest& req);

  /// SUM(column) over rows matching `req`; same caching and context
  /// semantics as Count.
  Result<double> Sum(const QueryRequest& req);

  /// σ_predicate(column) projecting `req.tails`, via sideways cracking
  /// (one cracker map per projected column, adaptively aligned, maintained
  /// incrementally under DML).
  Result<ProjectionResult<std::int64_t>> SelectProject(const QueryRequest& req);

  // -- Deprecated per-argument overloads ------------------------------------
  //
  // Thin shims over the QueryRequest form, kept for source compatibility
  // (docs/UPDATES.md marks them deprecated). New code — and anything that
  // may one day cross a wire — should build a QueryRequest.

  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config) {
    return Count(MakeRequest(table, column, pred, config));
  }
  Result<std::size_t> Count(std::string_view table, std::string_view column,
                            const RangePredicate<std::int64_t>& pred,
                            const StrategyConfig& config,
                            const QueryContext& ctx) {
    QueryRequest req = MakeRequest(table, column, pred, config);
    req.context = ctx;
    return Count(req);
  }
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config) {
    return Sum(MakeRequest(table, column, pred, config));
  }
  Result<double> Sum(std::string_view table, std::string_view column,
                     const RangePredicate<std::int64_t>& pred,
                     const StrategyConfig& config, const QueryContext& ctx) {
    QueryRequest req = MakeRequest(table, column, pred, config);
    req.context = ctx;
    return Sum(req);
  }
  Result<ProjectionResult<std::int64_t>> SelectProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails) {
    QueryRequest req = MakeRequest(table, head, pred, StrategyConfig());
    req.tails = tails;
    return SelectProject(req);
  }
  // -------------------------------------------------------------------------

  /// Drops every cached adaptive structure (access paths and sideways
  /// maps); base tables are untouched.
  void ResetAdaptiveState();

  /// Soft memory budget (bytes) over auxiliary engine state — sideways
  /// maps and pending update stores. Under pressure the engine sheds cold
  /// sideways map state and falls back to scan-plus-crack-later for
  /// projections; it never fails a query. Also settable at construction
  /// via the AIDX_MEMORY_BUDGET env knob.
  void SetMemoryBudget(std::size_t bytes) { governor_->set_budget_bytes(bytes); }
  ResourceGovernor& resource_governor() { return *governor_; }
  const ResourceGovernor& resource_governor() const { return *governor_; }

  /// Read-only view of a cached sideways cracker (tests inspect map
  /// survival and stats through this); NotFound when no SelectProject has
  /// materialized one for (table, head).
  Result<const SidewaysCracker<std::int64_t>*> SidewaysState(
      std::string_view table, std::string_view head) const;

  const Catalog& catalog() const { return catalog_; }
  std::size_t num_cached_paths() const { return paths_.size(); }
  std::size_t num_cached_sideways() const { return sideways_.size(); }

  /// Borrowed pool handed in via DatabaseOptions; null when none was.
  ThreadPool* thread_pool() const { return thread_pool_; }

  /// Aggregate gauges over the catalog and caches (dist ShardStats).
  DatabaseStats Stats() const;

  // -- Shard-migration hooks (src/dist/, docs/DISTRIBUTION.md) --------------

  /// Exports, per cached access path of (table, column), the realized cuts
  /// with values in [lo, hi] — the index investment a rebalance carries
  /// alongside the migrated rows. Paths without cut structure contribute
  /// nothing. NotFound when the table or column does not exist.
  Result<std::vector<ColumnCutExport>> ExportColumnCuts(
      std::string_view table, std::string_view column, std::int64_t lo,
      std::int64_t hi) const;

  /// Re-realizes carried cuts: for each export, the access path of its
  /// config is fetched (created lazily if absent — it then materializes
  /// over the post-migration base) and replays the bundle, so queries
  /// bounded at carried values perform zero new cracks.
  Status ReplayColumnCuts(std::string_view table, std::string_view column,
                          const std::vector<ColumnCutExport>& exports);

 private:
  static QueryRequest MakeRequest(std::string_view table, std::string_view column,
                                  const RangePredicate<std::int64_t>& pred,
                                  const StrategyConfig& config) {
    QueryRequest req;
    req.table = std::string(table);
    req.column = std::string(column);
    req.predicate = pred;
    req.strategy = config;
    return req;
  }

  Result<std::span<const std::int64_t>> ColumnSpan(std::string_view table,
                                                   std::string_view column) const;
  Result<AccessPath<std::int64_t>*> PathFor(std::string_view table,
                                            std::string_view column,
                                            const StrategyConfig& config);
  Result<SidewaysCracker<std::int64_t>*> SidewaysFor(std::string_view table,
                                                     std::string_view head);
  /// The validate phase shared by every DML entry point: resolves the
  /// table and *all* its columns (type-checked), fires the fault hook.
  /// After it returns OK, the apply phase cannot fail.
  Result<Table*> PrepareRowDml(std::string_view table,
                               std::vector<TypedColumn<std::int64_t>*>* cols);
  /// Applies `write` to every cached access path of (table, column).
  template <typename Fn>
  void ForEachPathOf(std::string_view table, std::string_view column, Fn&& write) {
    for (auto& [key, path] : paths_) {
      if (key.table == table && key.column == column) write(*path);
    }
  }
  /// Visits every cached sideways cracker of `table` as (head_name, cracker).
  template <typename Fn>
  void ForEachSidewaysOf(std::string_view table, Fn&& fn) {
    std::string prefix;
    prefix.reserve(table.size() + 1);
    prefix.append(table);
    prefix.push_back('.');
    for (auto& [key, cracker] : sideways_) {
      if (key.starts_with(prefix)) {
        fn(std::string_view(key).substr(prefix.size()), *cracker);
      }
    }
  }
  /// Logs one appended row into `cracker` (head value + tails in the
  /// cracker's registration order).
  static void LogSidewaysInsert(SidewaysCracker<std::int64_t>& cracker,
                                std::string_view head,
                                const std::vector<std::string>& names,
                                std::span<const std::int64_t> row, row_id_t rid);
  /// Drops the table's cached sideways crackers (schema changes only).
  void DropSideways(std::string_view table);
  /// Pressure reaction: drops every cached sideways cracker except `keep`
  /// (maps are pure acceleration state and rebuild on demand).
  void ShedSidewaysExcept(const std::string& keep);
  /// Refreshes the governor's gauges from the live structures.
  void SyncResourceGauges();
  /// Scan-plus-crack-later projection: answers σ_pred(head) ⋉ tails by
  /// scanning the base columns, materializing no sideways map.
  Result<ProjectionResult<std::int64_t>> ScanProject(
      std::string_view table, std::string_view head,
      const RangePredicate<std::int64_t>& pred,
      const std::vector<std::string>& tails) const;

  Catalog catalog_;
  ThreadPool* thread_pool_ = nullptr;  // borrowed (DatabaseOptions)
  std::unordered_map<internal::PathKey, std::unique_ptr<AccessPath<std::int64_t>>,
                     internal::PathKeyHash>
      paths_;
  std::unordered_map<std::string, std::unique_ptr<SidewaysCracker<std::int64_t>>>
      sideways_;
  // unique_ptr: the governor holds a mutex (not movable) and the Database
  // keeps its defaulted moves.
  std::unique_ptr<ResourceGovernor> governor_ = std::make_unique<ResourceGovernor>();
};

}  // namespace aidx
