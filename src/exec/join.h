// Adaptive equi-join: cracking as join partitioning.
//
// The tutorial lists "adaptive indexing for several database operators such
// as joins" among the covered material. This operator realizes the idea:
// a partitioned hash join whose partitioning step *is cracking*. Both join
// columns are cracked at the same sampled pivots, producing co-aligned
// value ranges; each range pair is then hash-joined independently. The
// physical reorganization persists: repeated joins (and any later range
// selects on the same CrackJoin) reuse and refine the cracked partitions —
// the join, too, is advice on how data should be stored.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/cracker_column.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Join-side work counters.
struct CrackJoinStats {
  std::size_t num_joins = 0;
  std::size_t partitions_used = 0;
  std::size_t hash_entries_built = 0;
};

template <ColumnValue T>
class CrackJoin {
 public:
  struct Options {
    /// Pivot count sampled from the left input on first use; the join runs
    /// over pivots+1 co-aligned ranges.
    std::size_t num_pivots = 63;
    std::uint64_t seed = 0xA11CE;
    /// Keep row ids so MaterializePairs can produce (left row, right row).
    bool with_row_ids = true;
  };

  CrackJoin(std::span<const T> left, std::span<const T> right, Options options = {})
      : options_(options),
        left_(left, {.with_row_ids = options.with_row_ids}),
        right_(right, {.with_row_ids = options.with_row_ids}),
        rng_(options.seed) {
    SamplePivots(left);
  }

  AIDX_DEFAULT_MOVE_ONLY(CrackJoin);

  /// Number of (l, r) pairs with equal keys, both keys within `pred`.
  /// Cracks both inputs as a side effect.
  std::size_t CountJoin(const RangePredicate<T>& pred = RangePredicate<T>::All()) {
    ++stats_.num_joins;
    std::size_t total = 0;
    ForEachCoRange(pred, [&](std::span<const T> lvals, std::span<const row_id_t>,
                             std::span<const T> rvals, std::span<const row_id_t>) {
      total += HashCount(lvals, rvals, pred);
    });
    return total;
  }

  /// Materializes matching (left row id, right row id) pairs. Requires
  /// with_row_ids. Quadratic output is the caller's responsibility.
  void MaterializePairs(const RangePredicate<T>& pred,
                        std::vector<std::pair<row_id_t, row_id_t>>* out) {
    AIDX_CHECK(options_.with_row_ids) << "join built without row ids";
    ++stats_.num_joins;
    ForEachCoRange(pred, [&](std::span<const T> lvals, std::span<const row_id_t> lrids,
                             std::span<const T> rvals,
                             std::span<const row_id_t> rrids) {
      // Build on the smaller side.
      const bool left_build = lvals.size() <= rvals.size();
      const auto bvals = left_build ? lvals : rvals;
      const auto brids = left_build ? lrids : rrids;
      const auto pvals = left_build ? rvals : lvals;
      const auto prids = left_build ? rrids : lrids;
      std::unordered_multimap<T, row_id_t> table;
      table.reserve(bvals.size());
      for (std::size_t i = 0; i < bvals.size(); ++i) {
        if (pred.Matches(bvals[i])) table.emplace(bvals[i], brids[i]);
      }
      stats_.hash_entries_built += table.size();
      for (std::size_t i = 0; i < pvals.size(); ++i) {
        if (!pred.Matches(pvals[i])) continue;
        const auto [lo, hi] = table.equal_range(pvals[i]);
        for (auto it = lo; it != hi; ++it) {
          out->push_back(left_build ? std::make_pair(it->second, prids[i])
                                    : std::make_pair(prids[i], it->second));
        }
      }
    });
  }

  const CrackJoinStats& stats() const { return stats_; }
  const CrackerColumn<T>& left() const { return left_; }
  const CrackerColumn<T>& right() const { return right_; }

  bool Validate() const { return left_.ValidatePieces() && right_.ValidatePieces(); }

 private:
  void SamplePivots(std::span<const T> left) {
    if (left.empty()) return;
    pivots_.reserve(options_.num_pivots);
    for (std::size_t i = 0; i < options_.num_pivots; ++i) {
      pivots_.push_back(left[rng_.NextBounded(left.size())]);
    }
    std::sort(pivots_.begin(), pivots_.end());
    pivots_.erase(std::unique(pivots_.begin(), pivots_.end()), pivots_.end());
  }

  /// Cracks both sides at every pivot intersecting `pred` and hands the
  /// co-aligned (values, row ids) range pairs to `fn`.
  template <typename Fn>
  void ForEachCoRange(const RangePredicate<T>& pred, Fn&& fn) {
    if (pred.DefinitelyEmpty()) return;
    // Range boundaries: pred's bounds plus all pivots strictly inside.
    std::vector<RangePredicate<T>> ranges;
    T lo{};
    bool has_lo = pred.low_kind != BoundKind::kUnbounded;
    BoundKind lo_kind = pred.low_kind;
    if (has_lo) lo = pred.low;
    for (const T pivot : pivots_) {
      if (has_lo && pivot <= lo) continue;
      if (pred.high_kind == BoundKind::kInclusive && pivot > pred.high) break;
      if (pred.high_kind == BoundKind::kExclusive && pivot >= pred.high) break;
      RangePredicate<T> r;
      r.low = lo;
      r.low_kind = has_lo ? lo_kind : BoundKind::kUnbounded;
      r.high = pivot;
      r.high_kind = BoundKind::kExclusive;
      ranges.push_back(r);
      lo = pivot;
      lo_kind = BoundKind::kInclusive;
      has_lo = true;
    }
    RangePredicate<T> last;
    last.low = lo;
    last.low_kind = has_lo ? lo_kind : BoundKind::kUnbounded;
    last.high = pred.high;
    last.high_kind = pred.high_kind;
    ranges.push_back(last);

    for (const auto& range : ranges) {
      const CrackSelect ls = left_.Select(range);
      const CrackSelect rs = right_.Select(range);
      AIDX_DCHECK(ls.num_edges == 0 && rs.num_edges == 0);
      if (ls.core.empty() || rs.core.empty()) continue;
      ++stats_.partitions_used;
      fn(Slice(left_.values(), ls.core), SliceRids(left_.row_ids(), ls.core),
         Slice(right_.values(), rs.core), SliceRids(right_.row_ids(), rs.core));
    }
  }

  static std::span<const T> Slice(std::span<const T> s, PositionRange r) {
    return s.subspan(r.begin, r.end - r.begin);
  }
  static std::span<const row_id_t> SliceRids(std::span<const row_id_t> s,
                                             PositionRange r) {
    if (s.empty()) return {};
    return s.subspan(r.begin, r.end - r.begin);
  }

  std::size_t HashCount(std::span<const T> lvals, std::span<const T> rvals,
                        const RangePredicate<T>& pred) {
    // Build a value->multiplicity table on the smaller side.
    const bool left_build = lvals.size() <= rvals.size();
    const auto bvals = left_build ? lvals : rvals;
    const auto pvals = left_build ? rvals : lvals;
    std::unordered_map<T, std::size_t> counts;
    counts.reserve(bvals.size());
    for (const T v : bvals) {
      if (pred.Matches(v)) ++counts[v];
    }
    stats_.hash_entries_built += counts.size();
    std::size_t total = 0;
    for (const T v : pvals) {
      if (!pred.Matches(v)) continue;
      const auto it = counts.find(v);
      if (it != counts.end()) total += it->second;
    }
    return total;
  }

  Options options_;
  CrackerColumn<T> left_;
  CrackerColumn<T> right_;
  std::vector<T> pivots_;
  Rng rng_;
  CrackJoinStats stats_;
};

}  // namespace aidx
