// Cuts: the unit of physical-organization knowledge cracking accumulates.
//
// A cut (v, kind) asserted at array position p means:
//   kind == kLess    : every value in [0, p) is  < v, every value in [p, n) is >= v
//   kind == kLessEq  : every value in [0, p) is <= v, every value in [p, n) is  > v
//
// Both cuts for one pivot value may coexist (queries "x < 5" and "x <= 5"
// install different cuts); their positions differ by the number of values
// equal to the pivot. Cuts are totally ordered by (value, kind) with
// kLess < kLessEq, and cut positions are monotone in that order.
#pragma once

#include <string>
#include <sstream>

#include "storage/predicate.h"
#include "storage/types.h"

namespace aidx {

enum class CutKind : char {
  kLess,    // below-side predicate is v' <  v
  kLessEq,  // below-side predicate is v' <= v
};

/// A pivot plus the side rule; see file comment for semantics.
template <ColumnValue T>
struct Cut {
  T value{};
  CutKind kind = CutKind::kLess;

  /// True when `v` belongs strictly below this cut.
  bool Below(T v) const { return kind == CutKind::kLess ? v < value : v <= value; }

  /// Total order consistent with position monotonicity.
  friend bool operator<(const Cut& a, const Cut& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.kind == CutKind::kLess && b.kind == CutKind::kLessEq;
  }
  friend bool operator==(const Cut& a, const Cut& b) {
    return a.value == b.value && a.kind == b.kind;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "(" << (kind == CutKind::kLess ? "< " : "<= ") << value << ")";
    return os.str();
  }
};

/// The two cuts that realize a range predicate. Either may be absent
/// (unbounded side). Lower-cut position = first qualifying offset; upper-cut
/// position = one past the last qualifying offset.
template <ColumnValue T>
struct PredicateCuts {
  bool has_lower = false;
  Cut<T> lower{};
  bool has_upper = false;
  Cut<T> upper{};
};

/// Translates predicate bounds into cuts.
///
/// x >= a  ⇒ lower cut (a, kLess):   result starts where values stop being < a.
/// x >  a  ⇒ lower cut (a, kLessEq): result starts where values stop being <= a.
/// x <= b  ⇒ upper cut (b, kLessEq): result ends where values stop being <= b.
/// x <  b  ⇒ upper cut (b, kLess):   result ends where values stop being < b.
template <ColumnValue T>
PredicateCuts<T> CutsForPredicate(const RangePredicate<T>& pred) {
  PredicateCuts<T> cuts;
  switch (pred.low_kind) {
    case BoundKind::kInclusive:
      cuts.has_lower = true;
      cuts.lower = {pred.low, CutKind::kLess};
      break;
    case BoundKind::kExclusive:
      cuts.has_lower = true;
      cuts.lower = {pred.low, CutKind::kLessEq};
      break;
    case BoundKind::kUnbounded:
      break;
  }
  switch (pred.high_kind) {
    case BoundKind::kInclusive:
      cuts.has_upper = true;
      cuts.upper = {pred.high, CutKind::kLessEq};
      break;
    case BoundKind::kExclusive:
      cuts.has_upper = true;
      cuts.upper = {pred.high, CutKind::kLess};
      break;
    case BoundKind::kUnbounded:
      break;
  }
  return cuts;
}

}  // namespace aidx
