// Adaptive merging (Graefe & Kuno, SMDB/EDBT 2010).
//
// Index construction as a side effect of queries, like cracking — but with
// an *active* first step and an eager merge policy:
//   * the first access partitions the column into sorted runs (the size of
//     one run models the in-memory sort workspace of the original's
//     external-sort run generation);
//   * every query locates its qualifying key range in each run by binary
//     search, extracts it, and bulk-inserts it into a final B+ tree (the
//     "final partition" of the original's partitioned B-tree);
//   * a cut-interval set records fully merged key ranges, so queries over
//     merged ranges touch only the B+ tree — the converged fast path.
//
// Compared with cracking this pays more per early query (binary searches,
// data movement into the tree) but converges in far fewer queries — the
// trade-off the tutorial's hybrid discussion centres on.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "core/cut.h"
#include "core/cut_interval_set.h"
#include "index/btree.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Adaptation counters for the benchmark harness.
struct AdaptiveMergingStats {
  std::size_t num_queries = 0;
  std::size_t values_merged = 0;       // migrated into the final B+ tree
  std::size_t runs_exhausted = 0;      // runs whose data fully migrated
  std::size_t merge_queries = 0;       // queries that had to touch runs
  std::size_t inserts_queued = 0;      // Insert calls accepted
  std::size_t inserts_absorbed = 0;    // pending tuples turned into runs/tree
  std::size_t inserts_cancelled = 0;   // pending tuples annihilated by deletes
  std::size_t values_deleted = 0;      // tuples erased from the final tree
};

template <ColumnValue T>
class AdaptiveMergingIndex {
 public:
  struct Options {
    /// Values per sorted run (the sort workspace). The default models a
    /// 16-run initial partitioning of a 4M-value column.
    std::size_t run_size = 1 << 18;
    bool with_row_ids = true;
    std::size_t tree_leaf_capacity = 256;
    std::size_t tree_internal_fanout = 64;
  };

  /// Builds the sorted runs. As with CrackerColumn, construction is the
  /// first-query initialization step; benches construct lazily on first use.
  explicit AdaptiveMergingIndex(std::span<const T> base, Options options = {})
      : options_(options),
        total_size_(base.size()),
        next_rid_(static_cast<row_id_t>(base.size())),
        final_tree_({.leaf_capacity = options.tree_leaf_capacity,
                     .internal_fanout = options.tree_internal_fanout,
                     .with_row_ids = options.with_row_ids}) {
    AIDX_CHECK(options_.run_size >= 1);
    runs_.reserve(base.size() / options_.run_size + 1);
    for (std::size_t at = 0; at < base.size(); at += options_.run_size) {
      const std::size_t n = std::min(options_.run_size, base.size() - at);
      Run run;
      run.values.assign(base.begin() + static_cast<std::ptrdiff_t>(at),
                        base.begin() + static_cast<std::ptrdiff_t>(at + n));
      if (options_.with_row_ids) {
        // Argsort so row ids travel with their values.
        std::vector<row_id_t> perm(n);
        std::iota(perm.begin(), perm.end(), row_id_t{0});
        std::sort(perm.begin(), perm.end(), [&](row_id_t a, row_id_t b) {
          return run.values[a] < run.values[b];
        });
        std::vector<T> sorted(n);
        run.rids.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sorted[i] = run.values[perm[i]];
          run.rids[i] = static_cast<row_id_t>(at + perm[i]);
        }
        run.values = std::move(sorted);
      } else {
        std::sort(run.values.begin(), run.values.end());
      }
      run.live_count = n;
      run.live.push_back({0, n});
      runs_.push_back(std::move(run));
    }
  }

  AIDX_DEFAULT_MOVE_ONLY(AdaptiveMergingIndex);

  /// Queues an insert; the next query absorbs all pending inserts as one
  /// fresh sorted run (the "pending run" treatment of adaptive merging).
  /// Returns the fresh tuple's row id.
  row_id_t Insert(T value) {
    pending_.push_back({value, next_rid_});
    ++stats_.inserts_queued;
    return next_rid_++;
  }

  /// Deletes one tuple equal to `value`: cancels a pending insert when one
  /// matches, otherwise forces the [value, value] key range to merge (a
  /// delete is a query) and erases from the final tree. False when absent.
  bool Delete(T value) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].value == value) {
        pending_[i] = pending_.back();
        pending_.pop_back();
        ++stats_.inserts_cancelled;
        return true;
      }
    }
    EnsureMerged(CutRangeForPredicate(RangePredicate<T>::Between(value, value)));
    if (!final_tree_.EraseOne(value)) return false;
    ++stats_.values_deleted;
    return true;
  }

  /// Rows matching the predicate; merges missing key ranges as a side effect.
  std::size_t Count(const RangePredicate<T>& pred) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return 0;
    AbsorbPending();
    EnsureMerged(CutRangeForPredicate(pred));
    return final_tree_.CountRange(pred);
  }

  /// Sum of matching values; merges as a side effect.
  long double Sum(const RangePredicate<T>& pred) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return 0;
    AbsorbPending();
    EnsureMerged(CutRangeForPredicate(pred));
    return final_tree_.SumRange(pred);
  }

  /// Materializes matching (value, row-id) pairs in key order.
  void Materialize(const RangePredicate<T>& pred, std::vector<T>* values,
                   std::vector<row_id_t>* rids) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return;
    AbsorbPending();
    EnsureMerged(CutRangeForPredicate(pred));
    final_tree_.VisitRange(pred, [&](T v, row_id_t r) {
      values->push_back(v);
      if (rids != nullptr) rids->push_back(r);
    });
  }

  const AdaptiveMergingStats& stats() const { return stats_; }
  std::size_t num_runs() const { return runs_.size(); }
  std::size_t num_pending_inserts() const { return pending_.size(); }
  /// True once every live value has migrated into the final B+ tree.
  bool fully_merged() const {
    if (!pending_.empty()) return false;
    for (const Run& run : runs_) {
      if (run.live_count > 0) return false;
    }
    return true;
  }
  const BPlusTree<T>& final_tree() const { return final_tree_; }

  /// Structural invariants: run ordering, live-interval accounting, and
  /// global conservation (live values + merged values == initial size plus
  /// absorbed inserts; the tree holds merged minus deleted values).
  bool Validate() const {
    if (!final_tree_.Validate()) return false;
    std::size_t live_total = 0;
    for (const Run& run : runs_) {
      if (!std::is_sorted(run.values.begin(), run.values.end())) return false;
      std::size_t live_in_run = 0;
      std::size_t prev_end = 0;
      bool first = true;
      for (const PositionRange& r : run.live) {
        if (r.empty() || r.end > run.values.size()) return false;
        if (!first && r.begin <= prev_end) return false;  // must be disjoint, ordered
        prev_end = r.end;
        first = false;
        live_in_run += r.size();
      }
      if (live_in_run != run.live_count) return false;
      live_total += live_in_run;
    }
    if (live_total + stats_.values_merged != total_size_ + stats_.inserts_absorbed) {
      return false;
    }
    if (final_tree_.size() != stats_.values_merged - stats_.values_deleted) {
      return false;
    }
    return merged_.Validate();
  }

 private:
  struct Run {
    std::vector<T> values;        // sorted ascending
    std::vector<row_id_t> rids;   // aligned with values (optional)
    std::vector<PositionRange> live;  // not-yet-extracted position intervals
    std::size_t live_count = 0;
  };
  struct PendingTuple {
    T value;
    row_id_t rid;
  };

  /// Turns the pending inserts into one fresh sorted run. Sub-ranges whose
  /// keys already migrated are extracted into the final tree on the spot
  /// (they would otherwise hide behind the merged-range bookkeeping); the
  /// rest stays live in the run and merges adaptively like initial data.
  void AbsorbPending() {
    if (pending_.empty()) return;
    const std::size_t n = pending_.size();
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingTuple& a, const PendingTuple& b) {
                return a.value < b.value;
              });
    Run run;
    run.values.reserve(n);
    if (options_.with_row_ids) run.rids.reserve(n);
    for (const PendingTuple& t : pending_) {
      run.values.push_back(t.value);
      if (options_.with_row_ids) run.rids.push_back(t.rid);
    }
    pending_.clear();
    stats_.inserts_absorbed += n;

    std::vector<PositionRange> dead;  // positions in already-merged ranges
    merged_.VisitRanges([&](const CutRange<T>& r) {
      const std::size_t lo = PositionOfCut(run.values, r.lo);
      const std::size_t hi = PositionOfCut(run.values, r.hi);
      if (hi > lo) dead.push_back({lo, hi});
    });
    std::size_t cursor = 0;
    for (const PositionRange& d : dead) {
      if (cursor < d.begin) {
        run.live.push_back({cursor, d.begin});
        run.live_count += d.begin - cursor;
      }
      final_tree_.InsertSortedBatch(
          std::span<const T>(run.values).subspan(d.begin, d.size()),
          options_.with_row_ids
              ? std::span<const row_id_t>(run.rids).subspan(d.begin, d.size())
              : std::span<const row_id_t>{});
      stats_.values_merged += d.size();
      cursor = d.end;
    }
    if (cursor < n) {
      run.live.push_back({cursor, n});
      run.live_count += n - cursor;
    }
    if (run.live_count > 0) runs_.push_back(std::move(run));
  }

  /// Position of a cut in a sorted array: the count of values Below(cut).
  static std::size_t PositionOfCut(const std::vector<T>& sorted, const Cut<T>& cut) {
    if (cut.kind == CutKind::kLess) {
      return static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), cut.value) - sorted.begin());
    }
    return static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), cut.value) - sorted.begin());
  }

  /// Extracts every still-missing sub-range of `target` from the runs into
  /// the final tree and marks it merged.
  void EnsureMerged(const CutRange<T>& target) {
    const auto missing = merged_.Missing(target);
    if (missing.empty()) return;
    ++stats_.merge_queries;
    for (const CutRange<T>& gap : missing) {
      for (Run& run : runs_) {
        if (run.live_count == 0) continue;
        const std::size_t lo = PositionOfCut(run.values, gap.lo);
        const std::size_t hi = PositionOfCut(run.values, gap.hi);
        if (hi <= lo) continue;
        final_tree_.InsertSortedBatch(
            std::span<const T>(run.values).subspan(lo, hi - lo),
            options_.with_row_ids
                ? std::span<const row_id_t>(run.rids).subspan(lo, hi - lo)
                : std::span<const row_id_t>{});
        RemoveFromLive(&run, {lo, hi});
        stats_.values_merged += hi - lo;
        if (run.live_count == 0) {
          ++stats_.runs_exhausted;
          run.values.clear();
          run.values.shrink_to_fit();
          run.rids.clear();
          run.rids.shrink_to_fit();
          run.live.clear();
        }
      }
      merged_.Add(gap);
    }
  }

  /// Removes `gone` from the run's live intervals. Because extraction is
  /// always a whole value range, `gone` never partially overlaps a previous
  /// extraction — it can only split, trim, or consume live intervals.
  static void RemoveFromLive(Run* run, PositionRange gone) {
    std::vector<PositionRange> next;
    next.reserve(run->live.size() + 1);
    for (const PositionRange& r : run->live) {
      if (gone.end <= r.begin || r.end <= gone.begin) {
        next.push_back(r);  // no overlap
        continue;
      }
      if (r.begin < gone.begin) next.push_back({r.begin, gone.begin});
      if (gone.end < r.end) next.push_back({gone.end, r.end});
      run->live_count -= std::min(r.end, gone.end) - std::max(r.begin, gone.begin);
    }
    run->live = std::move(next);
  }

  Options options_;
  std::size_t total_size_;
  std::vector<Run> runs_;
  std::vector<PendingTuple> pending_;  // inserts awaiting absorption
  row_id_t next_rid_ = 0;              // fresh row ids continue past the base
  BPlusTree<T> final_tree_;
  CutIntervalSet<T> merged_;
  AdaptiveMergingStats stats_;
};

}  // namespace aidx
