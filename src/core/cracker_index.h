// The cracker index: an AVL tree of cuts over one cracked array.
//
// Pieces are the maximal runs between adjacent cut positions. The index
// answers "where is the piece a new cut must crack" (floor/ceiling search),
// records realized cuts, and supports the position-shifting walks the
// update algorithms (SIGMOD 2007) need.
//
// Ownership: a CrackerIndex stores only (cut, position) bookkeeping — it
// never owns or touches the cracked array itself. It is owned by exactly
// one physical container (CrackerColumn or CrackerMap), which is
// responsible for keeping positions consistent with the array it manages:
// the contract is that AddCut(cut, p) is called only after the owner has
// physically partitioned the enclosing piece at p, and set_column_size /
// the mutable VisitCuts walks are reserved for the update pipeline that
// shifts positions in lock step with ripple moves.
//
// Usage (the cracking inner loop):
//   CutLookup<T> look = index.Lookup(cut);
//   if (!look.exact) {                       // piece [begin, end) must crack
//     std::size_t p = /* CrackInTwo over look.piece */;
//     index.AddCut(cut, p);
//   }                                        // look.position / p is the answer
#pragma once

#include <cstddef>
#include <optional>

#include "core/cut.h"
#include "index/avl_tree.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Bookkeeping for one piece of a cracked array.
template <ColumnValue T>
struct PieceInfo {
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Bound cuts; absent at the array's extremes.
  std::optional<Cut<T>> lower;  // values in the piece are !lower->Below(v)
  std::optional<Cut<T>> upper;  // values in the piece are  upper->Below(v)
};

/// Result of probing the index with a cut.
template <ColumnValue T>
struct CutLookup {
  /// True when the cut is already realized; `position` is then exact and
  /// `piece` is meaningless.
  bool exact = false;
  std::size_t position = 0;
  /// The piece that must be cracked to realize the cut.
  PieceInfo<T> piece;
};

template <ColumnValue T>
class CrackerIndex {
 public:
  explicit CrackerIndex(std::size_t column_size) : column_size_(column_size) {}

  AIDX_DEFAULT_MOVE_ONLY(CrackerIndex);

  std::size_t column_size() const { return column_size_; }
  /// Updates the logical array size (update pipeline grows/shrinks the
  /// cracked array); existing cut positions must already be consistent.
  void set_column_size(std::size_t n) { column_size_ = n; }

  std::size_t num_cuts() const { return tree_.size(); }
  std::size_t num_pieces() const { return tree_.size() + 1; }

  /// Probes for `cut`; either finds it realized or identifies the enclosing
  /// piece that a crack would have to reorganize.
  CutLookup<T> Lookup(const Cut<T>& cut) const {
    CutLookup<T> out;
    const Node* exact = tree_.Find(cut);
    if (exact != nullptr) {
      out.exact = true;
      out.position = exact->value;
      return out;
    }
    out.piece = PieceAround(cut);
    return out;
  }

  /// Records a realized cut. The position must lie inside the enclosing
  /// piece identified by Lookup (checked in debug builds).
  void AddCut(const Cut<T>& cut, std::size_t position) {
    AIDX_DCHECK(position <= column_size_);
    const auto [node, inserted] = tree_.Insert(cut, position);
    AIDX_CHECK(inserted) << "cut " << cut.ToString() << " already realized";
    (void)node;
  }

  /// The piece that would contain a not-yet-realized cut. (Also correct for
  /// realized cuts: returns the zero-or-more-width piece to its left.)
  PieceInfo<T> PieceAround(const Cut<T>& cut) const {
    PieceInfo<T> piece;
    const Node* floor = tree_.FindFloor(cut);
    const Node* ceil = tree_.FindAbove(cut);
    if (floor != nullptr) {
      piece.begin = floor->value;
      piece.lower = floor->key;
    } else {
      piece.begin = 0;
    }
    if (ceil != nullptr) {
      piece.end = ceil->value;
      piece.upper = ceil->key;
    } else {
      piece.end = column_size_;
    }
    if (piece.end < piece.begin) piece.end = piece.begin;  // zero-width tolerance
    return piece;
  }

  /// The piece whose value interval admits value `v` — where an insert of
  /// `v` must land. Boundary rule: v belongs below every cut c with
  /// c.Below(v) and at-or-above every cut with !c.Below(v).
  PieceInfo<T> PieceForValue(T v) const {
    // Cuts are ordered so that Below(v) is monotone: false...false,true...true.
    // The insert piece sits between the last false cut and the first true cut.
    // (v, kLessEq) is the greatest cut candidate with !Below(v) semantics
    // boundary: cut (v', k') has Below(v) false iff (v',k') <= (v, kLess) is
    // not quite right for duplicates, so search directly:
    PieceInfo<T> piece;
    const Node* last_false = nullptr;
    const Node* first_true = nullptr;
    const Node* n = tree_.Root();
    while (n != nullptr) {
      if (n->key.Below(v)) {
        first_true = n;
        n = LeftOf(n);
      } else {
        last_false = n;
        n = RightOf(n);
      }
    }
    if (last_false != nullptr) {
      piece.begin = last_false->value;
      piece.lower = last_false->key;
    }
    piece.end = first_true != nullptr ? first_true->value : column_size_;
    if (first_true != nullptr) piece.upper = first_true->key;
    if (piece.end < piece.begin) piece.end = piece.begin;
    return piece;
  }

  /// Visits cuts in ascending order; `fn(const Cut<T>&, std::size_t& pos)`
  /// may mutate positions (update algorithms shift suffix cuts).
  template <typename Fn>
  void VisitCuts(Fn&& fn) {
    tree_.VisitInOrder([&](Node& node) { fn(node.key, node.value); });
  }
  template <typename Fn>
  void VisitCuts(Fn&& fn) const {
    const_cast<AvlTree<Cut<T>, std::size_t>&>(tree_).VisitInOrder(
        [&](Node& node) { fn(node.key, static_cast<const std::size_t&>(node.value)); });
  }

  /// Visits cuts with key >= from, ascending; positions mutable.
  template <typename Fn>
  void VisitCutsFrom(const Cut<T>& from, Fn&& fn) {
    tree_.VisitFrom(from, [&](Node& node) { fn(node.key, node.value); });
  }

  /// Visits every piece left to right.
  template <typename Fn>
  void VisitPieces(Fn&& fn) const {
    PieceInfo<T> current;
    current.begin = 0;
    VisitCuts([&](const Cut<T>& cut, const std::size_t& pos) {
      current.end = pos;
      current.upper = cut;
      fn(current);
      current = PieceInfo<T>{};
      current.begin = pos;
      current.lower = cut;
    });
    current.end = column_size_;
    current.upper.reset();
    fn(current);
  }

  /// Drops a realized cut (piece merge; used by update algorithms).
  bool EraseCut(const Cut<T>& cut) { return tree_.Erase(cut); }

  /// Deep copy (the type is otherwise move-only). Sideways cracking clones
  /// a fully-aligned sibling's index when a map joins its cohort after
  /// updates: copying the cuts along with the layout is what keeps a later
  /// Select from re-cracking — and thereby re-permuting — the clone.
  CrackerIndex Clone() const {
    CrackerIndex out(column_size_);
    VisitCuts([&](const Cut<T>& cut, const std::size_t& pos) {
      out.AddCut(cut, pos);
    });
    return out;
  }

  void Clear() { tree_.Clear(); }

  /// Invariants: AVL shape, cut-position monotonicity, positions within the
  /// array. O(n); tests only.
  bool Validate() const {
    if (!tree_.Validate()) return false;
    bool ok = true;
    std::size_t prev = 0;
    VisitCuts([&](const Cut<T>&, const std::size_t& pos) {
      if (pos < prev || pos > column_size_) ok = false;
      prev = pos;
    });
    return ok;
  }

  int tree_height() const { return tree_.height(); }

 private:
  using Tree = AvlTree<Cut<T>, std::size_t>;
  using Node = typename Tree::Node;

  static const Node* LeftOf(const Node* n) { return n->left; }
  static const Node* RightOf(const Node* n) { return n->right; }

  Tree tree_;
  std::size_t column_size_;
};

}  // namespace aidx
