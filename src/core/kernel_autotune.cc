#include "core/kernel_autotune.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/cut.h"
#include "util/rng.h"
#include "util/timer.h"

namespace aidx {
namespace {

// Sweep sizes: large enough that per-call overhead vanishes and the blocked
// kernels reach steady state, small enough that the whole calibration stays
// in the low milliseconds (it runs once per process, on the first query).
constexpr std::size_t kSweepRows = std::size_t{1} << 17;
constexpr std::size_t kPieceSweepRows = std::size_t{1} << 16;
constexpr int kReps = 2;  // best-of: first rep also warms caches/cpuid

std::mutex& CalibrationMutex() {
  static std::mutex m;
  return m;
}

// Every calibration record ever published, so a record replaced by
// SetCalibrationEnabled stays valid for readers that already hold a
// reference (and stays reachable — no leak-sanitizer noise).
std::vector<std::unique_ptr<const KernelCalibration>>& Records() {
  static std::vector<std::unique_ptr<const KernelCalibration>> v;
  return v;
}

std::atomic<const KernelCalibration*> g_calibration{nullptr};
std::atomic<int> g_enabled_override{-1};  // -1: defer to AIDX_CALIBRATE

template <typename T>
std::vector<T> MakeValues(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> values(n);
  for (auto& v : values) {
    v = static_cast<T>(rng.NextBounded(std::uint64_t{1} << 20));
  }
  return values;
}

/// Best-of-kReps raw crack-in-two throughput (Mrows/s) of `kernel` over a
/// fresh copy of `base`. min_piece = 1 pins the kernel: the sweep measures
/// the kernel itself, not the dispatch fallback it feeds.
template <typename T>
double MeasureCrackMrows(CrackKernel kernel, const std::vector<T>& base,
                         T cut_value) {
  std::vector<T> scratch(base.size());
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::copy(base.begin(), base.end(), scratch.begin());
    WallTimer timer;
    CrackInTwo<T, row_id_t>(std::span<T>(scratch), {},
                            Cut<T>{cut_value, CutKind::kLess}, kernel,
                            /*min_piece=*/1);
    const double seconds = timer.ElapsedSeconds();
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(base.size()) / (seconds * 1e6));
    }
  }
  return best;
}

/// Same measurement, but cracking independent `piece`-sized sub-spans — the
/// regime the min-piece fallback threshold is about.
template <typename T>
double MeasurePieceMrows(CrackKernel kernel, std::size_t piece,
                         const std::vector<T>& base, T cut_value) {
  std::vector<T> scratch(base.size());
  const Cut<T> cut{cut_value, CutKind::kLess};
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::copy(base.begin(), base.end(), scratch.begin());
    std::size_t cracked = 0;
    WallTimer timer;
    for (std::size_t off = 0; off + piece <= scratch.size(); off += piece) {
      CrackInTwo<T, row_id_t>(std::span<T>(scratch.data() + off, piece), {},
                              cut, kernel, /*min_piece=*/1);
      cracked += piece;
    }
    const double seconds = timer.ElapsedSeconds();
    if (seconds > 0.0 && cracked > 0) {
      best = std::max(best, static_cast<double>(cracked) / (seconds * 1e6));
    }
  }
  return best;
}

template <typename T>
void SweepWidth(CrackKernel* kernel_out, std::size_t* min_piece_out,
                double mrows[kNumCrackKernels]) {
  const auto base = MakeValues<T>(kSweepRows, 0xC0FFEE01 + sizeof(T));
  const T cut_value = static_cast<T>(std::uint64_t{1} << 19);  // ~median

  constexpr CrackKernel kCandidates[] = {
      CrackKernel::kBranchy, CrackKernel::kPredicated,
      CrackKernel::kPredicatedUnrolled, CrackKernel::kSimd};
  CrackKernel winner = CrackKernel::kPredicatedUnrolled;
  double winner_mrows = 0.0;
  for (const CrackKernel kernel : kCandidates) {
    if (kernel == CrackKernel::kSimd && !internal::SimdKernelAvailable()) {
      continue;
    }
    const double m = MeasureCrackMrows<T>(kernel, base, cut_value);
    mrows[static_cast<std::size_t>(kernel)] = m;
    if (m > winner_mrows) {
      winner_mrows = m;
      winner = kernel;
    }
  }
  *kernel_out = winner;

  // Crossover sweep: the smallest piece size where the winning kernel stops
  // losing to branchy becomes the fallback threshold. If branchy wins the
  // headline outright the threshold is moot; if it wins at every tested
  // piece size, park the threshold above the sweep.
  *min_piece_out = kPredicationMinPiece;
  if (winner != CrackKernel::kBranchy) {
    const auto pieces_base =
        MakeValues<T>(kPieceSweepRows, 0xC0FFEE02 + sizeof(T));
    std::size_t chosen = 1024;
    for (const std::size_t piece : {32u, 64u, 128u, 256u, 512u}) {
      const double branchy = MeasurePieceMrows<T>(CrackKernel::kBranchy, piece,
                                                  pieces_base, cut_value);
      const double contender =
          MeasurePieceMrows<T>(winner, piece, pieces_base, cut_value);
      if (contender >= branchy) {
        chosen = piece;
        break;
      }
    }
    *min_piece_out = chosen;
  }
}

KernelCalibration FallbackDefaults() {
  KernelCalibration cal;
  cal.calibrated = false;
  cal.simd_available = internal::SimdKernelAvailable();
  cal.isa = internal::SimdIsaName();
  return cal;
}

KernelCalibration RunSweep() {
  KernelCalibration cal = FallbackDefaults();
  cal.calibrated = true;
  SweepWidth<std::int32_t>(&cal.kernel_w4, &cal.min_piece_w4, cal.mrows_w4);
  SweepWidth<std::int64_t>(&cal.kernel_w8, &cal.min_piece_w8, cal.mrows_w8);
  return cal;
}

}  // namespace

const KernelCalibration& Calibrate() {
  if (const auto* cal = g_calibration.load(std::memory_order_acquire)) {
    return *cal;
  }
  std::lock_guard<std::mutex> lock(CalibrationMutex());
  if (const auto* cal = g_calibration.load(std::memory_order_relaxed)) {
    return *cal;
  }
  auto fresh = std::make_unique<const KernelCalibration>(
      CalibrationEnabled() ? RunSweep() : FallbackDefaults());
  const KernelCalibration* published = fresh.get();
  Records().push_back(std::move(fresh));
  g_calibration.store(published, std::memory_order_release);
  return *published;
}

const KernelCalibration* CalibrationIfRan() {
  return g_calibration.load(std::memory_order_acquire);
}

bool CalibrationEnabled() {
  const int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  const char* env = std::getenv("AIDX_CALIBRATE");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

void SetCalibrationEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(CalibrationMutex());
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
  g_calibration.store(nullptr, std::memory_order_release);
}

CrackKernel ResolveCrackKernel(CrackKernel kernel, std::size_t value_width) {
  if (kernel != CrackKernel::kAuto) return kernel;
  const KernelCalibration& cal = Calibrate();
  return value_width <= 4 ? cal.kernel_w4 : cal.kernel_w8;
}

std::size_t DefaultCrackMinPiece(std::size_t value_width) {
  const KernelCalibration* cal = g_calibration.load(std::memory_order_acquire);
  if (cal == nullptr) return kPredicationMinPiece;
  return value_width <= 4 ? cal->min_piece_w4 : cal->min_piece_w8;
}

}  // namespace aidx
