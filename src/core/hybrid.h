// Hybrid adaptive indexing (Idreos, Manegold, Kuno, Graefe — PVLDB 2011,
// "Merging What's Cracked, Cracking What's Merged").
//
// The hybrid space crosses two policy choices:
//   initial partitions organized by {Crack, Sort, Radix}  ×
//   final store segments organized by {Crack, Sort, Radix}
// giving HCC, HCS, HCR, HSS, HSR, HRR, ... Pure database cracking is the
// degenerate "one partition, never move anything" point; classic adaptive
// merging is essentially HSS.
//
// Mechanics per query:
//  1. the missing (never-yet-queried) sub-ranges of the predicate are
//     computed from a cut-interval set;
//  2. each live initial partition resolves those sub-ranges under its
//     organization policy and the qualifying values migrate into a new
//     final-store segment (whose policy may eagerly sort/cluster it);
//  3. the answer is assembled from final-store segments only — fully
//     covered segments contribute wholesale, boundary segments resolve
//     under their own policy.
//
// Because migration always moves whole value ranges simultaneously from
// every partition, the "holes" left behind are value-aligned dead pieces
// that no later query can touch: correctness needs no tombstones.
//
// Ownership: construction copies the base span into initial partitions
// (the only full-column copy the structure ever makes); the base data is
// not referenced afterwards. All partitions, final-store segments, and the
// merged-range set are owned by the HybridIndex; exhausted partitions
// release their storage eagerly. Move-only, not thread-safe — every query
// is also a write (see exec/serialized_path.h for the latched wrapper).
//
// Usage: construct with an Options naming the initial/final OrganizeMode
// pair (HCS = {kCrack, kSort}, etc. — StrategyConfig::Hybrid does this for
// you behind AccessPath), then call Count/Sum/Materialize with range
// predicates; each call migrates the predicate's still-missing value
// ranges as a side effect. stats() and fully_merged() expose adaptation
// progress; Validate() is the O(n) test-only invariant sweep.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/cut.h"
#include "core/cut_interval_set.h"
#include "core/organizer.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"
#include "util/macros.h"

namespace aidx {

/// Adaptation counters for the benchmark harness.
struct HybridStats {
  std::size_t num_queries = 0;
  std::size_t values_merged = 0;
  std::size_t partitions_exhausted = 0;
  std::size_t final_segments = 0;
  std::size_t merge_queries = 0;
  std::size_t inserts_queued = 0;    // Insert calls accepted
  std::size_t inserts_absorbed = 0;  // pending tuples placed in the index
  std::size_t inserts_cancelled = 0; // pending tuples annihilated by deletes
  std::size_t values_deleted = 0;    // tuples erased from final segments
};

template <ColumnValue T>
class HybridIndex {
 public:
  struct Options {
    /// Values per initial partition (the workspace knob of PVLDB'11 §6).
    std::size_t partition_size = 1 << 18;
    OrganizeMode initial_mode = OrganizeMode::kCrack;
    OrganizeMode final_mode = OrganizeMode::kCrack;
    int radix_bits = 6;
    bool with_row_ids = true;
    /// Crack kernel applied by every cracked segment (core/crack_ops.h).
    CrackKernel kernel = CrackKernel::kAuto;
    /// Branchy-fallback piece threshold; 0 = calibrated process default.
    std::size_t predication_min_piece = 0;
  };

  /// "HCC", "HCS", ... — the paper's naming for a policy pair.
  static std::string NameOf(OrganizeMode initial, OrganizeMode final_mode) {
    return std::string("H") + OrganizeModeLetter(initial) +
           OrganizeModeLetter(final_mode);
  }

  /// Splits the base column into unorganized initial partitions. Cheap
  /// (one copy); the per-policy organization happens lazily on first touch.
  explicit HybridIndex(std::span<const T> base, Options options = {})
      : options_(options),
        total_size_(base.size()),
        next_rid_(static_cast<row_id_t>(base.size())) {
    AIDX_CHECK(options_.partition_size >= 1);
    for (std::size_t at = 0; at < base.size(); at += options_.partition_size) {
      const std::size_t n = std::min(options_.partition_size, base.size() - at);
      std::vector<T> values(base.begin() + static_cast<std::ptrdiff_t>(at),
                            base.begin() + static_cast<std::ptrdiff_t>(at + n));
      std::vector<row_id_t> rids;
      if (options_.with_row_ids) {
        rids.resize(n);
        for (std::size_t i = 0; i < n; ++i) rids[i] = static_cast<row_id_t>(at + i);
      }
      partitions_.push_back(Partition{
          SegmentOrganizer<T>(std::move(values), std::move(rids),
                              {.mode = options_.initial_mode,
                               .radix_bits = options_.radix_bits,
                               .with_row_ids = options_.with_row_ids,
                               .kernel = options_.kernel,
                               .predication_min_piece =
                                   options_.predication_min_piece}),
          n});
    }
  }

  AIDX_DEFAULT_MOVE_ONLY(HybridIndex);

  std::string name() const {
    return NameOf(options_.initial_mode, options_.final_mode);
  }

  /// Queues an insert; the next query absorbs all pending inserts — values
  /// whose key range already migrated go straight into the covering final
  /// segment, the rest forms a fresh initial partition (the PVLDB'11
  /// natural fit: new data is just another partition to merge from).
  /// Returns the fresh tuple's row id.
  row_id_t Insert(T value) {
    pending_.push_back({value, next_rid_});
    ++stats_.inserts_queued;
    return next_rid_++;
  }

  /// Deletes one tuple equal to `value`: cancels a pending insert when one
  /// matches, otherwise forces the [value, value] range to migrate and
  /// erases from the covering final segment. False when absent.
  bool Delete(T value) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].value == value) {
        pending_[i] = pending_.back();
        pending_.pop_back();
        ++stats_.inserts_cancelled;
        return true;
      }
    }
    EnsureMerged(CutRangeForPredicate(RangePredicate<T>::Between(value, value)));
    FinalSegment* seg = SegmentContaining(value);
    if (seg == nullptr || !seg->org.EraseOne(value)) return false;
    ++stats_.values_deleted;
    return true;
  }

  /// Rows matching the predicate; migrates missing ranges as a side effect.
  std::size_t Count(const RangePredicate<T>& pred) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return 0;
    AbsorbPending();
    const CutRange<T> target = CutRangeForPredicate(pred);
    EnsureMerged(target);
    std::size_t count = 0;
    ForEachAnswerRange(target, pred, [&](const FinalSegment& seg, PositionRange r) {
      (void)seg;
      count += r.size();
    });
    return count;
  }

  /// Sum of matching values; migrates as a side effect.
  long double Sum(const RangePredicate<T>& pred) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return 0;
    AbsorbPending();
    const CutRange<T> target = CutRangeForPredicate(pred);
    EnsureMerged(target);
    long double sum = 0;
    ForEachAnswerRange(target, pred, [&](const FinalSegment& seg, PositionRange r) {
      const auto vals = seg.org.values();
      for (std::size_t i = r.begin; i < r.end; ++i) sum += vals[i];
    });
    return sum;
  }

  /// Materializes matching values (and row ids when enabled). Order is
  /// segment-internal storage order, not global key order.
  void Materialize(const RangePredicate<T>& pred, std::vector<T>* values,
                   std::vector<row_id_t>* rids) {
    ++stats_.num_queries;
    if (pred.DefinitelyEmpty()) return;
    AbsorbPending();
    const CutRange<T> target = CutRangeForPredicate(pred);
    EnsureMerged(target);
    ForEachAnswerRange(target, pred, [&](const FinalSegment& seg, PositionRange r) {
      const auto vals = seg.org.values();
      values->insert(values->end(), vals.begin() + static_cast<std::ptrdiff_t>(r.begin),
                     vals.begin() + static_cast<std::ptrdiff_t>(r.end));
      if (rids != nullptr && options_.with_row_ids) {
        const auto seg_rids = seg.org.row_ids();
        rids->insert(rids->end(),
                     seg_rids.begin() + static_cast<std::ptrdiff_t>(r.begin),
                     seg_rids.begin() + static_cast<std::ptrdiff_t>(r.end));
      }
    });
  }

  const HybridStats& stats() const { return stats_; }
  std::size_t num_partitions() const { return partitions_.size(); }
  std::size_t num_final_segments() const { return finals_.size(); }
  std::size_t num_pending_inserts() const { return pending_.size(); }
  bool fully_merged() const {
    if (!pending_.empty()) return false;
    for (const Partition& p : partitions_) {
      if (p.live > 0) return false;
    }
    return true;
  }

  /// Conservation + per-segment structural invariants. O(n); tests only.
  bool Validate() const {
    std::size_t live = 0;
    for (const Partition& p : partitions_) {
      live += p.live;
      if (p.live > 0 && !p.org.Validate()) return false;
    }
    if (live + stats_.values_merged != total_size_ + stats_.inserts_absorbed) {
      return false;
    }
    std::size_t in_finals = 0;
    for (const FinalSegment& seg : finals_) {
      in_finals += seg.org.size();
      if (!seg.org.Validate()) return false;
      // Every value must lie inside the segment's declared bounds.
      for (const T v : seg.org.values()) {
        if (!seg.bounds.Contains(v)) return false;
      }
    }
    if (in_finals != stats_.values_merged - stats_.values_deleted) return false;
    return merged_.Validate();
  }

 private:
  struct Partition {
    SegmentOrganizer<T> org;
    std::size_t live;
  };
  struct FinalSegment {
    SegmentOrganizer<T> org;
    CutRange<T> bounds;
  };
  struct PendingTuple {
    T value;
    row_id_t rid;
  };

  /// The final segment whose bounds contain `value`, or nullptr. Segments
  /// have pairwise-disjoint bounds sorted by lower cut, so at most one can.
  /// The probe is (value, kLess): a bound lo is above `value` exactly when
  /// lo > (value, kLess) in cut order, so the predecessor of the first
  /// such segment is the only containment candidate.
  FinalSegment* SegmentContaining(T value) {
    const Cut<T> probe{value, CutKind::kLess};
    auto it = std::upper_bound(
        finals_.begin(), finals_.end(), probe,
        [](const Cut<T>& c, const FinalSegment& s) { return c < s.bounds.lo; });
    if (it == finals_.begin()) return nullptr;
    FinalSegment& candidate = *std::prev(it);
    return candidate.bounds.Contains(value) ? &candidate : nullptr;
  }

  /// Places the pending inserts: tuples inside an already-migrated range
  /// join the final store directly (appending to the covering segment, or
  /// founding a segment for the segment-free stretch of the merged range
  /// around them); the remainder becomes a fresh initial partition.
  void AbsorbPending() {
    if (pending_.empty()) return;
    std::vector<T> fresh_values;
    std::vector<row_id_t> fresh_rids;
    for (const PendingTuple& t : pending_) {
      const auto merged_range = merged_.FindContaining(t.value);
      if (!merged_range.has_value()) {
        fresh_values.push_back(t.value);
        if (options_.with_row_ids) fresh_rids.push_back(t.rid);
        continue;
      }
      PlaceInFinals(t, *merged_range);
      ++stats_.values_merged;
    }
    stats_.inserts_absorbed += pending_.size();
    pending_.clear();
    if (fresh_values.empty()) return;
    const std::size_t n = fresh_values.size();
    partitions_.push_back(Partition{
        SegmentOrganizer<T>(std::move(fresh_values), std::move(fresh_rids),
                            {.mode = options_.initial_mode,
                             .radix_bits = options_.radix_bits,
                             .with_row_ids = options_.with_row_ids,
                             .kernel = options_.kernel,
                             .predication_min_piece =
                                 options_.predication_min_piece}),
        n});
  }

  /// Appends one already-merged tuple to the covering final segment; when
  /// none covers it, founds a new segment over the widest stretch of
  /// `merged_range` that no existing segment claims (keeping the directory
  /// disjoint so later inserts nearby reuse it).
  void PlaceInFinals(const PendingTuple& t, const CutRange<T>& merged_range) {
    if (FinalSegment* seg = SegmentContaining(t.value); seg != nullptr) {
      seg->org.Append(std::span<const T>(&t.value, 1),
                      options_.with_row_ids
                          ? std::span<const row_id_t>(&t.rid, 1)
                          : std::span<const row_id_t>{});
      return;
    }
    // First segment entirely above the value (see SegmentContaining on the
    // probe kind); its predecessor, if any, is entirely below.
    const Cut<T> probe{t.value, CutKind::kLess};
    auto it = std::upper_bound(
        finals_.begin(), finals_.end(), probe,
        [](const Cut<T>& c, const FinalSegment& s) { return c < s.bounds.lo; });
    CutRange<T> bounds = merged_range;
    if (it != finals_.begin()) {
      const auto prev = std::prev(it);
      if (bounds.lo < prev->bounds.hi) bounds.lo = prev->bounds.hi;
    }
    if (it != finals_.end() && it->bounds.lo < bounds.hi) bounds.hi = it->bounds.lo;
    std::vector<T> values{t.value};
    std::vector<row_id_t> rids;
    if (options_.with_row_ids) rids.push_back(t.rid);
    finals_.insert(it, FinalSegment{
                           SegmentOrganizer<T>(std::move(values), std::move(rids),
                                               {.mode = options_.final_mode,
                                                .radix_bits = options_.radix_bits,
                                                .with_row_ids = options_.with_row_ids,
                                                .kernel = options_.kernel,
                                                .predication_min_piece =
                                                    options_.predication_min_piece}),
                           bounds});
    ++stats_.final_segments;
  }

  void EnsureMerged(const CutRange<T>& target) {
    const auto missing = merged_.Missing(target);
    if (missing.empty()) return;
    ++stats_.merge_queries;
    for (const CutRange<T>& gap : missing) {
      const RangePredicate<T> gap_pred = PredicateForCutRange(gap);
      std::vector<T> staging;
      std::vector<row_id_t> staging_rids;
      for (Partition& p : partitions_) {
        if (p.live == 0) continue;
        const PositionRange r = p.org.Resolve(gap_pred);
        if (r.empty()) continue;
        const auto vals = p.org.values();
        staging.insert(staging.end(),
                       vals.begin() + static_cast<std::ptrdiff_t>(r.begin),
                       vals.begin() + static_cast<std::ptrdiff_t>(r.end));
        if (options_.with_row_ids) {
          const auto rids = p.org.row_ids();
          staging_rids.insert(staging_rids.end(),
                              rids.begin() + static_cast<std::ptrdiff_t>(r.begin),
                              rids.begin() + static_cast<std::ptrdiff_t>(r.end));
        }
        p.live -= r.size();
        if (p.live == 0) {
          p.org.Release();
          ++stats_.partitions_exhausted;
        }
      }
      merged_.Add(gap);
      if (staging.empty()) continue;
      stats_.values_merged += staging.size();
      FinalSegment seg{SegmentOrganizer<T>(std::move(staging), std::move(staging_rids),
                                           {.mode = options_.final_mode,
                                            .radix_bits = options_.radix_bits,
                                            .with_row_ids = options_.with_row_ids,
                                            .kernel = options_.kernel,
                                            .predication_min_piece =
                                                options_.predication_min_piece}),
                       gap};
      // Eager policies (sort/radix) pay their organization cost at merge
      // time — the "what's merged gets organized" half of the hybrid idea.
      if (options_.final_mode != OrganizeMode::kCrack) seg.org.EnsureOrganized();
      // Segment bounds are pairwise disjoint (each is a freshly merged
      // range), so the directory stays sorted by lower bound; insert in
      // place so answer lookups stay logarithmic.
      const auto at = std::lower_bound(
          finals_.begin(), finals_.end(), seg.bounds.lo,
          [](const FinalSegment& s, const Cut<T>& lo) { return s.bounds.lo < lo; });
      finals_.insert(at, std::move(seg));
      ++stats_.final_segments;
    }
  }

  /// Invokes `fn(segment, positions)` for every final-store range that
  /// belongs to the answer of `pred`. Binary-searches the sorted segment
  /// directory, so converged queries cost O(log segments + overlap width).
  template <typename Fn>
  void ForEachAnswerRange(const CutRange<T>& target, const RangePredicate<T>& pred,
                          Fn&& fn) {
    // First segment with lower bound >= target.lo; its predecessor may
    // still straddle target.lo.
    auto it = std::lower_bound(
        finals_.begin(), finals_.end(), target.lo,
        [](const FinalSegment& s, const Cut<T>& lo) { return s.bounds.lo < lo; });
    if (it != finals_.begin()) {
      const auto prev = std::prev(it);
      if (target.lo < prev->bounds.hi) it = prev;
    }
    for (; it != finals_.end() && it->bounds.lo < target.hi; ++it) {
      FinalSegment& seg = *it;
      if (!(target.lo < seg.bounds.hi)) continue;  // zero-overlap guard
      // Covered: target.lo <= seg.lo and seg.hi <= target.hi.
      const bool covered =
          !(seg.bounds.lo < target.lo || target.hi < seg.bounds.hi);
      if (covered) {
        fn(seg, PositionRange{0, seg.org.size()});
      } else {
        fn(seg, seg.org.Resolve(pred));
      }
    }
  }

  Options options_;
  std::size_t total_size_;
  std::vector<Partition> partitions_;
  std::vector<FinalSegment> finals_;
  std::vector<PendingTuple> pending_;  // inserts awaiting absorption
  row_id_t next_rid_ = 0;              // fresh row ids continue past the base
  CutIntervalSet<T> merged_;
  HybridStats stats_;
};

}  // namespace aidx
