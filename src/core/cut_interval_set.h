// CutRange and CutIntervalSet: value-interval bookkeeping in cut space.
//
// Adaptive merging and the hybrid algorithms migrate whole *value ranges*
// from their initial partitions into a final store. A CutIntervalSet records
// which ranges have fully migrated so that every query knows the exact
// still-missing sub-ranges it must extract. Working in cut space (rather
// than value space) keeps inclusive/exclusive endpoints and duplicate
// values exact with no epsilon arithmetic.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "core/cut.h"
#include "storage/predicate.h"
#include "storage/types.h"
#include "util/logging.h"

namespace aidx {

/// The value set { v : !lo.Below(v) && hi.Below(v) } — i.e. at-or-above the
/// lo cut and below the hi cut. Empty iff hi <= lo in cut order.
template <ColumnValue T>
struct CutRange {
  Cut<T> lo{};
  Cut<T> hi{};

  bool Empty() const { return !(lo < hi); }
  bool Contains(T v) const { return !lo.Below(v) && hi.Below(v); }

  friend bool operator==(const CutRange& a, const CutRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const { return lo.ToString() + ".." + hi.ToString(); }
};

/// Sentinel cut below every representable value of T.
template <ColumnValue T>
Cut<T> MinusInfinityCut() {
  return {std::numeric_limits<T>::lowest(), CutKind::kLess};
}

/// Sentinel cut above every representable value of T.
template <ColumnValue T>
Cut<T> PlusInfinityCut() {
  return {std::numeric_limits<T>::max(), CutKind::kLessEq};
}

/// Predicate -> cut range; unbounded sides become infinity sentinels.
template <ColumnValue T>
CutRange<T> CutRangeForPredicate(const RangePredicate<T>& pred) {
  const PredicateCuts<T> cuts = CutsForPredicate(pred);
  CutRange<T> out{MinusInfinityCut<T>(), PlusInfinityCut<T>()};
  if (cuts.has_lower) out.lo = cuts.lower;
  if (cuts.has_upper) out.hi = cuts.upper;
  return out;
}

/// Cut range -> equivalent predicate (the exact inverse of the cut
/// translation table in cut.h).
template <ColumnValue T>
RangePredicate<T> PredicateForCutRange(const CutRange<T>& range) {
  RangePredicate<T> pred;
  pred.low = range.lo.value;
  pred.low_kind = range.lo.kind == CutKind::kLess ? BoundKind::kInclusive
                                                  : BoundKind::kExclusive;
  pred.high = range.hi.value;
  pred.high_kind = range.hi.kind == CutKind::kLessEq ? BoundKind::kInclusive
                                                     : BoundKind::kExclusive;
  return pred;
}

/// A set of disjoint, coalesced cut ranges with union and subtraction.
template <ColumnValue T>
class CutIntervalSet {
 public:
  /// Adds `range` to the set, merging with overlapping or adjacent ranges.
  void Add(CutRange<T> range) {
    if (range.Empty()) return;
    // Find the first existing range that could interact: the one with the
    // greatest start <= range.hi; walk left while still touching.
    auto it = map_.upper_bound(range.hi);  // first start > range.hi
    while (it != map_.begin()) {
      auto prev = std::prev(it);
      // prev interacts if its end >= range.lo (overlap or adjacency).
      if (prev->second < range.lo) break;
      if (prev->first < range.lo) range.lo = prev->first;
      if (range.hi < prev->second) range.hi = prev->second;
      it = map_.erase(prev);
    }
    map_.emplace(range.lo, range.hi);
  }

  /// True when `range` is entirely covered (empty ranges are covered).
  bool Covers(const CutRange<T>& range) const {
    if (range.Empty()) return true;
    const auto it = map_.upper_bound(range.lo);  // first start > range.lo
    if (it == map_.begin()) return false;
    const auto& candidate = *std::prev(it);      // start <= range.lo
    return !(candidate.second < range.hi);
  }

  /// The sub-ranges of `range` not covered by the set, in ascending order.
  std::vector<CutRange<T>> Missing(const CutRange<T>& range) const {
    std::vector<CutRange<T>> out;
    if (range.Empty()) return out;
    Cut<T> cursor = range.lo;
    // Start from the last range with start <= cursor.
    auto it = map_.upper_bound(cursor);
    if (it != map_.begin()) --it;
    for (; it != map_.end() && it->first < range.hi; ++it) {
      if (cursor < it->first) {
        const Cut<T> gap_end = it->first < range.hi ? it->first : range.hi;
        if (cursor < gap_end) out.push_back({cursor, gap_end});
      }
      if (cursor < it->second) cursor = it->second;
      if (!(cursor < range.hi)) return out;
    }
    if (cursor < range.hi) out.push_back({cursor, range.hi});
    return out;
  }

  /// The stored range containing value `v`, if any. Used by the update
  /// pipeline to route fresh tuples whose key range has already migrated.
  std::optional<CutRange<T>> FindContaining(T v) const {
    // A range start lo lies above v exactly when lo > (v, kLess) in cut
    // order (this catches lo == (v, kLessEq), which excludes v); the
    // predecessor of the first such range is the only candidate.
    auto it = map_.upper_bound(Cut<T>{v, CutKind::kLess});
    if (it == map_.begin()) return std::nullopt;
    const auto& [lo, hi] = *std::prev(it);
    const CutRange<T> range{lo, hi};
    if (range.Contains(v)) return range;
    return std::nullopt;
  }

  std::size_t num_ranges() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  template <typename Fn>
  void VisitRanges(Fn&& fn) const {
    for (const auto& [lo, hi] : map_) fn(CutRange<T>{lo, hi});
  }

  /// Ranges must be non-empty, sorted, and separated by real gaps.
  bool Validate() const {
    const Cut<T>* prev_end = nullptr;
    for (const auto& [lo, hi] : map_) {
      if (!(lo < hi)) return false;
      if (prev_end != nullptr && !(*prev_end < lo)) return false;
      prev_end = &hi;
    }
    return true;
  }

 private:
  std::map<Cut<T>, Cut<T>> map_;  // start cut -> end cut
};

}  // namespace aidx
